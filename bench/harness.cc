#include "bench/harness.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"
#include "cot/trainer.h"
#include "data/folds.h"
#include "data/generator.h"
#include "face/renderer.h"

namespace vsd::bench {

BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  options.folds = core::NumFoldsFromEnv(2);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
      options.folds = 2;
    } else if (std::strcmp(argv[i], "--folds") == 0 && i + 1 < argc) {
      options.folds = std::atoi(argv[++i]);
      if (options.folds < 2) options.folds = 2;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
      if (options.threads < 1) options.threads = 1;
    }
  }
  if (options.threads > 0) ThreadPool::SetGlobalThreads(options.threads);
  return options;
}

BenchData MakeBenchData(const BenchOptions& options) {
  BenchData data;
  if (options.quick) {
    data.uvsd = data::MakeUvsdSimSmall(400, options.seed + 1);
    data.rsl = data::MakeRslSimSmall(240, options.seed + 2);
    data.disfa = data::MakeDisfaSim(options.seed + 3, 300);
  } else {
    data.uvsd = data::MakeUvsdSim(options.seed + 1);
    data.rsl = data::MakeRslSim(options.seed + 2);
    data.disfa = data::MakeDisfaSim(options.seed + 3, 645);
  }
  return data;
}

const vlm::FoundationModel& PretrainedBase(const BenchOptions& options) {
  // Guarded so parallel folds can share the lazily built backbone; after
  // construction the model is only read.
  static std::mutex mu;
  static std::map<uint64_t, std::unique_ptr<vlm::FoundationModel>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(options.seed);
  if (it == cache.end()) {
    std::fprintf(stderr, "[bench] pretraining generalist backbone...\n");
    vlm::ApiModelSpec spec = vlm::BackboneInitSpec();
    if (options.quick) {
      spec.pretrain_epochs = 4;
      spec.corpus_size = 300;
    }
    auto model = std::make_unique<vlm::FoundationModel>(spec.config);
    vlm::PretrainGeneralist(model.get(), spec, options.seed * 11 + 5);
    it = cache.emplace(options.seed, std::move(model)).first;
  }
  return *it->second;
}

const vlm::FoundationModel& ApiModel(vlm::ApiModelKind kind,
                                     const BenchOptions& options) {
  static std::mutex mu;
  static std::map<int, std::unique_ptr<vlm::FoundationModel>> cache;
  const int key = static_cast<int>(kind);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    std::fprintf(stderr, "[bench] pretraining %s...\n",
                 vlm::ApiModelName(kind));
    vlm::ApiModelSpec spec = vlm::GetApiModelSpec(kind);
    if (options.quick) {
      spec.pretrain_epochs = 3;
      spec.corpus_size = 250;
    }
    auto model = std::make_unique<vlm::FoundationModel>(spec.config);
    vlm::PretrainGeneralist(model.get(), spec,
                            options.seed * 13 + 7 + key);
    it = cache.emplace(key, std::move(model)).first;
  }
  return *it->second;
}

cot::ChainConfig OursChainConfig(const BenchOptions& options) {
  cot::ChainConfig chain;
  chain.seed = options.seed;
  if (options.quick) {
    chain.describe_epochs = 6;
    chain.describe_augment_copies = 1;
    chain.assess_epochs = 6;
    chain.max_refine_rounds = 1;
    chain.rationale_dpo_samples = 80;
  }
  return chain;
}

std::unique_ptr<vlm::FoundationModel> TrainOurs(
    const cot::ChainConfig& chain, const data::Dataset& au_data,
    const data::Dataset& train, const data::Dataset& test,
    const BenchOptions& options, uint64_t fold_seed) {
  auto model = PretrainedBase(options).Clone();
  model->ClearFeatureCache();
  Rng rng(fold_seed ^ 0xC0FFEE);
  cot::ChainTrainer trainer(chain);
  trainer.Train(model.get(), au_data, train, &rng);
  model->PrecomputeFeatures(test);
  return model;
}

core::Metrics CrossValidate(
    const data::Dataset& dataset, const BenchOptions& options,
    const std::function<core::Metrics(const data::Dataset& train,
                                      const data::Dataset& test,
                                      uint64_t fold_seed)>& run_fold) {
  Rng rng(options.seed ^ 0xF01D5);
  const auto splits = data::StratifiedKFold(dataset, options.folds, &rng);
  // Fold-parallel: every fold's seed is derived from its index exactly as
  // in the serial loop, and the per-fold metrics land in per-fold slots,
  // so the aggregate is byte-identical for every thread count.
  const std::vector<core::Metrics> fold_metrics =
      ParallelMap<core::Metrics>(splits.size(), [&](int64_t f) {
        const data::Dataset train = dataset.Subset(splits[f].train);
        const data::Dataset test = dataset.Subset(splits[f].test);
        return run_fold(train, test, options.seed + 1000 * (f + 1));
      });
  return core::AverageMetrics(fold_metrics);
}

InterpContext BuildInterpContext(
    const std::vector<const data::VideoSample*>& samples) {
  InterpContext context;
  context.samples = samples;
  // Per-sample SLIC is pure; parallelize across samples.
  context.segmentations = ParallelMap<img::Segmentation>(
      samples.size(), [&](int64_t i) {
        return img::Slic(samples[i]->expressive_frame, kNumSlicSegments);
      });
  return context;
}

explain::ClassifierFn ModelClassifier(const vlm::FoundationModel& model,
                                      const data::VideoSample& sample,
                                      bool use_chain) {
  // The description is fixed from the clean frame (the chain's Describe
  // output); the perturbation probes the Assess decision, mirroring the
  // paper's protocol of disturbing segments of f_e.
  face::AuMask description{};
  if (use_chain) {
    const auto probs = model.DescribeProbs(sample);
    for (int j = 0; j < face::kNumAus; ++j) description[j] = probs[j] > 0.5;
  }
  const img::Image neutral = sample.neutral_frame;
  return [&model, description, neutral](const img::Image& frame) {
    return model.AssessProbStressedWithFrames(frame, neutral, description);
  };
}

std::vector<int> RationaleToSegments(const std::vector<int>& rationale,
                                     const img::Segmentation& segmentation) {
  std::vector<int> segments;
  std::vector<bool> used(segmentation.num_segments, false);
  for (int au : rationale) {
    const auto region = face::RegionMask(face::GetAu(au).region);
    // Count overlap of every segment with the region (region masks are
    // defined on the 96x96 canvas, matching the frames).
    std::vector<int> overlap(segmentation.num_segments, 0);
    for (int y = 0; y < segmentation.height; ++y) {
      for (int x = 0; x < segmentation.width; ++x) {
        if (region[y * segmentation.width + x]) {
          ++overlap[segmentation.LabelAt(y, x)];
        }
      }
    }
    int best = -1;
    int best_overlap = 0;
    for (int s = 0; s < segmentation.num_segments; ++s) {
      if (used[s]) continue;
      if (overlap[s] > best_overlap) {
        best_overlap = overlap[s];
        best = s;
      }
    }
    if (best >= 0) {
      used[best] = true;
      segments.push_back(best);
    }
  }
  return segments;
}

std::vector<double> RationaleDrops(
    const vlm::FoundationModel& model, const cot::ChainConfig& chain,
    const std::vector<const data::VideoSample*>& samples,
    const BenchOptions& options) {
  InterpContext context = BuildInterpContext(samples);
  cot::ChainPipeline pipeline(&model, chain);
  // Sample-parallel: each sample already derives its own Rng from its
  // index, so the serial and parallel runs are identical.
  const std::vector<explain::ExplainedSample> explained =
      ParallelMap<explain::ExplainedSample>(
          samples.size(), [&](int64_t i) {
            const auto* sample = samples[i];
            Rng rng(options.seed + 91 * i);
            const auto output = pipeline.Run(*sample, &rng);
            explain::ExplainedSample e;
            e.image = &sample->expressive_frame;
            e.segmentation = &context.segmentations[i];
            e.classifier = ModelClassifier(model, *sample, chain.use_chain);
            e.true_label = sample->stress_label;
            e.ranked_segments = RationaleToSegments(
                output.highlight.ranked_aus, context.segmentations[i]);
            return e;
          });
  Rng drop_rng(options.seed ^ 0xD0D0);
  return TopKAccuracyDrop(explained, {1, 2, 3}, kDisturbNoise, &drop_rng);
}

}  // namespace vsd::bench
