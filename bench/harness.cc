#include "bench/harness.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/annotations.h"
#include "common/batching.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"
#include "cot/trainer.h"
#include "data/folds.h"
#include "data/generator.h"
#include "face/renderer.h"
#include "vlm/quantize.h"

namespace vsd::bench {

BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  options.folds = core::NumFoldsFromEnv(2);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
      options.folds = 2;
    } else if (std::strcmp(argv[i], "--folds") == 0 && i + 1 < argc) {
      options.folds = std::atoi(argv[++i]);
      if (options.folds < 2) options.folds = 2;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
      if (options.threads < 1) options.threads = 1;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      options.batch = std::atoi(argv[++i]);
      if (options.batch < 1) options.batch = 1;
    }
  }
  if (options.threads > 0) ThreadPool::SetGlobalThreads(options.threads);
  if (options.batch > 0) SetDefaultBatchSize(options.batch);
  return options;
}

bool WriteSidecarFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  bool ok =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  // fclose flushes; a full disk often only surfaces here.
  if (std::fclose(file) != 0) ok = false;
  if (!ok) {
    std::fprintf(stderr, "[bench] failed writing %s: %s\n", path.c_str(),
                 std::strerror(errno));
  }
  return ok;
}

void WriteBenchPerfJson(const std::string& name, double wall_seconds,
                        int64_t samples, const BenchOptions& options) {
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(samples) / wall_seconds : 0.0;
  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"%s\",\n"
                "  \"quick\": %s,\n"
                "  \"folds\": %d,\n"
                "  \"seed\": %llu,\n"
                "  \"threads\": %d,\n"
                "  \"batch_size\": %d,\n"
                "  \"samples\": %lld,\n"
                "  \"wall_time_s\": %.6f,\n"
                "  \"samples_per_sec\": %.3f\n"
                "}\n",
                name.c_str(), options.quick ? "true" : "false", options.folds,
                static_cast<unsigned long long>(options.seed),
                ThreadPool::GlobalThreads(), DefaultBatchSize(),
                static_cast<long long>(samples), wall_seconds, rate);
  WriteSidecarFile("BENCH_" + name + ".json", json);
}

void WriteBenchPerfJson(const std::string& name, double wall_seconds,
                        int64_t samples, const BenchOptions& options,
                        const ServePerf& serve) {
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(samples) / wall_seconds : 0.0;
  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"%s\",\n"
                "  \"quick\": %s,\n"
                "  \"folds\": %d,\n"
                "  \"seed\": %llu,\n"
                "  \"threads\": %d,\n"
                "  \"batch_size\": %d,\n"
                "  \"samples\": %lld,\n"
                "  \"wall_time_s\": %.6f,\n"
                "  \"samples_per_sec\": %.3f,\n"
                "  \"serve\": {\n"
                "    \"batches_cut\": %lld,\n"
                "    \"mean_batch_fill\": %.3f,\n"
                "    \"retries\": %lld,\n"
                "    \"degraded\": %lld,\n"
                "    \"faults_injected\": %lld\n"
                "  }\n"
                "}\n",
                name.c_str(), options.quick ? "true" : "false", options.folds,
                static_cast<unsigned long long>(options.seed),
                ThreadPool::GlobalThreads(), DefaultBatchSize(),
                static_cast<long long>(samples), wall_seconds, rate,
                static_cast<long long>(serve.batches_cut),
                serve.mean_batch_fill, static_cast<long long>(serve.retries),
                static_cast<long long>(serve.degraded),
                static_cast<long long>(serve.faults_injected));
  WriteSidecarFile("BENCH_" + name + ".json", json);
}

BenchData MakeBenchData(const BenchOptions& options) {
  BenchData data;
  if (options.quick) {
    data.uvsd = data::MakeUvsdSimSmall(400, options.seed + 1);
    data.rsl = data::MakeRslSimSmall(240, options.seed + 2);
    data.disfa = data::MakeDisfaSim(options.seed + 3, 300);
  } else {
    data.uvsd = data::MakeUvsdSim(options.seed + 1);
    data.rsl = data::MakeRslSim(options.seed + 2);
    data.disfa = data::MakeDisfaSim(options.seed + 3, 645);
  }
  return data;
}

namespace {

/// Process-lifetime cache of pretrained models shared by parallel folds.
/// Reader/writer guarded so folds share the lazily built model without
/// serializing on the hot path: cache hits take the shared lock (after
/// construction a model is only read), and only a miss upgrades to the
/// exclusive lock, re-checking in case another thread built the model
/// while we waited.
template <typename Key>
class ModelCache {
 public:
  const vlm::FoundationModel& GetOrBuild(
      Key key,
      const std::function<std::unique_ptr<vlm::FoundationModel>()>& build) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) it = cache_.emplace(key, build()).first;
    return *it->second;
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<Key, std::unique_ptr<vlm::FoundationModel>> cache_
      VSD_GUARDED_BY(mu_);
};

}  // namespace

const vlm::FoundationModel& PretrainedBase(const BenchOptions& options) {
  static ModelCache<uint64_t> cache;
  return cache.GetOrBuild(options.seed, [&options] {
    std::fprintf(stderr, "[bench] pretraining generalist backbone...\n");
    vlm::ApiModelSpec spec = vlm::BackboneInitSpec();
    if (options.quick) {
      spec.pretrain_epochs = 4;
      spec.corpus_size = 300;
    }
    auto model = std::make_unique<vlm::FoundationModel>(spec.config);
    vlm::PretrainGeneralist(model.get(), spec, options.seed * 11 + 5);
    return model;
  });
}

const vlm::FoundationModel& ApiModel(vlm::ApiModelKind kind,
                                     const BenchOptions& options) {
  static ModelCache<int> cache;
  const int key = static_cast<int>(kind);
  return cache.GetOrBuild(key, [&options, kind, key] {
    std::fprintf(stderr, "[bench] pretraining %s...\n",
                 vlm::ApiModelName(kind));
    vlm::ApiModelSpec spec = vlm::GetApiModelSpec(kind);
    if (options.quick) {
      spec.pretrain_epochs = 3;
      spec.corpus_size = 250;
    }
    auto model = std::make_unique<vlm::FoundationModel>(spec.config);
    vlm::PretrainGeneralist(model.get(), spec,
                            options.seed * 13 + 7 + key);
    // API models are frozen once pretrained (zero-shot rows only), so
    // VSD_QUANT=int8 applies here. The backbone in PretrainedBase must
    // stay fp32 — it is cloned and fine-tuned.
    if (vlm::QuantEnabled()) vlm::QuantizeFrozenModel(model.get());
    return model;
  });
}

cot::ChainConfig OursChainConfig(const BenchOptions& options) {
  cot::ChainConfig chain;
  chain.seed = options.seed;
  if (options.quick) {
    chain.describe_epochs = 6;
    chain.describe_augment_copies = 1;
    chain.assess_epochs = 6;
    chain.max_refine_rounds = 1;
    chain.rationale_dpo_samples = 80;
  }
  return chain;
}

std::unique_ptr<vlm::FoundationModel> TrainOurs(
    const cot::ChainConfig& chain, const data::Dataset& au_data,
    const data::Dataset& train, const data::Dataset& test,
    const BenchOptions& options, uint64_t fold_seed) {
  auto model = PretrainedBase(options).Clone();
  model->ClearFeatureCache();
  Rng rng(fold_seed ^ 0xC0FFEE);
  cot::ChainTrainer trainer(chain);
  trainer.Train(model.get(), au_data, train, &rng);
  model->PrecomputeFeatures(test);
  return model;
}

core::Metrics CrossValidate(
    const data::Dataset& dataset, const BenchOptions& options,
    const std::function<core::Metrics(const data::Dataset& train,
                                      const data::Dataset& test,
                                      uint64_t fold_seed)>& run_fold) {
  Rng rng(options.seed ^ 0xF01D5);
  const auto splits = data::StratifiedKFold(dataset, options.folds, &rng);
  // Fold-parallel: every fold's seed is derived from its index exactly as
  // in the serial loop, and the per-fold metrics land in per-fold slots,
  // so the aggregate is byte-identical for every thread count.
  const std::vector<core::Metrics> fold_metrics =
      ParallelMap<core::Metrics>(splits.size(), [&](int64_t f) {
        const data::Dataset train = dataset.Subset(splits[f].train);
        const data::Dataset test = dataset.Subset(splits[f].test);
        return run_fold(train, test, options.seed + 1000 * (f + 1));
      });
  return core::AverageMetrics(fold_metrics);
}

InterpContext BuildInterpContext(
    const std::vector<const data::VideoSample*>& samples) {
  InterpContext context;
  context.samples = samples;
  // Per-sample SLIC is pure; parallelize across samples.
  context.segmentations = ParallelMap<img::Segmentation>(
      samples.size(), [&](int64_t i) {
        return img::Slic(samples[i]->expressive_frame, kNumSlicSegments);
      });
  return context;
}

explain::ClassifierFn ModelClassifier(const vlm::FoundationModel& model,
                                      const data::VideoSample& sample,
                                      bool use_chain) {
  // The description is fixed from the clean frame (the chain's Describe
  // output); the perturbation probes the Assess decision, mirroring the
  // paper's protocol of disturbing segments of f_e.
  face::AuMask description{};
  if (use_chain) {
    const auto probs = model.DescribeProbs(sample);
    for (int j = 0; j < face::kNumAus; ++j) description[j] = probs[j] > 0.5;
  }
  const img::Image neutral = sample.neutral_frame;
  return [&model, description, neutral](const img::Image& frame) {
    return model.AssessProbStressedWithFrames(frame, neutral, description);
  };
}

explain::BatchClassifierFn ModelBatchClassifier(
    const vlm::FoundationModel& model, const data::VideoSample& sample,
    bool use_chain) {
  face::AuMask description{};
  if (use_chain) {
    const auto probs = model.DescribeProbs(sample);
    for (int j = 0; j < face::kNumAus; ++j) description[j] = probs[j] > 0.5;
  }
  const img::Image neutral = sample.neutral_frame;
  return [&model, description,
          neutral](std::span<const img::Image> frames) {
    std::vector<const img::Image*> expressive;
    expressive.reserve(frames.size());
    for (const auto& frame : frames) expressive.push_back(&frame);
    // Shared-neutral batch: the neutral frame is encoded once per call.
    return model.AssessProbStressedWithFramesBatch(expressive, neutral,
                                                   description);
  };
}

std::vector<int> RationaleToSegments(const std::vector<int>& rationale,
                                     const img::Segmentation& segmentation) {
  std::vector<int> segments;
  std::vector<bool> used(segmentation.num_segments, false);
  for (int au : rationale) {
    const auto region = face::RegionMask(face::GetAu(au).region);
    // Count overlap of every segment with the region (region masks are
    // defined on the 96x96 canvas, matching the frames).
    std::vector<int> overlap(segmentation.num_segments, 0);
    for (int y = 0; y < segmentation.height; ++y) {
      for (int x = 0; x < segmentation.width; ++x) {
        if (region[y * segmentation.width + x]) {
          ++overlap[segmentation.LabelAt(y, x)];
        }
      }
    }
    int best = -1;
    int best_overlap = 0;
    for (int s = 0; s < segmentation.num_segments; ++s) {
      if (used[s]) continue;
      if (overlap[s] > best_overlap) {
        best_overlap = overlap[s];
        best = s;
      }
    }
    if (best >= 0) {
      used[best] = true;
      segments.push_back(best);
    }
  }
  return segments;
}

std::vector<double> RationaleDrops(
    const vlm::FoundationModel& model, const cot::ChainConfig& chain,
    const std::vector<const data::VideoSample*>& samples,
    const BenchOptions& options) {
  InterpContext context = BuildInterpContext(samples);
  cot::ChainPipeline pipeline(&model, chain);
  const int64_t n = static_cast<int64_t>(samples.size());
  const int batch_size = DefaultBatchSize();
  std::vector<explain::ExplainedSample> explained(n);
  // Batch-parallel chain runs: each sample still derives its own Rng from
  // its index (the exact streams of the per-sample loop), and each batch
  // writes its own index range, so the drops are bit-identical for every
  // batch size and thread count.
  ParallelFor(NumBatches(n, batch_size), [&](int64_t b) {
    const auto [begin, end] = BatchBounds(n, batch_size, b);
    std::vector<const data::VideoSample*> batch(samples.begin() + begin,
                                                samples.begin() + end);
    std::vector<Rng> rngs;
    rngs.reserve(end - begin);
    for (int64_t i = begin; i < end; ++i) {
      rngs.emplace_back(options.seed + 91 * i);
    }
    std::vector<Rng*> rng_ptrs;
    rng_ptrs.reserve(rngs.size());
    for (auto& rng : rngs) rng_ptrs.push_back(&rng);
    const std::vector<cot::ChainOutput> outputs =
        pipeline.RunBatch(batch, rng_ptrs);
    for (int64_t i = begin; i < end; ++i) {
      const auto* sample = samples[i];
      explain::ExplainedSample e;
      e.image = &sample->expressive_frame;
      e.segmentation = &context.segmentations[i];
      e.classifier = ModelClassifier(model, *sample, chain.use_chain);
      e.true_label = sample->stress_label;
      e.ranked_segments =
          RationaleToSegments(outputs[i - begin].highlight.ranked_aus,
                              context.segmentations[i]);
      explained[i] = std::move(e);
    }
  });
  Rng drop_rng(options.seed ^ 0xD0D0);
  return TopKAccuracyDrop(explained, {1, 2, 3}, kDisturbNoise, &drop_rng);
}

}  // namespace vsd::bench
