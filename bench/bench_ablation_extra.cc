// Extension ablations beyond the paper's own tables (DESIGN.md Sec. 4):
//   (a) DPO beta sweep (the paper fixes beta = 0.1),
//   (b) sensitivity to K (self-verification repeats) and the number of
//       reflection rounds,
//   (c) number of SLIC segments in the faithfulness protocol.
//
// Usage: bench_ablation_extra [--quick] [--seed S] [--threads N]
//                             [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"
#include "data/folds.h"
#include "explain/faithfulness.h"
#include "img/slic.h"

namespace vsd::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Extension ablations (%s) ===\n",
              options.quick ? "quick" : "full");
  // These sweeps use the smaller RSL-sim to keep the grid affordable.
  BenchData data = MakeBenchData(options);
  Rng rng(options.seed ^ 0xAB1A);
  const auto split = data::StratifiedHoldout(data.rsl, 0.2, &rng);
  const data::Dataset train = data.rsl.Subset(split.train);
  const data::Dataset test = data.rsl.Subset(split.test);

  // ---- (a) DPO beta sweep. ----
  {
    Table table({"DPO beta", "Acc.", "F1."});
    for (float beta : {0.02f, 0.1f, 0.5f}) {
      cot::ChainConfig chain = OursChainConfig(options);
      chain.dpo_beta = beta;
      auto model = TrainOurs(chain, data.disfa, train, test, options,
                             options.seed + 808);
      cot::ChainPipeline pipeline(model.get(), chain);
      const core::Metrics metrics = core::EvaluatePipeline(pipeline, test);
      table.AddRow({FormatDouble(beta, 2), FormatPercent(metrics.accuracy),
                    FormatPercent(metrics.f1)});
      std::printf("  done: beta=%.2f\n", beta);
    }
    std::printf("\n(a) DPO beta sweep (paper fixes 0.1):\n%s\n",
                table.ToString().c_str());
    (void)table.WriteCsv("ablation_dpo_beta.csv");
  }

  // ---- (b) K and reflection-round sensitivity. ----
  {
    Table table({"K", "Refine rounds", "Acc.", "F1."});
    const std::vector<std::pair<int, int>> grid = {{1, 1}, {3, 1}, {3, 2}};
    for (const auto& [k, rounds] : grid) {
      cot::ChainConfig chain = OursChainConfig(options);
      chain.k_repeats = k;
      chain.max_refine_rounds = rounds;
      auto model = TrainOurs(chain, data.disfa, train, test, options,
                             options.seed + 909);
      cot::ChainPipeline pipeline(model.get(), chain);
      const core::Metrics metrics = core::EvaluatePipeline(pipeline, test);
      table.AddRow({std::to_string(k), std::to_string(rounds),
                    FormatPercent(metrics.accuracy),
                    FormatPercent(metrics.f1)});
      std::printf("  done: K=%d rounds=%d\n", k, rounds);
    }
    std::printf("\n(b) Self-verification K / refinement rounds:\n%s\n",
                table.ToString().c_str());
    (void)table.WriteCsv("ablation_reflect.csv");
  }

  // ---- (c) SLIC segment count in the faithfulness protocol. ----
  {
    cot::ChainConfig chain = OursChainConfig(options);
    auto model = TrainOurs(chain, data.disfa, train, test, options,
                           options.seed + 1010);
    cot::ChainPipeline pipeline(model.get(), chain);
    std::vector<const data::VideoSample*> samples;
    const int eval_samples = options.quick ? 20 : 40;
    for (int i = 0; i < test.size() && i < eval_samples; ++i) {
      samples.push_back(&test.samples[i]);
    }
    Table table({"SLIC segments", "Top-1 drop", "Top-3 drop"});
    for (int segments : {16, 64, 144}) {
      std::vector<explain::ExplainedSample> explained;
      std::vector<img::Segmentation> segmentations;
      segmentations.reserve(samples.size());
      for (const auto* sample : samples) {
        segmentations.push_back(
            img::Slic(sample->expressive_frame, segments));
      }
      for (size_t i = 0; i < samples.size(); ++i) {
        Rng run_rng(options.seed + 7 * i);
        const auto output = pipeline.Run(*samples[i], &run_rng);
        explain::ExplainedSample e;
        e.image = &samples[i]->expressive_frame;
        e.segmentation = &segmentations[i];
        e.classifier = ModelClassifier(*model, *samples[i], true);
        e.true_label = samples[i]->stress_label;
        e.ranked_segments = RationaleToSegments(output.highlight.ranked_aus,
                                                segmentations[i]);
        explained.push_back(std::move(e));
      }
      Rng drop_rng(options.seed ^ 0x5E65);
      const auto drops = explain::TopKAccuracyDrop(explained, {1, 3},
                                                   kDisturbNoise, &drop_rng);
      table.AddRow({std::to_string(segments), FormatPercent(drops[0]),
                    FormatPercent(drops[1])});
      std::printf("  done: segments=%d\n", segments);
    }
    std::printf("\n(c) SLIC segment-count sensitivity:\n%s\n",
                table.ToString().c_str());
    (void)table.WriteCsv("ablation_segments.csv");
  }
  WriteBenchPerfJson("ablation_extra", timer.Seconds(), test.size(),
                     options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
