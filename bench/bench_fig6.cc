// Reproduces Figure 6: wall-clock cost of explaining a single test sample
// with each method. Our chain explains itself in three generations, while
// the post-hoc explainers need hundreds to thousands of black-box
// evaluations — the paper reports 3.4 s vs 216.3+ s on its stack; the
// *ratios* are the reproducible quantity here.
//
// Usage: bench_fig6 [--quick] [--seed S] [--threads N] [--batch N]
#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "common/table.h"
#include "cot/pipeline.h"
#include "data/folds.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/sobol.h"

namespace vsd::bench {
namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf(
      "=== Figure 6: per-sample explanation cost (%s) ===\n",
      options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);

  // Train the model once on UVSD.
  Rng rng(options.seed ^ 0xF16);
  const auto split = data::StratifiedHoldout(data.uvsd, 0.2, &rng);
  const data::Dataset train = data.uvsd.Subset(split.train);
  const data::Dataset test = data.uvsd.Subset(split.test);
  const cot::ChainConfig chain = OursChainConfig(options);
  auto model =
      TrainOurs(chain, data.disfa, train, test, options, options.seed + 5);
  cot::ChainPipeline pipeline(model.get(), chain);

  const int num_samples = options.quick ? 3 : 8;
  std::vector<const data::VideoSample*> samples;
  for (int i = 0; i < num_samples && i < test.size(); ++i) {
    samples.push_back(&test.samples[i]);
  }
  InterpContext context = BuildInterpContext(samples);

  const int evals = options.quick ? 200 : 1000;
  explain::LimeExplainer lime(evals);
  explain::KernelShapExplainer shap(evals);
  explain::SobolExplainer sobol(options.quick ? 4 : 15);

  double ours_seconds = 0.0;
  double lime_seconds = 0.0;
  double shap_seconds = 0.0;
  double sobol_seconds = 0.0;
  int64_t lime_evals = 0;
  int64_t shap_evals = 0;
  int64_t sobol_evals = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto* sample = samples[i];
    const auto& segmentation = context.segmentations[i];
    // Batched classifier: the post-hoc explainers score perturbations in
    // batch-sized forwards, which is exactly what Figure 6 times.
    const auto classifier = ModelBatchClassifier(*model, *sample, true);
    Rng explain_rng(options.seed + i);

    // Ours: describe + assess + highlight, uncached frames (fair timing:
    // the vision tower runs like any other per-sample cost).
    {
      auto fresh = model->Clone();
      fresh->ClearFeatureCache();
      cot::ChainPipeline fresh_pipeline(fresh.get(), chain);
      const auto start = std::chrono::steady_clock::now();
      (void)fresh_pipeline.Run(*sample, &explain_rng);
      ours_seconds += SecondsSince(start);
    }
    {
      const auto start = std::chrono::steady_clock::now();
      lime_evals += lime.Explain(classifier, sample->expressive_frame,
                                 segmentation, &explain_rng)
                        .model_evaluations;
      lime_seconds += SecondsSince(start);
    }
    {
      const auto start = std::chrono::steady_clock::now();
      shap_evals += shap.Explain(classifier, sample->expressive_frame,
                                 segmentation, &explain_rng)
                        .model_evaluations;
      shap_seconds += SecondsSince(start);
    }
    {
      const auto start = std::chrono::steady_clock::now();
      sobol_evals += sobol.Explain(classifier, sample->expressive_frame,
                                   segmentation, &explain_rng)
                         .model_evaluations;
      sobol_seconds += SecondsSince(start);
    }
  }

  const double n = static_cast<double>(samples.size());
  Table table({"Method", "Seconds/sample", "Model evals/sample",
               "Slowdown vs Ours"});
  auto row = [&](const std::string& name, double seconds, double evals_per) {
    table.AddRow({name, FormatDouble(seconds / n, 4),
                  FormatDouble(evals_per, 0),
                  FormatDouble(seconds / std::max(ours_seconds, 1e-9), 1) +
                      "x"});
  };
  row("Ours (self-explained)", ours_seconds, 3.0);
  row("LIME", lime_seconds, lime_evals / n);
  row("SHAP", shap_seconds, shap_evals / n);
  row("SOBOL", sobol_seconds, sobol_evals / n);
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("fig6.csv");
  WriteBenchPerfJson("fig6", timer.Seconds(),
                     static_cast<int64_t>(samples.size()), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
