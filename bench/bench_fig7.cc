// Reproduces Figure 7: how well similarity separates "Helpful" training
// examples (whose use as an in-context example yields a correct
// prediction) from "Unhelpful" ones, comparing visual-representation
// similarity (Videoformer stand-in) against description-text similarity
// (BERT stand-in). The paper's claim: description similarity separates
// the two groups better.
//
// Usage: bench_fig7 [--quick] [--seed S] [--threads N] [--batch N]
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "cot/icl.h"
#include "cot/pipeline.h"
#include "data/folds.h"

namespace vsd::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Figure 7: similarity separation of helpful vs unhelpful"
              " examples (%s) ===\n",
              options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);

  Rng rng(options.seed ^ 0xF17);
  const auto split = data::StratifiedHoldout(data.uvsd, 0.2, &rng);
  const data::Dataset train = data.uvsd.Subset(split.train);
  const data::Dataset test = data.uvsd.Subset(split.test);
  const cot::ChainConfig chain = OursChainConfig(options);
  auto model = TrainOurs(chain, data.disfa, train, test, options,
                         options.seed + 606);
  cot::ChainPipeline pipeline(model.get(), chain);
  const auto& generic = ApiModel(vlm::ApiModelKind::kClaude35, options);
  cot::ExampleStore store(train, &generic.vision(), model.get(), &rng);

  // For each test query, probe random training examples: an example is
  // Helpful when conditioning on it yields the correct label.
  const int num_queries = options.quick ? 15 : 40;
  const int probes_per_query = options.quick ? 10 : 25;
  std::vector<double> helpful_vision, unhelpful_vision;
  std::vector<double> helpful_description, unhelpful_description;
  const auto query_ids =
      rng.SampleWithoutReplacement(test.size(),
                                   std::min(num_queries, test.size()));
  for (int q : query_ids) {
    const auto& query = test.samples[q];
    const auto base = pipeline.Run(query, nullptr);
    for (int p = 0; p < probes_per_query; ++p) {
      const int idx = rng.UniformInt(store.size());
      const double vision_sim = store.VisionSimilarity(query, idx);
      const double description_sim =
          store.DescriptionSimilarity(base.describe.mask, idx);
      // A training example is Helpful when conditioning on it steers the
      // assessment toward the correct verdict: it must carry the query's
      // true label AND flipping fully toward it must not break a correct
      // base prediction.
      const int steered =
          pipeline.RunWithExample(query, store.label(idx), 1.0, nullptr)
              .assess.label;
      const bool helpful = store.label(idx) == query.stress_label &&
                           steered == query.stress_label;
      (helpful ? helpful_vision : unhelpful_vision).push_back(vision_sim);
      (helpful ? helpful_description : unhelpful_description)
          .push_back(description_sim);
    }
  }

  auto separation = [](const std::vector<double>& a,
                       const std::vector<double>& b) {
    // Effect size (Cohen's d): how far apart the two groups sit.
    const double pooled =
        std::sqrt(0.5 * (vsd::StdDev(a) * vsd::StdDev(a) +
                         vsd::StdDev(b) * vsd::StdDev(b)));
    if (pooled < 1e-12) return 0.0;
    return (vsd::Mean(a) - vsd::Mean(b)) / pooled;
  };

  Table table({"Embedding", "Helpful mean sim", "Unhelpful mean sim",
               "Separation (Cohen's d)"});
  table.AddRow({"Visual (retrieve-by-vision)",
                FormatDouble(vsd::Mean(helpful_vision), 4),
                FormatDouble(vsd::Mean(unhelpful_vision), 4),
                FormatDouble(separation(helpful_vision, unhelpful_vision),
                             3)});
  table.AddRow(
      {"Description (retrieve-by-description)",
       FormatDouble(vsd::Mean(helpful_description), 4),
       FormatDouble(vsd::Mean(unhelpful_description), 4),
       FormatDouble(separation(helpful_description, unhelpful_description),
                    3)});
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("helpful=%zu unhelpful=%zu probes\n", helpful_vision.size(),
              unhelpful_vision.size());
  (void)table.WriteCsv("fig7.csv");
  WriteBenchPerfJson("fig7", timer.Seconds(),
                     static_cast<int64_t>(query_ids.size()), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
