// Reproduces Table III: detection-performance ablation of the reasoning
// chain — "w/o Chain" (direct video->stress prompt) and "w/o learn des."
// (chain without the Eq. 2 facial-action instruction tuning) vs Ours.
//
// Usage: bench_table3 [--quick] [--folds N] [--seed S] [--threads N]
//                     [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"

namespace vsd::bench {
namespace {

core::Metrics EvaluateVariant(const cot::ChainConfig& chain,
                              const data::Dataset& dataset,
                              const data::Dataset& au_data,
                              const BenchOptions& options) {
  return CrossValidate(
      dataset, options,
      [&](const data::Dataset& train, const data::Dataset& test,
          uint64_t fold_seed) {
        auto model =
            TrainOurs(chain, au_data, train, test, options, fold_seed);
        cot::ChainPipeline pipeline(model.get(), chain);
        return core::EvaluatePipeline(pipeline, test);
      });
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table III: chain-reasoning ablation (%s, %d-fold) ===\n",
              options.quick ? "quick" : "full", options.folds);
  BenchData data = MakeBenchData(options);

  cot::ChainConfig ours = OursChainConfig(options);
  cot::ChainConfig no_chain = ours;
  no_chain.use_chain = false;
  cot::ChainConfig no_learn_des = ours;
  no_learn_des.learn_describe = false;

  Table table({"Dataset", "Method", "Acc.", "Prec.", "Rec.", "F1."});
  const std::vector<std::pair<std::string, const cot::ChainConfig*>>
      variants = {{"w/o Chain", &no_chain},
                  {"w/o learn des.", &no_learn_des},
                  {"Ours", &ours}};
  for (const auto* dataset : {&data.uvsd, &data.rsl}) {
    for (const auto& [name, chain] : variants) {
      const core::Metrics metrics =
          EvaluateVariant(*chain, *dataset, data.disfa, options);
      const auto row = metrics.ToRow();
      table.AddRow({dataset->name, name, row[0], row[1], row[2], row[3]});
      std::printf("  done: %s / %s\n", dataset->name.c_str(), name.c_str());
    }
    table.AddSeparator();
  }
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table3.csv");
  WriteBenchPerfJson("table3", timer.Seconds(),
                     data.uvsd.size() + data.rsl.size(), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
