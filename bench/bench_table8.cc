// Reproduces Table VIII: applying the chain-reasoning scheme with
// test-time self-refinement to the frozen off-the-shelf foundation models
// (Sec. IV-G): describe with I1, reflect and keep the new description only
// when self-verification finds it more faithful, then assess with I2.
//
// Usage: bench_table8 [--quick] [--seed S] [--threads N] [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"
#include "data/folds.h"

namespace vsd::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table VIII: off-the-shelf LFMs + our test-time scheme"
              " (%s) ===\n",
              options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);

  Table table(
      {"Dataset", "Model", "Variant", "Acc.", "Prec.", "Rec.", "F1."});
  cot::ChainConfig chain = OursChainConfig(options);
  chain.max_refine_rounds = 1;  // test-time budget

  for (const auto* dataset : {&data.uvsd, &data.rsl}) {
    // Subsample large test pools for the refined pass (quick mode only).
    for (auto kind : {vlm::ApiModelKind::kGpt4o,
                      vlm::ApiModelKind::kClaude35,
                      vlm::ApiModelKind::kGemini15}) {
      auto model = ApiModel(kind, options).Clone();
      model->PrecomputeFeatures(*dataset);
      cot::ChainPipeline pipeline(model.get(), chain);

      // "Original": the zero-shot direct prompt (Table I protocol).
      const core::Metrics original = core::EvaluatePredictor(
          [&](const data::VideoSample& sample) {
            return model->Assess(sample, face::AuMask{}, 0.0, nullptr)
                .label;
          },
          *dataset);
      const auto orow = original.ToRow();
      table.AddRow({dataset->name, vlm::ApiModelName(kind), "Original",
                    orow[0], orow[1], orow[2], orow[3]});

      // "New": describe -> (reflect + verify) -> assess at test time.
      Rng rng(options.seed ^ (0x8888 + static_cast<int>(kind)));
      const core::Metrics refined = core::EvaluatePredictor(
          [&](const data::VideoSample& sample) {
            return pipeline
                .RunWithTestTimeRefinement(sample, *dataset, &rng)
                .assess.label;
          },
          *dataset);
      const auto rrow = refined.ToRow();
      table.AddRow({dataset->name, vlm::ApiModelName(kind), "New", rrow[0],
                    rrow[1], rrow[2], rrow[3]});
      std::printf("  done: %s / %s\n", dataset->name.c_str(),
                  vlm::ApiModelName(kind));
    }
    table.AddSeparator();
  }
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table8.csv");
  WriteBenchPerfJson("table8", timer.Seconds(),
                     data.uvsd.size() + data.rsl.size(), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
