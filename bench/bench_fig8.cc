// Reproduces Figure 8: effect of the training-pool size available for
// in-context example retrieval (RSL), sweeping the pool fraction for each
// retrieval method. The paper's claim: similarity retrieval benefits from
// larger pools while random does not.
//
// Usage: bench_fig8 [--quick] [--seed S] [--threads N] [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/icl.h"
#include "cot/pipeline.h"
#include "data/folds.h"

namespace vsd::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Figure 8: retrieval pool size sweep on RSL (%s) ===\n",
              options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);

  Rng rng(options.seed ^ 0xF18);
  const auto split = data::StratifiedHoldout(data.rsl, 0.2, &rng);
  const data::Dataset train = data.rsl.Subset(split.train);
  const data::Dataset test = data.rsl.Subset(split.test);
  const cot::ChainConfig chain = OursChainConfig(options);
  auto model = TrainOurs(chain, data.disfa, train, test, options,
                         options.seed + 707);
  cot::ChainPipeline pipeline(model.get(), chain);
  const auto& generic = ApiModel(vlm::ApiModelKind::kClaude35, options);

  const std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<cot::RetrievalMethod> methods = {
      cot::RetrievalMethod::kRandom, cot::RetrievalMethod::kByVision,
      cot::RetrievalMethod::kByDescription};

  Table table({"Pool fraction", "Random", "Retrieve-by-vision",
               "Retrieve-by-description"});
  for (double fraction : fractions) {
    std::vector<std::string> row = {FormatDouble(fraction, 1)};
    for (auto method : methods) {
      Rng store_rng(options.seed + static_cast<uint64_t>(100 * fraction));
      cot::ExampleStore store(train, &generic.vision(), model.get(),
                              &store_rng);
      store.SubsampleTo(fraction, &store_rng);
      Rng eval_rng(options.seed ^ 0xE7A1);
      const core::Metrics metrics = core::EvaluatePredictor(
          [&](const data::VideoSample& sample) {
            const auto base = pipeline.Run(sample, nullptr);
            const auto retrieved =
                store.Retrieve(method, sample, base.describe.mask,
                               &eval_rng);
            return pipeline
                .RunWithExample(sample, retrieved.label,
                                retrieved.normalized_similarity, nullptr)
                .assess.label;
          },
          test);
      row.push_back(FormatPercent(metrics.accuracy));
    }
    table.AddRow(row);
    std::printf("  done: fraction %.1f\n", fraction);
  }
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("fig8.csv");
  WriteBenchPerfJson("fig8", timer.Seconds(), test.size(), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
