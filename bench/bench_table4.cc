// Reproduces Table IV: interpretability ablation of the reasoning chain —
// Top-1/2/3 accuracy drops of the self-explained rationale for "w/o
// Chain", "w/o learn des." and Ours.
//
// Usage: bench_table4 [--quick] [--seed S] [--threads N] [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "common/table.h"
#include "data/folds.h"

namespace vsd::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table IV: rationale ablation on chain reasoning (%s)"
              " ===\n",
              options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);
  const int eval_samples = options.quick ? 30 : 60;

  cot::ChainConfig ours = OursChainConfig(options);
  cot::ChainConfig no_chain = ours;
  no_chain.use_chain = false;
  cot::ChainConfig no_learn_des = ours;
  no_learn_des.learn_describe = false;
  const std::vector<std::pair<std::string, const cot::ChainConfig*>>
      variants = {{"w/o Chain", &no_chain},
                  {"w/o learn des.", &no_learn_des},
                  {"Ours", &ours}};

  Table table({"Method", "UVSD Top-1", "UVSD Top-2", "UVSD Top-3",
               "RSL Top-1", "RSL Top-2", "RSL Top-3"});
  std::vector<std::vector<double>> uvsd_drops;
  std::vector<std::vector<double>> rsl_drops;
  for (const auto* dataset : {&data.uvsd, &data.rsl}) {
    Rng rng(options.seed ^ 0x4A11);
    const auto split = data::StratifiedHoldout(*dataset, 0.2, &rng);
    const data::Dataset train = dataset->Subset(split.train);
    const data::Dataset test = dataset->Subset(split.test);
    std::vector<const data::VideoSample*> samples;
    for (int i = 0; i < test.size() && i < eval_samples; ++i) {
      samples.push_back(&test.samples[i]);
    }
    for (const auto& [name, chain] : variants) {
      auto model = TrainOurs(*chain, data.disfa, train, test, options,
                             options.seed + 303);
      auto drops = RationaleDrops(*model, *chain, samples, options);
      (dataset == &data.uvsd ? uvsd_drops : rsl_drops).push_back(drops);
      std::printf("  done: %s / %s\n", dataset->name.c_str(), name.c_str());
    }
  }
  for (size_t v = 0; v < variants.size(); ++v) {
    table.AddRow({variants[v].first, FormatPercent(uvsd_drops[v][0]),
                  FormatPercent(uvsd_drops[v][1]),
                  FormatPercent(uvsd_drops[v][2]),
                  FormatPercent(rsl_drops[v][0]),
                  FormatPercent(rsl_drops[v][1]),
                  FormatPercent(rsl_drops[v][2])});
  }
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table4.csv");
  WriteBenchPerfJson("table4", timer.Seconds(), 2 * eval_samples, options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
