// Microbenchmarks (google-benchmark) for the substrate hot paths: tensor
// matmul, conv im2col forward/backward, face rendering, SLIC segmentation,
// one full chain inference, and the explainer perturbation loop with the
// graph executor off/on. These bound the per-sample costs reported in
// Figure 6. Besides the google-benchmark report, the binary writes a
// `BENCH_micro.json` sidecar with the compiled-vs-eager wall times of the
// perturbation loop plus a per-kernel roofline section (elements/s and
// bytes moved per op, scalar vs SIMD vs int8), so CI can track both the
// graph executor's speedup and the kernel backends without parsing
// benchmark output.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "explain/occlusion.h"
#include "face/renderer.h"
#include "img/slic.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/registry.h"
#include "tensor/tensor.h"
#include "vlm/foundation_model.h"

namespace {

namespace ag = ::vsd::autograd;
using ::vsd::Rng;
using ::vsd::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForwardBackward(benchmark::State& state) {
  Rng rng(2);
  vsd::nn::Conv2d conv(1, 8, 5, 2, 2, &rng);
  Tensor images = Tensor::Randn({8, 48, 48, 1}, &rng);
  for (auto _ : state) {
    vsd::nn::Var x(images, /*requires_grad=*/true);
    vsd::nn::Var loss = ag::MeanAll(conv.Forward(x));
    ag::Backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0));
  }
}
BENCHMARK(BM_ConvForwardBackward);

void BM_RenderFace(benchmark::State& state) {
  Rng rng(3);
  vsd::face::FaceParams params;
  params.identity = vsd::face::Identity::Sample(&rng);
  params.au_intensity[2] = 0.8f;
  params.au_intensity[6] = 0.6f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::face::RenderFace(params, &rng));
  }
}
BENCHMARK(BM_RenderFace);

void BM_Slic64(benchmark::State& state) {
  Rng rng(4);
  vsd::face::FaceParams params;
  params.identity = vsd::face::Identity::Sample(&rng);
  vsd::img::Image face = vsd::face::RenderFace(params, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::img::Slic(face, 64));
  }
}
BENCHMARK(BM_Slic64);

void BM_ChainInference(benchmark::State& state) {
  // Full Describe -> Assess -> Highlight on uncached frames.
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(4, 5);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  vsd::cot::ChainConfig chain;
  vsd::cot::ChainPipeline pipeline(&model, chain);
  Rng rng(6);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.Run(dataset.samples[i++ % dataset.size()], &rng));
  }
}
BENCHMARK(BM_ChainInference);

void BM_VisionEmbedPair(benchmark::State& state) {
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 7);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const auto& sample = dataset.samples[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.vision().EmbedPair(
        sample.expressive_frame, sample.neutral_frame));
  }
}
BENCHMARK(BM_VisionEmbedPair);

// The explainer perturbation loop is the graph executor's flagship
// consumer: one OcclusionExplainer pass drives num_segments + 1 model
// forwards through the batched chain classifier. Arg(0) runs eager,
// Arg(1) compiled; both produce bit-identical attributions (pinned by
// tests/graph_exec_test.cc), so the delta is pure executor overhead.
void BM_ExplainerPerturbations(benchmark::State& state) {
  namespace graph = ::vsd::nn::graph;
  const bool previous = graph::GraphExecEnabled();
  graph::SetGraphExecEnabled(state.range(0) == 1);
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 9);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const vsd::data::VideoSample& sample = dataset.samples[0];
  const vsd::img::Segmentation segmentation =
      vsd::img::Slic(sample.expressive_frame, vsd::bench::kNumSlicSegments);
  const vsd::explain::BatchClassifierFn classifier =
      vsd::bench::ModelBatchClassifier(model, sample, /*use_chain=*/true);
  const vsd::explain::OcclusionExplainer occlusion;
  Rng rng(77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(occlusion.Explain(
        classifier, sample.expressive_frame, segmentation, &rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          (segmentation.num_segments + 1));
  graph::SetGraphExecEnabled(previous);
}
BENCHMARK(BM_ExplainerPerturbations)->Arg(0)->Arg(1);

// ---- Per-kernel roofline: scalar vs SIMD vs int8 ----

/// Times `fn` (after one warm-up call) until ~40ms of wall clock has
/// accumulated, in batches of 8 so timer overhead stays negligible.
/// Returns {iters, seconds}.
template <typename Fn>
std::pair<int64_t, double> TimeKernelLoop(Fn&& fn) {
  fn();
  vsd::bench::PerfTimer timer;
  int64_t iters = 0;
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 8; ++i) fn();
    iters += 8;
    elapsed = timer.Seconds();
  } while (elapsed < 0.04);
  return {iters, elapsed};
}

/// One roofline row: times `fn` under `backend` and appends a JSON object
/// to `rows`. `elems` is output elements per call; `bytes` is the minimum
/// bytes moved per call (each operand read once + output written once),
/// so gb_per_s is the achieved lower-bound bandwidth of the op.
template <typename Fn>
void RooflineRow(std::string* rows, const char* op, const char* dtype,
                 vsd::tensor::kernels::Backend backend, const char* shape,
                 int64_t elems, int64_t bytes, Fn&& fn) {
  namespace k = ::vsd::tensor::kernels;
  k::SetBackend(backend);
  const auto [iters, secs] = TimeKernelLoop(fn);
  k::ClearBackendOverride();
  const double elems_per_s =
      secs > 0.0 ? static_cast<double>(elems) * static_cast<double>(iters) / secs : 0.0;
  const double gb_per_s =
      secs > 0.0
          ? static_cast<double>(bytes) * static_cast<double>(iters) / secs / 1e9
          : 0.0;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"op\": \"%s\", \"dtype\": \"%s\", \"backend\": \"%s\","
                " \"shape\": \"%s\", \"iters\": %lld, \"wall_s\": %.6f,"
                " \"gelems_per_s\": %.4f, \"bytes_per_call\": %lld,"
                " \"gb_per_s\": %.4f}",
                op, dtype, k::BackendName(backend), shape,
                static_cast<long long>(iters), secs, elems_per_s / 1e9,
                static_cast<long long>(bytes), gb_per_s);
  if (!rows->empty()) *rows += ",\n";
  *rows += buf;
  std::fprintf(stderr, "[bench] roofline %-10s %-4s %-6s %.3f Gelem/s %.2f GB/s\n",
               op, dtype, k::BackendName(backend), elems_per_s / 1e9,
               gb_per_s);
}

/// Benchmarks every registry kernel under each compiled backend and
/// returns the JSON rows of the sidecar's "roofline" array. Shapes are
/// fixed mid-size workloads; bytes assume each operand is touched once.
std::string RooflineJson() {
  namespace k = ::vsd::tensor::kernels;
  Rng rng(11);
  constexpr int kM = 64, kK = 256, kN = 256;
  Tensor a = Tensor::Randn({kM, kK}, &rng);
  Tensor b = Tensor::Randn({kK, kN}, &rng);
  const Tensor bq = b.QuantizeInt8();
  std::vector<float> out(static_cast<size_t>(kM) * kN);
  constexpr int kRows = 256, kCols = 256;
  Tensor rows_in = Tensor::Randn({kRows, kCols}, &rng);
  Tensor bias = Tensor::Randn({kCols}, &rng);
  std::vector<float> rows_out(static_cast<size_t>(kRows) * kCols);
  constexpr int kMapN = 1 << 16;
  Tensor map_in = Tensor::Randn({kMapN}, &rng);
  std::vector<float> map_out(kMapN);
  constexpr int kDa = 128, kDb = 128;
  Tensor ca = Tensor::Randn({kRows, kDa}, &rng);
  Tensor cb = Tensor::Randn({kRows, kDb}, &rng);
  std::vector<float> cat_out(static_cast<size_t>(kRows) * (kDa + kDb));

  std::vector<k::Backend> backends = {k::Backend::kScalar};
  if (k::SimdCompiled()) backends.push_back(k::Backend::kSimd);

  std::string rows;
  for (k::Backend be : backends) {
    RooflineRow(&rows, "MatMul", "f32", be, "64x256x256",
                int64_t{kM} * kN,
                int64_t{4} * (kM * kK + kK * kN + kM * kN), [&] {
                  k::MatMulInto(a.data(), b.data(), out.data(), kM, kK, kN);
                  benchmark::DoNotOptimize(out.data());
                });
    RooflineRow(&rows, "MatMul", "i8", be, "64x256x256",
                int64_t{kM} * kN,
                // fp32 a + int8 b + per-row scale/zero + fp32 out.
                int64_t{4} * kM * kK + int64_t{kK} * kN + int64_t{8} * kK +
                    int64_t{4} * kM * kN,
                [&] {
                  k::MatMulI8Into(a.data(), bq.qdata(), bq.qscale(),
                                  bq.qzero(), out.data(), kM, kK, kN);
                  benchmark::DoNotOptimize(out.data());
                });
    RooflineRow(&rows, "AddRows", "f32", be, "256x256",
                int64_t{kRows} * kCols,
                int64_t{4} * (2 * kRows * kCols + kCols), [&] {
                  k::AddRowsInto(rows_in.data(), bias.data(), rows_out.data(),
                                 kRows, kCols);
                  benchmark::DoNotOptimize(rows_out.data());
                });
    RooflineRow(&rows, "Relu", "f32", be, "65536", int64_t{kMapN},
                int64_t{4} * 2 * kMapN, [&] {
                  k::ReluInto(map_in.data(), map_out.data(), kMapN);
                  benchmark::DoNotOptimize(map_out.data());
                });
    RooflineRow(&rows, "Gelu", "f32", be, "65536", int64_t{kMapN},
                int64_t{4} * 2 * kMapN, [&] {
                  k::GeluInto(map_in.data(), map_out.data(), kMapN);
                  benchmark::DoNotOptimize(map_out.data());
                });
    RooflineRow(&rows, "ConcatRows", "f32", be, "256x(128+128)",
                int64_t{kRows} * (kDa + kDb),
                int64_t{4} * 2 * kRows * (kDa + kDb), [&] {
                  k::ConcatRowsInto(ca.data(), cb.data(), cat_out.data(),
                                    kRows, kDa, kDb);
                  benchmark::DoNotOptimize(cat_out.data());
                });
  }
  return rows;
}

/// Times the occlusion perturbation loop in both executor modes, runs the
/// per-kernel roofline, and writes the `BENCH_micro.json` sidecar through
/// bench::WriteSidecarFile. Runs after the registered benchmarks so a
/// `--benchmark_filter` run still refreshes the sidecar.
void WriteGraphExecSidecar() {
  namespace graph = ::vsd::nn::graph;
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 9);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const vsd::data::VideoSample& sample = dataset.samples[0];
  const vsd::img::Segmentation segmentation =
      vsd::img::Slic(sample.expressive_frame, vsd::bench::kNumSlicSegments);
  const vsd::explain::BatchClassifierFn classifier =
      vsd::bench::ModelBatchClassifier(model, sample, /*use_chain=*/true);
  const vsd::explain::OcclusionExplainer occlusion;
  constexpr int kRepeats = 3;
  const bool previous = graph::GraphExecEnabled();
  auto time_mode = [&](bool compiled) {
    graph::SetGraphExecEnabled(compiled);
    // Warm-up: pays one-time graph compilation and arena growth.
    vsd::Rng warm_rng(77);
    occlusion.Explain(classifier, sample.expressive_frame, segmentation,
                      &warm_rng);
    vsd::bench::PerfTimer timer;
    for (int r = 0; r < kRepeats; ++r) {
      vsd::Rng rng(100 + r);
      benchmark::DoNotOptimize(occlusion.Explain(
          classifier, sample.expressive_frame, segmentation, &rng));
    }
    return timer.Seconds();
  };
  const double eager_s = time_mode(false);
  const double compiled_s = time_mode(true);
  graph::SetGraphExecEnabled(previous);
  const std::string roofline = RooflineJson();
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"micro\",\n"
                "  \"graph_exec_compare\": {\n"
                "    \"loop\": \"occlusion perturbations, chain classifier\",\n"
                "    \"segments\": %d,\n"
                "    \"forwards_per_pass\": %d,\n"
                "    \"repeats\": %d,\n"
                "    \"eager_wall_s\": %.6f,\n"
                "    \"compiled_wall_s\": %.6f,\n"
                "    \"compiled_speedup\": %.3f\n"
                "  },\n"
                "  \"simd_compiled\": %s,\n"
                "  \"roofline\": [\n",
                segmentation.num_segments, segmentation.num_segments + 1,
                kRepeats, eager_s, compiled_s,
                compiled_s > 0.0 ? eager_s / compiled_s : 0.0,
                vsd::tensor::kernels::SimdCompiled() ? "true" : "false");
  const std::string json = std::string(buf) + roofline + "\n  ]\n}\n";
  if (!vsd::bench::WriteSidecarFile("BENCH_micro.json", json)) return;
  std::fprintf(stderr,
               "[bench] graph exec: eager %.3fs compiled %.3fs (x%.2f) -> "
               "BENCH_micro.json\n",
               eager_s, compiled_s,
               compiled_s > 0.0 ? eager_s / compiled_s : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteGraphExecSidecar();
  return 0;
}
