// Microbenchmarks (google-benchmark) for the substrate hot paths: tensor
// matmul, conv im2col forward/backward, face rendering, SLIC segmentation,
// and one full chain inference. These bound the per-sample costs reported
// in Figure 6.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "face/renderer.h"
#include "img/slic.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/tensor.h"
#include "vlm/foundation_model.h"

namespace {

namespace ag = ::vsd::autograd;
using ::vsd::Rng;
using ::vsd::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForwardBackward(benchmark::State& state) {
  Rng rng(2);
  vsd::nn::Conv2d conv(1, 8, 5, 2, 2, &rng);
  Tensor images = Tensor::Randn({8, 48, 48, 1}, &rng);
  for (auto _ : state) {
    vsd::nn::Var x(images, /*requires_grad=*/true);
    vsd::nn::Var loss = ag::MeanAll(conv.Forward(x));
    ag::Backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0));
  }
}
BENCHMARK(BM_ConvForwardBackward);

void BM_RenderFace(benchmark::State& state) {
  Rng rng(3);
  vsd::face::FaceParams params;
  params.identity = vsd::face::Identity::Sample(&rng);
  params.au_intensity[2] = 0.8f;
  params.au_intensity[6] = 0.6f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::face::RenderFace(params, &rng));
  }
}
BENCHMARK(BM_RenderFace);

void BM_Slic64(benchmark::State& state) {
  Rng rng(4);
  vsd::face::FaceParams params;
  params.identity = vsd::face::Identity::Sample(&rng);
  vsd::img::Image face = vsd::face::RenderFace(params, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::img::Slic(face, 64));
  }
}
BENCHMARK(BM_Slic64);

void BM_ChainInference(benchmark::State& state) {
  // Full Describe -> Assess -> Highlight on uncached frames.
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(4, 5);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  vsd::cot::ChainConfig chain;
  vsd::cot::ChainPipeline pipeline(&model, chain);
  Rng rng(6);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.Run(dataset.samples[i++ % dataset.size()], &rng));
  }
}
BENCHMARK(BM_ChainInference);

void BM_VisionEmbedPair(benchmark::State& state) {
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 7);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const auto& sample = dataset.samples[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.vision().EmbedPair(
        sample.expressive_frame, sample.neutral_frame));
  }
}
BENCHMARK(BM_VisionEmbedPair);

}  // namespace

BENCHMARK_MAIN();
