// Microbenchmarks (google-benchmark) for the substrate hot paths: tensor
// matmul, conv im2col forward/backward, face rendering, SLIC segmentation,
// one full chain inference, and the explainer perturbation loop with the
// graph executor off/on. These bound the per-sample costs reported in
// Figure 6. Besides the google-benchmark report, the binary writes a
// `BENCH_micro.json` sidecar with the compiled-vs-eager wall times of the
// perturbation loop, so CI can track the graph executor's speedup without
// parsing benchmark output.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/rng.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "explain/occlusion.h"
#include "face/renderer.h"
#include "img/slic.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/tensor.h"
#include "vlm/foundation_model.h"

namespace {

namespace ag = ::vsd::autograd;
using ::vsd::Rng;
using ::vsd::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForwardBackward(benchmark::State& state) {
  Rng rng(2);
  vsd::nn::Conv2d conv(1, 8, 5, 2, 2, &rng);
  Tensor images = Tensor::Randn({8, 48, 48, 1}, &rng);
  for (auto _ : state) {
    vsd::nn::Var x(images, /*requires_grad=*/true);
    vsd::nn::Var loss = ag::MeanAll(conv.Forward(x));
    ag::Backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0));
  }
}
BENCHMARK(BM_ConvForwardBackward);

void BM_RenderFace(benchmark::State& state) {
  Rng rng(3);
  vsd::face::FaceParams params;
  params.identity = vsd::face::Identity::Sample(&rng);
  params.au_intensity[2] = 0.8f;
  params.au_intensity[6] = 0.6f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::face::RenderFace(params, &rng));
  }
}
BENCHMARK(BM_RenderFace);

void BM_Slic64(benchmark::State& state) {
  Rng rng(4);
  vsd::face::FaceParams params;
  params.identity = vsd::face::Identity::Sample(&rng);
  vsd::img::Image face = vsd::face::RenderFace(params, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vsd::img::Slic(face, 64));
  }
}
BENCHMARK(BM_Slic64);

void BM_ChainInference(benchmark::State& state) {
  // Full Describe -> Assess -> Highlight on uncached frames.
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(4, 5);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  vsd::cot::ChainConfig chain;
  vsd::cot::ChainPipeline pipeline(&model, chain);
  Rng rng(6);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.Run(dataset.samples[i++ % dataset.size()], &rng));
  }
}
BENCHMARK(BM_ChainInference);

void BM_VisionEmbedPair(benchmark::State& state) {
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 7);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const auto& sample = dataset.samples[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.vision().EmbedPair(
        sample.expressive_frame, sample.neutral_frame));
  }
}
BENCHMARK(BM_VisionEmbedPair);

// The explainer perturbation loop is the graph executor's flagship
// consumer: one OcclusionExplainer pass drives num_segments + 1 model
// forwards through the batched chain classifier. Arg(0) runs eager,
// Arg(1) compiled; both produce bit-identical attributions (pinned by
// tests/graph_exec_test.cc), so the delta is pure executor overhead.
void BM_ExplainerPerturbations(benchmark::State& state) {
  namespace graph = ::vsd::nn::graph;
  const bool previous = graph::GraphExecEnabled();
  graph::SetGraphExecEnabled(state.range(0) == 1);
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 9);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const vsd::data::VideoSample& sample = dataset.samples[0];
  const vsd::img::Segmentation segmentation =
      vsd::img::Slic(sample.expressive_frame, vsd::bench::kNumSlicSegments);
  const vsd::explain::BatchClassifierFn classifier =
      vsd::bench::ModelBatchClassifier(model, sample, /*use_chain=*/true);
  const vsd::explain::OcclusionExplainer occlusion;
  Rng rng(77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(occlusion.Explain(
        classifier, sample.expressive_frame, segmentation, &rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          (segmentation.num_segments + 1));
  graph::SetGraphExecEnabled(previous);
}
BENCHMARK(BM_ExplainerPerturbations)->Arg(0)->Arg(1);

/// Times the occlusion perturbation loop in both executor modes and writes
/// the `BENCH_micro.json` sidecar. Runs after the registered benchmarks so
/// a `--benchmark_filter` run still refreshes the sidecar.
void WriteGraphExecSidecar() {
  namespace graph = ::vsd::nn::graph;
  vsd::data::Dataset dataset = vsd::data::MakeUvsdSimSmall(2, 9);
  vsd::vlm::FoundationModelConfig config;
  vsd::vlm::FoundationModel model(config);
  const vsd::data::VideoSample& sample = dataset.samples[0];
  const vsd::img::Segmentation segmentation =
      vsd::img::Slic(sample.expressive_frame, vsd::bench::kNumSlicSegments);
  const vsd::explain::BatchClassifierFn classifier =
      vsd::bench::ModelBatchClassifier(model, sample, /*use_chain=*/true);
  const vsd::explain::OcclusionExplainer occlusion;
  constexpr int kRepeats = 3;
  const bool previous = graph::GraphExecEnabled();
  auto time_mode = [&](bool compiled) {
    graph::SetGraphExecEnabled(compiled);
    // Warm-up: pays one-time graph compilation and arena growth.
    vsd::Rng warm_rng(77);
    occlusion.Explain(classifier, sample.expressive_frame, segmentation,
                      &warm_rng);
    vsd::bench::PerfTimer timer;
    for (int r = 0; r < kRepeats; ++r) {
      vsd::Rng rng(100 + r);
      benchmark::DoNotOptimize(occlusion.Explain(
          classifier, sample.expressive_frame, segmentation, &rng));
    }
    return timer.Seconds();
  };
  const double eager_s = time_mode(false);
  const double compiled_s = time_mode(true);
  graph::SetGraphExecEnabled(previous);
  std::FILE* file = std::fopen("BENCH_micro.json", "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[bench] cannot write BENCH_micro.json\n");
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"micro\",\n"
               "  \"graph_exec_compare\": {\n"
               "    \"loop\": \"occlusion perturbations, chain classifier\",\n"
               "    \"segments\": %d,\n"
               "    \"forwards_per_pass\": %d,\n"
               "    \"repeats\": %d,\n"
               "    \"eager_wall_s\": %.6f,\n"
               "    \"compiled_wall_s\": %.6f,\n"
               "    \"compiled_speedup\": %.3f\n"
               "  }\n"
               "}\n",
               segmentation.num_segments, segmentation.num_segments + 1,
               kRepeats, eager_s, compiled_s,
               compiled_s > 0.0 ? eager_s / compiled_s : 0.0);
  std::fclose(file);
  std::fprintf(stderr,
               "[bench] graph exec: eager %.3fs compiled %.3fs (x%.2f) -> "
               "BENCH_micro.json\n",
               eager_s, compiled_s,
               compiled_s > 0.0 ? eager_s / compiled_s : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteGraphExecSidecar();
  return 0;
}
