// Robustness bench: the serving layer under deterministic fault injection.
// Sweeps fault rates {0, 0.05, 0.10}, serves half of UVSD-sim through a
// StressServer with a fitted Gao-SVM fallback, and reports how requests
// resolved at each rate (full / fallback / prior / invalid / deadline) plus
// end-to-end accuracy over the answered requests.
//
// Deterministic: the CSV is byte-identical at every --threads value and
// worker count. Fault decisions key on request ids, sample ids, and frame
// content — never on batch composition — so per-request outcomes do not
// depend on timing. Timing-dependent queue statistics (batches cut, mean
// fill) go only to the BENCH_robustness.json sidecar.
//
// At rate 0 the bench self-checks the serving bit-identity contract against
// a direct ChainPipeline::PredictBatch and exits 1 on any mismatch.
//
// Usage: bench_robustness [--quick] [--seed S] [--threads N] [--batch N]
//                         [--assert-degraded-below F]
//   --assert-degraded-below F   exit 1 if, at any nonzero fault rate, the
//                               fraction of degraded answers reaches F.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "baselines/gao_svm.h"
#include "bench/harness.h"
#include "common/faults.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "cot/pipeline.h"
#include "serve/server.h"

namespace vsd::bench {
namespace {

std::string Fmt(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return std::string(buf);
}

std::string Int(int64_t value) { return std::to_string(value); }

/// How one sweep point resolved; every field is deterministic.
struct SweepOutcome {
  int64_t full = 0;
  int64_t fallback = 0;
  int64_t prior = 0;
  int64_t invalid = 0;
  int64_t deadline = 0;
  int64_t other_error = 0;
  int64_t correct = 0;   ///< Answered requests matching stress_label.
  int64_t answered = 0;  ///< Requests that resolved with a probability.
};

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  double degraded_bound = -1.0;  // < 0: no assertion.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-degraded-below") == 0 && i + 1 < argc) {
      degraded_bound = std::atof(argv[++i]);
    }
  }
  PerfTimer timer;
  std::printf("=== Robustness: serving under injected faults (%s) ===\n",
              options.quick ? "quick" : "full");

  BenchData data = MakeBenchData(options);
  const vlm::FoundationModel& base = PretrainedBase(options);
  const cot::ChainPipeline pipeline(&base, OursChainConfig(options));

  // First half fits the degradation fallback; second half is served.
  const int total = data.uvsd.size();
  const int split = total / 2;
  data::Dataset train{"uvsd-train", {data.uvsd.samples.begin(),
                                     data.uvsd.samples.begin() + split}};
  std::vector<const data::VideoSample*> served;
  for (int i = split; i < total; ++i) served.push_back(&data.uvsd.samples[i]);

  baselines::GaoSvm fallback;
  Rng fit_rng(options.seed + 17);
  fallback.Fit(train, &fit_rng);

  // Faults-off reference: the bit-identity baseline for the rate-0 point.
  const std::vector<double> reference = pipeline.PredictBatch(served);

  serve::ServeConfig config;
  config.max_queue = static_cast<int>(served.size());
  config.max_batch = 8;
  config.max_batch_delay_micros = 500;
  config.num_workers = 2;
  config.retry.max_retries = 2;
  config.retry.initial_backoff_micros = 100;
  config.retry.max_backoff_micros = 1000;
  // Breaker off here: this bench runs threaded on the real clock, where
  // open/half-open transitions depend on wall time. bench_serve_load runs
  // the breaker enabled on a virtual clock, deterministically.
  config.breaker_threshold = 0;
  config.default_deadline_micros = 60'000'000;  // Generous: never expires.

  Table table({"Rate", "Requests", "Full", "Fallback", "Prior", "Invalid",
               "Deadline", "Rejected", "Retries", "Accuracy"});
  ServePerf perf;
  auto& injector = FaultInjector::Global();

  const double rates[] = {0.0, 0.05, 0.10};
  for (int point = 0; point < 3; ++point) {
    const double rate = rates[point];
    if (rate > 0.0) {
      FaultConfig faults;
      faults.enabled = true;
      faults.seed = options.seed + 1000003ULL * static_cast<uint64_t>(point);
      faults.transient_rate = rate;
      faults.corrupt_rate = rate / 2;
      faults.nan_rate = rate / 2;
      faults.stall_rate = rate / 2;
      faults.stall_micros = 200;
      injector.Configure(faults);
    } else {
      injector.Disable();
    }

    serve::StressServer server(&pipeline, config, &fallback);
    std::vector<std::future<vsd::Result<serve::ServeResult>>> futures;
    futures.reserve(served.size());
    for (const data::VideoSample* sample : served) {
      futures.push_back(server.Submit(*sample));
    }

    SweepOutcome outcome;
    for (size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].wait_for(std::chrono::seconds(300)) !=
          std::future_status::ready) {
        std::fprintf(stderr, "FAIL: request %zu never resolved (hung)\n", i);
        return 1;
      }
      const vsd::Result<serve::ServeResult> result = futures[i].get();
      if (result.ok()) {
        const serve::ServeResult& answer = result.value();
        switch (answer.degradation) {
          case serve::DegradationLevel::kFull: ++outcome.full; break;
          case serve::DegradationLevel::kFallback: ++outcome.fallback; break;
          case serve::DegradationLevel::kPrior: ++outcome.prior; break;
        }
        ++outcome.answered;
        if (answer.label == served[i]->stress_label) ++outcome.correct;
        if (rate == 0.0 && answer.prob_stressed != reference[i]) {
          std::fprintf(stderr,
                       "FAIL: faults-off serving diverged from direct "
                       "PredictBatch at request %zu (%.17g vs %.17g)\n",
                       i, answer.prob_stressed, reference[i]);
          return 1;
        }
      } else {
        switch (result.status().code()) {
          case StatusCode::kInvalidArgument: ++outcome.invalid; break;
          case StatusCode::kDeadlineExceeded: ++outcome.deadline; break;
          default: ++outcome.other_error; break;
        }
      }
    }
    server.Shutdown();
    const serve::ServeStatsSnapshot stats = server.Stats();

    if (rate == 0.0 &&
        (outcome.full != static_cast<int64_t>(served.size()) ||
         outcome.other_error != 0)) {
      std::fprintf(stderr, "FAIL: faults-off run did not serve every request "
                           "at full fidelity\n");
      return 1;
    }
    if (outcome.other_error != 0) {
      std::fprintf(stderr, "FAIL: %lld requests resolved with unexpected "
                           "errors\n",
                   static_cast<long long>(outcome.other_error));
      return 1;
    }
    const double degraded_fraction =
        static_cast<double>(outcome.fallback + outcome.prior) /
        static_cast<double>(served.size());
    if (rate > 0.0 && degraded_bound >= 0.0 &&
        degraded_fraction >= degraded_bound) {
      std::fprintf(stderr,
                   "FAIL: degraded fraction %.4f >= bound %.4f at rate "
                   "%.2f\n",
                   degraded_fraction, degraded_bound, rate);
      return 1;
    }

    const double accuracy =
        outcome.answered > 0
            ? static_cast<double>(outcome.correct) / outcome.answered
            : 0.0;
    table.AddRow({Fmt("%.2f", rate), Int(stats.submitted), Int(outcome.full),
                  Int(outcome.fallback), Int(outcome.prior),
                  Int(outcome.invalid), Int(outcome.deadline),
                  Int(stats.rejected_queue_full), Int(stats.retries),
                  Fmt("%.4f", accuracy)});
    std::printf("  done: rate %.2f (%lld full, %lld degraded, %lld retries)\n",
                rate, static_cast<long long>(outcome.full),
                static_cast<long long>(outcome.fallback + outcome.prior),
                static_cast<long long>(stats.retries));

    perf.batches_cut += stats.batches_cut;
    perf.retries += stats.retries;
    perf.degraded += stats.Degraded();
    perf.faults_injected += injector.TotalCount();
    perf.mean_batch_fill += stats.MeanBatchFill() / 3.0;
  }
  injector.Disable();

  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("robustness.csv");
  WriteBenchPerfJson("robustness", timer.Seconds(),
                     3 * static_cast<int64_t>(served.size()), options, perf);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
