// Open-loop load bench for the replica-pool serving stack: Poisson arrivals
// from seeded per-tenant Rng streams (one deliberately over-quota tenant,
// mixed interactive/batch QoS) drive a Router + ReplicaPool in *virtual
// time* — a ManualClock advanced by a discrete-event loop over arrivals,
// batch cuts, retry backoffs, service completions, and health heartbeats,
// with a per-batch service-time model standing in for wall-clock compute.
// The sweep covers replica count {1, 2, 3} x replica-fault rate {0, 0.08}
// (kReplicaDown / kReplicaSlow probed per heartbeat epoch) with the
// circuit breaker ENABLED: on the virtual clock its walk is a pure
// function of the event sequence, so — unlike the threaded
// bench_robustness — it costs nothing in determinism here.
//
// Deterministic: every reported number (latency percentiles included) is a
// pure function of --seed and the sweep config, so serve_load.csv and
// BENCH_serve_load.json are byte-identical at every --threads value. Real
// pipeline inference still runs (internally parallel; bit-deterministic by
// entry independence), and at the faults-off single-replica point the bench
// self-checks served probabilities bit-identical to a direct
// ChainPipeline::PredictBatch, exiting 1 on any mismatch.
//
// Zero-loss contract: every generated request must resolve — full,
// degraded, or shed with a Status — before the virtual timeline drains;
// a hung or dropped request fails the bench.
//
// Usage: bench_serve_load [--quick] [--seed S] [--threads N]
//                         [--assert-p99-under MICROS]
//   --assert-p99-under M   exit 1 if any faults-off sweep point's p99
//                          latency reaches M virtual microseconds.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "baselines/gao_svm.h"
#include "bench/harness.h"
#include "common/faults.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "cot/pipeline.h"
#include "serve/replica_pool.h"
#include "serve/router.h"

namespace vsd::bench {
namespace {

std::string Fmt(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return std::string(buf);
}

std::string Int(int64_t value) { return std::to_string(value); }

constexpr int kTenants = 4;
constexpr int kAbusiveTenant = 3;  ///< Offers ~4x its quota; must be shed.
constexpr int kSessionsPerTenant = 8;
constexpr int64_t kHeartbeatMicros = 50000;

/// One generated request, fixed before the run starts.
struct Arrival {
  int64_t at_micros = 0;
  uint64_t tenant = 0;
  uint64_t session = 0;
  serve::QosClass qos = serve::QosClass::kInteractive;
  int sample = 0;  ///< Index into the served slice.
};

/// Open-loop Poisson schedule: each tenant draws exponential inter-arrival
/// gaps from its own forked stream, so the merged timeline is a pure
/// function of (seed, rates) and tenants stay independent across sweep
/// points.
std::vector<Arrival> MakeArrivals(uint64_t seed, int per_tenant,
                                  int num_samples) {
  // Requests/sec per tenant; tenant 3 bursts far past its admission quota.
  const double rates[kTenants] = {40.0, 40.0, 40.0, 200.0};
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<size_t>(per_tenant * kTenants));
  for (int t = 0; t < kTenants; ++t) {
    Rng rng(seed + 101ULL * static_cast<uint64_t>(t) + 7);
    double at = 0.0;
    for (int k = 0; k < per_tenant; ++k) {
      at += -std::log(1.0 - rng.Uniform()) / rates[t] * 1e6;
      Arrival a;
      a.at_micros = static_cast<int64_t>(at);
      a.tenant = static_cast<uint64_t>(t);
      a.session = static_cast<uint64_t>(t * 1000 +
                                        rng.UniformInt(kSessionsPerTenant));
      a.qos = rng.Bernoulli(0.3) ? serve::QosClass::kBatch
                                 : serve::QosClass::kInteractive;
      a.sample = rng.UniformInt(num_samples);
      arrivals.push_back(a);
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.at_micros != b.at_micros) {
                       return a.at_micros < b.at_micros;
                     }
                     return a.tenant < b.tenant;
                   });
  return arrivals;
}

/// Everything one sweep point reports; all fields deterministic.
struct PointResult {
  int replicas = 0;
  double fault_rate = 0.0;
  int64_t requests = 0;
  int64_t full = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t deadline = 0;
  int64_t failovers = 0;
  int64_t quarantines = 0;
  int64_t readmissions = 0;
  int64_t retries = 0;
  int64_t breaker_short_circuits = 0;
  int64_t p50_micros = 0;
  int64_t p99_micros = 0;
  double throughput_rps = 0.0;
  double accuracy = 0.0;
};

int64_t Percentile(std::vector<int64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

serve::ReplicaPool::Config PoolConfig(const serve::ManualClock* sim_clock) {
  serve::ReplicaPool::Config config;
  config.replica.clock = sim_clock;
  config.replica.num_workers = 0;  // Stepped: the event loop drives Pump().
  config.replica.max_queue = 64;
  config.replica.max_batch = 8;
  config.replica.max_batch_delay_micros = 2000;
  // ~180 samples/s per replica: a full batch of 8 occupies the replica for
  // 20ms + 8 * 3ms = 44ms of virtual time.
  config.replica.service_base_micros = 20000;
  config.replica.service_per_sample_micros = 3000;
  config.replica.retry.max_retries = 2;
  config.replica.retry.initial_backoff_micros = 1000;
  config.replica.retry.max_backoff_micros = 8000;
  // Breaker on: deterministic on the virtual clock.
  config.replica.breaker_threshold = 3;
  config.replica.breaker_reset_micros = 200000;
  return config;
}

serve::RouterConfig MakeRouterConfig() {
  serve::RouterConfig config;
  config.admission.enabled = true;
  config.admission.default_quota.tokens_per_sec = 60.0;
  config.admission.default_quota.burst = 20.0;
  config.admission.batch_headroom = 0.25;
  return config;
}

struct RunContext {
  const cot::ChainPipeline* pipeline = nullptr;
  const baselines::GaoSvm* fallback = nullptr;
  const std::vector<const data::VideoSample*>* served = nullptr;
  const std::vector<double>* reference = nullptr;  ///< Direct PredictBatch.
};

/// Runs one sweep point as a virtual-time discrete-event simulation.
/// Returns false on a contract violation (lost request, identity mismatch).
bool RunPoint(const RunContext& ctx, const std::vector<Arrival>& arrivals,
              int replicas, double fault_rate, uint64_t fault_seed,
              PointResult* out) {
  auto& injector = FaultInjector::Global();
  if (fault_rate > 0.0) {
    FaultConfig faults;
    faults.enabled = true;
    faults.seed = fault_seed;
    faults.replica_down_rate = fault_rate;
    faults.replica_slow_rate = fault_rate;
    faults.slow_factor = 3;
    // A light request-level transient rate keeps retry + breaker paths in
    // play alongside the replica-level faults.
    faults.transient_rate = fault_rate / 4;
    injector.Configure(faults);
  } else {
    injector.Disable();
  }

  serve::ManualClock sim_clock;
  const std::vector<const cot::ChainPipeline*> pipelines(
      static_cast<size_t>(replicas), ctx.pipeline);
  serve::ReplicaPool pool(pipelines, PoolConfig(&sim_clock), ctx.fallback);
  serve::Router router(&pool, MakeRouterConfig());

  std::vector<std::future<vsd::Result<serve::ServeResult>>> futures;
  futures.reserve(arrivals.size());
  size_t next_arrival = 0;
  int64_t next_heartbeat = kHeartbeatMicros;
  // Generous bound: every event strictly advances virtual time or consumes
  // an arrival, so a spin here means a scheduling bug, not load.
  const int64_t max_steps = static_cast<int64_t>(arrivals.size()) * 64 + 4096;
  for (int64_t step = 0; step < max_steps; ++step) {
    const int64_t now = sim_clock.NowMicros();
    if (now >= next_heartbeat) {
      pool.Heartbeat();
      next_heartbeat += kHeartbeatMicros;
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].at_micros <= now) {
      const Arrival& a = arrivals[next_arrival++];
      serve::RequestOptions options;
      options.session = a.session;
      options.tenant = a.tenant;
      options.qos = a.qos;
      futures.push_back(router.Submit(*(*ctx.served)[
          static_cast<size_t>(a.sample)], options));
    }
    pool.Pump();

    int64_t next = pool.NextEventMicros();
    if (next_arrival < arrivals.size()) {
      next = std::min(next, arrivals[next_arrival].at_micros);
    }
    if (next == serve::Replica::kNoEvent) break;  // Timeline drained.
    next = std::min(next, next_heartbeat);
    sim_clock.Set(std::max(now + 1, next));
  }
  const int64_t makespan_micros = sim_clock.NowMicros();
  pool.Shutdown();

  out->replicas = replicas;
  out->fault_rate = fault_rate;
  out->requests = static_cast<int64_t>(arrivals.size());
  std::vector<int64_t> latencies;
  int64_t correct = 0;
  int64_t answered = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (futures[i].wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      std::fprintf(stderr, "FAIL: request %zu never resolved (lost)\n", i);
      return false;
    }
    const vsd::Result<serve::ServeResult> result = futures[i].get();
    const Arrival& a = arrivals[i];
    if (result.ok()) {
      const serve::ServeResult& answer = result.value();
      if (answer.degradation == serve::DegradationLevel::kFull) {
        ++out->full;
      } else {
        ++out->degraded;
      }
      ++answered;
      latencies.push_back(answer.latency_micros);
      out->failovers += answer.failovers;
      const data::VideoSample* sample =
          (*ctx.served)[static_cast<size_t>(a.sample)];
      if ((answer.prob_stressed >= 0.5 ? 1 : 0) == sample->stress_label) {
        ++correct;
      }
      if (fault_rate == 0.0 && replicas == 1 &&
          answer.degradation == serve::DegradationLevel::kFull &&
          answer.prob_stressed !=
              (*ctx.reference)[static_cast<size_t>(a.sample)]) {
        std::fprintf(stderr,
                     "FAIL: faults-off serving diverged from direct "
                     "PredictBatch at request %zu (%.17g vs %.17g)\n",
                     i, answer.prob_stressed,
                     (*ctx.reference)[static_cast<size_t>(a.sample)]);
        return false;
      }
    } else if (result.status().code() == StatusCode::kUnavailable) {
      ++out->shed;  // Admission or backpressure: answered with a status.
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      ++out->deadline;
    } else {
      std::fprintf(stderr, "FAIL: request %zu resolved with unexpected "
                           "error: %s\n",
                   i, result.status().ToString().c_str());
      return false;
    }
  }
  if (out->full + out->degraded + out->shed + out->deadline !=
      out->requests) {
    std::fprintf(stderr, "FAIL: outcome counts do not partition requests\n");
    return false;
  }
  const serve::ServeStatsSnapshot stats = pool.AggregateStats();
  const serve::PoolHealthSnapshot health = pool.HealthSnapshot();
  out->quarantines = health.quarantines;
  out->readmissions = health.readmissions;
  out->retries = stats.retries;
  out->breaker_short_circuits = stats.breaker_short_circuits;
  out->p50_micros = Percentile(latencies, 0.50);
  out->p99_micros = Percentile(latencies, 0.99);
  out->throughput_rps =
      makespan_micros > 0
          ? static_cast<double>(answered) *
                1e6 / static_cast<double>(makespan_micros)
          : 0.0;
  out->accuracy = answered > 0
                      ? static_cast<double>(correct) /
                            static_cast<double>(answered)
                      : 0.0;
  return true;
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  int64_t p99_bound = -1;  // < 0: no assertion.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-p99-under") == 0 && i + 1 < argc) {
      p99_bound = std::atoll(argv[++i]);
    }
  }
  PerfTimer timer;
  std::printf("=== Serve load: replica pool under open-loop traffic (%s) ===\n",
              options.quick ? "quick" : "full");

  BenchData data = MakeBenchData(options);
  const vlm::FoundationModel& base = PretrainedBase(options);
  const cot::ChainPipeline pipeline(&base, OursChainConfig(options));

  // First half fits the degradation fallback; arrivals draw from the rest.
  const int total = data.uvsd.size();
  const int split = total / 2;
  data::Dataset train{"uvsd-train", {data.uvsd.samples.begin(),
                                     data.uvsd.samples.begin() + split}};
  std::vector<const data::VideoSample*> served;
  for (int i = split; i < total; ++i) served.push_back(&data.uvsd.samples[i]);

  baselines::GaoSvm fallback;
  Rng fit_rng(options.seed + 17);
  fallback.Fit(train, &fit_rng);

  const std::vector<double> reference = pipeline.PredictBatch(served);

  const int per_tenant = options.quick ? 60 : 180;
  const std::vector<Arrival> arrivals = MakeArrivals(
      options.seed, per_tenant, static_cast<int>(served.size()));

  RunContext ctx;
  ctx.pipeline = &pipeline;
  ctx.fallback = &fallback;
  ctx.served = &served;
  ctx.reference = &reference;

  Table table({"Replicas", "FaultRate", "Requests", "Full", "Degraded",
               "Shed", "Failovers", "Quarantines", "P50Micros", "P99Micros",
               "ThroughputRps", "Accuracy"});
  std::vector<PointResult> points;
  const int replica_counts[] = {1, 2, 3};
  const double fault_rates[] = {0.0, 0.08};
  for (int replicas : replica_counts) {
    for (double rate : fault_rates) {
      PointResult point;
      const uint64_t fault_seed =
          options.seed + 1000003ULL * static_cast<uint64_t>(replicas);
      if (!RunPoint(ctx, arrivals, replicas, rate, fault_seed, &point)) {
        return 1;
      }
      if (rate == 0.0 && p99_bound >= 0 && point.p99_micros >= p99_bound) {
        std::fprintf(stderr,
                     "FAIL: faults-off p99 %lld us >= bound %lld us at "
                     "%d replicas\n",
                     static_cast<long long>(point.p99_micros),
                     static_cast<long long>(p99_bound), replicas);
        return 1;
      }
      points.push_back(point);
      table.AddRow({Int(point.replicas), Fmt("%.2f", point.fault_rate),
                    Int(point.requests), Int(point.full),
                    Int(point.degraded), Int(point.shed),
                    Int(point.failovers), Int(point.quarantines),
                    Int(point.p50_micros), Int(point.p99_micros),
                    Fmt("%.2f", point.throughput_rps),
                    Fmt("%.4f", point.accuracy)});
      std::printf("  done: %d replica(s) rate %.2f (%lld full, %lld "
                  "degraded, %lld shed, %lld failovers, p99 %lld us)\n",
                  point.replicas, point.fault_rate,
                  static_cast<long long>(point.full),
                  static_cast<long long>(point.degraded),
                  static_cast<long long>(point.shed),
                  static_cast<long long>(point.failovers),
                  static_cast<long long>(point.p99_micros));
    }
  }
  FaultInjector::Global().Disable();

  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("serve_load.csv");

  // Custom sidecar: ONLY virtual-time (deterministic) fields, so the JSON
  // is byte-identical across thread counts — wall time and thread config
  // deliberately stay out (stdout carries them for humans).
  std::string json = "{\n  \"bench\": \"serve_load\",\n  \"seed\": " +
                     std::to_string(options.seed) + ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    json += "    {\"replicas\": " + Int(p.replicas) +
            ", \"fault_rate\": " + Fmt("%.2f", p.fault_rate) +
            ", \"requests\": " + Int(p.requests) +
            ", \"full\": " + Int(p.full) +
            ", \"degraded\": " + Int(p.degraded) +
            ", \"shed\": " + Int(p.shed) +
            ", \"deadline\": " + Int(p.deadline) +
            ", \"failovers\": " + Int(p.failovers) +
            ", \"quarantines\": " + Int(p.quarantines) +
            ", \"readmissions\": " + Int(p.readmissions) +
            ", \"retries\": " + Int(p.retries) +
            ", \"breaker_short_circuits\": " + Int(p.breaker_short_circuits) +
            ", \"p50_micros\": " + Int(p.p50_micros) +
            ", \"p99_micros\": " + Int(p.p99_micros) +
            ", \"throughput_rps\": " + Fmt("%.4f", p.throughput_rps) +
            ", \"accuracy\": " + Fmt("%.4f", p.accuracy) + "}";
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  if (!WriteSidecarFile("BENCH_serve_load.json", json)) return 1;
  std::printf("wall: %.2fs (excluded from sidecars by design)\n",
              timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
