// Perf sidecar for the linter itself: times a full whole-program lint of
// the repo (per-file rules plus the include-graph and dataflow passes) and
// writes BENCH_lint.json, so CI tracks lint cost as the tree and the
// analyses grow. The sidecar carries an "analyses" block timing each pass
// separately (per-file rules, include graph, lock graph, annotations,
// ref-invalidation) so a regression points at the analysis that caused it.
// Exits 1 if the tree is not lint-clean — the timing of a dirty run is not
// comparable.
//
// Usage: bench_lint [--quick] [--threads N]
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "common/batching.h"
#include "common/thread_pool.h"
#include "lint/annotations.h"
#include "lint/dataflow.h"
#include "lint/include_graph.h"
#include "lint/lexer.h"
#include "lint/lint.h"

int main(int argc, char** argv) {
  const vsd::bench::BenchOptions options =
      vsd::bench::ParseBenchArgs(argc, argv);
  const std::vector<std::string> subdirs = {"src", "bench", "tools", "tests",
                                            "examples"};
  const std::vector<std::string> files =
      vsd::lint::ListSourceFiles(VSD_SOURCE_DIR, subdirs);

  // Headline number: the full tree lint, exactly what CI runs.
  vsd::bench::PerfTimer total_timer;
  const std::vector<vsd::lint::Finding> findings =
      vsd::lint::LintTree(VSD_SOURCE_DIR, subdirs);
  const double wall = total_timer.Seconds();

  for (const vsd::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", f.ToString().c_str());
  }

  // Per-pass breakdown. These re-run the analyses through their public
  // entry points on one thread each, so the sum can exceed `wall` (which
  // shares lexing across rules and parallelizes per-file work); the value
  // is the relative cost per analysis, not a decomposition of `wall`.
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const std::string& rel : files) {
    std::string text;
    if (vsd::lint::ReadFileToString(VSD_SOURCE_DIR, rel, &text)) {
      contents.emplace_back(rel, std::move(text));
    }
  }

  vsd::bench::PerfTimer per_file_timer;
  for (const auto& [rel, text] : contents) {
    (void)vsd::lint::LintContent(rel, text);
  }
  const double per_file_s = per_file_timer.Seconds();

  vsd::bench::PerfTimer include_timer;
  const vsd::lint::IncludeGraph include_graph =
      vsd::lint::BuildIncludeGraphFromTree(VSD_SOURCE_DIR, subdirs);
  (void)vsd::lint::CheckCycles(include_graph);
  const double include_s = include_timer.Seconds();

  vsd::bench::PerfTimer lock_timer;
  const vsd::lint::LockGraph lock_graph =
      vsd::lint::BuildLockGraphFromTree(VSD_SOURCE_DIR, subdirs);
  (void)vsd::lint::CheckLockOrder(lock_graph);
  const double lock_s = lock_timer.Seconds();

  vsd::lint::DataflowProgram program;
  for (const auto& [rel, text] : contents) {
    program.AddFile(rel, vsd::lint::Lex(text));
  }

  vsd::bench::PerfTimer annotations_timer;
  const vsd::lint::AnnotationIndex index =
      vsd::lint::BuildAnnotationIndex(program);
  (void)vsd::lint::CheckGuardedBy(program, index);
  (void)vsd::lint::CheckUnannotatedMutex(index);
  const double annotations_s = annotations_timer.Seconds();

  vsd::bench::PerfTimer ref_timer;
  (void)vsd::lint::CheckRefInvalidation(program);
  const double ref_s = ref_timer.Seconds();

  const double rate =
      wall > 0.0 ? static_cast<double>(files.size()) / wall : 0.0;
  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"lint\",\n"
                "  \"quick\": %s,\n"
                "  \"folds\": %d,\n"
                "  \"seed\": %llu,\n"
                "  \"threads\": %d,\n"
                "  \"batch_size\": %d,\n"
                "  \"samples\": %lld,\n"
                "  \"wall_time_s\": %.6f,\n"
                "  \"samples_per_sec\": %.3f,\n"
                "  \"analyses\": {\n"
                "    \"per_file_rules_s\": %.6f,\n"
                "    \"include_graph_s\": %.6f,\n"
                "    \"lock_graph_s\": %.6f,\n"
                "    \"annotations_s\": %.6f,\n"
                "    \"ref_invalidation_s\": %.6f\n"
                "  }\n"
                "}\n",
                options.quick ? "true" : "false", options.folds,
                static_cast<unsigned long long>(options.seed),
                vsd::ThreadPool::GlobalThreads(), vsd::DefaultBatchSize(),
                static_cast<long long>(files.size()), wall, rate, per_file_s,
                include_s, lock_s, annotations_s, ref_s);
  vsd::bench::WriteSidecarFile("BENCH_lint.json", json);
  std::printf(
      "bench_lint: %zu files, %zu finding(s), %.3fs total "
      "(per-file %.3fs, include %.3fs, lock %.3fs, annotations %.3fs, "
      "ref-invalidation %.3fs)\n",
      files.size(), findings.size(), wall, per_file_s, include_s, lock_s,
      annotations_s, ref_s);
  return findings.empty() ? 0 : 1;
}
