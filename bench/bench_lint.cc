// Perf sidecar for the linter itself: times a full whole-program lint of
// the repo (per-file rules plus the include-graph and dataflow passes) and
// writes BENCH_lint.json, so CI tracks lint cost as the tree and the
// analyses grow. Exits 1 if the tree is not lint-clean — the timing of a
// dirty run is not comparable.
//
// Usage: bench_lint [--quick] [--threads N]
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "lint/lint.h"

int main(int argc, char** argv) {
  const vsd::bench::BenchOptions options =
      vsd::bench::ParseBenchArgs(argc, argv);
  const std::vector<std::string> subdirs = {"src", "bench", "tools", "tests",
                                            "examples"};
  const std::vector<std::string> files =
      vsd::lint::ListSourceFiles(VSD_SOURCE_DIR, subdirs);

  vsd::bench::PerfTimer timer;
  const std::vector<vsd::lint::Finding> findings =
      vsd::lint::LintTree(VSD_SOURCE_DIR, subdirs);
  const double wall = timer.Seconds();

  for (const vsd::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", f.ToString().c_str());
  }
  vsd::bench::WriteBenchPerfJson("lint", wall,
                                 static_cast<int64_t>(files.size()), options);
  std::printf("bench_lint: %zu files, %zu finding(s), %.3fs\n", files.size(),
              findings.size(), wall);
  return findings.empty() ? 0 : 1;
}
