// Reproduces Table I: stress-detection performance of off-the-shelf large
// foundation models, supervised baselines, and Ours on UVSD-sim and
// RSL-sim (Acc / Prec / Rec / F1, macro-averaged, k-fold CV).
//
// Usage: bench_table1 [--quick] [--folds N] [--seed S] [--threads N]
//                     [--batch N]
#include <cstdio>
#include <memory>

#include "baselines/ding_fusion.h"
#include "baselines/fdassnn.h"
#include "baselines/gao_svm.h"
#include "baselines/jeon_attention.h"
#include "baselines/marlin.h"
#include "baselines/singh_resnet.h"
#include "baselines/tsdnet.h"
#include "baselines/zero_shot_lfm.h"
#include "baselines/zhang_emotion.h"
#include "bench/harness.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"

namespace vsd::bench {
namespace {

using baselines::StressClassifier;
using core::Metrics;

/// Factory for a fresh instance of one supervised baseline.
using BaselineFactory = std::function<std::unique_ptr<StressClassifier>()>;

Metrics EvaluateSupervised(const BaselineFactory& factory,
                           const data::Dataset& dataset,
                           const BenchOptions& options) {
  return CrossValidate(
      dataset, options,
      [&](const data::Dataset& train, const data::Dataset& test,
          uint64_t fold_seed) {
        auto classifier = factory();
        Rng rng(fold_seed);
        classifier->Fit(train, &rng);
        return core::EvaluateClassifier(*classifier, test);
      });
}

Metrics EvaluateOurs(const data::Dataset& dataset,
                     const data::Dataset& au_data,
                     const BenchOptions& options) {
  const cot::ChainConfig chain = OursChainConfig(options);
  return CrossValidate(
      dataset, options,
      [&](const data::Dataset& train, const data::Dataset& test,
          uint64_t fold_seed) {
        auto model =
            TrainOurs(chain, au_data, train, test, options, fold_seed);
        cot::ChainPipeline pipeline(model.get(), chain);
        return core::EvaluatePipeline(pipeline, test);
      });
}

void AppendRow(Table* table, const std::string& name, const Metrics& uvsd,
               const Metrics& rsl) {
  const auto u = uvsd.ToRow();
  const auto r = rsl.ToRow();
  table->AddRow({name, u[0], u[1], u[2], u[3], r[0], r[1], r[2], r[3]});
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table I: stress detection performance (%s, %d-fold) ===\n",
              options.quick ? "quick" : "full", options.folds);
  BenchData data = MakeBenchData(options);

  Table table({"Method", "UVSD Acc.", "UVSD Prec.", "UVSD Rec.", "UVSD F1.",
               "RSL Acc.", "RSL Prec.", "RSL Rec.", "RSL F1."});

  // ---- Off-the-shelf large foundation models (zero-shot). ----
  for (auto kind : {vlm::ApiModelKind::kGpt4o, vlm::ApiModelKind::kClaude35,
                    vlm::ApiModelKind::kGemini15}) {
    const auto& model = ApiModel(kind, options);
    baselines::ZeroShotLfm lfm(&model, vlm::ApiModelName(kind));
    const Metrics uvsd = core::EvaluateClassifier(lfm, data.uvsd);
    const Metrics rsl = core::EvaluateClassifier(lfm, data.rsl);
    AppendRow(&table, lfm.name(), uvsd, rsl);
    std::printf("  done: %s\n", lfm.name().c_str());
  }
  table.AddSeparator();

  // ---- Supervised baselines. ----
  const auto& emotion_model = ApiModel(vlm::ApiModelKind::kGemini15, options);
  const auto& ding_vlm = ApiModel(vlm::ApiModelKind::kGpt4o, options);
  const std::vector<std::pair<std::string, BaselineFactory>> supervised = {
      {"FDASSNN",
       [] { return std::make_unique<baselines::Fdassnn>(); }},
      {"Gao et al.",
       [] { return std::make_unique<baselines::GaoSvm>(); }},
      {"Zhang et al.",
       [&] {
         return std::make_unique<baselines::ZhangEmotionRule>(
             &emotion_model);
       }},
      {"Jeon et al.",
       [] { return std::make_unique<baselines::JeonAttention>(); }},
      {"TSDNet", [] { return std::make_unique<baselines::Tsdnet>(); }},
      {"MARLIN", [] { return std::make_unique<baselines::Marlin>(); }},
      {"Singh et al.",
       [] { return std::make_unique<baselines::SinghResnet>(); }},
      {"Ding et al.",
       [&] { return std::make_unique<baselines::DingFusion>(&ding_vlm); }},
  };
  for (const auto& [name, factory] : supervised) {
    const Metrics uvsd = EvaluateSupervised(factory, data.uvsd, options);
    const Metrics rsl = EvaluateSupervised(factory, data.rsl, options);
    AppendRow(&table, name, uvsd, rsl);
    std::printf("  done: %s\n", name.c_str());
  }
  table.AddSeparator();

  // ---- Ours. ----
  const Metrics ours_uvsd = EvaluateOurs(data.uvsd, data.disfa, options);
  const Metrics ours_rsl = EvaluateOurs(data.rsl, data.disfa, options);
  AppendRow(&table, "Ours", ours_uvsd, ours_rsl);

  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table1.csv");
  WriteBenchPerfJson("table1", timer.Seconds(),
                     data.uvsd.size() + data.rsl.size(), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
