#ifndef VSD_BENCH_HARNESS_H_
#define VSD_BENCH_HARNESS_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/metrics.h"
#include "cot/chain_config.h"
#include "data/sample.h"
#include "explain/faithfulness.h"
#include "img/slic.h"
#include "vlm/api_models.h"
#include "vlm/foundation_model.h"

namespace vsd::bench {

/// Command-line options shared by every bench binary.
///
///   --quick        small datasets + 1 fold (development sanity runs)
///   --folds N      cross-validation folds (default: VSD_FOLDS env or 2;
///                  the paper protocol is 10)
///   --seed S       master seed
///   --threads N    worker threads (default: VSD_THREADS env or 1).
///                  Output is byte-identical for every thread count.
///   --batch N      inference batch size (default: VSD_BATCH env or 32).
///                  Output is byte-identical for every batch size.
struct BenchOptions {
  bool quick = false;
  int folds = 2;
  uint64_t seed = 20250706;
  int threads = 0;  ///< 0 = keep the VSD_THREADS/global default.
  int batch = 0;    ///< 0 = keep the VSD_BATCH/global default.
};

/// Parses the shared flags. As a side effect, sizes the global thread pool
/// (`ThreadPool::SetGlobalThreads`) when --threads is given and the process
/// batch size (`SetDefaultBatchSize`) when --batch is given, so every
/// parallel loop and batched forward downstream picks them up.
BenchOptions ParseBenchArgs(int argc, char** argv);

/// Wall-clock timer for the machine-readable perf sidecars.
class PerfTimer {
 public:
  PerfTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes a machine-readable sidecar (JSON, CSV, ...) with full error
/// handling: open, write, and close failures all log to stderr (with
/// errno) and return false instead of silently dropping output. Every
/// bench/tool sidecar goes through this one helper.
bool WriteSidecarFile(const std::string& path, const std::string& content);

/// Writes `BENCH_<name>.json` next to the CSVs: wall time, throughput, and
/// the batch/thread configuration, so perf runs are machine-comparable.
/// `samples` is the number of sample evaluations the bench is sized by
/// (dataset rows scored, not model forwards).
void WriteBenchPerfJson(const std::string& name, double wall_seconds,
                        int64_t samples, const BenchOptions& options);

/// Serving/queue statistics for the perf sidecar of a serving bench.
/// These are throughput diagnostics, not results: batch count and fill
/// depend on timing, so they belong in the sidecar, never in a CSV.
struct ServePerf {
  int64_t batches_cut = 0;
  double mean_batch_fill = 0.0;
  int64_t retries = 0;
  int64_t degraded = 0;        ///< Fallback + prior completions.
  int64_t faults_injected = 0; ///< Total FaultInjector firings.
};

/// `WriteBenchPerfJson` with an extra "serve" block of queue statistics.
void WriteBenchPerfJson(const std::string& name, double wall_seconds,
                        int64_t samples, const BenchOptions& options,
                        const ServePerf& serve);

/// The two stress datasets (full-size unless quick) plus the AU dataset.
struct BenchData {
  data::Dataset uvsd;
  data::Dataset rsl;
  data::Dataset disfa;
};

BenchData MakeBenchData(const BenchOptions& options);

/// Builds (once per process) the generalist-pretrained backbone used to
/// initialize "Ours" — the Qwen-VL stand-in. Subsequent calls return the
/// cached copy.
const vlm::FoundationModel& PretrainedBase(const BenchOptions& options);

/// Frozen API-model simulations, built lazily once per process.
const vlm::FoundationModel& ApiModel(vlm::ApiModelKind kind,
                                     const BenchOptions& options);

/// Trains "Ours" (or an ablation variant) on one split: clones the
/// pretrained base and runs Algorithm 1. Features for `test` are also
/// precomputed so evaluation is cache-served.
std::unique_ptr<vlm::FoundationModel> TrainOurs(
    const cot::ChainConfig& chain, const data::Dataset& au_data,
    const data::Dataset& train, const data::Dataset& test,
    const BenchOptions& options, uint64_t fold_seed);

/// Cross-validated evaluation of a train-and-predict procedure.
/// `run_fold(train, test, fold_seed)` returns per-fold metrics.
core::Metrics CrossValidate(
    const data::Dataset& dataset, const BenchOptions& options,
    const std::function<core::Metrics(const data::Dataset& train,
                                      const data::Dataset& test,
                                      uint64_t fold_seed)>& run_fold);

/// Default chain config used for "Ours" in the benches.
cot::ChainConfig OursChainConfig(const BenchOptions& options);

// ---- Interpretability plumbing (Tables II/IV/VI) ----

/// Per-sample explanation context for our model over SLIC segments.
struct InterpContext {
  std::vector<img::Segmentation> segmentations;  ///< One per sample.
  std::vector<const data::VideoSample*> samples;
};

/// Number of SLIC segments in the paper's protocol.
inline constexpr int kNumSlicSegments = 64;

/// Builds segmentations for a set of samples (expressive frames).
InterpContext BuildInterpContext(
    const std::vector<const data::VideoSample*>& samples);

/// Classifier closure for explainers: p(stressed | perturbed f_e) with the
/// model's own greedy description fixed.
explain::ClassifierFn ModelClassifier(const vlm::FoundationModel& model,
                                      const data::VideoSample& sample,
                                      bool use_chain);

/// Batched `ModelClassifier`: one shared-neutral
/// `AssessProbStressedWithFramesBatch` forward per perturbation batch.
/// Entry i is bit-identical to the `ModelClassifier` probability for the
/// same frame, so explainers may use either interchangeably.
explain::BatchClassifierFn ModelBatchClassifier(
    const vlm::FoundationModel& model, const data::VideoSample& sample,
    bool use_chain);

/// Maps an ordered AU rationale to ranked SLIC segments: each cue selects
/// the not-yet-used segment overlapping its facial region the most (the
/// paper locates segments via the cue's facial landmarks).
std::vector<int> RationaleToSegments(const std::vector<int>& rationale,
                                     const img::Segmentation& segmentation);

/// Noise level used when disturbing top-k segments.
inline constexpr float kDisturbNoise = 0.8f;

/// Top-1/2/3 accuracy drops of the model's own rationale (mapped to SLIC
/// segments) over the given test samples — the "Ours" rows of Tables
/// II/IV/VI.
std::vector<double> RationaleDrops(
    const vlm::FoundationModel& model, const cot::ChainConfig& chain,
    const std::vector<const data::VideoSample*>& samples,
    const BenchOptions& options);

}  // namespace vsd::bench

#endif  // VSD_BENCH_HARNESS_H_
