// Reproduces Table VII: impact of in-context example retrieval — no
// example, random example, retrieve-by-vision (generic video encoder),
// and retrieve-by-description (text embedding of the model's own
// descriptions).
//
// Usage: bench_table7 [--quick] [--seed S] [--threads N] [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/icl.h"
#include "cot/pipeline.h"
#include "data/folds.h"

namespace vsd::bench {
namespace {

core::Metrics EvaluateWithRetrieval(const cot::ChainPipeline& pipeline,
                                    const cot::ExampleStore& store,
                                    cot::RetrievalMethod method,
                                    const data::Dataset& test,
                                    const BenchOptions& options) {
  Rng rng(options.seed ^ 0x1C1);
  return core::EvaluatePredictor(
      [&](const data::VideoSample& sample) {
        if (method == cot::RetrievalMethod::kNone) {
          // Retrieval shares one rng stream across samples, so this
          // evaluation is inherently per-sample.
          // vsd-lint: allow(per-sample-predict)
          return pipeline.PredictLabel(sample);
        }
        // Generate the query description, retrieve, and condition the
        // assessment on the retrieved example.
        const auto base = pipeline.Run(sample, nullptr);
        const auto retrieved =
            store.Retrieve(method, sample, base.describe.mask, &rng);
        return pipeline
            .RunWithExample(sample, retrieved.label,
                            retrieved.normalized_similarity, nullptr)
            .assess.label;
      },
      test);
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table VII: in-context example retrieval (%s) ===\n",
              options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);

  Table table({"Dataset", "Method", "Acc.", "Prec.", "Rec.", "F1."});
  const cot::ChainConfig chain = OursChainConfig(options);
  // The generic "Videoformer" stand-in: a generalist tower not tuned on
  // the stress task.
  const auto& generic = ApiModel(vlm::ApiModelKind::kClaude35, options);

  for (const auto* dataset : {&data.uvsd, &data.rsl}) {
    Rng rng(options.seed ^ 0x7AB7);
    const auto split = data::StratifiedHoldout(*dataset, 0.2, &rng);
    const data::Dataset train = dataset->Subset(split.train);
    const data::Dataset test = dataset->Subset(split.test);
    auto model = TrainOurs(chain, data.disfa, train, test, options,
                           options.seed + 505);
    cot::ChainPipeline pipeline(model.get(), chain);
    cot::ExampleStore store(train, &generic.vision(), model.get(), &rng);

    for (auto method : {cot::RetrievalMethod::kNone,
                        cot::RetrievalMethod::kRandom,
                        cot::RetrievalMethod::kByVision,
                        cot::RetrievalMethod::kByDescription}) {
      const core::Metrics metrics =
          EvaluateWithRetrieval(pipeline, store, method, test, options);
      const auto row = metrics.ToRow();
      table.AddRow({dataset->name, cot::RetrievalMethodName(method), row[0],
                    row[1], row[2], row[3]});
      std::printf("  done: %s / %s\n", dataset->name.c_str(),
                  cot::RetrievalMethodName(method));
    }
    table.AddSeparator();
  }
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table7.csv");
  WriteBenchPerfJson("table7", timer.Seconds(),
                     data.uvsd.size() + data.rsl.size(), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
