// Reproduces Table V: detection-performance ablation of the self-refine
// learning scheme — "w/o Refine" (no self-refinement at all) and "w/o
// Reflection" (refinement gates kept, but candidates come from plain
// re-sampling instead of reflection) vs Ours.
//
// Usage: bench_table5 [--quick] [--folds N] [--seed S] [--threads N]
//                     [--batch N]
#include <cstdio>

#include "bench/harness.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"

namespace vsd::bench {
namespace {

core::Metrics EvaluateVariant(const cot::ChainConfig& chain,
                              const data::Dataset& dataset,
                              const data::Dataset& au_data,
                              const BenchOptions& options) {
  return CrossValidate(
      dataset, options,
      [&](const data::Dataset& train, const data::Dataset& test,
          uint64_t fold_seed) {
        auto model =
            TrainOurs(chain, au_data, train, test, options, fold_seed);
        cot::ChainPipeline pipeline(model.get(), chain);
        return core::EvaluatePipeline(pipeline, test);
      });
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table V: self-refine ablation (%s, %d-fold) ===\n",
              options.quick ? "quick" : "full", options.folds);
  BenchData data = MakeBenchData(options);

  cot::ChainConfig ours = OursChainConfig(options);
  cot::ChainConfig no_refine = ours;
  no_refine.use_refinement = false;
  cot::ChainConfig no_reflection = ours;
  no_reflection.use_reflection = false;

  Table table({"Dataset", "Method", "Acc.", "Prec.", "Rec.", "F1."});
  const std::vector<std::pair<std::string, const cot::ChainConfig*>>
      variants = {{"w/o Refine", &no_refine},
                  {"w/o Reflection", &no_reflection},
                  {"Ours", &ours}};
  for (const auto* dataset : {&data.uvsd, &data.rsl}) {
    for (const auto& [name, chain] : variants) {
      const core::Metrics metrics =
          EvaluateVariant(*chain, *dataset, data.disfa, options);
      const auto row = metrics.ToRow();
      table.AddRow({dataset->name, name, row[0], row[1], row[2], row[3]});
      std::printf("  done: %s / %s\n", dataset->name.c_str(), name.c_str());
    }
    table.AddSeparator();
  }
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table5.csv");
  WriteBenchPerfJson("table5", timer.Seconds(),
                     data.uvsd.size() + data.rsl.size(), options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
