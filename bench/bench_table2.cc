// Reproduces Table II: accuracy drop after disturbing the Top-1/2/3
// scoring segments found by SHAP, LIME, SOBOL, and our self-explained
// rationale, on both datasets. Also exercises the protocol of Sec. IV-H:
// SLIC with 64 segments, Gaussian noise on the top segments, 1000
// evaluations for LIME/SHAP.
//
// Usage: bench_table2 [--quick] [--seed S] [--threads N] [--batch N]
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "common/string_util.h"
#include "common/table.h"
#include "cot/pipeline.h"
#include "data/folds.h"
#include "explain/faithfulness.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/sobol.h"

namespace vsd::bench {
namespace {

struct DatasetDrops {
  std::vector<double> shap;
  std::vector<double> lime;
  std::vector<double> sobol;
  std::vector<double> ours;
};

DatasetDrops RunDataset(const data::Dataset& dataset,
                        const data::Dataset& au_data,
                        const BenchOptions& options, int eval_samples) {
  // Single stratified holdout (the interpretability protocol does not
  // need CV; the paper evaluates on test samples of the trained model).
  Rng rng(options.seed ^ 0xBEEF);
  const auto split = data::StratifiedHoldout(dataset, 0.2, &rng);
  const data::Dataset train = dataset.Subset(split.train);
  const data::Dataset test = dataset.Subset(split.test);
  const cot::ChainConfig chain = OursChainConfig(options);
  auto model =
      TrainOurs(chain, au_data, train, test, options, options.seed + 77);
  cot::ChainPipeline pipeline(model.get(), chain);

  // Evaluation subset.
  std::vector<const data::VideoSample*> samples;
  for (int i = 0; i < test.size() && i < eval_samples; ++i) {
    samples.push_back(&test.samples[i]);
  }
  InterpContext context = BuildInterpContext(samples);

  const int evals = options.quick ? 200 : 1000;  // paper: 1000
  explain::KernelShapExplainer shap(evals);
  explain::LimeExplainer lime(evals);
  explain::SobolExplainer sobol(options.quick ? 4 : 15);

  std::vector<explain::ExplainedSample> shap_samples;
  std::vector<explain::ExplainedSample> lime_samples;
  std::vector<explain::ExplainedSample> sobol_samples;
  std::vector<explain::ExplainedSample> ours_samples;
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto* sample = samples[i];
    const auto& segmentation = context.segmentations[i];
    // The post-hoc explainers evaluate perturbations through the batched
    // classifier (one shared-neutral forward per batch); the accuracy-drop
    // scoring below keeps the per-frame closure. Both are bit-identical.
    const explain::BatchClassifierFn classifier =
        ModelBatchClassifier(*model, *sample, /*use_chain=*/true);

    explain::ExplainedSample base;
    base.image = &sample->expressive_frame;
    base.segmentation = &segmentation;
    base.classifier = ModelClassifier(*model, *sample, /*use_chain=*/true);
    base.true_label = sample->stress_label;

    auto add = [&](std::vector<explain::ExplainedSample>* out,
                   std::vector<int> ranked) {
      explain::ExplainedSample e = base;
      e.ranked_segments = std::move(ranked);
      out->push_back(std::move(e));
    };

    Rng explain_rng(options.seed + 31 * i);
    add(&shap_samples,
        shap.Explain(classifier, *base.image, segmentation, &explain_rng)
            .RankedSegments());
    add(&lime_samples,
        lime.Explain(classifier, *base.image, segmentation, &explain_rng)
            .RankedSegments());
    add(&sobol_samples,
        sobol.Explain(classifier, *base.image, segmentation, &explain_rng)
            .RankedSegments());
    // Ours: chain rationale -> facial-region segments.
    const auto output = pipeline.Run(*sample, &explain_rng);
    add(&ours_samples,
        RationaleToSegments(output.highlight.ranked_aus, segmentation));
    if ((i + 1) % 10 == 0) {
      std::fprintf(stderr, "  explained %zu/%zu samples\n", i + 1,
                   samples.size());
    }
  }

  DatasetDrops drops;
  const std::vector<int> ks = {1, 2, 3};
  Rng drop_rng(options.seed ^ 0xD150);
  drops.shap = TopKAccuracyDrop(shap_samples, ks, kDisturbNoise, &drop_rng);
  drops.lime = TopKAccuracyDrop(lime_samples, ks, kDisturbNoise, &drop_rng);
  drops.sobol =
      TopKAccuracyDrop(sobol_samples, ks, kDisturbNoise, &drop_rng);
  drops.ours = TopKAccuracyDrop(ours_samples, ks, kDisturbNoise, &drop_rng);
  return drops;
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  PerfTimer timer;
  std::printf("=== Table II: accuracy drop after disturbing Top-k segments"
              " (%s) ===\n",
              options.quick ? "quick" : "full");
  BenchData data = MakeBenchData(options);
  const int eval_samples = options.quick ? 30 : 100;

  const DatasetDrops uvsd =
      RunDataset(data.uvsd, data.disfa, options, eval_samples);
  std::printf("  UVSD done\n");
  const DatasetDrops rsl =
      RunDataset(data.rsl, data.disfa, options, eval_samples);
  std::printf("  RSL done\n");

  Table table({"Method", "UVSD Top-1", "UVSD Top-2", "UVSD Top-3",
               "RSL Top-1", "RSL Top-2", "RSL Top-3"});
  auto row = [&](const std::string& name, const std::vector<double>& u,
                 const std::vector<double>& r) {
    table.AddRow({name, FormatPercent(u[0]), FormatPercent(u[1]),
                  FormatPercent(u[2]), FormatPercent(r[0]),
                  FormatPercent(r[1]), FormatPercent(r[2])});
  };
  row("SHAP", uvsd.shap, rsl.shap);
  row("LIME", uvsd.lime, rsl.lime);
  row("SOBOL", uvsd.sobol, rsl.sobol);
  row("Ours", uvsd.ours, rsl.ours);
  std::printf("\n%s\n", table.ToString().c_str());
  (void)table.WriteCsv("table2.csv");
  WriteBenchPerfJson("table2", timer.Seconds(), 2 * eval_samples, options);
  return 0;
}

}  // namespace
}  // namespace vsd::bench

int main(int argc, char** argv) { return vsd::bench::Main(argc, argv); }
