// Utility: train a small detector, pick test samples, and export PGM
// visualizations of (a) the expressive frame, (b) the frame with the
// chain rationale's facial regions brightened, and (c) the frame with the
// top LIME segments brightened — for side-by-side visual inspection.
//
// Usage: render_saliency [out_dir]
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"
#include "explain/lime.h"
#include "face/renderer.h"
#include "img/pgm.h"
#include "img/slic.h"

namespace {

using namespace vsd;  // NOLINT(build/namespaces): tool code

/// Brightens masked pixels to visualize a region.
img::Image Overlay(const img::Image& image,
                   const std::vector<uint8_t>& mask) {
  img::Image out = image;
  for (int i = 0; i < out.size(); ++i) {
    if (mask[i]) {
      out.mutable_pixels()[i] =
          std::min(1.0f, out.mutable_pixels()[i] + 0.35f);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  std::printf("Training...\n");
  data::Dataset stress = data::MakeUvsdSimSmall(400, 8080);
  data::Dataset au_data = data::MakeDisfaSim(8081, 300);
  Rng rng(5);
  auto split = data::StratifiedHoldout(stress, 0.2, &rng);
  core::StressDetector::Options options;
  options.seed = 3;
  core::StressDetector detector(options);
  detector.Train(au_data, stress.Subset(split.train), &rng);
  data::Dataset test = stress.Subset(split.test);
  detector.PrecomputeFeatures(test);

  int exported = 0;
  for (int i = 0; i < 3 && i < test.size(); ++i) {
    const auto& sample = test.samples[i];
    const auto output = detector.Analyze(sample);
    const std::string base =
        out_dir + "/saliency_" + std::to_string(sample.id);

    (void)img::WritePgm(sample.expressive_frame, base + "_frame.pgm");

    // (b) rationale regions.
    const auto rationale_mask =
        face::AuRegionsMask(face::AuMaskFromIndices(output.highlight
                                                        .ranked_aus));
    (void)img::WritePgm(Overlay(sample.expressive_frame, rationale_mask),
                        base + "_rationale.pgm");

    // (c) LIME top-3 segments.
    img::Segmentation seg = img::Slic(sample.expressive_frame, 64);
    const auto& model = detector.model();
    face::AuMask description = output.describe.mask;
    Rng lime_rng(11);
    auto attribution = explain::LimeExplainer(400).Explain(
        [&](const img::Image& frame) {
          return model.AssessProbStressedWithFrames(
              frame, sample.neutral_frame, description);
        },
        sample.expressive_frame, seg, &lime_rng);
    auto ranked = attribution.RankedSegments();
    std::vector<uint8_t> lime_mask(sample.expressive_frame.size(), 0);
    for (int k = 0; k < 3 && k < static_cast<int>(ranked.size()); ++k) {
      const auto segment_mask = seg.SegmentMask(ranked[k]);
      for (size_t p = 0; p < lime_mask.size(); ++p) {
        lime_mask[p] |= segment_mask[p];
      }
    }
    (void)img::WritePgm(Overlay(sample.expressive_frame, lime_mask),
                        base + "_lime.pgm");
    exported += 3;
    std::printf("sample %d (%s): rationale = %s\n", sample.id,
                sample.stress_label == 1 ? "stressed" : "unstressed",
                face::AuMaskToString(
                    face::AuMaskFromIndices(output.highlight.ranked_aus))
                    .c_str());
  }
  std::printf("Exported %d PGMs to %s/\n", exported, out_dir.c_str());
  return 0;
}
