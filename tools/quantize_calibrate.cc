// Int8 quantization calibration harness: measures the accuracy cost of
// VSD_QUANT=int8 on the Table I zero-shot rows. For each frozen API-model
// simulation it evaluates the fp32 model, quantizes a clone in place
// (vlm/quantize.h), re-evaluates, and reports the per-dataset deltas.
// Writes BENCH_quant.json and exits nonzero when the worst absolute
// accuracy delta exceeds --max-delta (default 0.02), so CI can assert the
// quantization bound.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/zero_shot_lfm.h"
#include "bench/harness.h"
#include "core/evaluation.h"
#include "vlm/api_models.h"
#include "vlm/quantize.h"

using namespace vsd;
using bench::BenchOptions;
using core::Metrics;

int main(int argc, char** argv) {
  BenchOptions options = bench::ParseBenchArgs(argc, argv);
  double max_delta = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-delta") == 0 && i + 1 < argc) {
      max_delta = std::atof(argv[++i]);
    }
  }
  bench::BenchData data = bench::MakeBenchData(options);

  std::string rows;
  char buf[512];
  double worst_delta = 0.0;
  for (auto kind : {vlm::ApiModelKind::kGpt4o, vlm::ApiModelKind::kClaude35,
                    vlm::ApiModelKind::kGemini15}) {
    const auto& fp32_model = bench::ApiModel(kind, options);
    baselines::ZeroShotLfm fp32_lfm(&fp32_model, vlm::ApiModelName(kind));
    const Metrics fp32_uvsd = core::EvaluateClassifier(fp32_lfm, data.uvsd);
    const Metrics fp32_rsl = core::EvaluateClassifier(fp32_lfm, data.rsl);

    // Quantize a clone so the process-wide cached model stays fp32.
    auto quant_model = fp32_model.Clone();
    const int converted = vlm::QuantizeFrozenModel(quant_model.get());
    baselines::ZeroShotLfm quant_lfm(quant_model.get(),
                                     vlm::ApiModelName(kind));
    const Metrics q_uvsd = core::EvaluateClassifier(quant_lfm, data.uvsd);
    const Metrics q_rsl = core::EvaluateClassifier(quant_lfm, data.rsl);

    const double d_uvsd = std::fabs(q_uvsd.accuracy - fp32_uvsd.accuracy);
    const double d_rsl = std::fabs(q_rsl.accuracy - fp32_rsl.accuracy);
    worst_delta = std::max({worst_delta, d_uvsd, d_rsl});
    std::printf(
        "%-18s int8 tensors=%d | UVSD acc %.4f -> %.4f (d=%.4f) | "
        "RSL acc %.4f -> %.4f (d=%.4f)\n",
        vlm::ApiModelName(kind), converted, fp32_uvsd.accuracy,
        q_uvsd.accuracy, d_uvsd, fp32_rsl.accuracy, q_rsl.accuracy, d_rsl);

    std::snprintf(buf, sizeof(buf),
                  "    {\"model\": \"%s\", \"int8_tensors\": %d,\n"
                  "     \"uvsd\": {\"acc_fp32\": %.6f, \"acc_int8\": %.6f,"
                  " \"f1_fp32\": %.6f, \"f1_int8\": %.6f},\n"
                  "     \"rsl\": {\"acc_fp32\": %.6f, \"acc_int8\": %.6f,"
                  " \"f1_fp32\": %.6f, \"f1_int8\": %.6f}}",
                  vlm::ApiModelName(kind), converted, fp32_uvsd.accuracy,
                  q_uvsd.accuracy, fp32_uvsd.f1, q_uvsd.f1,
                  fp32_rsl.accuracy, q_rsl.accuracy, fp32_rsl.f1, q_rsl.f1);
    if (!rows.empty()) rows += ",\n";
    rows += buf;
  }

  const bool pass = worst_delta <= max_delta;
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"quant\",\n"
                "  \"quick\": %s,\n"
                "  \"seed\": %llu,\n"
                "  \"max_abs_accuracy_delta\": %.6f,\n"
                "  \"asserted_bound\": %.6f,\n"
                "  \"pass\": %s,\n"
                "  \"models\": [\n",
                options.quick ? "true" : "false",
                static_cast<unsigned long long>(options.seed), worst_delta,
                max_delta, pass ? "true" : "false");
  const std::string json = std::string(buf) + rows + "\n  ]\n}\n";
  if (!bench::WriteSidecarFile("BENCH_quant.json", json)) return 1;

  std::printf("worst |accuracy delta| = %.4f (bound %.4f): %s\n",
              worst_delta, max_delta, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
