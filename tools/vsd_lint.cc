// vsd_lint: repo-specific static analysis for the vsd codebase.
//
// Enforces the determinism and error-handling invariants the metrics tables
// depend on (see docs/INTERNALS.md, "Static analysis & sanitizers"):
// no raw std:: randomness outside src/common/rng.*, no shared-Rng draws or
// unguarded by-reference capture writes inside ParallelFor bodies, no exact
// float comparison in metric kernels, no wall-clock/thread-id/pointer-key
// nondeterminism in result paths, header hygiene, no unordered-container
// iteration in result paths — plus the whole-program checks: include-graph
// layering and cycles, lock-order deadlock cycles, nondeterminism taint
// flow, hot-path allocation (see src/lint/dataflow.h), annotation-enforced
// thread safety (guarded-by / unannotated-mutex), and reference
// invalidation across container mutation (see src/lint/annotations.h).
//
// Usage:
//   vsd_lint [--root DIR] [--fix] [--format=json|sarif] [--dump-graph]
//            [--dump-lock-graph] [--audit-suppressions]
//            [--audit-annotations] [SUBDIR...]
//
// With no SUBDIRs, lints src bench tools tests examples under --root
// (default: the current directory). Exit code 0 = clean, 1 = findings,
// 2 = usage error.
//
//   --fix             rewrite mechanical findings (include-order,
//                     header-guard) in place, then re-lint; the exit code
//                     reflects what is left after fixing.
//   --format=json     print findings as a JSON array (file/line/rule/
//                     message per finding) instead of text; the finding
//                     count still goes to stderr.
//   --format=sarif    print findings as a SARIF 2.1.0 log (for GitHub code
//                     scanning / IDE import); the finding count still goes
//                     to stderr.
//   --dump-graph      print the module-level include graph as DOT on stdout
//                     (for `dot -Tsvg` and docs/INTERNALS.md) and exit; the
//                     exit code is 1 if the graph has include cycles (a
//                     cyclic graph has no valid layering at all — not
//                     suppressible), 0 otherwise. Layering violations go
//                     through the normal lint run, where `allow(layering)`
//                     suppressions apply.
//   --dump-lock-graph print the whole-program lock-acquisition graph as DOT
//                     on stdout and exit; exit code 1 if the graph has a
//                     cycle (a potential deadlock — not suppressible via
//                     this flag; the lint run honors allow(lock-order)).
//   --audit-suppressions
//                     flag stale `// vsd-lint: allow(<rule>)` comments
//                     whose rule no longer fires on that line, and exit 1
//                     if any are found.
//   --audit-annotations
//                     flag mutex members in src/ whose class has zero
//                     VSD_GUARDED_BY fields (common/annotations.h), print
//                     a coverage summary to stderr, and exit 1 if any
//                     unannotated mutex lacks a reasoned allow().
//
// Suppress a finding with `// vsd-lint: allow(<rule>)` on the offending
// line or the line above (always include a reason in the comment).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/dataflow.h"
#include "lint/fix.h"
#include "lint/include_graph.h"
#include "lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  bool fix = false;
  bool dump_graph = false;
  bool dump_lock_graph = false;
  bool audit = false;
  bool audit_annotations = false;
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--fix") == 0) {
      fix = true;
    } else if (std::strcmp(argv[i], "--dump-graph") == 0) {
      dump_graph = true;
    } else if (std::strcmp(argv[i], "--dump-lock-graph") == 0) {
      dump_lock_graph = true;
    } else if (std::strcmp(argv[i], "--audit-suppressions") == 0) {
      audit = true;
    } else if (std::strcmp(argv[i], "--audit-annotations") == 0) {
      audit_annotations = true;
    } else if (std::strcmp(argv[i], "--format=json") == 0) {
      format = Format::kJson;
    } else if (std::strcmp(argv[i], "--format=sarif") == 0) {
      format = Format::kSarif;
    } else if (std::strcmp(argv[i], "--format=text") == 0) {
      format = Format::kText;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& rule : vsd::lint::AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: vsd_lint [--root DIR] [--fix] [--format=json|sarif] "
          "[--dump-graph] [--dump-lock-graph] [--audit-suppressions] "
          "[--audit-annotations] [--list-rules] [SUBDIR...]\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "vsd_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      subdirs.push_back(argv[i]);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "bench", "tools", "tests", "examples"};

  if (dump_graph) {
    const vsd::lint::IncludeGraph graph =
        vsd::lint::BuildIncludeGraphFromTree(root, subdirs);
    std::fputs(vsd::lint::DumpDot(graph).c_str(), stdout);
    const std::vector<vsd::lint::Finding> cycles =
        vsd::lint::CheckCycles(graph);
    for (const auto& f : cycles) {
      std::fprintf(stderr, "%s\n", f.ToString().c_str());
    }
    if (!cycles.empty()) {
      std::fprintf(stderr, "vsd_lint: include graph has %zu cycle(s)\n",
                   cycles.size());
      return 1;
    }
    return 0;
  }

  if (dump_lock_graph) {
    const vsd::lint::LockGraph graph =
        vsd::lint::BuildLockGraphFromTree(root, subdirs);
    std::fputs(vsd::lint::DumpLockDot(graph).c_str(), stdout);
    const std::vector<vsd::lint::Finding> cycles =
        vsd::lint::CheckLockOrder(graph);
    for (const auto& f : cycles) {
      std::fprintf(stderr, "%s\n", f.ToString().c_str());
    }
    if (!cycles.empty()) {
      std::fprintf(stderr, "vsd_lint: lock graph has %zu cycle(s)\n",
                   cycles.size());
      return 1;
    }
    return 0;
  }

  auto print = [&](const std::vector<vsd::lint::Finding>& findings) {
    switch (format) {
      case Format::kJson:
        std::fputs(vsd::lint::FindingsToJson(findings).c_str(), stdout);
        break;
      case Format::kSarif:
        std::fputs(vsd::lint::FindingsToSarif(findings).c_str(), stdout);
        break;
      case Format::kText:
        for (const auto& f : findings) {
          std::printf("%s\n", f.ToString().c_str());
        }
        break;
    }
  };

  if (audit) {
    const std::vector<vsd::lint::Finding> stale =
        vsd::lint::AuditSuppressions(root, subdirs);
    print(stale);
    if (!stale.empty()) {
      std::fprintf(stderr, "vsd_lint: %zu stale suppression(s)\n",
                   stale.size());
      return 1;
    }
    return 0;
  }

  if (audit_annotations) {
    const vsd::lint::AnnotationAudit result =
        vsd::lint::AuditAnnotations(root, subdirs);
    print(result.findings);
    std::fprintf(stderr,
                 "vsd_lint: annotation coverage: %lld annotated class(es), "
                 "%lld guarded field(s), %lld method contract(s)\n",
                 static_cast<long long>(result.annotated_classes),
                 static_cast<long long>(result.guarded_fields),
                 static_cast<long long>(result.contracts));
    if (!result.findings.empty()) {
      std::fprintf(stderr, "vsd_lint: %zu unannotated mutex member(s)\n",
                   result.findings.size());
      return 1;
    }
    return 0;
  }

  if (fix) {
    for (const vsd::lint::FixedFile& f : vsd::lint::FixTree(root, subdirs)) {
      std::fprintf(stderr, "vsd_lint: fixed %s (%d fix(es))\n",
                   f.path.c_str(), f.fixes);
    }
  }

  const std::vector<vsd::lint::Finding> findings =
      vsd::lint::LintTree(root, subdirs);
  print(findings);
  if (!findings.empty()) {
    std::fprintf(stderr, "vsd_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
