// vsd_lint: repo-specific static analysis for the vsd codebase.
//
// Enforces the determinism and error-handling invariants the metrics tables
// depend on (see docs/INTERNALS.md, "Static analysis & sanitizers"):
// no raw std:: randomness outside src/common/rng.*, no shared-Rng draws
// inside ParallelFor bodies, no exact float comparison in metric kernels,
// header hygiene, and no unordered-container iteration in result paths.
//
// Usage:
//   vsd_lint [--root DIR] [SUBDIR...]
//
// With no SUBDIRs, lints src bench tools tests under --root (default: the
// current directory). Exit code 0 = clean, 1 = findings, 2 = usage error.
// Suppress a finding with `// vsd-lint: allow(<rule>)` on the offending
// line or the line above (always include a reason in the comment).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& rule : vsd::lint::AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: vsd_lint [--root DIR] [--list-rules] [SUBDIR...]\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "vsd_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      subdirs.push_back(argv[i]);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "bench", "tools", "tests"};

  const std::vector<vsd::lint::Finding> findings =
      vsd::lint::LintTree(root, subdirs);
  for (const auto& f : findings) {
    std::printf("%s\n", f.ToString().c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "vsd_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
