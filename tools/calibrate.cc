// Internal calibration harness (not part of the library deliverables):
// prints the key Table-I rows on one UVSD holdout to tune constants.
#include <cstdio>
#include <string>

#include "baselines/ding_fusion.h"
#include "baselines/marlin.h"
#include "baselines/zero_shot_lfm.h"
#include "bench/harness.h"
#include "core/evaluation.h"
#include "cot/pipeline.h"
#include "data/folds.h"
using namespace vsd;
using bench::BenchOptions;
int main(int argc, char** argv) {
  BenchOptions options = bench::ParseBenchArgs(argc, argv);
  bench::BenchData data = bench::MakeBenchData(options);
  Rng rng(options.seed);
  auto split = data::StratifiedHoldout(data.uvsd, 0.2, &rng);
  auto train = data.uvsd.Subset(split.train);
  auto test = data.uvsd.Subset(split.test);
  auto rsplit = data::StratifiedHoldout(data.rsl, 0.2, &rng);
  auto rtrain = data.rsl.Subset(rsplit.train);
  auto rtest = data.rsl.Subset(rsplit.test);

  const bool lfms = argc > 1 && std::string(argv[1]) == "--lfms";
  for (auto kind : {vlm::ApiModelKind::kGpt4o, vlm::ApiModelKind::kClaude35,
                    vlm::ApiModelKind::kGemini15}) {
    if (!lfms) break;
    const auto& m = bench::ApiModel(kind, options);
    baselines::ZeroShotLfm lfm(&m, vlm::ApiModelName(kind));
    auto mu = core::EvaluateClassifier(lfm, data.uvsd);
    auto mr = core::EvaluateClassifier(lfm, data.rsl);
    printf("%-18s UVSD acc=%.2f f1=%.2f | RSL acc=%.2f f1=%.2f\n",
           lfm.name().c_str(), 100*mu.accuracy, 100*mu.f1, 100*mr.accuracy, 100*mr.f1);
  }
  {
    baselines::DingFusion ding(&bench::ApiModel(vlm::ApiModelKind::kGpt4o, options));
    Rng r2(7); ding.Fit(train, &r2);
    auto m = core::EvaluateClassifier(ding, test);
    printf("Ding(UVSD holdout)  acc=%.2f f1=%.2f\n", 100*m.accuracy, 100*m.f1);
  }

  auto probe = [&](const char* name, cot::ChainConfig chain,
                   const data::Dataset& tr, const data::Dataset& te,
                   uint64_t s) {
    auto model = bench::TrainOurs(chain, data.disfa, tr, te, options, s);
    cot::ChainPipeline pipeline(model.get(), chain);
    auto m = core::EvaluatePipeline(pipeline, te);
    double jacc = 0; int own = 0, empty = 0;
    for (const auto& smp : te.samples) {
      auto probs = model->DescribeProbs(smp);
      face::AuMask mask{};
      for (int j = 0; j < 12; ++j) mask[j] = probs[j] > 0.5;
      jacc += face::AuMaskJaccard(mask, smp.au_label);
      own += (model->AssessProbStressed(smp, mask) >= 0.5 ? 1:0) == smp.stress_label;
      empty += (model->AssessProbStressed(smp, face::AuMask{}) >= 0.5 ? 1:0) == smp.stress_label;
    }
    printf("%-22s acc=%.2f f1=%.2f | jacc=%.3f own=%.2f empty=%.2f\n",
           name, 100*m.accuracy, 100*m.f1, jacc/te.size(),
           100.0*own/te.size(), 100.0*empty/te.size());
  };
  auto chain = bench::OursChainConfig(options);
  probe("Ours(UVSD)", chain, train, test, options.seed+1);
  cot::ChainConfig norefine = chain; norefine.use_refinement = false;
  probe("Ours-noRefine(UVSD)", norefine, train, test, options.seed+1);
  probe("Ours(RSL)", chain, rtrain, rtest, options.seed+2);
  return 0;
}
