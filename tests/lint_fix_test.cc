#include "lint/fix.h"

#include <gtest/gtest.h>

#include <string>

#include "lint/lint.h"

namespace vsd::lint {
namespace {

// Canonical form, asserted whole: fix output is an exact contract, not a
// "contains" check.

TEST(FixTest, SortsAShuffledIncludeBlock) {
  const std::string shuffled =
      "#include <vector>\n"
      "#include <cmath>\n"
      "#include <cstdint>\n"
      "\n"
      "int x;\n";
  const FixOutcome outcome = FixContent("src/cot/x.cc", shuffled);
  EXPECT_EQ(outcome.include_order_fixes, 1);
  EXPECT_EQ(outcome.content,
            "#include <cmath>\n"
            "#include <cstdint>\n"
            "#include <vector>\n"
            "\n"
            "int x;\n");
}

TEST(FixTest, SplitsAMixedBlockIntoSystemThenProject) {
  const std::string mixed =
      "#include \"cot/x.h\"\n"
      "#include <vector>\n"
      "#include \"common/rng.h\"\n"
      "#include <cmath>\n";
  const FixOutcome outcome = FixContent("src/cot/x.cc", mixed);
  EXPECT_EQ(outcome.include_order_fixes, 1);
  EXPECT_EQ(outcome.content,
            "#include <cmath>\n"
            "#include <vector>\n"
            "\n"
            "#include \"common/rng.h\"\n"
            "#include \"cot/x.h\"\n");
}

TEST(FixTest, TrailingCommentsTravelWithTheirInclude) {
  const std::string shuffled =
      "#include <vector>\n"
      "#include <cmath>  // for std::sqrt\n";
  const FixOutcome outcome = FixContent("src/cot/x.cc", shuffled);
  EXPECT_EQ(outcome.content,
            "#include <cmath>  // for std::sqrt\n"
            "#include <vector>\n");
}

TEST(FixTest, OnlyTheDirtyBlockIsRewritten) {
  const std::string src =
      "#include \"cot/x.h\"\n"
      "\n"
      "#include <vector>\n"
      "#include <cmath>\n"
      "\n"
      "#include \"common/rng.h\"\n"
      "#include \"cot/refinement.h\"\n";
  const FixOutcome outcome = FixContent("src/cot/x.cc", src);
  EXPECT_EQ(outcome.include_order_fixes, 1);
  EXPECT_EQ(outcome.content,
            "#include \"cot/x.h\"\n"
            "\n"
            "#include <cmath>\n"
            "#include <vector>\n"
            "\n"
            "#include \"common/rng.h\"\n"
            "#include \"cot/refinement.h\"\n");
}

TEST(FixTest, InsertsAMissingHeaderGuard) {
  const std::string bare = "int F();\n";
  const FixOutcome outcome = FixContent("src/cot/x.h", bare);
  EXPECT_EQ(outcome.header_guard_fixes, 1);
  EXPECT_EQ(outcome.content,
            "#ifndef VSD_COT_X_H_\n"
            "#define VSD_COT_X_H_\n"
            "\n"
            "int F();\n"
            "\n"
            "#endif  // VSD_COT_X_H_\n");
  // The guard convention drops a leading src/ but keeps other roots.
  EXPECT_NE(FixContent("bench/helpers.h", bare)
                .content.find("VSD_BENCH_HELPERS_H_"),
            std::string::npos);
}

TEST(FixTest, RepairsAMismatchedDefine) {
  const std::string mismatched =
      "#ifndef VSD_COT_X_H_\n"
      "#define VSD_COT_X_HH_\n"
      "int F();\n"
      "#endif  // VSD_COT_X_H_\n";
  const FixOutcome outcome = FixContent("src/cot/x.h", mismatched);
  EXPECT_EQ(outcome.header_guard_fixes, 1);
  EXPECT_EQ(outcome.content,
            "#ifndef VSD_COT_X_H_\n"
            "#define VSD_COT_X_H_\n"
            "int F();\n"
            "#endif  // VSD_COT_X_H_\n");
}

TEST(FixTest, IsIdempotent) {
  const std::string dirty =
      "#include <vector>\n"
      "#include \"cot/x.h\"\n"
      "#include <cmath>\n"
      "\n"
      "int F();\n";
  const FixOutcome first = FixContent("src/cot/x.h", dirty);
  EXPECT_TRUE(first.changed());
  const FixOutcome second = FixContent("src/cot/x.h", first.content);
  EXPECT_FALSE(second.changed());
  EXPECT_EQ(second.content, first.content);
  // And the fixed content carries no fixable findings.
  for (const Finding& f : LintContent("src/cot/x.h", first.content)) {
    EXPECT_NE(f.rule, "include-order");
    EXPECT_NE(f.rule, "header-guard");
  }
}

TEST(FixTest, AnnotatedHeaderRoundTripsUnchanged) {
  // Thread-safety annotation macros must read as ordinary tokens to the
  // fixer: a clean annotated header passes through byte-for-byte, and a
  // dirty one converges in one pass with the annotations intact.
  const std::string annotated =
      "#ifndef VSD_COT_X_H_\n"
      "#define VSD_COT_X_H_\n"
      "\n"
      "#include <mutex>\n"
      "\n"
      "#include \"common/annotations.h\"\n"
      "\n"
      "class C {\n"
      "  void DrainLocked() VSD_REQUIRES(mu_);\n"
      "  std::mutex mu_;\n"
      "  int n_ VSD_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "\n"
      "#endif  // VSD_COT_X_H_\n";
  const FixOutcome clean = FixContent("src/cot/x.h", annotated);
  EXPECT_FALSE(clean.changed());
  EXPECT_EQ(clean.content, annotated);

  const std::string dirty =
      "#include \"common/annotations.h\"\n"
      "#include <mutex>\n"
      "\n"
      "class C {\n"
      "  int n_ VSD_GUARDED_BY(mu_) = 0;\n"
      "  std::mutex mu_;\n"
      "};\n";
  const FixOutcome first = FixContent("src/cot/x.h", dirty);
  EXPECT_TRUE(first.changed());
  EXPECT_NE(first.content.find("VSD_GUARDED_BY(mu_)"), std::string::npos);
  const FixOutcome second = FixContent("src/cot/x.h", first.content);
  EXPECT_FALSE(second.changed());
  EXPECT_EQ(second.content, first.content);
}

TEST(FixTest, CleanContentPassesThroughByteForByte) {
  const std::string clean =
      "#ifndef VSD_COT_X_H_\n"
      "#define VSD_COT_X_H_\n"
      "\n"
      "#include <cmath>\n"
      "#include <vector>\n"
      "\n"
      "#include \"common/rng.h\"\n"
      "\n"
      "int F();\n"
      "\n"
      "#endif  // VSD_COT_X_H_\n";
  const FixOutcome outcome = FixContent("src/cot/x.h", clean);
  EXPECT_FALSE(outcome.changed());
  EXPECT_EQ(outcome.content, clean);
}

TEST(FixTest, SuppressedFindingsAreNeverFixed) {
  const std::string suppressed =
      "#include <vector>\n"
      "#include <cmath>  // vsd-lint: allow(include-order) grouped on purpose\n";
  const FixOutcome outcome = FixContent("src/cot/x.cc", suppressed);
  EXPECT_FALSE(outcome.changed());
  EXPECT_EQ(outcome.content, suppressed);
}

TEST(FixTest, BlocksWithLineContinuationsAreLeftAlone) {
  // A continuation inside an include block is exotic enough that a human
  // should reflow it; the fixer must not garble it.
  const std::string exotic =
      "#include <vector>\n"
      "#include <cmath> \\\n"
      "// trailing\n";
  const FixOutcome outcome = FixContent("src/cot/x.cc", exotic);
  EXPECT_EQ(outcome.content, exotic);
}

}  // namespace
}  // namespace vsd::lint
