#include <gtest/gtest.h>

#include "common/rng.h"
#include "face/au.h"
#include "text/encoder.h"
#include "text/instructions.h"
#include "text/templates.h"
#include "text/tokenizer.h"

namespace vsd::text {
namespace {

using face::AuMask;

TEST(TokenizerTest, SplitsAndLowercases) {
  auto tokens = Tokenize("The Inner-Brow, raising!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "inner");
  EXPECT_EQ(tokens[2], "brow");
  EXPECT_EQ(tokens[3], "raising");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!").empty());
}

TEST(TokenizerTest, JaccardBehaviour) {
  EXPECT_NEAR(TokenJaccard("a b c", "a b c"), 1.0, 1e-12);
  EXPECT_NEAR(TokenJaccard("a b", "c d"), 0.0, 1e-12);
  EXPECT_NEAR(TokenJaccard("a b", "b c"), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(TokenJaccard("", ""), 1.0);
}

TEST(TemplatesTest, DescriptionRoundTripsAllSingleAus) {
  for (int j = 0; j < face::kNumAus; ++j) {
    AuMask mask{};
    mask[j] = true;
    const std::string text = RenderDescription(mask);
    EXPECT_EQ(ParseDescription(text), mask)
        << "AU" << face::GetAu(j).facs_number << " failed: " << text;
  }
}

TEST(TemplatesTest, DescriptionRoundTripsCombinations) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    AuMask mask{};
    for (int j = 0; j < face::kNumAus; ++j) mask[j] = rng.Bernoulli(0.4);
    EXPECT_EQ(ParseDescription(RenderDescription(mask)), mask);
  }
}

TEST(TemplatesTest, EmptyDescriptionRendersExplicitly) {
  const std::string text = RenderDescription(AuMask{});
  EXPECT_NE(text.find("no notable facial movements"), std::string::npos);
  EXPECT_EQ(ParseDescription(text), AuMask{});
}

TEST(TemplatesTest, DescriptionMatchesPaperFormat) {
  // The paper's example: AU1 + AU5 + AU6.
  AuMask mask{};
  mask[face::AuIndexFromFacs(1)] = true;
  mask[face::AuIndexFromFacs(5)] = true;
  mask[face::AuIndexFromFacs(6)] = true;
  const std::string text = RenderDescription(mask);
  EXPECT_NE(text.find("The facial expressions can be listed below:"),
            std::string::npos);
  EXPECT_NE(text.find("-eyebrow: inner portions of the eyebrows raising"),
            std::string::npos);
  EXPECT_NE(text.find("-lid: upper lid raising"), std::string::npos);
  EXPECT_NE(text.find("-cheek: raised"), std::string::npos);
}

TEST(TemplatesTest, AssessmentRoundTrip) {
  EXPECT_EQ(ParseAssessment(RenderAssessment(1)).value(), 1);
  EXPECT_EQ(ParseAssessment(RenderAssessment(0)).value(), 0);
}

TEST(TemplatesTest, AssessmentParsesVariants) {
  EXPECT_EQ(ParseAssessment("Stressed").value(), 1);
  EXPECT_EQ(ParseAssessment("definitely unstressed").value(), 0);
  EXPECT_EQ(ParseAssessment("Yes.").value(), 1);
  EXPECT_EQ(ParseAssessment("No.").value(), 0);
  EXPECT_EQ(ParseAssessment("the subject is not stressed").value(), 0);
  EXPECT_FALSE(ParseAssessment("cannot tell").ok());
}

TEST(TemplatesTest, RationaleRoundTripPreservesOrder) {
  const std::vector<int> order = {2, 6, 0};
  const std::string text = RenderRationale(order);
  EXPECT_EQ(ParseRationale(text), order);
}

TEST(TemplatesTest, RationaleIgnoresInvalidIndices) {
  const std::string text = RenderRationale({1, 99, -3});
  EXPECT_EQ(ParseRationale(text), (std::vector<int>{1}));
}

TEST(TemplatesTest, EmptyRationale) {
  const std::string text = RenderRationale({});
  EXPECT_TRUE(ParseRationale(text).empty());
}

TEST(InstructionsTest, CanonicalInstructionsClassify) {
  EXPECT_EQ(ClassifyInstruction(DescribeInstruction()).value(),
            InstructionKind::kDescribe);
  EXPECT_EQ(ClassifyInstruction(AssessInstruction()).value(),
            InstructionKind::kAssess);
  EXPECT_EQ(ClassifyInstruction(HighlightInstruction()).value(),
            InstructionKind::kHighlight);
  EXPECT_EQ(ClassifyInstruction(DirectAssessInstruction()).value(),
            InstructionKind::kDirectAssess);
}

TEST(InstructionsTest, ReflectionInstructionsClassify) {
  AuMask mask{};
  mask[0] = true;
  const std::string description = RenderDescription(mask);
  EXPECT_EQ(
      ClassifyInstruction(ReflectDescribeInstruction(description, 1)).value(),
      InstructionKind::kReflectDescribe);
  EXPECT_EQ(ClassifyInstruction(
                ReflectRationaleInstruction(RenderRationale({0})))
                .value(),
            InstructionKind::kReflectRationale);
  EXPECT_EQ(
      ClassifyInstruction(VerifyDescribeInstruction(description, 4)).value(),
      InstructionKind::kVerifyDescribe);
}

TEST(InstructionsTest, ReflectionEmbedsGroundTruth) {
  const std::string stressed = ReflectDescribeInstruction("desc", 1);
  const std::string unstressed = ReflectDescribeInstruction("desc", 0);
  EXPECT_NE(stressed.find("actually stressed"), std::string::npos);
  EXPECT_NE(unstressed.find("actually not stressed"), std::string::npos);
}

TEST(InstructionsTest, UnknownInstructionErrors) {
  EXPECT_FALSE(ClassifyInstruction("make me a sandwich").ok());
}

TEST(EncoderTest, DeterministicAndNormalized) {
  TextEncoder encoder(64);
  const auto a = encoder.Encode("upper lid raising");
  const auto b = encoder.Encode("upper lid raising");
  EXPECT_EQ(a, b);
  double norm = 0.0;
  for (float x : a) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EncoderTest, SimilarTextsCloserThanDissimilar) {
  TextEncoder encoder(64);
  const auto a = encoder.Encode(
      "eyebrow inner portions of the eyebrows raising lid upper lid");
  const auto b = encoder.Encode(
      "eyebrow inner portions of the eyebrows raising cheek raised");
  const auto c = encoder.Encode("jaw dropping open lips parting");
  EXPECT_GT(EmbeddingCosine(a, b), EmbeddingCosine(a, c));
}

TEST(EncoderTest, EmptyTextIsZeroVector) {
  TextEncoder encoder(32);
  const auto v = encoder.Encode("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(EncoderTest, DescriptionEmbeddingsSeparateAuSets) {
  // Descriptions with the same AU set embed identically; different sets
  // have similarity < 1.
  TextEncoder encoder(64);
  AuMask a{};
  a[0] = a[4] = true;
  AuMask b{};
  b[6] = b[11] = true;
  const auto ea = encoder.Encode(RenderDescription(a));
  const auto eb = encoder.Encode(RenderDescription(b));
  EXPECT_NEAR(EmbeddingCosine(ea, ea), 1.0, 1e-6);
  EXPECT_LT(EmbeddingCosine(ea, eb), 0.95);
}

TEST(IntensityTemplatesTest, QuantizeLevels) {
  std::array<float, face::kNumAus> intensity{};
  intensity[0] = 0.1f;
  intensity[1] = 0.4f;
  intensity[2] = 0.9f;
  const auto levels = QuantizeAuLevels(intensity);
  EXPECT_EQ(levels[0], AuLevel::kAbsent);
  EXPECT_EQ(levels[1], AuLevel::kSlight);
  EXPECT_EQ(levels[2], AuLevel::kStrong);
}

TEST(IntensityTemplatesTest, RoundTripWithQualifiers) {
  AuLevels levels{};
  levels[0] = AuLevel::kSlight;
  levels[2] = AuLevel::kStrong;
  levels[6] = AuLevel::kStrong;
  const std::string text = RenderDescriptionWithIntensity(levels);
  EXPECT_NE(text.find("(slightly)"), std::string::npos);
  EXPECT_NE(text.find("(strongly)"), std::string::npos);
  EXPECT_EQ(ParseDescriptionWithIntensity(text), levels);
}

TEST(IntensityTemplatesTest, LevelsToMask) {
  AuLevels levels{};
  levels[3] = AuLevel::kSlight;
  levels[7] = AuLevel::kStrong;
  const auto mask = LevelsToMask(levels);
  EXPECT_TRUE(mask[3]);
  EXPECT_TRUE(mask[7]);
  EXPECT_EQ(face::AuMaskCount(mask), 2);
}

TEST(IntensityTemplatesTest, PlainDescriptionParsesAsSlight) {
  AuMask mask{};
  mask[4] = true;  // AU6
  const auto levels =
      ParseDescriptionWithIntensity(RenderDescription(mask));
  EXPECT_EQ(levels[4], AuLevel::kSlight);
}

TEST(IntensityTemplatesTest, MaskRoundTripConsistentWithPlainParser) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    AuLevels levels{};
    for (int j = 0; j < face::kNumAus; ++j) {
      const int r = rng.UniformInt(3);
      levels[j] = static_cast<AuLevel>(r);
    }
    const std::string text = RenderDescriptionWithIntensity(levels);
    EXPECT_EQ(ParseDescription(text), LevelsToMask(levels));
  }
}

}  // namespace
}  // namespace vsd::text
