#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/tensor.h"

namespace vsd::nn {
namespace {

namespace ag = ::vsd::autograd;
using ::vsd::tensor::Tensor;

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Var x(Tensor::Zeros({5, 4}));
  Var y = layer.Forward(x);
  EXPECT_EQ(y.value().dim(0), 5);
  EXPECT_EQ(y.value().dim(1), 3);
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear layer(4, 2, &rng);
  Var x(Tensor::Zeros({1, 4}));
  Var y = layer.Forward(x);
  EXPECT_EQ(y.value().at(0, 0), layer.Parameters()[1].value().at(0));
}

TEST(LinearTest, ParameterCount) {
  Rng rng(3);
  Linear layer(4, 3, &rng);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
}

TEST(Conv2dTest, OutputShape) {
  Rng rng(4);
  Conv2d conv(2, 6, /*kernel=*/3, /*stride=*/2, /*pad=*/1, &rng);
  Var x(Tensor::Zeros({3, 8, 8, 2}));
  Var y = conv.Forward(x);
  ASSERT_EQ(y.value().ndim(), 4);
  EXPECT_EQ(y.value().dim(0), 3);
  EXPECT_EQ(y.value().dim(1), 4);
  EXPECT_EQ(y.value().dim(2), 4);
  EXPECT_EQ(y.value().dim(3), 6);
}

TEST(Conv2dTest, TranslationOfConstantInput) {
  // A constant image through a conv with padding 0 yields constant interior.
  Rng rng(5);
  Conv2d conv(1, 1, 3, 1, 0, &rng);
  Var x(Tensor::Full({1, 5, 5, 1}, 1.0f));
  Var y = conv.Forward(x);
  const float center = y.value().at4(0, 1, 1, 0);
  EXPECT_NEAR(y.value().at4(0, 1, 2, 0), center, 1e-5f);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(4);
  Var x(Tensor::FromVector({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40}));
  Var y = ln.Forward(x);
  for (int i = 0; i < 2; ++i) {
    float mean = 0.0f;
    for (int j = 0; j < 4; ++j) mean += y.value().at(i, j);
    EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
  }
}

TEST(DropoutTest, IdentityInEval) {
  Dropout drop(0.5f);
  Var x(Tensor::Full({10}, 2.0f));
  Var y = drop.Forward(x, /*train=*/false, nullptr);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(y.value().at(i), 2.0f);
}

TEST(DropoutTest, MasksAndRescalesInTrain) {
  Rng rng(6);
  Dropout drop(0.5f);
  Var x(Tensor::Full({1000}, 1.0f));
  Var y = drop.Forward(x, /*train=*/true, &rng);
  int zeros = 0;
  for (int i = 0; i < 1000; ++i) {
    if (y.value().at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.value().at(i), 2.0f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.06);
}

TEST(MlpTest, ForwardShapeAndParams) {
  Rng rng(7);
  Mlp mlp({8, 16, 4}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.num_layers(), 2);
  EXPECT_EQ(mlp.NumParameters(), 8 * 16 + 16 + 16 * 4 + 4);
  Var x(Tensor::Zeros({3, 8}));
  EXPECT_EQ(mlp.Forward(x).value().dim(1), 4);
}

TEST(ModuleTest, StateVectorRoundTrip) {
  Rng rng(8);
  Mlp a({4, 8, 2}, Activation::kTanh, &rng);
  Mlp b({4, 8, 2}, Activation::kTanh, &rng);
  auto state = a.StateVector();
  ASSERT_TRUE(b.LoadStateVector(state));
  Var x(Tensor::Uniform({2, 4}, &rng, -1, 1));
  Var ya = a.Forward(x);
  Var yb = b.Forward(x);
  for (int i = 0; i < ya.value().size(); ++i) {
    EXPECT_EQ(ya.value().at(i), yb.value().at(i));
  }
}

TEST(ModuleTest, LoadStateVectorRejectsWrongSize) {
  Rng rng(9);
  Mlp mlp({2, 2}, Activation::kRelu, &rng);
  EXPECT_FALSE(mlp.LoadStateVector({1.0f, 2.0f}));
}

TEST(ModuleTest, ZeroGradClearsGradients) {
  Rng rng(10);
  Linear layer(2, 1, &rng);
  Var x(Tensor::Full({1, 2}, 1.0f));
  Var loss = ag::SumAll(layer.Forward(x));
  ag::Backward(loss);
  EXPECT_GT(std::abs(layer.Parameters()[0].grad().at(0)), 0.0f);
  layer.ZeroGrad();
  EXPECT_EQ(layer.Parameters()[0].grad().at(0), 0.0f);
}

// Trains y = 2x - 1 with SGD; loss must collapse.
TEST(OptimizerTest, SgdFitsLinearFunction) {
  Rng rng(11);
  Linear layer(1, 1, &rng);
  Sgd opt(layer.Parameters(), /*lr=*/0.1f);
  float last_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    Tensor xs({8, 1});
    std::vector<float> targets(8);
    for (int i = 0; i < 8; ++i) {
      xs.at(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
      targets[i] = 2.0f * xs.at(i, 0) - 1.0f;
    }
    Var pred = layer.Forward(Var(xs));
    Var diff = ag::Sub(ag::Reshape(pred, {8}),
                       Var(Tensor::FromVector({8}, targets)));
    Var loss = ag::MeanAll(ag::Mul(diff, diff));
    opt.ZeroGrad();
    ag::Backward(loss);
    opt.Step();
    last_loss = loss.value().at(0);
  }
  EXPECT_LT(last_loss, 1e-3f);
  EXPECT_NEAR(layer.Parameters()[0].value().at(0), 2.0f, 0.05f);
  EXPECT_NEAR(layer.Parameters()[1].value().at(0), -1.0f, 0.05f);
}

// XOR requires the hidden layer: checks end-to-end backprop through Mlp.
TEST(OptimizerTest, AdamSolvesXor) {
  Rng rng(12);
  Mlp mlp({2, 8, 2}, Activation::kTanh, &rng);
  Adam opt(mlp.Parameters(), /*lr=*/0.05f);
  Tensor xs = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int> ys = {0, 1, 1, 0};
  for (int step = 0; step < 400; ++step) {
    Var logits = mlp.Forward(Var(xs));
    Var loss = ag::SoftmaxCrossEntropy(logits, ys);
    opt.ZeroGrad();
    ag::Backward(loss);
    opt.Step();
  }
  Var logits = mlp.Forward(Var(xs));
  auto pred = ::vsd::tensor::ArgMaxRows(logits.value());
  EXPECT_EQ(pred, ys);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Rng rng(13);
  Linear layer(1, 1, &rng);
  layer.Parameters()[0].mutable_value().at(0) = 5.0f;
  Sgd opt(layer.Parameters(), /*lr=*/0.1f, /*momentum=*/0.0f,
          /*weight_decay=*/0.5f);
  // Gradient-free step: decay alone should shrink the weight.
  layer.ZeroGrad();
  opt.Step();
  EXPECT_LT(layer.Parameters()[0].value().at(0), 5.0f);
}

TEST(OptimizerTest, AdamStepIsBoundedByLr) {
  Rng rng(14);
  Linear layer(1, 1, &rng);
  const float w0 = layer.Parameters()[0].value().at(0);
  Adam opt(layer.Parameters(), /*lr=*/0.01f);
  Var x(Tensor::Full({1, 1}, 1.0f));
  Var loss = ag::SumAll(layer.Forward(x));
  opt.ZeroGrad();
  ag::Backward(loss);
  opt.Step();
  // First Adam step magnitude is ~lr regardless of gradient scale.
  EXPECT_NEAR(std::abs(layer.Parameters()[0].value().at(0) - w0), 0.01f,
              2e-3f);
}

TEST(ConvTrainingTest, LearnsToDetectBrightQuadrant)  {
  // 4x4 single-channel images; label = 1 when the top-left 2x2 block is
  // bright. A conv + linear head must learn this.
  Rng rng(15);
  Conv2d conv(1, 4, 2, 2, 0, &rng);  // -> [N,2,2,4]
  Linear head(16, 2, &rng);
  std::vector<Var> params = conv.Parameters();
  for (auto& p : head.Parameters()) params.push_back(p);
  Adam opt(params, 0.02f);
  auto make_batch = [&](int n, Tensor* xs, std::vector<int>* ys) {
    *xs = Tensor({n, 4, 4, 1});
    ys->resize(n);
    for (int i = 0; i < n; ++i) {
      const bool bright = rng.Bernoulli(0.5);
      (*ys)[i] = bright ? 1 : 0;
      for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
          float v = static_cast<float>(rng.Uniform(0.0, 0.3));
          if (bright && y < 2 && x < 2) v += 0.7f;
          xs->at4(i, y, x, 0) = v;
        }
      }
    }
  };
  for (int step = 0; step < 150; ++step) {
    Tensor xs;
    std::vector<int> ys;
    make_batch(16, &xs, &ys);
    Var h = conv.Forward(Var(xs));
    Var flat = ag::Reshape(h, {16, 16});
    Var logits = head.Forward(ag::Relu(flat));
    Var loss = ag::SoftmaxCrossEntropy(logits, ys);
    opt.ZeroGrad();
    ag::Backward(loss);
    opt.Step();
  }
  Tensor xs;
  std::vector<int> ys;
  make_batch(64, &xs, &ys);
  Var h = conv.Forward(Var(xs));
  Var logits = head.Forward(ag::Relu(ag::Reshape(h, {64, 16})));
  auto pred = ::vsd::tensor::ArgMaxRows(logits.value());
  int correct = 0;
  for (int i = 0; i < 64; ++i) correct += (pred[i] == ys[i]);
  EXPECT_GE(correct, 58);
}

}  // namespace
}  // namespace vsd::nn
