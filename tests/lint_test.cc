#include "lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "lint/include_graph.h"
#include "lint/lexer.h"

namespace vsd::lint {
namespace {

// Rule names reported for linting `src` as file `path`.
std::vector<std::string> Rules(const std::string& path,
                               const std::string& src) {
  std::vector<std::string> rules;
  for (const Finding& f : LintContent(path, src)) rules.push_back(f.rule);
  return rules;
}

bool HasRule(const std::vector<std::string>& rules, const std::string& rule) {
  for (const auto& r : rules) {
    if (r == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------- lexer ----

TEST(LexerTest, TokenizesIdentifiersNumbersAndPuncts) {
  LexResult lex = Lex("int x = 42; double y = 1.5e-3;");
  ASSERT_GE(lex.tokens.size(), 11u);
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[3].text, "42");
  EXPECT_FALSE(lex.tokens[3].is_float);
  EXPECT_EQ(lex.tokens[8].text, "1.5e-3");
  EXPECT_TRUE(lex.tokens[8].is_float);
}

TEST(LexerTest, BannedNamesInsideLiteralsAndCommentsAreNotTokens) {
  LexResult lex = Lex(
      "const char* s = \"std::rand()\";\n"
      "// std::rand in a comment\n"
      "/* srand too */\n"
      "auto r = R\"(mt19937 inside raw string)\";\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "srand");
    EXPECT_NE(t.text, "mt19937");
  }
}

TEST(LexerTest, TracksLinesAcrossCommentsStringsAndContinuations) {
  LexResult lex = Lex("/* a\nb */\n\"x\ny\"\n#define M \\\n  1\nint z;\n");
  // `int` is on line 7: block comment spans 1-2, string literal 3-4,
  // continued #define 5-6.
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[lex.tokens.size() - 4].text, "int");
  EXPECT_EQ(lex.tokens[lex.tokens.size() - 4].line, 7);
  ASSERT_EQ(lex.directives.size(), 1u);
  EXPECT_EQ(lex.directives[0].text, "#define M    1");
}

TEST(LexerTest, ParsesSuppressionComments) {
  LexResult lex = Lex("int a;  // vsd-lint: allow(float-eq, raw-rand)\n");
  ASSERT_EQ(lex.suppressions.count(1), 1u);
  EXPECT_EQ(lex.suppressions[1].count("float-eq"), 1u);
  EXPECT_EQ(lex.suppressions[1].count("raw-rand"), 1u);
}

TEST(LexerTest, PrefixedRawStringsAreSingleLiterals) {
  LexResult lex = Lex(
      "auto a = u8R\"(rand srand)\";\n"
      "auto b = uR\"x(mt19937)x\";\n"
      "auto c = LR\"delim(random_device)delim\";\n"
      "auto d = UR\"(rand)\";\n");
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "mt19937");
      EXPECT_NE(t.text, "random_device");
    }
  }
}

TEST(LexerTest, MacroEndingInRIsNotARawString) {
  // Max munch: `MACRO_R"(x)"` lexes as identifier + ordinary string; only
  // the exact prefixes R / uR / UR / LR / u8R open a raw string.
  LexResult lex = Lex("auto a = MACRO_R\"(x)\";\n");
  ASSERT_GE(lex.tokens.size(), 5u);
  EXPECT_EQ(lex.tokens[3].text, "MACRO_R");
  EXPECT_EQ(lex.tokens[4].kind, TokenKind::kString);
}

TEST(LexerTest, RawStringSpanningLinesKeepsLineCount) {
  LexResult lex = Lex("auto s = R\"(line1\nline2\nline3)\";\nint after;\n");
  const Token* after = nullptr;
  for (const Token& t : lex.tokens) {
    if (t.text == "after") after = &t;
  }
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 4);
}

TEST(LexerTest, DigitSeparatorsStayOneNumberToken) {
  LexResult lex = Lex("int64_t n = 1'000'000; double d = 1'234.5;\n");
  bool found_int = false, found_float = false;
  for (const Token& t : lex.tokens) {
    if (t.text == "1'000'000") {
      found_int = true;
      EXPECT_FALSE(t.is_float);
    }
    if (t.text == "1'234.5") {
      found_float = true;
      EXPECT_TRUE(t.is_float);
    }
  }
  EXPECT_TRUE(found_int);
  EXPECT_TRUE(found_float);
}

TEST(LexerTest, LineContinuationInCommentSwallowsNextLine) {
  // Phase-2 splicing: a // comment ending in backslash continues onto the
  // next line, so `int hidden;` is comment text, not code.
  LexResult lex = Lex("// comment continues \\\nint hidden;\nint visible;\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "hidden");
  }
  const Token* visible = nullptr;
  for (const Token& t : lex.tokens) {
    if (t.text == "visible") visible = &t;
  }
  ASSERT_NE(visible, nullptr);
  EXPECT_EQ(visible->line, 3);
}

TEST(LexerTest, SuppressionInContinuedCommentCoversItsStartLine) {
  LexResult lex =
      Lex("// vsd-lint: allow(raw-rand) reason \\\n   continued\nint x;\n");
  EXPECT_EQ(lex.suppressions.count(1), 1u);
}

// ------------------------------------------------------------- raw-rand ----

TEST(RawRandRule, FlagsStdRandSrandAndEngines) {
  EXPECT_TRUE(HasRule(Rules("src/cot/x.cc", "int v = std::rand();"),
                      "raw-rand"));
  EXPECT_TRUE(HasRule(Rules("src/cot/x.cc", "srand(42);"), "raw-rand"));
  EXPECT_TRUE(HasRule(
      Rules("src/cot/x.cc", "std::mt19937 gen; std::random_device rd;"),
      "raw-rand"));
}

TEST(RawRandRule, AllowsRngImplementationAndMemberAccess) {
  EXPECT_TRUE(Rules("src/common/rng.cc", "int v = std::rand();").empty());
  // A member named `rand` on some config object is not the C library.
  EXPECT_FALSE(
      HasRule(Rules("src/cot/x.cc", "int v = cfg.rand;"), "raw-rand"));
  EXPECT_FALSE(
      HasRule(Rules("src/cot/x.cc", "int v = cfg->rand;"), "raw-rand"));
}

TEST(RawRandRule, CleanCodeUsingVsdRngPasses) {
  EXPECT_TRUE(Rules("src/cot/x.cc",
                    "double D(Rng& rng) { return rng.Uniform(); }")
                  .empty());
}

// ------------------------------------------------------------- rng-fork ----

TEST(RngForkRule, FlagsSharedRngDrawInsideParallelFor) {
  const std::string bad = R"cc(
    void F(Rng& rng, std::vector<double>* out) {
      ParallelFor(8, [&](int64_t i) { (*out)[i] = rng.Uniform(); });
    }
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/explain/x.cc", bad), "rng-fork"));
}

TEST(RngForkRule, FlagsPointerDrawAndForkInsideBody) {
  const std::string bad_ptr = R"cc(
    ParallelFor(n, [&](int64_t i) { out[i] = rng->Next(); });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/explain/x.cc", bad_ptr), "rng-fork"));
  // Fork() mutates the parent, so even forking *inside* the body races.
  const std::string bad_fork = R"cc(
    ParallelFor(n, [&](int64_t i) { Rng child = rng.Fork(); });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/explain/x.cc", bad_fork), "rng-fork"));
}

TEST(RngForkRule, AllowsPreForkedStreamsAndBodyLocals) {
  const std::string good = R"cc(
    void F(Rng* rng, std::vector<double>* out) {
      std::vector<Rng> streams;
      for (int s = 0; s < 8; ++s) streams.push_back(rng->Fork());
      ParallelFor(8, [&](int64_t i) { (*out)[i] = streams[i].Uniform(); });
      ParallelFor(8, [&](int64_t i) {
        Rng local(1234 + i);
        (*out)[i] = local.Normal();
      });
      const std::vector<double> v = ParallelMap<double>(8, [&](int64_t i) {
        Rng& s = streams[i];
        return s.Uniform();
      });
    }
  )cc";
  EXPECT_TRUE(Rules("src/explain/x.cc", good).empty());
}

// ------------------------------------------------------------- float-eq ----

TEST(FloatEqRule, FlagsLiteralAndDeclaredDoubleComparisons) {
  EXPECT_TRUE(HasRule(
      Rules("src/core/metrics.cc", "bool b = x == 0.5;"), "float-eq"));
  EXPECT_TRUE(HasRule(
      Rules("src/common/math_util.cc", "double t = F(); bool b = t != u;"),
      "float-eq"));
}

TEST(FloatEqRule, ScopedToMetricAndMathPaths) {
  // Same code outside the metric kernels is not this rule's business.
  EXPECT_TRUE(Rules("src/cot/pipeline.cc", "bool b = x == 0.5;").empty());
  // Integer comparisons inside the kernels are fine.
  EXPECT_TRUE(
      Rules("src/core/metrics.cc", "bool b = y_true[i] == y_pred[i];")
          .empty());
  EXPECT_TRUE(
      Rules("src/core/metrics.cc", "bool b = a.size() != b.size();").empty());
}

// --------------------------------------------------------- header-guard ----

TEST(HeaderGuardRule, FlagsMissingAndMismatchedGuards) {
  EXPECT_TRUE(
      HasRule(Rules("src/cot/x.h", "int F();\n"), "header-guard"));
  EXPECT_TRUE(HasRule(
      Rules("src/cot/x.h", "#ifndef A_H_\n#define B_H_\n#endif\n"),
      "header-guard"));
}

TEST(HeaderGuardRule, AcceptsPragmaOnceAndMatchingGuard) {
  EXPECT_TRUE(Rules("src/cot/x.h", "#pragma once\nint F();\n").empty());
  EXPECT_TRUE(
      Rules("src/cot/x.h",
            "#ifndef VSD_COT_X_H_\n#define VSD_COT_X_H_\nint F();\n#endif\n")
          .empty());
  // Source files need no guard.
  EXPECT_TRUE(Rules("src/cot/x.cc", "int F() { return 1; }\n").empty());
}

// -------------------------------------------------------- include-order ----

TEST(IncludeOrderRule, FlagsMixedKindsAndUnsortedGroups) {
  EXPECT_TRUE(HasRule(
      Rules("src/cot/x.cc", "#include <vector>\n#include \"cot/x.h\"\n"),
      "include-order"));
  EXPECT_TRUE(HasRule(
      Rules("src/cot/x.cc", "#include <vector>\n#include <cmath>\n"),
      "include-order"));
}

TEST(IncludeOrderRule, AcceptsBlankLineSeparatedSortedGroups) {
  const std::string good =
      "#include \"cot/x.h\"\n\n#include <cmath>\n#include <vector>\n\n"
      "#include \"common/rng.h\"\n#include \"cot/refinement.h\"\n";
  EXPECT_TRUE(Rules("src/cot/x.cc", good).empty());
}

// ------------------------------------------------------- unordered-iter ----

TEST(UnorderedIterRule, FlagsRangeForAndBeginInResultPaths) {
  const std::string bad = R"cc(
    std::unordered_map<int, double> scores;
    void Dump(std::vector<double>* out) {
      for (const auto& kv : scores) out->push_back(kv.second);
    }
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/core/x.cc", bad), "unordered-iter"));
  const std::string bad_begin = R"cc(
    std::unordered_set<int> ids;
    auto it = ids.begin();
  )cc";
  EXPECT_TRUE(HasRule(Rules("bench/x.cc", bad_begin), "unordered-iter"));
}

TEST(UnorderedIterRule, AllowsLookupsOrderedMapsAndNonResultPaths) {
  const std::string lookups = R"cc(
    std::unordered_map<int, double> cache;
    double Get(int k) { auto it = cache.find(k); return it->second; }
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", lookups).empty());
  const std::string ordered = R"cc(
    std::map<int, double> scores;
    void Dump(std::vector<double>* out) {
      for (const auto& kv : scores) out->push_back(kv.second);
    }
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", ordered).empty());
  const std::string non_result = R"cc(
    std::unordered_set<int> visited;
    void Walk() { for (int v : visited) Use(v); }
  )cc";
  EXPECT_TRUE(Rules("src/tensor/x.cc", non_result).empty());
}

TEST(PerSamplePredictRule, FlagsSinglePredictCallsInLoops) {
  const std::string for_loop = R"cc(
    void Eval(const cot::ChainPipeline& pipeline, const Dataset& test) {
      for (const auto& sample : test.samples) {
        Use(pipeline.PredictLabel(sample));
      }
    }
  )cc";
  EXPECT_TRUE(HasRule(Rules("bench/x.cc", for_loop), "per-sample-predict"));
  const std::string while_loop = R"cc(
    void Eval(Model* model) {
      int i = 0;
      while (i < n) {
        Use(model->PredictProbStressed(samples[i]));
        ++i;
      }
    }
  )cc";
  EXPECT_TRUE(
      HasRule(Rules("src/core/x.cc", while_loop), "per-sample-predict"));
  const std::string parallel_map = R"cc(
    const auto labels = ParallelMap<int>(test.size(), [&](int64_t i) {
      return classifier.Predict(test.samples[i]);
    });
  )cc";
  EXPECT_TRUE(
      HasRule(Rules("bench/x.cc", parallel_map), "per-sample-predict"));
  const std::string evaluate_predictor = R"cc(
    const auto metrics = core::EvaluatePredictor(
        [&](const data::VideoSample& sample) {
          return pipeline.PredictLabel(sample);
        },
        test);
  )cc";
  EXPECT_TRUE(HasRule(Rules("bench/x.cc", evaluate_predictor),
                      "per-sample-predict"));
}

TEST(PerSamplePredictRule, AllowsBatchCallsTopLevelCallsAndOtherPaths) {
  const std::string batched = R"cc(
    void Eval(const cot::ChainPipeline& pipeline, const Dataset& test) {
      for (int64_t b = 0; b < NumBatches(n, bs); ++b) {
        Use(pipeline.PredictLabelBatch(Batch(test, b)));
      }
    }
  )cc";
  EXPECT_TRUE(Rules("bench/x.cc", batched).empty());
  const std::string top_level = R"cc(
    int One(const cot::ChainPipeline& pipeline, const Sample& sample) {
      return pipeline.PredictLabel(sample);
    }
  )cc";
  EXPECT_TRUE(Rules("bench/x.cc", top_level).empty());
  const std::string other_path = R"cc(
    void Eval(Model* model) {
      for (const auto& s : samples) Use(model->PredictLabel(s));
    }
  )cc";
  EXPECT_TRUE(Rules("src/cot/x.cc", other_path).empty());
  const std::string suppressed = R"cc(
    void Eval(const cot::ChainPipeline& pipeline, const Dataset& test) {
      for (const auto& sample : test.samples) {
        // vsd-lint: allow(per-sample-predict) retrieval is per-sample
        Use(pipeline.PredictLabel(sample));
      }
    }
  )cc";
  EXPECT_TRUE(Rules("bench/x.cc", suppressed).empty());
}

// -------------------------------------------- blocking-wait-no-deadline ----

TEST(BlockingWaitRule, FlagsBareCvWaitAndFutureGetInServe) {
  const std::string bare_wait = R"cc(
    void Drain() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock);
    }
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/serve/server.cc", bare_wait),
                      "blocking-wait-no-deadline"));
  const std::string future_get = R"cc(
    double Collect(std::future<double>& result_future) {
      return result_future.get();
    }
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/serve/server.cc", future_get),
                      "blocking-wait-no-deadline"));
}

TEST(BlockingWaitRule, AllowsBoundedWaitsOtherGettersAndOtherPaths) {
  const std::string bounded = R"cc(
    void Drain() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(10));
      cv_.wait_until(lock, deadline);
      future.wait_for(std::chrono::seconds(1));
    }
  )cc";
  EXPECT_TRUE(Rules("src/serve/server.cc", bounded).empty());
  // A predicated wait re-checks its condition on every wakeup, so a lost
  // notification cannot park the thread: allowed, even with a lambda whose
  // body contains commas or nested calls.
  const std::string predicated = R"cc(
    void Drain() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return Done(a, b) || stop_; });
    }
  )cc";
  EXPECT_TRUE(Rules("src/serve/server.cc", predicated).empty());
  // unique_ptr::get() and promise::get_future() are not blocking waits.
  const std::string other_getters = R"cc(
    Request* Raw() { return req.get(); }
    std::future<int> F() { return promise.get_future(); }
  )cc";
  EXPECT_TRUE(Rules("src/serve/server.cc", other_getters).empty());
  // The rule is a serving-layer contract; tests and other layers may block.
  const std::string elsewhere = R"cc(
    void Wait(std::future<int>& my_future) {
      cv_.wait(lock);
      my_future.get();
    }
  )cc";
  EXPECT_TRUE(Rules("tests/serve_test.cc", elsewhere).empty());
  EXPECT_TRUE(Rules("src/common/thread_pool.cc", elsewhere).empty());
  const std::string suppressed = R"cc(
    void Drain() {
      // vsd-lint: allow(blocking-wait-no-deadline) joined at shutdown only
      cv_.wait(lock);
    }
  )cc";
  EXPECT_TRUE(Rules("src/serve/server.cc", suppressed).empty());
}

// ---------------------------------------------------- unguarded-capture ----

TEST(UnguardedCaptureRule, FlagsByRefWritesInParallelBodies) {
  const std::string sum = R"cc(
    double total = 0.0;
    ParallelFor(n, [&](int64_t i) { total += v[i]; });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/explain/x.cc", sum), "unguarded-capture"));
  const std::string named = R"cc(
    ParallelFor(n, [&hits](int64_t i) { if (Test(i)) ++hits; });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/core/x.cc", named), "unguarded-capture"));
  const std::string push = R"cc(
    std::vector<double> out;
    pool.ParallelFor(n, [&](int64_t i) { out.push_back(F(i)); });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/core/x.cc", push), "unguarded-capture"));
  const std::string submit = R"cc(
    pool.Submit([&]() { done = true; });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/serve/x.cc", submit), "unguarded-capture"));
}

TEST(UnguardedCaptureRule, FlagsWritesThroughReferenceAliases) {
  // A body-local reference is a second name for the captured object; the
  // write still races.
  const std::string alias_write = R"cc(
    ParallelFor(n, [&](int64_t i) {
      auto& slot = results;
      slot.push_back(F(i));
    });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/core/x.cc", alias_write),
                      "unguarded-capture"));
  const std::string member_alias = R"cc(
    pool.Submit([this]() {
      double& h = this->hidden_;
      h += Step();
    });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/serve/x.cc", member_alias),
                      "unguarded-capture"));
  // Two hops resolve transitively.
  const std::string chained = R"cc(
    ParallelFor(n, [&](int64_t i) {
      auto& a = total;
      auto& b = a;
      b += v[i];
    });
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/explain/x.cc", chained),
                      "unguarded-capture"));
}

TEST(UnguardedCaptureRule, AllowsAliasesOfPerIndexSlotsAndLocals) {
  // A reference into a subscripted slot names per-index storage.
  const std::string per_index_alias = R"cc(
    std::vector<double> out(n);
    ParallelFor(n, [&](int64_t i) {
      double& cell = out[i];
      cell = F(i);
    });
  )cc";
  EXPECT_TRUE(Rules("src/explain/x.cc", per_index_alias).empty());
  // A reference to a body-local object is still local state.
  const std::string local_alias = R"cc(
    ParallelFor(n, [&](int64_t i) {
      double acc = 0.0;
      double& a = acc;
      a += w[i];
      out[i] = a;
    });
  )cc";
  EXPECT_TRUE(Rules("src/explain/x.cc", local_alias).empty());
  // A reference to a call result aliases a temporary, not captured state.
  const std::string call_alias = R"cc(
    ParallelFor(n, [&](int64_t i) {
      auto& row = rows.at(i);
      row = F(i);
    });
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", call_alias).empty());
}

TEST(UnguardedCaptureRule, AllowsPerIndexLocalsAtomicsLocksAndByValue) {
  const std::string per_index = R"cc(
    std::vector<double> out(n);
    ParallelFor(n, [&](int64_t i) { out[i] = F(i); });
  )cc";
  EXPECT_TRUE(Rules("src/explain/x.cc", per_index).empty());
  const std::string locals = R"cc(
    ParallelFor(n, [&](int64_t i) {
      double acc = 0.0;
      for (int64_t j = 0; j < m; ++j) acc += w[i * m + j];
      out[i] = acc;
    });
  )cc";
  EXPECT_TRUE(Rules("src/explain/x.cc", locals).empty());
  const std::string structured = R"cc(
    ParallelFor(chunks, [&](int64_t c) {
      auto [begin, end] = ChunkBounds(n, chunks, c);
      for (int64_t i = begin; i < end; ++i) out[i] = F(i);
    });
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", structured).empty());
  const std::string atomic = R"cc(
    std::atomic<int64_t> done{0};
    ParallelFor(n, [&](int64_t i) { out[i] = F(i); done.fetch_add(1); });
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", atomic).empty());
  const std::string locked = R"cc(
    ParallelFor(n, [&](int64_t i) {
      std::lock_guard<std::mutex> guard(mu);
      total += v[i];
    });
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", locked).empty());
  const std::string by_value = R"cc(
    ParallelFor(n, [scale](int64_t i) mutable { scale *= 2.0; });
  )cc";
  EXPECT_TRUE(Rules("src/core/x.cc", by_value).empty());
  // A Submit *definition* (qualified name) is not a call site.
  const std::string defn = R"cc(
    void StressServer::Submit(Request r) { queue_size += 1; }
  )cc";
  EXPECT_FALSE(HasRule(Rules("src/serve/x.cc", defn), "unguarded-capture"));
}

// ----------------------------------------------------------- wall-clock ----

TEST(WallClockRule, FlagsWallClockReadsInResultPaths) {
  EXPECT_TRUE(HasRule(
      Rules("src/core/x.cc",
            "auto t = std::chrono::system_clock::now();"),
      "wall-clock"));
  EXPECT_TRUE(HasRule(Rules("src/cot/x.cc", "time_t t = time(nullptr);"),
                      "wall-clock"));
}

TEST(WallClockRule, AllowsSteadyClockMembersAndOtherPaths) {
  // steady_clock is monotonic and legitimate for durations.
  EXPECT_TRUE(
      Rules("bench/x.cc", "auto t = std::chrono::steady_clock::now();")
          .empty());
  // Members named `time` belong to their class, not <ctime>.
  EXPECT_TRUE(Rules("src/core/x.cc", "double t = stats.time;").empty());
  // The serving layer may read clocks for deadlines.
  EXPECT_TRUE(
      Rules("src/serve/x.cc", "auto t = std::chrono::system_clock::now();")
          .empty());
}

// ------------------------------------------------------------ thread-id ----

TEST(ThreadIdRule, FlagsThreadIdentityInResultPaths) {
  EXPECT_TRUE(HasRule(
      Rules("src/explain/x.cc", "auto id = std::this_thread::get_id();"),
      "thread-id"));
  EXPECT_TRUE(
      HasRule(Rules("bench/x.cc", "auto id = pthread_self();"), "thread-id"));
}

TEST(ThreadIdRule, AllowsSleepsAndOtherPaths) {
  EXPECT_TRUE(
      Rules("src/core/x.cc", "std::this_thread::sleep_for(d);").empty());
  EXPECT_TRUE(
      Rules("src/common/x.cc", "auto id = std::this_thread::get_id();")
          .empty());
}

// ---------------------------------------------------------- pointer-key ----

TEST(PointerKeyRule, FlagsPointerKeyedOrderedContainers) {
  EXPECT_TRUE(HasRule(
      Rules("src/core/x.cc", "std::map<Node*, double> scores;"),
      "pointer-key"));
  EXPECT_TRUE(HasRule(
      Rules("src/explain/x.cc", "std::set<const Sample*> seen;"),
      "pointer-key"));
}

TEST(PointerKeyRule, AllowsValueKeysPointerValuesAndOtherPaths) {
  // The mapped type may hold pointers; only the key orders iteration.
  EXPECT_TRUE(
      Rules("src/core/x.cc", "std::map<std::string, Node*> by_name;").empty());
  EXPECT_TRUE(Rules("src/core/x.cc", "std::set<int64_t> ids;").empty());
  // A setter is not a container.
  EXPECT_TRUE(Rules("src/core/x.cc", "cfg.set(k, v);").empty());
  EXPECT_TRUE(
      Rules("src/tensor/x.cc", "std::map<Node*, int> order;").empty());
}

TEST(KernelBypassRule, FlagsRawMacLoopsInModelLayers) {
  const std::string mac = R"(
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          out[i * n + j] += a[i * k + p] * b[p * n + j];
        }
      }
  )";
  EXPECT_TRUE(HasRule(Rules("src/nn/layers.cc", mac), "kernel-bypass"));
  EXPECT_TRUE(HasRule(Rules("src/vlm/vision.cc", mac), "kernel-bypass"));
  EXPECT_TRUE(HasRule(Rules("src/tensor/autograd.cc", mac), "kernel-bypass"));
  // Parenthesized factors still count as a multiply-accumulate.
  EXPECT_TRUE(HasRule(
      Rules("src/nn/x.cc", "acc[j] += (scale * q[j]) * w;"), "kernel-bypass"));
}

TEST(KernelBypassRule, AllowsKernelTUsOtherPathsAndNonMacUpdates) {
  const std::string mac = "out[j] += av * brow[j];";
  // The kernel TUs are the one place MAC loops belong.
  EXPECT_TRUE(Rules("src/tensor/kernels.cc", mac).empty());
  EXPECT_TRUE(Rules("src/tensor/kernels_simd.cc", mac).empty());
  // Outside the model layers the rule does not apply.
  EXPECT_TRUE(Rules("src/explain/lime.cc", mac).empty());
  EXPECT_TRUE(Rules("bench/harness.cc", mac).empty());
  // Plain accumulation (no multiply) is not a MAC.
  EXPECT_TRUE(Rules("src/nn/x.cc", "grad[j] += delta;").empty());
  // Scalar accumulators (no subscript store) are reductions, not kernels.
  EXPECT_TRUE(Rules("src/nn/x.cc", "sum += a[i] * b[i];").empty());
  // `*` as a dereference is not a multiply.
  EXPECT_TRUE(Rules("src/nn/x.cc", "out[j] += *p;").empty());
  // Suppression with a reason still works.
  EXPECT_TRUE(Rules("src/nn/x.cc",
                    "// vsd-lint: allow(kernel-bypass)\n"
                    "out[j] += av * brow[j];")
                  .empty());
}

// -------------------------------------------------------- include graph ----

TEST(IncludeGraphTest, LayerTableMatchesArchitecture) {
  EXPECT_EQ(LayerOf("src/common/rng.h"), 0);
  EXPECT_EQ(LayerOf("src/tensor/tensor.h"), 1);
  EXPECT_EQ(LayerOf("src/face/au.h"), 2);
  EXPECT_EQ(LayerOf("src/vlm/foundation_model.h"), 3);
  EXPECT_EQ(LayerOf("src/cot/pipeline.h"), 4);
  EXPECT_EQ(LayerOf("src/explain/sobol.h"), 5);
  EXPECT_EQ(LayerOf("src/core/evaluation.h"), 6);
  EXPECT_EQ(LayerOf("src/serve/server.h"), 7);
  EXPECT_EQ(LayerOf("bench/harness.h"), 8);
  EXPECT_EQ(LayerOf("tests/lint_test.cc"), -1);  // Unconstrained.
}

IncludeGraph GraphOf(
    const std::vector<std::pair<std::string, std::string>>& files) {
  IncludeGraphBuilder builder;
  for (const auto& [path, content] : files) {
    builder.AddFile(path, Lex(content));
  }
  return builder.Build();
}

TEST(IncludeGraphTest, ResolvesQuotedIncludesLikeTheBuild) {
  const IncludeGraph graph = GraphOf({
      {"src/cot/pipeline.h", "#include \"common/rng.h\"\n"},
      {"src/common/rng.h", "#include <cstdint>\n"},
      {"bench/bench_x.cc", "#include \"bench/harness.h\"\n"},
      {"bench/harness.h", "#include \"helpers.h\"\n"},
      {"bench/helpers.h", ""},
  });
  ASSERT_EQ(graph.edges.size(), 3u);  // <cstdint> is not a project edge.
  EXPECT_EQ(graph.edges[0].from, "bench/bench_x.cc");
  EXPECT_EQ(graph.edges[0].to, "bench/harness.h");
  // "helpers.h" resolves relative to the includer's directory.
  EXPECT_EQ(graph.edges[1].to, "bench/helpers.h");
  EXPECT_EQ(graph.edges[2].from, "src/cot/pipeline.h");
  EXPECT_EQ(graph.edges[2].to, "src/common/rng.h");
}

TEST(IncludeGraphTest, UpwardIncludeIsALayeringFinding) {
  const IncludeGraph graph = GraphOf({
      {"src/common/rng.h", "#include \"cot/pipeline.h\"\n"},
      {"src/cot/pipeline.h", ""},
  });
  const std::vector<Finding> findings = CheckLayering(graph);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].file, "src/common/rng.h");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(IncludeGraphTest, DownwardAndSameLayerIncludesAreClean) {
  const IncludeGraph graph = GraphOf({
      {"src/cot/pipeline.h", "#include \"common/rng.h\"\n"
                             "#include \"cot/refinement.h\"\n"},
      {"src/common/rng.h", ""},
      {"src/cot/refinement.h", "#include \"common/rng.h\"\n"},
      {"tests/x_test.cc", "#include \"serve/server.h\"\n"},
      {"src/serve/server.h", ""},
  });
  EXPECT_TRUE(CheckLayering(graph).empty());
  EXPECT_TRUE(CheckCycles(graph).empty());
}

// Pins the AU-vocabulary layering: text (L1) may not reach up into face
// (L2), which is why the vocabulary lives in common/au_vocab.h — the one
// `allow(layering)` suppression this move retired must stay retired.
TEST(IncludeGraphTest, TextReachesAuVocabularyThroughCommonOnly) {
  const IncludeGraph upward = GraphOf({
      {"src/text/templates.h", "#include \"face/au.h\"\n"},
      {"src/face/au.h", ""},
  });
  const std::vector<Finding> findings = CheckLayering(upward);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].file, "src/text/templates.h");
  const IncludeGraph through_common = GraphOf({
      {"src/text/templates.h", "#include \"common/au_vocab.h\"\n"},
      {"src/common/au_vocab.h", ""},
      {"src/face/au.h", "#include \"common/au_vocab.h\"\n"},
  });
  EXPECT_TRUE(CheckLayering(through_common).empty());
}

TEST(IncludeGraphTest, CycleIsReportedOnceWithTheFullPath) {
  const IncludeGraph graph = GraphOf({
      {"src/cot/a.h", "#include \"cot/b.h\"\n"},
      {"src/cot/b.h", "#include \"cot/c.h\"\n"},
      {"src/cot/c.h", "#include \"cot/a.h\"\n"},
  });
  const std::vector<Finding> findings = CheckCycles(graph);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("src/cot/a.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/cot/b.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/cot/c.h"), std::string::npos);
}

TEST(IncludeGraphTest, DotDumpIsModuleLevelWithLayers) {
  const IncludeGraph graph = GraphOf({
      {"src/cot/pipeline.h", "#include \"common/rng.h\"\n"},
      {"src/cot/refinement.h", "#include \"common/rng.h\"\n"},
      {"src/common/rng.h", ""},
  });
  const std::string dot = DumpDot(graph);
  EXPECT_NE(dot.find("digraph vsd_includes"), std::string::npos);
  EXPECT_NE(dot.find("\"src/cot\" [layer=4"), std::string::npos);
  EXPECT_NE(dot.find("\"src/common\" [layer=0"), std::string::npos);
  // Two file-level includes collapse into one labeled module edge.
  EXPECT_NE(dot.find("\"src/cot\" -> \"src/common\" [label=\"2\"]"),
            std::string::npos);
}

// --------------------------------------------------------- suppressions ----

TEST(SuppressionTest, TrailingAndPrecedingCommentsSuppress) {
  EXPECT_TRUE(
      Rules("src/cot/x.cc",
            "int v = std::rand();  // vsd-lint: allow(raw-rand) legacy\n")
          .empty());
  EXPECT_TRUE(Rules("src/cot/x.cc",
                    "// vsd-lint: allow(raw-rand) reason here\n"
                    "int v = std::rand();\n")
                  .empty());
}

TEST(SuppressionTest, OnlyNamedRuleIsSuppressed) {
  const std::string src =
      "int v = std::rand();  // vsd-lint: allow(float-eq)\n";
  EXPECT_TRUE(HasRule(Rules("src/cot/x.cc", src), "raw-rand"));
}

// ---------------------------------------------------- dataflow rules -------
// Engine-level coverage lives in dataflow_test.cc; these pin the rules as
// they fire through the normal LintContent entry point, suppressions
// included. Fixtures are raw strings so the repo's own lint run skips them.

TEST(LockOrderRuleTest, OpposingAcquisitionOrdersAreReported) {
  const std::string src = R"cc(
    std::mutex a;
    std::mutex b;
    void First() {
      std::lock_guard<std::mutex> ga(a);
      std::lock_guard<std::mutex> gb(b);
    }
    void Second() {
      std::lock_guard<std::mutex> gb(b);
      std::lock_guard<std::mutex> ga(a);
    }
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/common/locks.cc", src), "lock-order"));
}

TEST(LockOrderRuleTest, SuppressionOnTheClosingEdgeSilencesIt) {
  const std::string src = R"cc(
    std::mutex a;
    std::mutex b;
    void First() {
      std::lock_guard<std::mutex> ga(a);
      // vsd-lint: allow(lock-order)
      std::lock_guard<std::mutex> gb(b);
    }
    void Second() {
      std::lock_guard<std::mutex> gb(b);
      // vsd-lint: allow(lock-order)
      std::lock_guard<std::mutex> ga(a);
    }
  )cc";
  EXPECT_FALSE(HasRule(Rules("src/common/locks.cc", src), "lock-order"));
}

TEST(NondetTaintRuleTest, LaunderedClockIntoATableIsReported) {
  const std::string src = R"cc(
    void Report(Table& table) {
      const auto now = std::chrono::system_clock::now();
      const double stamp = ToSeconds(now);
      table.AddRow("run", stamp);
    }
  )cc";
  // tools/ is outside the wall-clock result paths: only the taint rule
  // sees the laundered value reach the sink.
  const std::vector<std::string> rules = Rules("tools/report.cc", src);
  EXPECT_TRUE(HasRule(rules, "nondet-taint"));
  EXPECT_FALSE(HasRule(rules, "wall-clock"));
}

TEST(NondetTaintRuleTest, SuppressionOnTheSinkSilencesIt) {
  const std::string src = R"cc(
    void Report(Table& table) {
      const auto now = std::chrono::system_clock::now();
      // vsd-lint: allow(nondet-taint)
      table.AddRow("run", now);
    }
  )cc";
  EXPECT_FALSE(HasRule(Rules("tools/report.cc", src), "nondet-taint"));
}

TEST(HotPathAllocRuleTest, KernelAllocationIsReported) {
  const std::string src = R"cc(
    void MatMul(std::vector<float>& out) {
      out.push_back(1.0f);
    }
  )cc";
  EXPECT_TRUE(
      HasRule(Rules("src/tensor/kernels.cc", src), "hot-path-alloc"));
  // The same code outside a hot path is fine.
  EXPECT_FALSE(HasRule(Rules("src/tensor/ops.cc", src), "hot-path-alloc"));
}

TEST(HotPathAllocRuleTest, SuppressionSilencesIt) {
  const std::string src = R"cc(
    void MatMul(std::vector<float>& out) {
      // vsd-lint: allow(hot-path-alloc)
      out.push_back(1.0f);
    }
  )cc";
  EXPECT_FALSE(
      HasRule(Rules("src/tensor/kernels.cc", src), "hot-path-alloc"));
}

// ---------------------------------------------------------- json output ----

TEST(FindingsToJsonTest, FormatsOneObjectPerLineAndEscapes) {
  const std::vector<Finding> findings = {
      Finding{"a.cc", 3, "float-eq", "say \"hi\"\n\tdone"},
      Finding{"b\\c.cc", 7, "raw-rand", "plain"},
  };
  EXPECT_EQ(FindingsToJson(findings),
            "[\n"
            "  {\"file\": \"a.cc\", \"line\": 3, \"rule\": \"float-eq\", "
            "\"message\": \"say \\\"hi\\\"\\n\\tdone\"},\n"
            "  {\"file\": \"b\\\\c.cc\", \"line\": 7, \"rule\": "
            "\"raw-rand\", \"message\": \"plain\"}\n"
            "]\n");
}

TEST(FindingsToJsonTest, EmptyIsAnEmptyArray) {
  EXPECT_EQ(FindingsToJson({}), "[]\n");
}

TEST(FindingsToSarifTest, EmitsRunDriverRulesAndResults) {
  const std::vector<Finding> findings = {
      Finding{"src/a.cc", 3, "guarded-by", "say \"hi\""},
  };
  const std::string sarif = FindingsToSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"vsd_lint\""), std::string::npos);
  // Every rule is declared so viewers can resolve any ruleId.
  for (const std::string& rule : AllRules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""), std::string::npos);
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"guarded-by\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("say \\\"hi\\\""), std::string::npos);
}

TEST(FindingsToSarifTest, EmptyFindingsIsAValidEmptyRun) {
  const std::string sarif = FindingsToSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

// ------------------------------------------------------ annotation rules ----

TEST(GuardedByRule, FlagsUnlockedAccessAndAcceptsGuardedOne) {
  const std::string src = R"cc(
    class Counter {
     public:
      void Inc() {
        std::lock_guard<std::mutex> lock(mu_);
        n_ += 1;
      }
      int BadRead() { return n_; }

     private:
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  const std::vector<Finding> findings = LintContent("src/x/c.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_EQ(findings[0].line, 8);  // the BadRead body, not Inc.
}

TEST(GuardedByRule, RequiresOnCalleeIsHonoredAndEnforcedAtCallSites) {
  const std::string good = R"cc(
    class Q {
     public:
      void Push(int v) {
        std::lock_guard<std::mutex> lock(mu_);
        PushLocked(v);
      }

     private:
      void PushLocked(int v) VSD_REQUIRES(mu_) { items_ += v; }
      std::mutex mu_;
      int items_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  EXPECT_TRUE(Rules("src/x/c.cc", good).empty());

  const std::string bad = R"cc(
    class Q {
     public:
      void Push(int v) { PushLocked(v); }

     private:
      void PushLocked(int v) VSD_REQUIRES(mu_) { items_ += v; }
      std::mutex mu_;
      int items_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/x/c.cc", bad), "guarded-by"));
}

TEST(GuardedByRule, ManualUnlockWindowIsAFinding) {
  const std::string src = R"cc(
    class W {
     public:
      void F() {
        mu_.lock();
        n_ = 1;
        mu_.unlock();
        n_ = 2;
      }

     private:
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  const std::vector<Finding> findings = LintContent("src/x/c.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_EQ(findings[0].line, 8);  // after unlock(), not the locked write.
}

TEST(GuardedByRule, MultiMutexClassTracksTheRightLock) {
  const std::string src = R"cc(
    class Two {
     public:
      void WrongLock() {
        std::lock_guard<std::mutex> lock(a_mu_);
        b_ = 1;
      }
      void RightLock() {
        std::lock_guard<std::mutex> lock(b_mu_);
        b_ = 2;
      }

     private:
      std::mutex a_mu_;
      std::mutex b_mu_;
      int a_ VSD_GUARDED_BY(a_mu_) = 0;
      int b_ VSD_GUARDED_BY(b_mu_) = 0;
    };
  )cc";
  const std::vector<Finding> findings = LintContent("src/x/c.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 6);  // b_ under a_mu_ only.
}

TEST(GuardedByRule, ExcludesContractFlagsCallsMadeUnderTheLock) {
  const std::string src = R"cc(
    class R {
     public:
      void Drain() VSD_EXCLUDES(mu_) { }
      void Bad() {
        std::lock_guard<std::mutex> lock(mu_);
        n_ = 1;
        Drain();
      }

     private:
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/x/c.cc", src), "guarded-by"));
}

TEST(GuardedByRule, SuppressionSilencesIt) {
  const std::string src = R"cc(
    class Counter {
     public:
      // vsd-lint: allow(guarded-by) reader tolerates a stale value.
      int Peek() { return n_; }

     private:
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  EXPECT_TRUE(Rules("src/x/c.cc", src).empty());
}

TEST(UnannotatedMutexRule, FlagsBareMutexInSrcOnly) {
  const std::string bare = R"cc(
    class C {
      std::mutex mu_;
      int n_ = 0;
    };
  )cc";
  EXPECT_TRUE(HasRule(Rules("src/x/c.cc", bare), "unannotated-mutex"));
  EXPECT_TRUE(Rules("tests/x/c.cc", bare).empty());

  const std::string annotated = R"cc(
    class C {
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc";
  EXPECT_TRUE(Rules("src/x/c.cc", annotated).empty());
}

TEST(RefInvalidationRule, ReferenceUsedAcrossPushBackIsAFinding) {
  const std::string src = R"cc(
    int F() {
      std::vector<int> v;
      v.push_back(1);
      int& r = v[0];
      v.push_back(2);
      return r;
    }
  )cc";
  const std::vector<Finding> findings = LintContent("src/x/c.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ref-invalidation");
  EXPECT_EQ(findings[0].line, 7);  // the use, after the second push_back.
}

// The minimized PR-7 Conv2d::BuildGraph shape: a pointer into a vector
// held across a same-class call that appends to the same vector.
TEST(RefInvalidationRule, PointerHeldAcrossMutatingMemberCallIsAFinding) {
  const std::string src = R"cc(
    class Graph {
     public:
      int* Append(int v) {
        nodes_.push_back(v);
        return &nodes_.back();
      }
      int Build() {
        nodes_.push_back(1);
        int* first = &nodes_[0];
        Append(7);
        return *first;
      }

     private:
      std::vector<int> nodes_;
    };
  )cc";
  const std::vector<Finding> findings = LintContent("src/x/c.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ref-invalidation");
  EXPECT_EQ(findings[0].line, 12);  // *first after Append().
}

TEST(RefInvalidationRule, UseBeforeMutationAndNodeContainersAreClean) {
  const std::string before = R"cc(
    int F() {
      std::vector<int> v;
      v.push_back(1);
      int& r = v[0];
      int x = r;
      v.push_back(2);
      return x;
    }
  )cc";
  EXPECT_TRUE(Rules("src/x/c.cc", before).empty());

  // std::map references survive insertion; only contiguous containers
  // invalidate on growth.
  const std::string node_based = R"cc(
    int G() {
      std::map<int, int> m;
      int& r = m[0];
      m.emplace(1, 1);
      return r;
    }
  )cc";
  EXPECT_TRUE(Rules("src/x/c.cc", node_based).empty());
}

TEST(RefInvalidationRule, SuppressionSilencesIt) {
  const std::string src = R"cc(
    int F() {
      std::vector<int> v;
      v.reserve(2);
      int& r = v[0];
      v.push_back(2);
      // vsd-lint: allow(ref-invalidation) reserve() above pins capacity.
      return r;
    }
  )cc";
  EXPECT_TRUE(Rules("src/x/c.cc", src).empty());
}

// ------------------------------------------------------ suppression audit ----

TEST(AuditFilesTest, FlagsStaleKeepsLiveAndIgnoresUnknownRules) {
  const std::string live = R"cc(
    // vsd-lint: allow(float-eq) — exact guard is intended here.
    bool Same(double x, double y) { return x == y; }
  )cc";
  const std::string stale = R"cc(
    // vsd-lint: allow(float-eq) — nothing fires here anymore.
    int Answer() { return 42; }
  )cc";
  const std::string unknown = R"cc(
    // Doc text quoting the syntax, vsd-lint: allow(<rule>), parses too —
    // placeholder names are not real rules and are never audited.
    int Docs() { return 1; }
  )cc";
  const std::vector<Finding> findings = AuditFiles({
      {"src/core/metrics.cc", live},
      {"src/core/stale.cc", stale},
      {"src/core/docs.cc", unknown},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stale-suppression");
  EXPECT_EQ(findings[0].file, "src/core/stale.cc");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(AuditFilesTest, TreeLevelRulesCountAsLive) {
  // A live lock-order suppression: the finding it matches is produced by
  // the whole-program pass, not the per-file one.
  const std::string src = R"cc(
    std::mutex a;
    std::mutex b;
    void First() {
      std::lock_guard<std::mutex> ga(a);
      // vsd-lint: allow(lock-order)
      std::lock_guard<std::mutex> gb(b);
    }
    void Second() {
      std::lock_guard<std::mutex> gb(b);
      // vsd-lint: allow(lock-order)
      std::lock_guard<std::mutex> ga(a);
    }
  )cc";
  // Exactly one of the two comments matches the cycle's closing edge; the
  // other is reported as stale — the audit is precise about which line the
  // finding lands on.
  const std::vector<Finding> findings =
      AuditFiles({{"src/common/locks.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stale-suppression");
}

// ------------------------------------------------------------ parallelism ----

// LintTree's contract: output is byte-identical at any thread count.
TEST(LintTreeTest, OutputIsByteIdenticalAcrossThreadCounts) {
  const int before = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(1);
  const std::vector<Finding> serial = LintTree(
      VSD_SOURCE_DIR, {"src", "bench", "tools", "tests", "examples"});
  ThreadPool::SetGlobalThreads(4);
  const std::vector<Finding> parallel = LintTree(
      VSD_SOURCE_DIR, {"src", "bench", "tools", "tests", "examples"});
  ThreadPool::SetGlobalThreads(before);

  std::string a, b;
  for (const Finding& f : serial) a += f.ToString() + "\n";
  for (const Finding& f : parallel) b += f.ToString() + "\n";
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- misc -----

TEST(FindingTest, ToStringIsClickable) {
  Finding f{"src/cot/x.cc", 12, "raw-rand", "msg"};
  EXPECT_EQ(f.ToString(), "src/cot/x.cc:12: [raw-rand] msg");
}

TEST(AllRulesTest, NamesAreStable) {
  const std::vector<std::string> expected = {
      "raw-rand",       "rng-fork",      "float-eq",
      "header-guard",   "include-order", "unordered-iter",
      "per-sample-predict", "blocking-wait-no-deadline",
      "unguarded-capture",  "wall-clock", "thread-id",
      "pointer-key",    "layering",      "include-cycle",
      "lock-order",     "nondet-taint",  "hot-path-alloc",
      "kernel-bypass",  "guarded-by",    "unannotated-mutex",
      "ref-invalidation",
  };
  EXPECT_EQ(AllRules(), expected);
}

// The enforcement test: the real tree must lint clean — per-file rules and
// the whole-program graph rules (layering, include-cycle) both. New code
// that trips a rule either gets fixed or carries an explicit, reasoned
// suppression.
TEST(MetaTest, RepoSourceTreeIsLintClean) {
  const std::vector<Finding> findings = LintTree(
      VSD_SOURCE_DIR, {"src", "bench", "tools", "tests", "examples"});
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_TRUE(findings.empty());
}

// The repo's own include graph must stay acyclic — not suppressible, since
// a cyclic graph admits no layering at all.
TEST(MetaTest, RepoIncludeGraphIsAcyclic) {
  const IncludeGraph graph = BuildIncludeGraphFromTree(
      VSD_SOURCE_DIR, {"src", "bench", "tools", "tests", "examples"});
  EXPECT_GT(graph.files.size(), 50u);
  EXPECT_GT(graph.edges.size(), 100u);
  for (const Finding& f : CheckCycles(graph)) {
    ADD_FAILURE() << f.ToString();
  }
}

}  // namespace
}  // namespace vsd::lint
