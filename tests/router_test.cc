// Router contract suite: consistent-hash placement is deterministic and
// session-sticky, failover walks the ring in a fixed order, adding a
// replica moves only a bounded fraction of sessions, and admission control
// sheds over-quota tenants before any replica queue is touched.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <vector>

#include "common/faults.h"
#include "common/thread_pool.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "serve/admission.h"
#include "serve/replica_pool.h"
#include "serve/router.h"
#include "vlm/foundation_model.h"

namespace vsd::serve {
namespace {

using ServeFuture = std::future<vsd::Result<ServeResult>>;

vsd::Result<ServeResult> Get(ServeFuture& future) {
  const auto status = future.wait_for(std::chrono::seconds(120));
  EXPECT_EQ(status, std::future_status::ready) << "future never resolved";
  if (status != std::future_status::ready) {
    return Status::Internal("future never resolved");
  }
  return future.get();
}

struct ModelWorld {
  data::Dataset dataset;
  vlm::FoundationModel model;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline;

  ModelWorld()
      : dataset(data::MakeUvsdSimSmall(16, 77)),
        model(MakeConfig()),
        pipeline(&model, chain) {
    model.PrecomputeFeatures(dataset);
  }

  static ModelWorld& Shared() {
    static ModelWorld* world = new ModelWorld();
    return *world;
  }

  static vlm::FoundationModelConfig MakeConfig() {
    vlm::FoundationModelConfig config;
    config.vision_dim = 12;
    config.hidden_dim = 24;
    config.au_feature_dim = 12;
    config.seed = 21;
    return config;
  }
};

class RouterTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().Disable();
    ThreadPool::SetGlobalThreads(1);
  }
};

ReplicaPool::Config SteppedPoolConfig(const ManualClock* clock) {
  ReplicaPool::Config config;
  config.replica.num_workers = 0;
  config.replica.clock = clock;
  config.replica.max_batch = 4;
  config.replica.max_batch_delay_micros = 1000;
  return config;
}

std::vector<const cot::ChainPipeline*> Pipelines(int n) {
  return std::vector<const cot::ChainPipeline*>(
      static_cast<size_t>(n), &ModelWorld::Shared().pipeline);
}

// ------------------------------------------------------------ placement ----

TEST_F(RouterTest, PlacementIsDeterministicStickyAndCoversAllReplicas) {
  ManualClock clock;
  ReplicaPool pool(Pipelines(3), SteppedPoolConfig(&clock));
  Router router(&pool, RouterConfig{});

  std::set<int> used;
  for (uint64_t session = 0; session < 256; ++session) {
    const int first = router.PickReplica(session, 0);
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 3);
    used.insert(first);
    // Same session, same health: same replica, every time.
    EXPECT_EQ(router.PickReplica(session, 0), first);
  }
  // 256 sessions over 3 replicas x 16 vnodes: every replica owns some arc.
  EXPECT_EQ(used.size(), 3u);
}

TEST_F(RouterTest, FailoverWalkSkipsUnroutableAndTriedReplicas) {
  ManualClock clock;
  ReplicaPool pool(Pipelines(3), SteppedPoolConfig(&clock));
  Router router(&pool, RouterConfig{});

  for (uint64_t session = 0; session < 64; ++session) {
    const int preferred = router.PickReplica(session, 0);
    // Quarantining the preferred replica reroutes to a different one, and
    // the choice is stable while health is unchanged.
    pool.SetHealthForTest(preferred, ReplicaHealth::kQuarantined);
    const int next = router.PickReplica(session, 0);
    EXPECT_NE(next, preferred);
    EXPECT_EQ(router.PickReplica(session, 0), next);
    // Re-admission restores the original placement (ring is immutable).
    pool.SetHealthForTest(preferred, ReplicaHealth::kHealthy);
    EXPECT_EQ(router.PickReplica(session, 0), preferred);

    // The tried mask wins over health: a healthy-but-tried replica is
    // skipped, and a fully tried mask yields -1 (degrade where you stand).
    const int after_tried =
        router.PickReplica(session, uint64_t{1} << preferred);
    EXPECT_NE(after_tried, preferred);
    EXPECT_EQ(router.PickReplica(session, 0b111), -1);
  }
}

TEST_F(RouterTest, AddingAReplicaMovesABoundedFractionOfSessions) {
  ManualClock clock;
  ReplicaPool pool3(Pipelines(3), SteppedPoolConfig(&clock));
  Router router3(&pool3, RouterConfig{});
  ReplicaPool pool4(Pipelines(4), SteppedPoolConfig(&clock));
  Router router4(&pool4, RouterConfig{});

  const int kSessions = 1024;
  int moved = 0;
  for (uint64_t session = 0; session < kSessions; ++session) {
    const int before = router3.PickReplica(session, 0);
    const int after = router4.PickReplica(session, 0);
    if (after != before) {
      // Consistent hashing: sessions only ever move *to* the new replica,
      // never shuffle among the old ones.
      EXPECT_EQ(after, 3) << "session " << session;
      ++moved;
    }
  }
  // Expected move fraction is ~1/4; anything under half shows the ring is
  // doing its job (a modulo router would move ~3/4).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kSessions / 2);
}

// ------------------------------------------------------------ admission ----

TEST(AdmissionControllerTest, TokenBucketRefillsAndSheds) {
  AdmissionConfig config;
  config.enabled = true;
  config.default_quota.tokens_per_sec = 10.0;
  config.default_quota.burst = 2.0;
  config.batch_headroom = 0.0;
  AdmissionController admission(config);

  // A fresh tenant starts with a full bucket of `burst` tokens.
  EXPECT_TRUE(admission.Admit(1, QosClass::kInteractive, 0).ok());
  EXPECT_TRUE(admission.Admit(1, QosClass::kInteractive, 0).ok());
  const Status shed = admission.Admit(1, QosClass::kInteractive, 0);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);

  // 100ms at 10 tokens/sec refills exactly one token.
  EXPECT_TRUE(admission.Admit(1, QosClass::kInteractive, 100000).ok());
  EXPECT_FALSE(admission.Admit(1, QosClass::kInteractive, 100000).ok());

  // Tenants are isolated: tenant 2's bucket is untouched.
  EXPECT_TRUE(admission.Admit(2, QosClass::kInteractive, 100000).ok());
}

TEST(AdmissionControllerTest, BatchClassKeepsInteractiveHeadroom) {
  AdmissionConfig config;
  config.enabled = true;
  config.default_quota.tokens_per_sec = 0.0;  // No refill: pure burst.
  config.default_quota.burst = 4.0;
  config.batch_headroom = 0.5;  // Bottom 2 tokens: interactive only.
  AdmissionController admission(config);

  // Batch requests drain down to the headroom floor, then shed...
  EXPECT_TRUE(admission.Admit(9, QosClass::kBatch, 0).ok());
  EXPECT_TRUE(admission.Admit(9, QosClass::kBatch, 0).ok());
  EXPECT_FALSE(admission.Admit(9, QosClass::kBatch, 0).ok());
  // ...while interactive requests keep landing to the last token.
  EXPECT_TRUE(admission.Admit(9, QosClass::kInteractive, 0).ok());
  EXPECT_TRUE(admission.Admit(9, QosClass::kInteractive, 0).ok());
  EXPECT_FALSE(admission.Admit(9, QosClass::kInteractive, 0).ok());
}

TEST_F(RouterTest, AdmissionShedsBeforeAnyReplicaQueueIsTouched) {
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool pool(Pipelines(2), SteppedPoolConfig(&clock));
  RouterConfig config;
  config.admission.enabled = true;
  config.admission.default_quota.tokens_per_sec = 0.0;
  config.admission.default_quota.burst = 3.0;
  config.admission.batch_headroom = 0.0;
  Router router(&pool, config);

  std::vector<ServeFuture> futures;
  for (int i = 0; i < 8; ++i) {
    RequestOptions options;
    options.session = static_cast<uint64_t>(i);
    options.tenant = 42;
    futures.push_back(router.Submit(world.dataset.samples[0], options));
  }
  // Over-quota submissions resolve immediately, without a queue slot.
  int admitted = 0;
  int shed = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      vsd::Result<ServeResult> r = f.get();
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      ++shed;
    } else {
      ++admitted;
    }
  }
  EXPECT_EQ(shed, 5);
  EXPECT_EQ(admitted, 3);
  const RouterStatsSnapshot stats = router.Stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.shed_admission, 5);
  EXPECT_EQ(pool.AggregateStats().submitted, 3);
  pool.Pump();  // Not yet due; just exercises the stepped path.
  clock.Advance(2000);
  pool.Pump();
  pool.Shutdown();
}

TEST_F(RouterTest, QueueFullWalksToNextReplicaThenSheds) {
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool::Config config = SteppedPoolConfig(&clock);
  config.replica.max_queue = 2;
  ReplicaPool pool(Pipelines(2), config);
  Router router(&pool, RouterConfig{});

  // One session: all requests prefer the same replica; the third and
  // fourth spill to the neighbor, the fifth finds every queue full.
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 5; ++i) {
    RequestOptions options;
    options.session = 99;
    futures.push_back(router.Submit(world.dataset.samples[0], options));
  }
  vsd::Result<ServeResult> last = Get(futures.back());
  EXPECT_EQ(last.status().code(), StatusCode::kUnavailable);
  const RouterStatsSnapshot stats = router.Stats();
  EXPECT_EQ(stats.shed_queue_full, 1);
  // Refusals: one per spill (requests 3 and 4) plus both replicas for the
  // shed request.
  EXPECT_EQ(pool.AggregateStats().rejected_queue_full, 4);

  clock.Advance(2000);
  pool.Pump();
  for (int i = 0; i < 4; ++i) {
    vsd::Result<ServeResult> r = Get(futures[static_cast<size_t>(i)]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->degradation, DegradationLevel::kFull);
  }
}

}  // namespace
}  // namespace vsd::serve
