#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/faults.h"
#include "common/math_util.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"

namespace vsd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

Status FailThrough() {
  VSD_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailThrough();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  VSD_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());
  EXPECT_FALSE(QuarterOf(3).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reached
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Normal();
  EXPECT_NEAR(Mean(xs), 0.0, 0.03);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, SampleIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.SampleIndex(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, SampleIndexEmptyOrZero) {
  Rng rng(19);
  EXPECT_EQ(rng.SampleIndex({}), -1);
  EXPECT_EQ(rng.SampleIndex({0.0, 0.0}), -1);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, SampleWithoutReplacementClamps) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(37);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RngTest, ForkConsumesExactlyOneParentDraw) {
  // Load-bearing for deterministic parallelism: forking k children then
  // drawing from the parent must be equivalent to k Next() calls, so the
  // parent stream's future is fixed by the number of forks alone.
  Rng a(41);
  Rng b(41);
  Rng child = a.Fork();
  (void)child;
  b.Next();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ForkThenDrawOrderIsDeterministic) {
  // Identical parents forked at identical points yield identical children,
  // and a child's stream is fixed at fork time: nothing the parent (or any
  // sibling) draws afterwards can change it.
  Rng a(43);
  Rng b(43);
  std::vector<Rng> children_a;
  std::vector<Rng> children_b;
  for (int i = 0; i < 5; ++i) children_a.push_back(a.Fork());
  for (int i = 0; i < 5; ++i) children_b.push_back(b.Fork());
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k < 16; ++k) {
      EXPECT_EQ(children_a[i].Next(), children_b[i].Next())
          << "child " << i;
    }
  }
  EXPECT_EQ(a.Next(), b.Next());

  Rng c(43);
  Rng child_c = c.Fork();
  c.Next();
  c.Next();  // parent draws after the fork must not touch the child
  Rng d(43);
  Rng child_d = d.Fork();
  for (int k = 0; k < 16; ++k) EXPECT_EQ(child_c.Next(), child_d.Next());
}

TEST(RngTest, ForkedStreamIndependentOfParentSubsequentDraws) {
  // The child's uniforms must be statistically independent of the draws
  // the parent makes after the fork (near-zero Pearson correlation), and
  // still look uniform themselves.
  Rng parent(47);
  Rng child = parent.Fork();
  const int n = 20000;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = child.Uniform();
    ys[i] = parent.Uniform();
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double covariance = 0.0;
  for (int i = 0; i < n; ++i) covariance += (xs[i] - mx) * (ys[i] - my);
  covariance /= n;
  const double correlation = covariance / (StdDev(xs) * StdDev(ys));
  EXPECT_NEAR(correlation, 0.0, 0.02);
  EXPECT_NEAR(mx, 0.5, 0.01);
  EXPECT_NEAR(my, 0.5, 0.01);
}

TEST(StringTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  auto kept = Split("a,b,,c", ',', /*keep_empty=*/true);
  EXPECT_EQ(kept.size(), 4u);
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringTest, Predicates) {
  EXPECT_TRUE(StartsWith("eyebrow raised", "eye"));
  EXPECT_FALSE(StartsWith("eye", "eyebrow"));
  EXPECT_TRUE(EndsWith("raised", "sed"));
  EXPECT_TRUE(ContainsIgnoreCase("The Inner BROW", "inner brow"));
  EXPECT_FALSE(ContainsIgnoreCase("cheek", "lip"));
}

TEST(StringTest, Formatting) {
  EXPECT_EQ(FormatPercent(0.9581), "95.81%");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(MathTest, SigmoidStable) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(MathTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, Softmax) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&xs);
  EXPECT_NEAR(xs[0] + xs[1] + xs[2], 1.0, 1e-12);
  EXPECT_GT(xs[2], xs[1]);
  // Low temperature sharpens.
  std::vector<double> ys = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&ys, 0.1);
  EXPECT_GT(ys[2], xs[2]);
}

TEST(MathTest, MeanStd) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(MathTest, Cosine) {
  EXPECT_NEAR(CosineSimilarity(std::vector<double>{1, 0},
                               std::vector<double>{0, 1}),
              0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(std::vector<double>{1, 2},
                               std::vector<double>{2, 4}),
              1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity(std::vector<double>{0, 0},
                             std::vector<double>{1, 1}),
            0.0);
}

TEST(MathTest, ArgMaxTopK) {
  std::vector<double> xs = {0.3, 0.9, 0.1, 0.7};
  EXPECT_EQ(ArgMax(xs), 1);
  EXPECT_EQ(ArgMax({}), -1);
  auto top2 = TopK(xs, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1);
  EXPECT_EQ(top2[1], 3);
  EXPECT_EQ(TopK(xs, 10).size(), 4u);
}

TEST(TableTest, RendersAlignedAndCsv) {
  Table t({"Method", "Acc."});
  t.AddRow({"Ours", "95.81%"});
  t.AddSeparator();
  t.AddRow({"TSDNet", "85.42%"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Ours"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("Method,Acc.\n"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3);  // separator counts as a row slot
}

TEST(TableTest, CsvQuotesCommas) {
  Table t({"a"});
  t.AddRow({"x,y"});
  EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

// ---- Fault injection ----

TEST(FaultsTest, DisabledInjectorNeverFires) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Disable();
  EXPECT_FALSE(injector.enabled());
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_FALSE(injector.ShouldInject(FaultKind::kTransient, "site", key));
    EXPECT_TRUE(injector.InjectTransient("site", key).ok());
    EXPECT_FALSE(injector.InjectStall("site", key));
  }
  EXPECT_EQ(injector.TotalCount(), 0);
}

TEST(FaultsTest, SameSeedSameDecisionsAcrossReconfigure) {
  FaultInjector& injector = FaultInjector::Global();
  FaultConfig config;
  config.enabled = true;
  config.seed = 11;
  config.transient_rate = 0.25;
  config.corrupt_rate = 0.1;

  injector.Configure(config);
  std::vector<bool> first;
  for (uint64_t key = 0; key < 500; ++key) {
    first.push_back(injector.ShouldInject(FaultKind::kTransient, "a", key));
    first.push_back(injector.ShouldInject(FaultKind::kCorruptFrame, "a", key));
  }
  // Reconfigure with the same seed: the schedule is a pure function of
  // (seed, kind, site, key), so call history cannot matter.
  injector.Configure(config);
  std::vector<bool> second;
  for (uint64_t key = 0; key < 500; ++key) {
    second.push_back(injector.ShouldInject(FaultKind::kTransient, "a", key));
    second.push_back(
        injector.ShouldInject(FaultKind::kCorruptFrame, "a", key));
  }
  EXPECT_EQ(first, second);
  injector.Disable();
}

TEST(FaultsTest, DecisionsVaryWithSeedSiteAndKind) {
  FaultInjector& injector = FaultInjector::Global();
  FaultConfig config;
  config.enabled = true;
  config.seed = 11;
  config.transient_rate = 0.5;
  config.corrupt_rate = 0.5;
  injector.Configure(config);

  int seed_diff = 0, site_diff = 0, kind_diff = 0;
  std::vector<bool> base;
  for (uint64_t key = 0; key < 300; ++key) {
    base.push_back(injector.ShouldInject(FaultKind::kTransient, "a", key));
  }
  for (uint64_t key = 0; key < 300; ++key) {
    site_diff +=
        injector.ShouldInject(FaultKind::kTransient, "b", key) != base[key];
    kind_diff +=
        injector.ShouldInject(FaultKind::kCorruptFrame, "a", key) != base[key];
  }
  config.seed = 12;
  injector.Configure(config);
  for (uint64_t key = 0; key < 300; ++key) {
    seed_diff +=
        injector.ShouldInject(FaultKind::kTransient, "a", key) != base[key];
  }
  // Independent fair-coin streams differ on ~half the keys; >0 is all the
  // contract needs (no cross-stream coupling).
  EXPECT_GT(seed_diff, 50);
  EXPECT_GT(site_diff, 50);
  EXPECT_GT(kind_diff, 50);
  injector.Disable();
}

TEST(FaultsTest, FiringFrequencyTracksRateAndCounts) {
  FaultInjector& injector = FaultInjector::Global();
  FaultConfig config;
  config.enabled = true;
  config.seed = 5;
  config.transient_rate = 0.1;
  injector.Configure(config);

  const int n = 2000;
  int fired = 0;
  for (uint64_t key = 0; key < static_cast<uint64_t>(n); ++key) {
    fired += injector.ShouldInject(FaultKind::kTransient, "site", key);
  }
  // 10% +- a generous tolerance for 2000 hash draws.
  EXPECT_GT(fired, n / 20);
  EXPECT_LT(fired, n / 5);
  EXPECT_EQ(injector.count(FaultKind::kTransient), fired);
  EXPECT_EQ(injector.count(FaultKind::kStall), 0);
  EXPECT_EQ(injector.TotalCount(), fired);
  injector.ResetCounts();
  EXPECT_EQ(injector.TotalCount(), 0);
  injector.Disable();
}

TEST(FaultsTest, ZeroAndOneRatesAreExact) {
  FaultInjector& injector = FaultInjector::Global();
  FaultConfig config;
  config.enabled = true;
  config.seed = 5;
  config.transient_rate = 1.0;
  config.corrupt_rate = 0.0;
  injector.Configure(config);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(injector.ShouldInject(FaultKind::kTransient, "s", key));
    EXPECT_FALSE(injector.ShouldInject(FaultKind::kCorruptFrame, "s", key));
    EXPECT_FALSE(injector.InjectTransient("s", key).ok());
  }
  injector.Disable();
}

TEST(FaultsTest, ParseFaultSpecReadsRatesStallAndSeed) {
  const FaultConfig config = ParseFaultSpec(
      "transient=0.1, corrupt=0.05, nan=0.01, stall=0.02, stall_us=500, "
      "seed=7");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_DOUBLE_EQ(config.transient_rate, 0.1);
  EXPECT_DOUBLE_EQ(config.corrupt_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.nan_rate, 0.01);
  EXPECT_DOUBLE_EQ(config.stall_rate, 0.02);
  EXPECT_EQ(config.stall_micros, 500);

  const FaultConfig off = ParseFaultSpec("seed=3");
  EXPECT_FALSE(off.enabled);
  const FaultConfig empty = ParseFaultSpec("");
  EXPECT_FALSE(empty.enabled);
}

TEST(FaultsTest, FaultHashIsStableAndSpreads) {
  EXPECT_EQ(FaultHash(1, 2), FaultHash(1, 2));
  EXPECT_NE(FaultHash(1, 2), FaultHash(2, 1));
  EXPECT_NE(FaultHash(0, 0), FaultHash(0, 1));
}

TEST(FaultsTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kTransient), "transient");
  EXPECT_STREQ(FaultKindName(FaultKind::kCorruptFrame), "corrupt-frame");
  EXPECT_STREQ(FaultKindName(FaultKind::kNanActivation), "nan-activation");
  EXPECT_STREQ(FaultKindName(FaultKind::kStall), "stall");
}

}  // namespace
}  // namespace vsd
