// Replica-pool contract suite, on the injectable serve clock: stepped
// (virtual-time) serving is bit-identical to a direct PredictBatch; the
// circuit breaker walks closed -> open -> half-open -> closed reproducibly;
// deadlines, backoff overflow, heartbeat quarantine/re-admission, and
// down-replica failover all behave as pure functions of the event sequence
// — at every thread-pool width.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "common/thread_pool.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "serve/replica_pool.h"
#include "serve/router.h"
#include "vlm/foundation_model.h"

namespace vsd::serve {
namespace {

using ServeFuture = std::future<vsd::Result<ServeResult>>;

/// Bounded retrieval: a hung future fails the test instead of hanging it.
vsd::Result<ServeResult> Get(ServeFuture& future) {
  const auto status = future.wait_for(std::chrono::seconds(120));
  EXPECT_EQ(status, std::future_status::ready) << "future never resolved";
  if (status != std::future_status::ready) {
    return Status::Internal("future never resolved");
  }
  return future.get();
}

/// Small untrained model + dataset shared across tests (inference only).
struct ModelWorld {
  data::Dataset dataset;
  vlm::FoundationModel model;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline;

  ModelWorld()
      : dataset(data::MakeUvsdSimSmall(24, 4321)),
        model(MakeConfig()),
        pipeline(&model, chain) {
    model.PrecomputeFeatures(dataset);
  }

  std::vector<const data::VideoSample*> Pointers() const {
    std::vector<const data::VideoSample*> out;
    for (const auto& s : dataset.samples) out.push_back(&s);
    return out;
  }

  static ModelWorld& Shared() {
    static ModelWorld* world = new ModelWorld();
    return *world;
  }

  static vlm::FoundationModelConfig MakeConfig() {
    vlm::FoundationModelConfig config;
    config.vision_dim = 12;
    config.hidden_dim = 24;
    config.au_feature_dim = 12;
    config.seed = 11;
    return config;
  }
};

/// Every test leaves the global injector and pool the way it found them.
class ReplicaPoolTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().Disable();
    ThreadPool::SetGlobalThreads(1);
  }
};

ReplicaPool::Config SteppedPoolConfig(const ManualClock* clock) {
  ReplicaPool::Config config;
  config.replica.num_workers = 0;
  config.replica.clock = clock;
  config.replica.max_batch = 4;
  config.replica.max_batch_delay_micros = 1000;
  config.replica.max_queue = 256;
  return config;
}

/// Drives a stepped pool (and optional heartbeat cadence) until every
/// queued request has resolved or `max_steps` virtual events elapsed.
void DrainVirtual(ManualClock* clock, ReplicaPool* pool,
                  int64_t heartbeat_every = 0, int max_steps = 10000) {
  int64_t next_heartbeat =
      heartbeat_every > 0 ? clock->NowMicros() + heartbeat_every : 0;
  for (int step = 0; step < max_steps; ++step) {
    pool->Pump();
    int64_t next = pool->NextEventMicros();
    if (heartbeat_every > 0) next = std::min(next, next_heartbeat);
    if (next == Replica::kNoEvent) return;
    clock->Set(std::max(clock->NowMicros(), next));
    if (heartbeat_every > 0 && clock->NowMicros() >= next_heartbeat) {
      pool->Heartbeat();
      next_heartbeat += heartbeat_every;
    }
  }
  FAIL() << "virtual drain did not converge";
}

// ----------------------------------------------- stepped-mode identity ----

TEST_F(ReplicaPoolTest, SteppedFaultsOffServingMatchesDirectPredictBatch) {
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  const auto samples = world.Pointers();
  const std::vector<double> direct = world.pipeline.PredictBatch(samples);

  ManualClock clock;
  ReplicaPool::Config config = SteppedPoolConfig(&clock);
  config.replica.breaker_threshold = 2;  // Enabled; must not perturb.
  ReplicaPool pool({&world.pipeline}, config);

  std::vector<ServeFuture> futures;
  for (const auto* s : samples) {
    futures.push_back(pool.replica(0).Submit(*s, RequestOptions{}));
  }
  DrainVirtual(&clock, &pool);
  for (size_t i = 0; i < futures.size(); ++i) {
    vsd::Result<ServeResult> result = Get(futures[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->degradation, DegradationLevel::kFull);
    EXPECT_EQ(result->prob_stressed, direct[i]) << "sample " << i;
    EXPECT_EQ(result->replica, 0);
    EXPECT_GE(result->latency_micros, 0);
  }
  EXPECT_EQ(pool.AggregateStats().completed_full,
            static_cast<int64_t>(samples.size()));
}

TEST_F(ReplicaPoolTest, RoutedThreeReplicaServingMatchesDirectPredictBatch) {
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  const auto samples = world.Pointers();
  const std::vector<double> direct = world.pipeline.PredictBatch(samples);

  ManualClock clock;
  ReplicaPool pool({&world.pipeline, &world.pipeline, &world.pipeline},
                   SteppedPoolConfig(&clock));
  Router router(&pool, RouterConfig{});

  std::vector<ServeFuture> futures;
  for (size_t i = 0; i < samples.size(); ++i) {
    RequestOptions options;
    options.session = i;  // Spread sessions over the ring.
    futures.push_back(router.Submit(*samples[i], options));
  }
  DrainVirtual(&clock, &pool);
  bool used_nonzero_replica = false;
  for (size_t i = 0; i < futures.size(); ++i) {
    vsd::Result<ServeResult> result = Get(futures[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->prob_stressed, direct[i]) << "sample " << i;
    EXPECT_EQ(result->failovers, 0);
    used_nonzero_replica |= result->replica != 0;
  }
  EXPECT_TRUE(used_nonzero_replica) << "ring sent every session to replica 0";
}

// ------------------------------------------------------- retry policy ----

TEST(BackoffMicrosTest, HighAttemptCountsSaturateWithoutOverflow) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 500;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 4000;
  EXPECT_EQ(BackoffMicros(policy, 1), 500);
  EXPECT_EQ(BackoffMicros(policy, 2), 1000);
  EXPECT_EQ(BackoffMicros(policy, 4), 4000);  // Capped.
  // Exponents that would overflow any integer width still just saturate.
  EXPECT_EQ(BackoffMicros(policy, 100), 4000);
  EXPECT_EQ(BackoffMicros(policy, 1000000), 4000);

  // A huge cap cannot trip the double -> int64 narrowing either.
  policy.max_backoff_micros = INT64_MAX;
  const int64_t huge = BackoffMicros(policy, 1000);
  EXPECT_EQ(huge, INT64_MAX);

  // Non-growing multipliers short-circuit instead of iterating.
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_micros = 4000;
  EXPECT_EQ(BackoffMicros(policy, 1), 500);
  EXPECT_EQ(BackoffMicros(policy, 2000000000), 500);
}

// ---------------------------------------------------- breaker on clock ----

TEST(CircuitBreakerTest, WalksOpenHalfOpenClosedOnVirtualClock) {
  CircuitBreaker breaker(/*threshold=*/2, /*open_micros=*/1000);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.ShouldShortCircuit(0));

  breaker.RecordFailure(10);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(20);  // Streak reaches the threshold: opens.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.ShouldShortCircuit(21));
  EXPECT_TRUE(breaker.ShouldShortCircuit(1019));

  // Window elapsed: the next batch is admitted as a half-open probe.
  EXPECT_FALSE(breaker.ShouldShortCircuit(1020));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // Probe fails: re-opens immediately for a fresh window.
  breaker.RecordFailure(1030);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.ShouldShortCircuit(2029));
  EXPECT_FALSE(breaker.ShouldShortCircuit(2030));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // Probe succeeds: closed, streak cleared.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_FALSE(breaker.ShouldShortCircuit(2031));
}

TEST_F(ReplicaPoolTest, BreakerShortCircuitsBatchesOnManualClock) {
  // Transient faults at rate 1.0: every attempt fails, so the breaker
  // opens on the first request's first attempt; its own retry and the
  // whole second request are then shorted without touching the pipeline.
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 7;
  faults.transient_rate = 1.0;
  FaultInjector::Global().Configure(faults);

  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool::Config config = SteppedPoolConfig(&clock);
  config.replica.breaker_threshold = 1;
  config.replica.breaker_reset_micros = 1000000;
  config.replica.retry.max_retries = 1;
  ReplicaPool pool({&world.pipeline}, config);
  Replica& replica = pool.replica(0);

  ServeFuture first = replica.Submit(world.dataset.samples[0],
                                     RequestOptions{});
  DrainVirtual(&clock, &pool);
  vsd::Result<ServeResult> r1 = Get(first);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->degradation, DegradationLevel::kPrior);
  // One real attempt; the requeued retry was shorted by the open breaker.
  EXPECT_EQ(r1->attempts, 1);
  EXPECT_EQ(replica.BreakerState(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(replica.Stats().breaker_short_circuits, 1);

  ServeFuture second = replica.Submit(world.dataset.samples[1],
                                      RequestOptions{});
  DrainVirtual(&clock, &pool);
  vsd::Result<ServeResult> r2 = Get(second);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->degradation, DegradationLevel::kPrior);
  EXPECT_EQ(r2->attempts, 0);  // Shorted before any attempt.
  EXPECT_EQ(replica.Stats().breaker_short_circuits, 2);

  // Past the open window the next batch is admitted as a half-open probe;
  // with the fault cleared it succeeds and closes the breaker — all on
  // virtual time.
  FaultInjector::Global().Disable();
  clock.Advance(config.replica.breaker_reset_micros + 1);
  ServeFuture third = replica.Submit(world.dataset.samples[2],
                                     RequestOptions{});
  DrainVirtual(&clock, &pool);
  vsd::Result<ServeResult> r3 = Get(third);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->degradation, DegradationLevel::kFull);  // Probe succeeded.
  EXPECT_EQ(replica.BreakerState(), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------------------ deadlines ----

TEST_F(ReplicaPoolTest, AlreadyExpiredDeadlineResolvesBeforeAnyAttempt) {
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock(1000000);
  ReplicaPool pool({&world.pipeline}, SteppedPoolConfig(&clock));
  Replica& replica = pool.replica(0);

  RequestOptions options;
  options.deadline_micros = 500;
  ServeFuture doomed = replica.Submit(world.dataset.samples[0], options);
  // The deadline passes before the batch delay elapses: the request must
  // resolve DeadlineExceeded without ever reaching the pipeline.
  clock.Advance(501);
  pool.Pump();
  vsd::Result<ServeResult> result = Get(doomed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const ServeStatsSnapshot stats = replica.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.batches_cut, 0);
}

// ----------------------------------------- health: quarantine/re-entry ----

TEST_F(ReplicaPoolTest, HeartbeatQuarantinesAndReadmitsDeterministically) {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 13;
  faults.replica_down_rate = 1.0;  // Every probe: down.
  FaultInjector::Global().Configure(faults);

  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool::Config config = SteppedPoolConfig(&clock);
  config.health_reentry_heartbeats = 2;
  ReplicaPool pool({&world.pipeline, &world.pipeline}, config);

  pool.Heartbeat();
  EXPECT_EQ(pool.health(0), ReplicaHealth::kQuarantined);
  EXPECT_EQ(pool.health(1), ReplicaHealth::kQuarantined);
  EXPECT_TRUE(pool.replica(0).down());
  PoolHealthSnapshot snap = pool.HealthSnapshot();
  EXPECT_EQ(snap.quarantines, 2);
  EXPECT_EQ(snap.down_heartbeats, 2);

  // Fault cleared: one up heartbeat is not enough to re-admit...
  FaultInjector::Global().Disable();
  pool.Heartbeat();
  EXPECT_EQ(pool.health(0), ReplicaHealth::kQuarantined);
  // ...two consecutive are.
  pool.Heartbeat();
  EXPECT_EQ(pool.health(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(pool.health(1), ReplicaHealth::kHealthy);
  snap = pool.HealthSnapshot();
  EXPECT_EQ(snap.readmissions, 2);
  EXPECT_EQ(snap.epoch, 3);
}

TEST_F(ReplicaPoolTest, ConsecutiveServeFailuresQuarantineWithoutHeartbeat) {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 3;
  faults.transient_rate = 1.0;
  FaultInjector::Global().Configure(faults);

  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool::Config config = SteppedPoolConfig(&clock);
  config.replica.retry.max_retries = 0;
  config.health_fail_threshold = 3;
  ReplicaPool pool({&world.pipeline}, config);

  std::vector<ServeFuture> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        pool.replica(0).Submit(world.dataset.samples[0], RequestOptions{}));
  }
  DrainVirtual(&clock, &pool);
  for (auto& f : futures) {
    vsd::Result<ServeResult> r = Get(f);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->degradation, DegradationLevel::kPrior);
  }
  EXPECT_EQ(pool.health(0), ReplicaHealth::kQuarantined);
  EXPECT_EQ(pool.HealthSnapshot().quarantines, 1);
}

// ------------------------------------------------- down-replica failover ----

/// Runs the down-replica failover scenario at the given pool width and
/// returns every resolved (prob, replica, failovers, degradation) tuple in
/// submission order.
struct Outcome {
  double prob = 0.0;
  int replica = 0;
  int failovers = 0;
  DegradationLevel degradation = DegradationLevel::kFull;
};

std::vector<Outcome> RunFailoverScenario(int pool_threads) {
  ThreadPool::SetGlobalThreads(pool_threads);
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool pool({&world.pipeline, &world.pipeline, &world.pipeline},
                   SteppedPoolConfig(&clock));
  Router router(&pool, RouterConfig{});

  // Requests are placed while every replica is healthy; replica 1 then
  // goes down (as the heartbeat would mark it after a kReplicaDown probe)
  // before any batch is processed, so the requests it already accepted
  // must fail over to their next ring neighbor.
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 24; ++i) {
    RequestOptions options;
    options.session = static_cast<uint64_t>(i);
    futures.push_back(router.Submit(world.dataset.samples[
        static_cast<size_t>(i) % world.dataset.samples.size()], options));
  }
  pool.SetHealthForTest(1, ReplicaHealth::kQuarantined);
  pool.replica(1).SetDown(true);

  std::vector<Outcome> outcomes;
  DrainVirtual(&clock, &pool);
  for (auto& f : futures) {
    vsd::Result<ServeResult> r = Get(f);
    EXPECT_TRUE(r.ok());
    Outcome o;
    if (r.ok()) {
      o.prob = r->prob_stressed;
      o.replica = r->replica;
      o.failovers = r->failovers;
      o.degradation = r->degradation;
    }
    outcomes.push_back(o);
  }
  // Zero loss: nothing resolved on the down replica, nothing degraded.
  bool any_failover = false;
  for (const Outcome& o : outcomes) {
    EXPECT_NE(o.replica, 1);
    EXPECT_EQ(o.degradation, DegradationLevel::kFull);
    any_failover |= o.failovers > 0;
  }
  EXPECT_TRUE(any_failover) << "no session was ever placed on replica 1";
  EXPECT_EQ(pool.replica(1).Stats().completed_full, 0);
  return outcomes;
}

TEST_F(ReplicaPoolTest, HashRingFailoverIsIdenticalAcrossThreadCounts) {
  const std::vector<Outcome> at1 = RunFailoverScenario(1);
  ThreadPool::SetGlobalThreads(1);
  const std::vector<Outcome> at4 = RunFailoverScenario(4);
  ASSERT_EQ(at1.size(), at4.size());
  for (size_t i = 0; i < at1.size(); ++i) {
    EXPECT_EQ(at1[i].prob, at4[i].prob) << "request " << i;
    EXPECT_EQ(at1[i].replica, at4[i].replica) << "request " << i;
    EXPECT_EQ(at1[i].failovers, at4[i].failovers) << "request " << i;
  }
}

TEST_F(ReplicaPoolTest, AllReplicasDownStillAnswersEveryRequest) {
  FaultInjector::Global().Disable();
  ModelWorld& world = ModelWorld::Shared();
  ManualClock clock;
  ReplicaPool pool({&world.pipeline, &world.pipeline},
                   SteppedPoolConfig(&clock));
  Router router(&pool, RouterConfig{});
  for (int r = 0; r < pool.num_replicas(); ++r) {
    pool.SetHealthForTest(r, ReplicaHealth::kQuarantined);
    pool.replica(r).SetDown(true);
  }
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 8; ++i) {
    RequestOptions options;
    options.session = static_cast<uint64_t>(i);
    futures.push_back(router.Submit(world.dataset.samples[0], options));
  }
  DrainVirtual(&clock, &pool);
  for (auto& f : futures) {
    vsd::Result<ServeResult> r = Get(f);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Nowhere healthy to go: answered from the degradation ladder, with
    // each replica tried at most once.
    EXPECT_EQ(r->degradation, DegradationLevel::kPrior);
    EXPECT_LE(r->failovers, 1);
  }
}

// -------------------------------------------------------- threaded mode ----

TEST_F(ReplicaPoolTest, ThreadedPoolUnderRealClockResolvesEverything) {
  FaultInjector::Global().Disable();
  ThreadPool::SetGlobalThreads(2);
  ModelWorld& world = ModelWorld::Shared();
  ReplicaPool::Config config;
  config.replica.num_workers = 1;
  config.replica.max_batch = 4;
  config.replica.max_batch_delay_micros = 500;
  ReplicaPool pool({&world.pipeline, &world.pipeline}, config);
  Router router(&pool, RouterConfig{});

  const std::vector<double> direct =
      world.pipeline.PredictBatch(world.Pointers());
  std::vector<std::vector<ServeFuture>> futures(2);
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < world.dataset.samples.size(); ++i) {
        RequestOptions options;
        options.session = static_cast<uint64_t>(i);
        options.tenant = static_cast<uint64_t>(t);
        futures[static_cast<size_t>(t)].push_back(
            router.Submit(world.dataset.samples[i], options));
      }
    });
  }
  for (auto& p : producers) p.join();
  for (auto& lane : futures) {
    for (size_t i = 0; i < lane.size(); ++i) {
      vsd::Result<ServeResult> r = Get(lane[i]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->prob_stressed, direct[i]) << "sample " << i;
    }
  }
  pool.Shutdown();
}

}  // namespace
}  // namespace vsd::serve
