#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/clip.h"
#include "data/folds.h"
#include "data/generator.h"
#include "data/sample.h"

namespace vsd::data {
namespace {

TEST(GeneratorTest, UvsdSimMatchesPaperCardinalities) {
  // Full-size generation is a few seconds; use it once here.
  Dataset uvsd = MakeUvsdSim();
  EXPECT_EQ(uvsd.size(), 2092);
  EXPECT_EQ(uvsd.CountSubjects(), 112);
  // Label noise flips ~1% of the 920/1172 split; allow slack.
  EXPECT_NEAR(uvsd.CountLabel(kStressed), 920, 60);
}

TEST(GeneratorTest, RslSimMatchesPaperCardinalities) {
  Dataset rsl = MakeRslSim();
  EXPECT_EQ(rsl.size(), 706);
  EXPECT_EQ(rsl.CountSubjects(), 60);
  EXPECT_NEAR(rsl.CountLabel(kStressed), 209, 40);
}

TEST(GeneratorTest, DisfaSimHasAuLabelsOnly) {
  Dataset disfa = MakeDisfaSim(3, 100);
  EXPECT_EQ(disfa.size(), 100);
  for (const auto& sample : disfa.samples) {
    EXPECT_EQ(sample.stress_label, kNoStressLabel);
  }
  // At least some AU variety.
  int active_total = 0;
  for (const auto& sample : disfa.samples) {
    active_total += face::AuMaskCount(sample.au_label);
  }
  EXPECT_GT(active_total, 50);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Dataset a = MakeUvsdSimSmall(50, 9);
  Dataset b = MakeUvsdSimSmall(50, 9);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].stress_label, b.samples[i].stress_label);
    EXPECT_EQ(a.samples[i].expressive_frame.pixels(),
              b.samples[i].expressive_frame.pixels());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  Dataset a = MakeUvsdSimSmall(50, 1);
  Dataset b = MakeUvsdSimSmall(50, 2);
  int label_diff = 0;
  for (int i = 0; i < a.size(); ++i) {
    label_diff +=
        (a.samples[i].stress_label != b.samples[i].stress_label);
  }
  EXPECT_GT(label_diff, 0);
}

TEST(GeneratorTest, AuLabelMatchesIntensityThreshold) {
  Dataset d = MakeUvsdSimSmall(40, 3);
  for (const auto& sample : d.samples) {
    for (int j = 0; j < face::kNumAus; ++j) {
      EXPECT_EQ(sample.au_label[j], sample.au_intensity[j] >= 0.3f);
    }
  }
}

TEST(GeneratorTest, StressedSamplesShowTensionAus) {
  // Class-conditional statistics should follow the configured profile:
  // AU4 (index 2) much more frequent under stress; AU12 (index 6) much
  // more frequent otherwise.
  Dataset d = MakeUvsdSimSmall(800, 4);
  int au4_s = 0, au4_u = 0, au12_s = 0, au12_u = 0, n_s = 0, n_u = 0;
  for (const auto& sample : d.samples) {
    if (sample.stress_label == kStressed) {
      ++n_s;
      au4_s += sample.au_label[2];
      au12_s += sample.au_label[6];
    } else {
      ++n_u;
      au4_u += sample.au_label[2];
      au12_u += sample.au_label[6];
    }
  }
  EXPECT_GT(static_cast<double>(au4_s) / n_s,
            static_cast<double>(au4_u) / n_u + 0.3);
  EXPECT_GT(static_cast<double>(au12_u) / n_u,
            static_cast<double>(au12_s) / n_s + 0.3);
}

TEST(GeneratorTest, ActivationProbabilityInterpolates) {
  const double pu = AuActivationProbability(2, false, 1.0);
  const double full = AuActivationProbability(2, true, 1.0);
  const double half = AuActivationProbability(2, true, 0.5);
  EXPECT_NEAR(half, pu + 0.5 * (full - pu), 1e-12);
}

TEST(GeneratorTest, NeutralFrameLessExpressive) {
  Dataset d = MakeUvsdSimSmall(30, 5);
  for (const auto& sample : d.samples) {
    float expressive_sum = 0.0f;
    float neutral_sum = 0.0f;
    for (int j = 0; j < face::kNumAus; ++j) {
      expressive_sum += sample.render_params.au_intensity[j];
      neutral_sum += sample.neutral_params.au_intensity[j];
    }
    EXPECT_LE(neutral_sum, expressive_sum + 1e-5f);
  }
}

TEST(GeneratorTest, AugmentFramesPreservesLabels) {
  Dataset d = MakeDisfaSim(6, 20);
  Dataset augmented = AugmentFrames(d, 2, 7);
  EXPECT_EQ(augmented.size(), 60);
  // Ids unique.
  std::set<int> ids;
  for (const auto& sample : augmented.samples) ids.insert(sample.id);
  EXPECT_EQ(ids.size(), 60u);
  // Each copy keeps the AU label but differs in pixels.
  EXPECT_EQ(augmented.samples[0].au_label, augmented.samples[1].au_label);
  EXPECT_NE(augmented.samples[0].expressive_frame.pixels(),
            augmented.samples[1].expressive_frame.pixels());
}

TEST(DatasetTest, SubsetKeepsIdsAndOrder) {
  Dataset d = MakeUvsdSimSmall(20, 8);
  Dataset subset = d.Subset({3, 7, 11});
  ASSERT_EQ(subset.size(), 3);
  EXPECT_EQ(subset.samples[0].id, 3);
  EXPECT_EQ(subset.samples[2].id, 11);
}

TEST(FoldsTest, KFoldPartitionsExactly) {
  Dataset d = MakeUvsdSimSmall(100, 10);
  Rng rng(1);
  auto splits = StratifiedKFold(d, 5, &rng);
  ASSERT_EQ(splits.size(), 5u);
  std::multiset<int> all_test;
  for (const auto& split : splits) {
    EXPECT_EQ(static_cast<int>(split.train.size() + split.test.size()),
              d.size());
    for (int i : split.test) all_test.insert(i);
    // Train and test are disjoint.
    std::set<int> train(split.train.begin(), split.train.end());
    for (int i : split.test) EXPECT_FALSE(train.count(i));
  }
  // Every sample appears in exactly one test fold.
  EXPECT_EQ(static_cast<int>(all_test.size()), d.size());
  std::set<int> unique_test(all_test.begin(), all_test.end());
  EXPECT_EQ(static_cast<int>(unique_test.size()), d.size());
}

TEST(FoldsTest, KFoldIsStratified) {
  Dataset d = MakeUvsdSimSmall(200, 11);
  const double overall =
      static_cast<double>(d.CountLabel(kStressed)) / d.size();
  Rng rng(2);
  auto splits = StratifiedKFold(d, 4, &rng);
  for (const auto& split : splits) {
    int stressed = 0;
    for (int i : split.test) {
      stressed += (d.samples[i].stress_label == kStressed);
    }
    const double fraction = static_cast<double>(stressed) /
                            static_cast<double>(split.test.size());
    EXPECT_NEAR(fraction, overall, 0.08);
  }
}

TEST(FoldsTest, HoldoutRespectsFraction) {
  Dataset d = MakeUvsdSimSmall(100, 12);
  Rng rng(3);
  auto split = StratifiedHoldout(d, 0.3, &rng);
  EXPECT_NEAR(static_cast<double>(split.test.size()), 30.0, 3.0);
  EXPECT_EQ(static_cast<int>(split.train.size() + split.test.size()),
            d.size());
}

TEST(ClipTest, ExpressivenessScoreTracksIntensity) {
  Rng rng(41);
  face::FaceParams calm;
  face::FaceParams expressive;
  expressive.au_intensity[2] = 0.9f;
  expressive.au_intensity[6] = 0.8f;
  EXPECT_GT(ExpressivenessScore(expressive, 0.0f, nullptr),
            ExpressivenessScore(calm, 0.0f, nullptr));
}

TEST(ClipTest, MakeStressClipShapes) {
  Rng rng(42);
  std::array<float, face::kNumAus> peak{};
  peak[2] = 0.9f;
  peak[7] = 0.7f;
  VideoClip clip = MakeStressClip(5, 3, face::Identity::Sample(&rng), peak,
                                  kStressed, 8, &rng);
  EXPECT_EQ(clip.frames.size(), 8u);
  EXPECT_EQ(clip.frame_params.size(), 8u);
  EXPECT_EQ(clip.stress_label, kStressed);
  for (const auto& frame : clip.frames) {
    EXPECT_EQ(frame.width(), face::kFaceSize);
  }
}

TEST(ClipTest, SelectFramePairPicksPeakAndRest) {
  Rng rng(43);
  std::array<float, face::kNumAus> peak{};
  peak[2] = 1.0f;
  peak[9] = 0.9f;
  VideoClip clip = MakeStressClip(7, 1, face::Identity::Sample(&rng), peak,
                                  kStressed, 10, &rng);
  VideoSample sample = SelectFramePair(clip, 0.0f, &rng);
  EXPECT_EQ(sample.id, 7);
  EXPECT_EQ(sample.stress_label, kStressed);
  // f_e must be more expressive than f_l (by generative intensity sum).
  float e_sum = 0.0f;
  float l_sum = 0.0f;
  for (int j = 0; j < face::kNumAus; ++j) {
    e_sum += sample.render_params.au_intensity[j];
    l_sum += sample.neutral_params.au_intensity[j];
  }
  EXPECT_GT(e_sum, l_sum);
  // The AU label reflects the expressive frame.
  EXPECT_TRUE(sample.au_label[2]);
}

TEST(ClipTest, SelectFramePairDeterministicWithoutNoise) {
  Rng rng(44);
  std::array<float, face::kNumAus> peak{};
  peak[6] = 0.8f;
  VideoClip clip = MakeStressClip(9, 2, face::Identity::Sample(&rng), peak,
                                  kUnstressed, 6, &rng);
  VideoSample a = SelectFramePair(clip, 0.0f, nullptr);
  VideoSample b = SelectFramePair(clip, 0.0f, nullptr);
  EXPECT_EQ(a.expressive_frame.pixels(), b.expressive_frame.pixels());
  EXPECT_EQ(a.neutral_frame.pixels(), b.neutral_frame.pixels());
}

}  // namespace
}  // namespace vsd::data
