#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "core/evaluation.h"
#include "core/metrics.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"

namespace vsd::core {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<int> y = {0, 1, 0, 1, 1};
  const Metrics m = ComputeMetrics(y, y);
  EXPECT_EQ(m.accuracy, 1.0);
  EXPECT_EQ(m.precision, 1.0);
  EXPECT_EQ(m.recall, 1.0);
  EXPECT_EQ(m.f1, 1.0);
  EXPECT_EQ(m.n, 5);
}

TEST(MetricsTest, AllWrong) {
  const Metrics m = ComputeMetrics({0, 1}, {1, 0});
  EXPECT_EQ(m.accuracy, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(MetricsTest, KnownConfusionMatrix) {
  // y_true: 4 positives, 4 negatives. Predictions: 3 TP, 1 FN, 1 FP, 3 TN.
  const std::vector<int> y_true = {1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<int> y_pred = {1, 1, 1, 0, 1, 0, 0, 0};
  const Metrics m = ComputeMetrics(y_true, y_pred);
  EXPECT_NEAR(m.accuracy, 6.0 / 8.0, 1e-12);
  // Class 1: P = 3/4, R = 3/4; class 0: P = 3/4, R = 3/4; macro = 0.75.
  EXPECT_NEAR(m.precision, 0.75, 1e-12);
  EXPECT_NEAR(m.recall, 0.75, 1e-12);
  EXPECT_NEAR(m.f1, 0.75, 1e-12);
}

TEST(MetricsTest, MacroAveragingHandlesImbalance) {
  // Majority-class predictor on a 90/10 split: high accuracy, poor macro.
  std::vector<int> y_true;
  std::vector<int> y_pred;
  for (int i = 0; i < 90; ++i) {
    y_true.push_back(0);
    y_pred.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    y_true.push_back(1);
    y_pred.push_back(0);
  }
  const Metrics m = ComputeMetrics(y_true, y_pred);
  EXPECT_NEAR(m.accuracy, 0.9, 1e-12);
  EXPECT_NEAR(m.recall, 0.5, 1e-12);  // (1.0 + 0.0) / 2
  EXPECT_LT(m.f1, 0.5);
}

TEST(MetricsTest, EmptyInput) {
  const Metrics m = ComputeMetrics({}, {});
  EXPECT_EQ(m.n, 0);
  EXPECT_EQ(m.accuracy, 0.0);
}

TEST(MetricsTest, AverageWeightsBySize) {
  Metrics a;
  a.accuracy = 1.0;
  a.n = 10;
  Metrics b;
  b.accuracy = 0.0;
  b.n = 30;
  const Metrics avg = AverageMetrics({a, b});
  EXPECT_NEAR(avg.accuracy, 0.25, 1e-12);
  EXPECT_EQ(avg.n, 40);
}

TEST(MetricsTest, RowFormatting) {
  Metrics m;
  m.accuracy = 0.9581;
  m.precision = 0.9605;
  m.recall = 0.9282;
  m.f1 = 0.9422;
  const auto row = m.ToRow();
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], "95.81%");
  EXPECT_EQ(row[3], "94.22%");
}

TEST(EvaluationTest, EvaluatePredictorCountsCorrectly) {
  data::Dataset d = data::MakeUvsdSimSmall(40, 61);
  const Metrics oracle = EvaluatePredictor(
      [](const data::VideoSample& s) { return s.stress_label; }, d);
  EXPECT_EQ(oracle.accuracy, 1.0);
  const Metrics constant = EvaluatePredictor(
      [](const data::VideoSample&) { return 1; }, d);
  EXPECT_LT(constant.accuracy, 1.0);
}

TEST(EvaluationTest, FoldsFromEnv) {
  unsetenv("VSD_FOLDS");
  EXPECT_EQ(NumFoldsFromEnv(3), 3);
  setenv("VSD_FOLDS", "7", 1);
  EXPECT_EQ(NumFoldsFromEnv(3), 7);
  setenv("VSD_FOLDS", "junk", 1);
  EXPECT_EQ(NumFoldsFromEnv(3), 3);
  unsetenv("VSD_FOLDS");
}

TEST(StressDetectorTest, TrainPredictExplainEndToEnd) {
  data::Dataset stress = data::MakeUvsdSimSmall(80, 71);
  data::Dataset au_data = data::MakeDisfaSim(72, 60);
  Rng rng(1);
  auto split = data::StratifiedHoldout(stress, 0.25, &rng);
  data::Dataset train = stress.Subset(split.train);
  data::Dataset test = stress.Subset(split.test);

  StressDetector::Options options;
  options.model.vision_dim = 16;
  options.model.hidden_dim = 32;
  options.model.au_feature_dim = 12;
  options.chain.describe_epochs = 3;
  options.chain.describe_augment_copies = 0;
  options.chain.assess_epochs = 4;
  options.chain.highlight_warmup_epochs = 1;
  options.chain.dpo_epochs = 1;
  options.chain.k_repeats = 2;
  options.chain.max_refine_rounds = 1;
  options.chain.rationale_dpo_samples = 8;
  options.pretrain_generalist = false;  // keep the test fast
  StressDetector detector(options);
  detector.Train(au_data, train, &rng);
  detector.PrecomputeFeatures(test);

  const Metrics metrics = EvaluatePipeline(detector.pipeline(), test);
  EXPECT_GT(metrics.accuracy, 0.55);  // beats chance on a small set

  const auto& sample = test.samples[0];
  const int label = detector.Predict(sample);
  EXPECT_TRUE(label == 0 || label == 1);
  const std::string explanation = detector.Explain(sample);
  EXPECT_NE(explanation.find("facial"), std::string::npos);
  const double p = detector.PredictProbStressed(sample);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(StressDetectorTest, SaveLoadRoundTripPreservesPredictions) {
  data::Dataset stress = data::MakeUvsdSimSmall(60, 72);
  data::Dataset au_data = data::MakeDisfaSim(73, 40);
  Rng rng(2);
  StressDetector::Options options;
  options.model.vision_dim = 16;
  options.model.hidden_dim = 32;
  options.model.au_feature_dim = 12;
  options.chain.describe_epochs = 2;
  options.chain.describe_augment_copies = 0;
  options.chain.assess_epochs = 3;
  options.chain.highlight_warmup_epochs = 1;
  options.chain.dpo_epochs = 1;
  options.chain.max_refine_rounds = 1;
  options.chain.rationale_dpo_samples = 4;
  options.pretrain_generalist = false;
  StressDetector trained(options);
  trained.Train(au_data, stress, &rng);
  trained.PrecomputeFeatures(stress);

  const std::string path =
      std::string(::testing::TempDir()) + "/detector.vsdm";
  ASSERT_TRUE(trained.SaveModel(path).ok());

  StressDetector restored(options);
  ASSERT_TRUE(restored.LoadModel(path).ok());
  restored.PrecomputeFeatures(stress);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(trained.Predict(stress.samples[i]),
              restored.Predict(stress.samples[i]));
    EXPECT_NEAR(trained.PredictProbStressed(stress.samples[i]),
                restored.PredictProbStressed(stress.samples[i]), 1e-6);
  }
  std::remove(path.c_str());
}

TEST(StressDetectorTest, LoadModelRejectsWrongArchitecture) {
  StressDetector::Options small;
  small.model.vision_dim = 12;
  small.model.hidden_dim = 24;
  small.model.au_feature_dim = 12;
  small.pretrain_generalist = false;
  StressDetector a(small);
  const std::string path =
      std::string(::testing::TempDir()) + "/small.vsdm";
  ASSERT_TRUE(a.SaveModel(path).ok());
  StressDetector::Options big;
  big.pretrain_generalist = false;
  StressDetector b(big);
  EXPECT_FALSE(b.LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(StressDetectorTest, FromPretrainedBaseClones) {
  vlm::FoundationModelConfig config;
  config.vision_dim = 16;
  config.hidden_dim = 32;
  config.au_feature_dim = 12;
  config.seed = 9;
  vlm::FoundationModel base(config);
  cot::ChainConfig chain;
  StressDetector a(base, chain);
  StressDetector b(base, chain);
  data::Dataset d = data::MakeUvsdSimSmall(10, 81);
  a.PrecomputeFeatures(d);
  b.PrecomputeFeatures(d);
  // Identical initial behaviour, independent objects.
  EXPECT_EQ(a.PredictProbStressed(d.samples[0]),
            b.PredictProbStressed(d.samples[0]));
  EXPECT_NE(&a.model(), &b.model());
}

}  // namespace
}  // namespace vsd::core
