#include <gtest/gtest.h>

#include "common/rng.h"
#include "cot/chain_config.h"
#include "cot/icl.h"
#include "cot/pipeline.h"
#include "cot/refinement.h"
#include "cot/trainer.h"
#include "data/folds.h"
#include "data/generator.h"
#include "text/templates.h"
#include "vlm/foundation_model.h"

namespace vsd::cot {
namespace {

using face::AuMask;

vlm::FoundationModelConfig SmallConfig(uint64_t seed = 1) {
  vlm::FoundationModelConfig config;
  config.vision_dim = 16;
  config.hidden_dim = 32;
  config.au_feature_dim = 12;
  config.seed = seed;
  return config;
}

ChainConfig FastChainConfig() {
  ChainConfig config;
  config.describe_epochs = 3;
  config.describe_augment_copies = 0;
  config.assess_epochs = 8;
  config.highlight_warmup_epochs = 1;
  config.dpo_epochs = 1;
  config.k_repeats = 2;
  config.n_rationales = 2;
  config.max_refine_rounds = 1;
  config.rationale_dpo_samples = 10;
  return config;
}

class CotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stress_ = data::MakeUvsdSimSmall(60, 31);
    au_data_ = data::MakeDisfaSim(32, 40);
    model_ = std::make_unique<vlm::FoundationModel>(SmallConfig());
    model_->PrecomputeFeatures(stress_);
  }
  data::Dataset stress_;
  data::Dataset au_data_;
  std::unique_ptr<vlm::FoundationModel> model_;
};

TEST_F(CotTest, HelpfulnessIsAFraction) {
  Rng rng(1);
  SelfRefinement refinement(model_.get(), FastChainConfig(), &stress_);
  const double h = refinement.Helpfulness(stress_.samples[0], AuMask{},
                                          /*true_label=*/1, &rng);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, 1.0);
}

TEST_F(CotTest, FaithfulnessIsAFraction) {
  Rng rng(2);
  SelfRefinement refinement(model_.get(), FastChainConfig(), &stress_);
  const double f =
      refinement.Faithfulness(stress_.samples[0], AuMask{}, &rng);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST_F(CotTest, RefineDescriptionKeepsOriginalOnRejection) {
  Rng rng(3);
  ChainConfig config = FastChainConfig();
  config.max_refine_rounds = 2;
  SelfRefinement refinement(model_.get(), config, &stress_);
  AuMask initial{};
  initial[0] = true;
  const auto outcome = refinement.RefineDescription(
      stress_.samples[1], initial, stress_.samples[1].stress_label, &rng);
  EXPECT_EQ(outcome.original_mask, initial);
  if (!outcome.replaced) {
    EXPECT_EQ(outcome.final_mask, initial);
  } else {
    EXPECT_NE(outcome.final_mask, initial);
  }
}

TEST_F(CotTest, RationaleFlipScoreBounds) {
  SelfRefinement refinement(model_.get(), FastChainConfig(), &stress_);
  const auto& sample = stress_.samples[2];
  AuMask description{};
  description[2] = description[6] = true;
  const int assessment =
      model_->Assess(sample, description, 0.0, nullptr).label;
  const std::vector<int> rationale = {2, 6};
  const int score = refinement.RationaleFlipScore(sample, description,
                                                  assessment, rationale);
  EXPECT_GE(score, 1);
  EXPECT_LE(score, 3);  // rationale.size() + 1
}

TEST_F(CotTest, PipelineRunProducesFullChain) {
  ChainPipeline pipeline(model_.get(), FastChainConfig());
  Rng rng(4);
  const auto output = pipeline.Run(stress_.samples[3], &rng);
  EXPECT_FALSE(output.describe.text.empty());
  EXPECT_TRUE((output.assess.label == 0) || (output.assess.label == 1));
  EXPECT_FALSE(output.highlight.text.empty());
  // The transcript contains all three generations.
  const std::string transcript = output.Transcript();
  EXPECT_NE(transcript.find(output.describe.text), std::string::npos);
  EXPECT_NE(transcript.find(output.assess.text), std::string::npos);
}

TEST_F(CotTest, PipelineGreedyIsDeterministic) {
  ChainPipeline pipeline(model_.get(), FastChainConfig());
  EXPECT_EQ(pipeline.PredictLabel(stress_.samples[4]),
            pipeline.PredictLabel(stress_.samples[4]));
  EXPECT_EQ(pipeline.PredictProbStressed(stress_.samples[4]),
            pipeline.PredictProbStressed(stress_.samples[4]));
}

TEST_F(CotTest, WithoutChainUsesEmptyDescription) {
  ChainConfig config = FastChainConfig();
  config.use_chain = false;
  ChainPipeline pipeline(model_.get(), config);
  Rng rng(5);
  const auto output = pipeline.Run(stress_.samples[5], &rng);
  EXPECT_EQ(output.describe.mask, AuMask{});
}

TEST_F(CotTest, RationaleRespectsDescription) {
  ChainPipeline pipeline(model_.get(), FastChainConfig());
  Rng rng(6);
  const auto output = pipeline.Run(stress_.samples[6], &rng);
  if (face::AuMaskCount(output.describe.mask) > 0) {
    for (int au : output.highlight.ranked_aus) {
      EXPECT_TRUE(output.describe.mask[au]);
    }
  }
}

TEST_F(CotTest, TestTimeRefinementRuns) {
  ChainPipeline pipeline(model_.get(), FastChainConfig());
  Rng rng(7);
  const auto output =
      pipeline.RunWithTestTimeRefinement(stress_.samples[7], stress_, &rng);
  EXPECT_TRUE((output.assess.label == 0) || (output.assess.label == 1));
}

TEST_F(CotTest, TrainerEndToEndImprovesTrainAccuracy) {
  Rng rng(8);
  ChainTrainer trainer(FastChainConfig());
  // Accuracy before training (random heads).
  ChainPipeline pipeline(model_.get(), FastChainConfig());
  int correct_before = 0;
  for (const auto& sample : stress_.samples) {
    correct_before += pipeline.PredictLabel(sample) == sample.stress_label;
  }
  const auto report = trainer.Train(model_.get(), au_data_, stress_, &rng);
  int correct_after = 0;
  for (const auto& sample : stress_.samples) {
    correct_after += pipeline.PredictLabel(sample) == sample.stress_label;
  }
  EXPECT_GT(correct_after, correct_before);
  EXPECT_GE(report.describe_dpo_pairs, 0);
  EXPECT_GT(report.final_assess_loss, 0.0);
}

TEST_F(CotTest, TrainerWithoutChainSkipsDescribeStages) {
  Rng rng(9);
  ChainConfig config = FastChainConfig();
  config.use_chain = false;
  ChainTrainer trainer(config);
  const auto report = trainer.Train(model_.get(), au_data_, stress_, &rng);
  EXPECT_EQ(report.describe_dpo_pairs, 0);
  EXPECT_EQ(report.rationale_dpo_pairs, 0);
  EXPECT_EQ(report.refined_descriptions, 0);
}

TEST_F(CotTest, TrainerWithoutRefinementHasNoDpoPairs) {
  Rng rng(10);
  ChainConfig config = FastChainConfig();
  config.use_refinement = false;
  ChainTrainer trainer(config);
  const auto report = trainer.Train(model_.get(), au_data_, stress_, &rng);
  EXPECT_EQ(report.describe_dpo_pairs, 0);
  EXPECT_EQ(report.rationale_dpo_pairs, 0);
}

TEST_F(CotTest, ExampleStoreRetrievalMethods) {
  Rng rng(11);
  vlm::VisionTower generic(16, &rng);
  ExampleStore store(stress_, &generic, model_.get(), &rng);
  EXPECT_EQ(store.size(), stress_.size());

  const auto& query = stress_.samples[0];
  AuMask description{};
  description[2] = true;

  const auto none =
      store.Retrieve(RetrievalMethod::kNone, query, description, &rng);
  EXPECT_EQ(none.store_index, -1);

  const auto random =
      store.Retrieve(RetrievalMethod::kRandom, query, description, &rng);
  EXPECT_GE(random.store_index, 0);
  EXPECT_LT(random.store_index, store.size());

  const auto by_vision =
      store.Retrieve(RetrievalMethod::kByVision, query, description, &rng);
  EXPECT_GE(by_vision.store_index, 0);
  EXPECT_GE(by_vision.normalized_similarity, 0.0);
  EXPECT_LE(by_vision.normalized_similarity, 1.0);

  const auto by_description = store.Retrieve(RetrievalMethod::kByDescription,
                                             query, description, &rng);
  EXPECT_GE(by_description.store_index, 0);
}

TEST_F(CotTest, RetrievalFindsMostSimilarVisionExample) {
  Rng rng(12);
  vlm::VisionTower generic(16, &rng);
  ExampleStore store(stress_, &generic, model_.get(), &rng);
  // The query IS a training sample, so the best match is itself.
  const auto& query = stress_.samples[10];
  const auto hit =
      store.Retrieve(RetrievalMethod::kByVision, query, AuMask{}, &rng);
  EXPECT_EQ(store.sample_id(hit.store_index), query.id);
  EXPECT_NEAR(hit.raw_similarity, 1.0, 1e-5);
}

TEST_F(CotTest, SubsampleShrinksStore) {
  Rng rng(13);
  vlm::VisionTower generic(16, &rng);
  ExampleStore store(stress_, &generic, model_.get(), &rng);
  store.SubsampleTo(0.5, &rng);
  EXPECT_EQ(store.size(), stress_.size() / 2);
  store.SubsampleTo(0.0, &rng);
  EXPECT_EQ(store.size(), 1);  // clamped to at least one example
}

TEST_F(CotTest, RetrievalMethodNames) {
  EXPECT_STREQ(RetrievalMethodName(RetrievalMethod::kNone), "w/o Example");
  EXPECT_STREQ(RetrievalMethodName(RetrievalMethod::kByDescription),
               "Retrieve-by-description");
}

}  // namespace
}  // namespace vsd::cot
