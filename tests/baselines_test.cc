#include <gtest/gtest.h>

#include <memory>

#include "baselines/baseline.h"
#include "baselines/ding_fusion.h"
#include "baselines/fdassnn.h"
#include "baselines/gao_svm.h"
#include "baselines/jeon_attention.h"
#include "baselines/marlin.h"
#include "baselines/singh_resnet.h"
#include "baselines/tsdnet.h"
#include "baselines/zero_shot_lfm.h"
#include "baselines/zhang_emotion.h"
#include "common/rng.h"
#include "data/folds.h"
#include "data/generator.h"

namespace vsd::baselines {
namespace {

/// Shared fixture: a small easy dataset, split once.
class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(data::MakeUvsdSimSmall(240, 51));
    Rng rng(7);
    auto split = data::StratifiedHoldout(*dataset_, 0.25, &rng);
    train_ = new data::Dataset(dataset_->Subset(split.train));
    test_ = new data::Dataset(dataset_->Subset(split.test));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete train_;
    delete test_;
    dataset_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  /// Trains and checks the classifier beats chance clearly on train data
  /// (these are small smoke datasets; Table I uses the full protocol).
  void ExpectLearnsSignal(StressClassifier* classifier,
                          double min_train_accuracy) {
    Rng rng(11);
    classifier->Fit(*train_, &rng);
    int correct = 0;
    for (const auto& sample : train_->samples) {
      const double p = classifier->PredictProbStressed(sample);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      correct += classifier->Predict(sample) == sample.stress_label;
    }
    const double accuracy =
        static_cast<double>(correct) / train_->size();
    EXPECT_GE(accuracy, min_train_accuracy) << classifier->name();
  }

  static data::Dataset* dataset_;
  static data::Dataset* train_;
  static data::Dataset* test_;
};

data::Dataset* BaselinesTest::dataset_ = nullptr;
data::Dataset* BaselinesTest::train_ = nullptr;
data::Dataset* BaselinesTest::test_ = nullptr;

TEST_F(BaselinesTest, DetectLandmarksIsDeterministicPerSample) {
  const auto& sample = dataset_->samples[0];
  const auto a = DetectLandmarks(sample, true, 1.0f);
  const auto b = DetectLandmarks(sample, true, 1.0f);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
  // Expressive vs neutral frames give different landmarks.
  const auto c = DetectLandmarks(sample, false, 1.0f);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i].y - c[i].y);
  EXPECT_GT(diff, 0.1);
}

TEST_F(BaselinesTest, FdassnnLearns) {
  Fdassnn classifier;
  EXPECT_EQ(classifier.name(), "FDASSNN");
  ExpectLearnsSignal(&classifier, 0.70);
}

TEST_F(BaselinesTest, GaoSvmLearns) {
  GaoSvm classifier;
  ExpectLearnsSignal(&classifier, 0.58);
}

TEST_F(BaselinesTest, JeonAttentionLearns) {
  JeonAttention classifier(1.0f, /*epochs=*/10);
  ExpectLearnsSignal(&classifier, 0.65);
}

TEST_F(BaselinesTest, TsdnetLearns) {
  Tsdnet classifier(/*epochs=*/8);
  ExpectLearnsSignal(&classifier, 0.70);
}

TEST_F(BaselinesTest, MarlinLearns) {
  Marlin classifier(/*pretrain_epochs=*/2, /*finetune_epochs=*/8);
  ExpectLearnsSignal(&classifier, 0.70);
}

TEST_F(BaselinesTest, SinghResnetLearns) {
  SinghResnet classifier(/*epochs=*/8);
  ExpectLearnsSignal(&classifier, 0.70);
}

TEST_F(BaselinesTest, ZhangRuleCalibratesThreshold) {
  // A tiny generalist emotion model.
  vlm::FoundationModelConfig config;
  config.vision_dim = 16;
  config.hidden_dim = 32;
  config.au_feature_dim = 12;
  config.seed = 3;
  vlm::FoundationModel emotion(config);
  vlm::ApiModelSpec spec = vlm::GetApiModelSpec(vlm::ApiModelKind::kGemini15);
  spec.config = config;
  spec.pretrain_epochs = 2;
  spec.corpus_size = 120;
  vlm::PretrainGeneralist(&emotion, spec, 5);

  ZhangEmotionRule classifier(&emotion);
  Rng rng(12);
  classifier.Fit(*train_, &rng);
  // Rule-based: just has to beat chance on training data.
  int correct = 0;
  for (const auto& sample : train_->samples) {
    correct += classifier.Predict(sample) == sample.stress_label;
  }
  EXPECT_GT(static_cast<double>(correct) / train_->size(), 0.55);
}

TEST_F(BaselinesTest, DingFusionLearnsFromFrozenVlm) {
  vlm::FoundationModelConfig config;
  config.vision_dim = 16;
  config.hidden_dim = 32;
  config.au_feature_dim = 12;
  config.seed = 4;
  vlm::FoundationModel backbone(config);  // even untrained features work
  DingFusion classifier(&backbone, /*epochs=*/30);
  ExpectLearnsSignal(&classifier, 0.60);
}

TEST_F(BaselinesTest, ZeroShotLfmNeedsNoTraining) {
  vlm::FoundationModelConfig config;
  config.vision_dim = 16;
  config.hidden_dim = 32;
  config.au_feature_dim = 12;
  config.seed = 5;
  vlm::FoundationModel model(config);
  ZeroShotLfm classifier(&model, "GPT-4o (sim)");
  EXPECT_EQ(classifier.name(), "GPT-4o (sim)");
  Rng rng(13);
  classifier.Fit(*train_, &rng);  // no-op
  const double p = classifier.PredictProbStressed(dataset_->samples[0]);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace vsd::baselines
