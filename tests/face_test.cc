#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "face/au.h"
#include "face/landmarks.h"
#include "face/renderer.h"

namespace vsd::face {
namespace {

TEST(AuCatalogTest, HasTwelveDistinctAus) {
  const auto& catalog = AuCatalog();
  ASSERT_EQ(catalog.size(), static_cast<size_t>(kNumAus));
  std::set<int> facs;
  for (const auto& au : catalog) facs.insert(au.facs_number);
  EXPECT_EQ(facs.size(), static_cast<size_t>(kNumAus));
  // The DISFA set.
  for (int f : {1, 2, 4, 5, 6, 9, 12, 15, 17, 20, 25, 26}) {
    EXPECT_TRUE(facs.count(f)) << "missing AU" << f;
  }
}

TEST(AuCatalogTest, FacsLookupRoundTrip) {
  for (int i = 0; i < kNumAus; ++i) {
    EXPECT_EQ(AuIndexFromFacs(GetAu(i).facs_number), i);
  }
  EXPECT_EQ(AuIndexFromFacs(99), -1);
  EXPECT_EQ(AuIndexFromFacs(3), -1);  // AU3 is not in the DISFA set
}

TEST(AuMaskTest, CountAndIndices) {
  AuMask mask{};
  mask[0] = mask[5] = mask[11] = true;
  EXPECT_EQ(AuMaskCount(mask), 3);
  EXPECT_EQ(AuMaskToIndices(mask), (std::vector<int>{0, 5, 11}));
  EXPECT_EQ(AuMaskFromIndices({0, 5, 11, 99, -1}), mask);
}

TEST(AuMaskTest, Jaccard) {
  AuMask a{};
  AuMask b{};
  EXPECT_EQ(AuMaskJaccard(a, b), 1.0);  // both empty
  a[0] = a[1] = true;
  b[1] = b[2] = true;
  EXPECT_NEAR(AuMaskJaccard(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(AuMaskJaccard(a, a), 1.0, 1e-12);
}

TEST(AuMaskTest, ToString) {
  AuMask mask{};
  EXPECT_EQ(AuMaskToString(mask), "none");
  mask[0] = mask[3] = true;
  EXPECT_EQ(AuMaskToString(mask), "AU1+AU5");
}

TEST(RendererTest, ProducesValidImage) {
  Rng rng(1);
  FaceParams params;
  params.identity = Identity::Sample(&rng);
  img::Image face = RenderFace(params, &rng);
  EXPECT_EQ(face.width(), kFaceSize);
  EXPECT_EQ(face.height(), kFaceSize);
  for (float p : face.pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  // Face is brighter than background: center vs corner.
  EXPECT_GT(face.at(52, 48), face.at(2, 2));
}

TEST(RendererTest, DeterministicWithoutNoise) {
  FaceParams params;
  params.noise_stddev = 0.0f;
  img::Image a = RenderFace(params, nullptr);
  img::Image b = RenderFace(params, nullptr);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pixels()[i], b.pixels()[i]);
  }
}

/// Pixel L1 distance between two renders.
float RenderDistance(const FaceParams& a, const FaceParams& b) {
  img::Image ia = RenderFace(a, nullptr);
  img::Image ib = RenderFace(b, nullptr);
  float total = 0.0f;
  for (int i = 0; i < ia.size(); ++i) {
    total += std::abs(ia.pixels()[i] - ib.pixels()[i]);
  }
  return total;
}

TEST(RendererTest, EveryAuChangesTheImage) {
  FaceParams neutral;
  neutral.noise_stddev = 0.0f;
  for (int j = 0; j < kNumAus; ++j) {
    FaceParams active = neutral;
    active.au_intensity[j] = 1.0f;
    EXPECT_GT(RenderDistance(neutral, active), 1.0f)
        << "AU" << GetAu(j).facs_number << " has no visual effect";
  }
}

TEST(RendererTest, AuEffectIsLocalizedToItsRegion) {
  // Activating an AU must change pixels mostly inside its region mask.
  FaceParams neutral;
  neutral.noise_stddev = 0.0f;
  img::Image base = RenderFace(neutral, nullptr);
  for (int j = 0; j < kNumAus; ++j) {
    FaceParams active = neutral;
    active.au_intensity[j] = 1.0f;
    img::Image changed = RenderFace(active, nullptr);
    const auto mask = RegionMask(GetAu(j).region);
    float inside = 0.0f;
    float outside = 0.0f;
    for (int i = 0; i < base.size(); ++i) {
      const float diff = std::abs(base.pixels()[i] - changed.pixels()[i]);
      (mask[i] ? inside : outside) += diff;
    }
    EXPECT_GT(inside, outside)
        << "AU" << GetAu(j).facs_number << " leaks outside its region";
  }
}

TEST(RendererTest, ExpressivenessScalesAuIntensities) {
  FaceParams params;
  params.au_intensity[0] = 0.8f;
  params.au_intensity[6] = 0.6f;
  FaceParams scaled = params.WithExpressiveness(0.5f);
  EXPECT_NEAR(scaled.au_intensity[0], 0.4f, 1e-6f);
  EXPECT_NEAR(scaled.au_intensity[6], 0.3f, 1e-6f);
  FaceParams clamped = params.WithExpressiveness(2.0f);
  EXPECT_EQ(clamped.au_intensity[0], 1.0f);
}

TEST(RendererTest, IdentitySamplingVariesFaces) {
  Rng rng(2);
  FaceParams a;
  a.identity = Identity::Sample(&rng);
  a.noise_stddev = 0.0f;
  FaceParams b = a;
  b.identity = Identity::Sample(&rng);
  EXPECT_GT(RenderDistance(a, b), 1.0f);
}

TEST(RegionMaskTest, MasksNonEmptyAndWithinImage) {
  for (int r = 0; r < kNumFaceRegions; ++r) {
    const auto mask = RegionMask(static_cast<FaceRegion>(r));
    ASSERT_EQ(static_cast<int>(mask.size()), kFaceSize * kFaceSize);
    int count = 0;
    for (uint8_t m : mask) count += m;
    EXPECT_GT(count, 50) << "region " << r;
    EXPECT_LT(count, kFaceSize * kFaceSize) << "region " << r;
  }
}

TEST(RegionMaskTest, AuRegionsMaskUnions) {
  AuMask aus{};
  aus[0] = true;  // AU1 -> eyebrow
  aus[6] = true;  // AU12 -> mouth
  const auto unioned = AuRegionsMask(aus);
  const auto brow = RegionMask(FaceRegion::kEyebrow);
  const auto mouth = RegionMask(FaceRegion::kMouth);
  for (size_t i = 0; i < unioned.size(); ++i) {
    EXPECT_EQ(unioned[i], brow[i] | mouth[i]);
  }
}

TEST(LandmarkTest, CountAndDeterminism) {
  FaceParams params;
  auto a = ExtractLandmarks(params, 0.0f, nullptr);
  auto b = ExtractLandmarks(params, 0.0f, nullptr);
  ASSERT_EQ(static_cast<int>(a.size()), kNumLandmarks);
  for (int i = 0; i < kNumLandmarks; ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

TEST(LandmarkTest, NoiseJittersPoints) {
  Rng rng(3);
  FaceParams params;
  auto clean = ExtractLandmarks(params, 0.0f, nullptr);
  auto noisy = ExtractLandmarks(params, 2.0f, &rng);
  float total = 0.0f;
  for (int i = 0; i < kNumLandmarks; ++i) {
    total += std::abs(clean[i].x - noisy[i].x);
  }
  EXPECT_GT(total, 10.0f);
}

TEST(LandmarkTest, FeaturesAreCentered) {
  FaceParams params;
  const auto features =
      LandmarksToFeatures(ExtractLandmarks(params, 0.0f, nullptr));
  ASSERT_EQ(features.size(), static_cast<size_t>(2 * kNumLandmarks));
  for (float f : features) EXPECT_LT(std::abs(f), 1.5f);
}

TEST(AuEstimatorTest, RecoversStrongAusFromCleanLandmarks) {
  // For geometry-visible AUs, a full-intensity activation should yield a
  // clearly higher estimate than neutral.
  const int kGeometric[] = {0, 1, 2, 3, 6, 7, 9, 10, 11};
  for (int j : kGeometric) {
    FaceParams neutral;
    FaceParams active;
    active.au_intensity[j] = 1.0f;
    const auto est_neutral =
        face::EstimateAuIntensities(ExtractLandmarks(neutral, 0.0f, nullptr));
    const auto est_active =
        face::EstimateAuIntensities(ExtractLandmarks(active, 0.0f, nullptr));
    EXPECT_GT(est_active[j], est_neutral[j] + 0.3f)
        << "AU" << GetAu(j).facs_number;
  }
}

TEST(AuEstimatorTest, EstimatesAreInUnitRange) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    FaceParams params;
    params.identity = Identity::Sample(&rng);
    for (auto& a : params.au_intensity) {
      a = static_cast<float>(rng.Uniform());
    }
    const auto est = face::EstimateAuIntensities(
        ExtractLandmarks(params, 1.0f, &rng));
    for (float e : est) {
      EXPECT_GE(e, 0.0f);
      EXPECT_LE(e, 1.0f);
    }
  }
}

}  // namespace
}  // namespace vsd::face
