#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"
#include "img/image.h"
#include "img/slic.h"

namespace vsd::img {
namespace {

TEST(ImageTest, ConstructionAndAccess) {
  Image image(4, 3);
  EXPECT_EQ(image.width(), 4);
  EXPECT_EQ(image.height(), 3);
  EXPECT_EQ(image.size(), 12);
  image.at(2, 3) = 0.5f;
  EXPECT_EQ(image.at(2, 3), 0.5f);
  EXPECT_EQ(image.pixels()[2 * 4 + 3], 0.5f);
}

TEST(ImageTest, ConstantFill) {
  Image image(2, 2, 0.7f);
  EXPECT_NEAR(image.MeanValue(), 0.7f, 1e-6f);
}

TEST(ImageTest, ClampedReads) {
  Image image(2, 2);
  image.at(0, 0) = 1.0f;
  EXPECT_EQ(image.AtClamped(-5, -5), 1.0f);
  EXPECT_EQ(image.AtClamped(10, 0), image.at(1, 0));
}

TEST(ImageTest, ClampValues) {
  Image image(1, 2);
  image.at(0, 0) = -0.5f;
  image.at(0, 1) = 1.5f;
  image.ClampValues();
  EXPECT_EQ(image.at(0, 0), 0.0f);
  EXPECT_EQ(image.at(0, 1), 1.0f);
}

TEST(DrawTest, FillEllipseCoversCenter) {
  Image image(20, 20);
  FillEllipse(&image, 10, 10, 5, 3, 1.0f);
  EXPECT_EQ(image.at(10, 10), 1.0f);
  EXPECT_EQ(image.at(10, 14), 1.0f);  // inside rx
  EXPECT_EQ(image.at(10, 16), 0.0f);  // outside rx
  EXPECT_EQ(image.at(14, 10), 0.0f);  // outside ry
}

TEST(DrawTest, LineConnectsEndpoints) {
  Image image(20, 20);
  DrawLine(&image, 2, 2, 17, 17, 1.0f, 1.0f);
  EXPECT_GT(image.at(2, 2), 0.0f);
  EXPECT_GT(image.at(17, 17), 0.0f);
  EXPECT_GT(image.at(10, 10), 0.0f);  // on the diagonal
  EXPECT_EQ(image.at(2, 17), 0.0f);   // far off the line
}

TEST(DrawTest, QuadCurvePassesThroughEndpoints) {
  Image image(30, 30);
  DrawQuadCurve(&image, 5, 20, 15, 0, 25, 20, 1.0f, 1.0f);
  EXPECT_GT(image.at(20, 5), 0.0f);
  EXPECT_GT(image.at(20, 25), 0.0f);
  // The curve bends toward the control point: the midpoint is above y=20.
  EXPECT_GT(image.at(10, 15), 0.0f);
}

TEST(DrawTest, FillRectClips) {
  Image image(4, 4);
  FillRect(&image, -2, -2, 2, 2, 1.0f);
  EXPECT_EQ(image.at(0, 0), 1.0f);
  EXPECT_EQ(image.at(1, 1), 1.0f);
  EXPECT_EQ(image.at(2, 2), 0.0f);
}

TEST(FilterTest, GaussianNoiseChangesPixelsWithinBounds) {
  Image image(16, 16, 0.5f);
  Rng rng(3);
  AddGaussianNoise(&image, 0.1f, &rng);
  int changed = 0;
  for (float p : image.pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    changed += (p != 0.5f);
  }
  EXPECT_GT(changed, 200);
}

TEST(FilterTest, BlurPreservesConstantImage) {
  Image image(10, 10, 0.6f);
  Image blurred = GaussianBlur(image, 1.5f);
  for (float p : blurred.pixels()) EXPECT_NEAR(p, 0.6f, 1e-4f);
}

TEST(FilterTest, BlurSpreadsImpulse) {
  Image image(11, 11);
  image.at(5, 5) = 1.0f;
  Image blurred = GaussianBlur(image, 1.0f);
  EXPECT_LT(blurred.at(5, 5), 1.0f);
  EXPECT_GT(blurred.at(5, 6), 0.0f);
  EXPECT_GT(blurred.at(6, 5), 0.0f);
}

TEST(FilterTest, ResizePreservesConstant) {
  Image image(8, 8, 0.3f);
  Image resized = Resize(image, 5, 11);
  EXPECT_EQ(resized.width(), 5);
  EXPECT_EQ(resized.height(), 11);
  for (float p : resized.pixels()) EXPECT_NEAR(p, 0.3f, 1e-5f);
}

TEST(FilterTest, ResizeDownPreservesMean) {
  Rng rng(4);
  Image image(32, 32);
  for (auto& p : image.mutable_pixels()) {
    p = static_cast<float>(rng.Uniform());
  }
  Image resized = Resize(image, 16, 16);
  EXPECT_NEAR(resized.MeanValue(), image.MeanValue(), 0.03f);
}

TEST(MaskTest, NoiseMaskedRegionOnlyTouchesMask) {
  Image image(8, 8, 0.5f);
  std::vector<uint8_t> mask(64, 0);
  for (int x = 0; x < 8; ++x) mask[x] = 1;  // first row only
  Rng rng(5);
  NoiseMaskedRegion(&image, mask, 0.3f, &rng);
  for (int y = 1; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) EXPECT_EQ(image.at(y, x), 0.5f);
  }
  int changed = 0;
  for (int x = 0; x < 8; ++x) changed += (image.at(0, x) != 0.5f);
  EXPECT_GT(changed, 4);
}

TEST(MaskTest, MeanFillSetsMaskToMean) {
  Image image(2, 2);
  image.at(0, 0) = 1.0f;  // mean = 0.25
  std::vector<uint8_t> mask = {1, 0, 0, 0};
  MeanFillMaskedRegion(&image, mask);
  EXPECT_NEAR(image.at(0, 0), 0.25f, 1e-6f);
  EXPECT_EQ(image.at(1, 1), 0.0f);
}

TEST(MaskTest, MosaicAveragesBlocks) {
  Image image(4, 4);
  // Left half bright, right half dark; mosaic with block 4 over full mask.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 2; ++x) image.at(y, x) = 1.0f;
  }
  std::vector<uint8_t> mask(16, 1);
  MosaicMaskedRegion(&image, mask, 4);
  for (float p : image.pixels()) EXPECT_NEAR(p, 0.5f, 1e-6f);
}

TEST(SlicTest, LabelsAreContiguousAndCoverImage) {
  Rng rng(6);
  Image image(48, 48);
  for (auto& p : image.mutable_pixels()) {
    p = static_cast<float>(rng.Uniform());
  }
  Segmentation seg = Slic(image, 16);
  EXPECT_EQ(static_cast<int>(seg.labels.size()), 48 * 48);
  std::set<int> seen(seg.labels.begin(), seg.labels.end());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), seg.num_segments - 1);
  EXPECT_EQ(static_cast<int>(seen.size()), seg.num_segments);
  EXPECT_GE(seg.num_segments, 8);
}

TEST(SlicTest, SegmentsAreSpatiallyCoherent) {
  // A flat image should yield roughly grid-like segments; each segment's
  // pixels should be near its centroid.
  Image image(32, 32, 0.5f);
  Segmentation seg = Slic(image, 16);
  for (int s = 0; s < seg.num_segments; ++s) {
    auto [cy, cx] = seg.SegmentCentroid(s);
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        if (seg.LabelAt(y, x) != s) continue;
        EXPECT_LT(std::abs(y - cy) + std::abs(x - cx), 24.0f);
      }
    }
  }
}

TEST(SlicTest, RespectsIntensityBoundary) {
  // Two homogeneous halves: few segments should straddle the boundary.
  Image image(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 16; x < 32; ++x) image.at(y, x) = 1.0f;
  }
  Segmentation seg = Slic(image, 8, /*compactness=*/5.0f);
  int straddlers = 0;
  for (int s = 0; s < seg.num_segments; ++s) {
    bool has_dark = false;
    bool has_bright = false;
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        if (seg.LabelAt(y, x) != s) continue;
        (image.at(y, x) > 0.5f ? has_bright : has_dark) = true;
      }
    }
    straddlers += (has_dark && has_bright);
  }
  EXPECT_LE(straddlers, seg.num_segments / 2);
}

TEST(SlicTest, SegmentMaskMatchesSizes) {
  Image image(24, 24, 0.5f);
  Segmentation seg = Slic(image, 9);
  const auto sizes = seg.SegmentSizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 24 * 24);
  for (int s = 0; s < seg.num_segments; ++s) {
    const auto mask = seg.SegmentMask(s);
    int count = 0;
    for (uint8_t m : mask) count += m;
    EXPECT_EQ(count, sizes[s]);
  }
}

TEST(SlicTest, RequestedSegmentCountApproximatelyHonored) {
  Image image(96, 96, 0.5f);
  Segmentation seg = Slic(image, 64);
  EXPECT_GE(seg.num_segments, 40);
  EXPECT_LE(seg.num_segments, 80);
}

}  // namespace
}  // namespace vsd::img
