// Cross-component consistency checks: places where two independent parts
// of the library must agree about the same underlying quantity.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "face/landmarks.h"
#include "face/renderer.h"
#include "img/slic.h"
#include "vlm/foundation_model.h"
#include "vlm/vision.h"

namespace vsd {
namespace {

// LIME and SHAP are different estimators of the same attribution; on a
// clean oracle they must agree on where the signal is.
TEST(ConsistencyTest, LimeAndShapAgreeOnOracle) {
  img::Image image(32, 32, 0.2f);
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) image.at(y, x) = 0.9f;
  }
  img::Segmentation seg = img::Slic(image, 16, 20.0f);
  auto oracle = [](const img::Image& im) {
    double sum = 0.0;
    for (int y = 8; y < 16; ++y) {
      for (int x = 8; x < 16; ++x) sum += im.at(y, x);
    }
    return sum / 64.0;
  };
  Rng rng_a(1);
  Rng rng_b(2);
  const auto lime =
      explain::LimeExplainer(500).Explain(oracle, image, seg, &rng_a);
  const auto shap =
      explain::KernelShapExplainer(500).Explain(oracle, image, seg, &rng_b);
  const auto lime_top = lime.RankedSegments();
  const auto shap_top = shap.RankedSegments();
  // Their top-2 sets must overlap (both found the bright window).
  int overlap = 0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) overlap += (lime_top[i] == shap_top[j]);
  }
  EXPECT_GE(overlap, 1);
}

// The rendered face and the analytic landmarks describe the same geometry:
// landmark positions must sit on/near non-background pixels.
TEST(ConsistencyTest, LandmarksLieOnTheRenderedFace) {
  Rng rng(3);
  face::FaceParams params;
  params.identity = face::Identity::Sample(&rng);
  params.au_intensity[2] = 0.7f;
  params.au_intensity[6] = 0.6f;
  params.noise_stddev = 0.0f;
  const img::Image face_image = face::RenderFace(params, nullptr);
  const auto landmarks = face::ExtractLandmarks(params, 0.0f, nullptr);
  int on_face = 0;
  for (const auto& p : landmarks) {
    const int y = std::clamp(static_cast<int>(p.y), 0, 95);
    const int x = std::clamp(static_cast<int>(p.x), 0, 95);
    // Background is 0.08; anything brighter is face material.
    if (face_image.at(y, x) > 0.12f) ++on_face;
  }
  EXPECT_GE(on_face, static_cast<int>(landmarks.size()) - 6);
}

// The tower accepts either configured input size and arbitrary source
// image sizes (PackImages resizes).
TEST(ConsistencyTest, VisionTowerInputSizes) {
  Rng rng(4);
  for (int input : {32, 48}) {
    vlm::VisionTower tower(16, &rng, input);
    EXPECT_EQ(tower.input_size(), input);
    img::Image odd(77, 53, 0.4f);
    auto embed = tower.Embed(odd);
    EXPECT_EQ(embed.size(), 16);
  }
}

// ChainPipeline::Run and the cheaper PredictLabel must produce the same
// verdict (Run is PredictLabel + extra generations).
TEST(ConsistencyTest, PipelineRunMatchesPredict) {
  data::Dataset d = data::MakeUvsdSimSmall(12, 55);
  vlm::FoundationModelConfig config;
  config.vision_dim = 12;
  config.hidden_dim = 24;
  config.au_feature_dim = 12;
  config.seed = 5;
  vlm::FoundationModel model(config);
  model.PrecomputeFeatures(d);
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&model, chain);
  Rng rng(6);
  for (const auto& sample : d.samples) {
    EXPECT_EQ(pipeline.Run(sample, &rng).assess.label,
              pipeline.PredictLabel(sample));
  }
}

// Describe head vs DescriptionLogProb: the greedy mask must be the
// likelihood-maximizing mask (independence across AUs makes this exact).
TEST(ConsistencyTest, GreedyDescriptionMaximizesLikelihood) {
  data::Dataset d = data::MakeUvsdSimSmall(6, 77);
  vlm::FoundationModelConfig config;
  config.vision_dim = 12;
  config.hidden_dim = 24;
  config.au_feature_dim = 12;
  config.seed = 7;
  vlm::FoundationModel model(config);
  model.PrecomputeFeatures(d);
  Rng rng(8);
  for (const auto& sample : d.samples) {
    const auto probs = model.DescribeProbs(sample);
    face::AuMask greedy{};
    for (int j = 0; j < face::kNumAus; ++j) greedy[j] = probs[j] > 0.5;
    const double greedy_lp = model.DescriptionLogProb(sample, greedy);
    for (int trial = 0; trial < 10; ++trial) {
      face::AuMask other = greedy;
      other[rng.UniformInt(face::kNumAus)] ^= true;
      EXPECT_GE(greedy_lp, model.DescriptionLogProb(sample, other));
    }
  }
}

// The generator's activation probabilities and the empirical dataset
// statistics must agree.
TEST(ConsistencyTest, GeneratorStatisticsMatchConfiguredProbabilities) {
  data::StressGenConfig config;
  config.num_samples = 1500;
  config.num_subjects = 50;
  config.num_stressed = 750;
  config.subject_sigma = 0.0;  // isolate the base probabilities
  config.distractor_rate = 0.0;
  config.label_noise = 0.0;
  config.seed = 99;
  const data::Dataset d = data::GenerateStressDataset(config);
  for (int j : {2, 6}) {  // AU4, AU12 — the strongest signals
    int active = 0;
    int n = 0;
    for (const auto& sample : d.samples) {
      if (sample.stress_label != data::kStressed) continue;
      ++n;
      active += sample.au_label[j];
    }
    const double expected =
        data::AuActivationProbability(j, true, config.au_gap);
    EXPECT_NEAR(static_cast<double>(active) / n, expected, 0.06)
        << "AU index " << j;
  }
}

}  // namespace
}  // namespace vsd
