#include "lint/dataflow.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace vsd::lint {
namespace {

// All fixtures live in raw strings: the repo's own lint run sees them as
// single string tokens, so fixture code can freely violate every rule.

const DfFunction* FindFn(const std::vector<DfFunction>& fns,
                         const std::string& qualified) {
  for (const DfFunction& fn : fns) {
    if (fn.QualifiedName() == qualified) return &fn;
  }
  return nullptr;
}

// ----------------------------------------------------- function recovery ----

TEST(ExtractFunctionsTest, RecoversFreeFunctionsMethodsCtorsAndDtors) {
  const LexResult lex = Lex(R"cc(
    int Add(int a, int b) { return a + b; }
    void Widget::Draw() const { Render(); }
    Widget::Widget() : x_(0), y_{1} { Init(); }
    Widget::~Widget() { Close(); }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 4u);
  EXPECT_EQ(fns[0].QualifiedName(), "Add");
  EXPECT_TRUE(fns[0].params.count("a"));
  EXPECT_TRUE(fns[0].params.count("b"));
  EXPECT_EQ(fns[1].QualifiedName(), "Widget::Draw");
  EXPECT_EQ(fns[2].QualifiedName(), "Widget::Widget");
  EXPECT_EQ(fns[3].name, "~Widget");
  EXPECT_EQ(fns[3].qualifier, "Widget");
}

TEST(ExtractFunctionsTest, SkipsDeclarationsControlFlowAndCalls) {
  const LexResult lex = Lex(R"cc(
    void Declared(int x);
    void Body() {
      if (Check()) { Work(); }
      while (Check()) { Work(); }
      for (int i = 0; i < 3; ++i) { Work(); }
      switch (Mode()) { default: break; }
    }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "Body");
}

TEST(ExtractFunctionsTest, BodyExtentCoversTheWholeBraceRange) {
  const LexResult lex = Lex(R"cc(
    int Nested() {
      { int inner = 1; }
      return 0;
    }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_LT(fns[0].body_open, fns[0].body_close);
  EXPECT_EQ(lex.tokens[fns[0].body_open].text, "{");
  EXPECT_EQ(lex.tokens[fns[0].body_close].text, "}");
  // The close brace is the fixture's last real token (the lexer appends an
  // empty sentinel).
  EXPECT_EQ(fns[0].body_close + 2, lex.tokens.size());
}

TEST(CollectBodyLocalsTest, FindsTypedDeclarationsOnly) {
  const LexResult lex = Lex(R"cc(
    void F(int arg) {
      int count = 0;
      std::mutex mu;
      auto* ptr = &count;
      count = arg;
    }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 1u);
  const std::set<std::string> locals =
      CollectBodyLocals(lex.tokens, fns[0].body_open, fns[0].body_close);
  EXPECT_TRUE(locals.count("count"));
  EXPECT_TRUE(locals.count("mu"));
  EXPECT_TRUE(locals.count("ptr"));
  // Plain assignments and parameters are not declarations.
  EXPECT_FALSE(locals.count("arg"));
}

// -------------------------------------------------------- call resolution ----

TEST(DataflowProgramTest, ResolvePrefersClassThenFileAndDropsAmbiguous) {
  DataflowProgram program;
  program.AddFile("a.cc", Lex(R"cc(
    void Helper() { }
    void A::Helper() { }
    void A::Run() { Helper(); Dup(); Unique(); }
  )cc"));
  program.AddFile("b.cc", Lex(R"cc(
    void Dup() { }
  )cc"));
  program.AddFile("c.cc", Lex(R"cc(
    void Dup() { }
    void Unique() { }
  )cc"));

  const DfFunction* run = FindFn(program.functions(), "A::Run");
  ASSERT_NE(run, nullptr);

  // Same-class candidate beats the same-file free function.
  std::vector<const DfFunction*> helper = program.Resolve(*run, "Helper");
  ASSERT_EQ(helper.size(), 1u);
  EXPECT_EQ(helper[0]->QualifiedName(), "A::Helper");

  // Defined in two other files with no tiebreaker: ambiguous, no link.
  EXPECT_TRUE(program.Resolve(*run, "Dup").empty());

  // A unique cross-file definition resolves.
  std::vector<const DfFunction*> unique = program.Resolve(*run, "Unique");
  ASSERT_EQ(unique.size(), 1u);
  EXPECT_EQ(unique[0]->file, "c.cc");
}

// -------------------------------------------------------------- lock-order ----

TEST(LockGraphTest, NestedGuardsMakeAnEdgeAndOpposingOrdersMakeACycle) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    std::mutex a;
    std::mutex b;
    void First() {
      std::lock_guard<std::mutex> ga(a);
      std::lock_guard<std::mutex> gb(b);
    }
    void Second() {
      std::lock_guard<std::mutex> gb(b);
      std::lock_guard<std::mutex> ga(a);
    }
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  ASSERT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(graph.edges[0].from, "x.cc::a");
  EXPECT_EQ(graph.edges[0].to, "x.cc::b");
  EXPECT_EQ(graph.edges[1].from, "x.cc::b");
  EXPECT_EQ(graph.edges[1].to, "x.cc::a");

  const std::vector<Finding> cycles = CheckLockOrder(graph);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].rule, "lock-order");
  EXPECT_NE(cycles[0].message.find("deadlock"), std::string::npos);
}

TEST(LockGraphTest, SequentialScopesDoNotMakeAnEdge) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    std::mutex a;
    std::mutex b;
    void Sequential() {
      { std::lock_guard<std::mutex> ga(a); }
      { std::lock_guard<std::mutex> gb(b); }
    }
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  EXPECT_EQ(graph.nodes.size(), 2u);
  EXPECT_TRUE(graph.edges.empty());
}

TEST(LockGraphTest, ScopedLockArgumentsAcquireAtomically) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    std::mutex a;
    std::mutex b;
    void Both() { std::scoped_lock g(a, b); }
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  EXPECT_EQ(graph.nodes.size(), 2u);
  // No edges among the group: std::scoped_lock deadlock-avoids internally.
  EXPECT_TRUE(graph.edges.empty());
}

TEST(LockGraphTest, ManualUnlockReleasesTheLock) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    std::mutex a;
    std::mutex b;
    void Released() {
      a.lock();
      a.unlock();
      std::lock_guard<std::mutex> gb(b);
    }
    void StillHeld() {
      a.lock();
      std::lock_guard<std::mutex> gb(b);
      a.unlock();
    }
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  // Only StillHeld contributes an edge; Released dropped `a` first.
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "x.cc::a");
  EXPECT_EQ(graph.edges[0].to, "x.cc::b");
}

TEST(LockGraphTest, AcquisitionInACalleeLinksOneLevelDeep) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    std::mutex outer_mu;
    std::mutex inner_mu;
    void Inner() { std::lock_guard<std::mutex> g(inner_mu); }
    void Outer() {
      std::lock_guard<std::mutex> g(outer_mu);
      Inner();
    }
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "x.cc::outer_mu");
  EXPECT_EQ(graph.edges[0].to, "x.cc::inner_mu");
  EXPECT_EQ(graph.edges[0].via, "Inner");
}

TEST(LockGraphTest, MemberMutexesAreCanonicalizedPerClass) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    void Pool::Submit() {
      std::lock_guard<std::mutex> g1(submit_mu_);
      std::lock_guard<std::mutex> g2(mu_);
    }
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "Pool::submit_mu_");
  EXPECT_EQ(graph.edges[0].to, "Pool::mu_");
}

TEST(LockGraphTest, RequiresAnnotationSeedsTheHeldSet) {
  // A VSD_REQUIRES(mu_) function acquires nothing itself, but any lock it
  // takes inside must order after the annotated one — the annotation
  // contributes the same edge a visible lock_guard would.
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    class Pool {
     public:
      void DrainLocked() VSD_REQUIRES(mu_) {
        std::lock_guard<std::mutex> g(log_mu_);
      }

     private:
      std::mutex mu_;
      std::mutex log_mu_;
    };
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "Pool::mu_");
  EXPECT_EQ(graph.edges[0].to, "Pool::log_mu_");
}

TEST(LockGraphTest, AcquiresAnnotationCountsAsADirectAcquisition) {
  // An opposing order expressed half in code, half via VSD_ACQUIRES still
  // closes the deadlock cycle. (Contracts are member-scoped: the index is
  // keyed by class, so free functions cannot carry one.)
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    class S {
     public:
      void TakesB() VSD_ACQUIRES(b_mu_) { }
      void Forward() {
        std::lock_guard<std::mutex> g(a_mu_);
        TakesB();
      }
      void Backward() {
        std::lock_guard<std::mutex> g(b_mu_);
        std::lock_guard<std::mutex> h(a_mu_);
      }

     private:
      std::mutex a_mu_;
      std::mutex b_mu_;
    };
  )cc"));
  const LockGraph graph = BuildLockGraph(program);
  const std::vector<Finding> cycles = CheckLockOrder(graph);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].rule, "lock-order");
}

TEST(LockGraphTest, DumpLockDotEmitsNodesAndLabeledEdges) {
  DataflowProgram program;
  program.AddFile("x.cc", Lex(R"cc(
    std::mutex a;
    std::mutex b;
    void First() {
      std::lock_guard<std::mutex> ga(a);
      std::lock_guard<std::mutex> gb(b);
    }
  )cc"));
  const std::string dot = DumpLockDot(BuildLockGraph(program));
  EXPECT_NE(dot.find("digraph vsd_locks"), std::string::npos);
  EXPECT_NE(dot.find("\"x.cc::a\" -> \"x.cc::b\""), std::string::npos);
  EXPECT_NE(dot.find("x.cc:"), std::string::npos);  // Edge label file:line.
}

// ------------------------------------------------------------ nondet-taint ----

TEST(FindNondetSourcesTest, ClocksCastsAndSharedRngDrawsAreSources) {
  const LexResult lex = Lex(R"cc(
    void F(Rng& rng, Item* item, std::vector<double>& vals) {
      const auto tick = std::chrono::system_clock::now();
      const auto key = reinterpret_cast<uintptr_t>(item);
      ParallelFor(8, [&](int64_t i) {
        vals[i] = rng.Uniform();
      });
    }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 1u);
  const std::vector<TaintSource> seeds =
      FindNondetSources("a.cc", lex.tokens, fns[0]);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_NE(seeds[0].what.find("system_clock"), std::string::npos);
  EXPECT_NE(seeds[1].what.find("uintptr_t"), std::string::npos);
  EXPECT_NE(seeds[2].what.find("rng.Uniform"), std::string::npos);
}

TEST(FindNondetSourcesTest, NamesAloneAreNotSources) {
  const LexResult lex = Lex(R"cc(
    void F(Rng& rng) {
      int time = 3;        // A local *named* time is not a clock read.
      int clock = time;
      double x = rng.Uniform();  // Draw outside ParallelFor: rng-fork's job.
    }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(FindNondetSources("a.cc", lex.tokens, fns[0]).empty());
}

TEST(PropagateTaintTest, TaintFlowsThroughAssignmentsAndContainerInserts) {
  const LexResult lex = Lex(R"cc(
    void F(std::vector<double>& out) {
      const auto tick = std::chrono::system_clock::now();
      const double base = Convert(tick);
      double scaled = base * 2.0;
      out.push_back(scaled);
      double clean = 1.0;
    }
  )cc");
  const std::vector<DfFunction> fns = ExtractFunctions("a.cc", lex.tokens);
  ASSERT_EQ(fns.size(), 1u);
  const std::vector<TaintSource> seeds =
      FindNondetSources("a.cc", lex.tokens, fns[0]);
  ASSERT_EQ(seeds.size(), 1u);
  const std::map<std::string, TaintSource> taint =
      PropagateTaint(lex.tokens, fns[0], seeds);
  EXPECT_TRUE(taint.count("tick"));
  EXPECT_TRUE(taint.count("base"));    // Through a call wrapper.
  EXPECT_TRUE(taint.count("scaled"));  // Through arithmetic.
  EXPECT_TRUE(taint.count("out"));     // Container mutator taints receiver.
  EXPECT_FALSE(taint.count("clean"));
}

TEST(CheckNondetTaintTest, LaunderedWallClockReachingAddRowIsAFinding) {
  const LexResult lex = Lex(R"cc(
    void Report(Table& table) {
      const auto now = std::chrono::system_clock::now();
      const double stamp = ToSeconds(now);
      table.AddRow("run", stamp);
    }
  )cc");
  const std::vector<Finding> findings =
      CheckNondetTaint("tools/report.cc", lex);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondet-taint");
  EXPECT_NE(findings[0].message.find("system_clock"), std::string::npos);
  EXPECT_NE(findings[0].message.find("AddRow"), std::string::npos);
}

TEST(CheckNondetTaintTest, ReturnIsASinkOnlyInCoreAndBench) {
  const LexResult lex = Lex(R"cc(
    double Stamp() {
      const double t = static_cast<double>(std::time(nullptr));
      return t;
    }
  )cc");
  EXPECT_EQ(CheckNondetTaint("src/core/stamp.cc", lex).size(), 1u);
  EXPECT_EQ(CheckNondetTaint("bench/stamp.cc", lex).size(), 1u);
  EXPECT_TRUE(CheckNondetTaint("src/serve/stamp.cc", lex).empty());
}

TEST(CheckNondetTaintTest, DeterministicDataIntoSinksIsClean) {
  const LexResult lex = Lex(R"cc(
    void Report(Table& table, const Metrics& m) {
      const double f1 = m.f1;
      table.AddRow("ours", f1);
    }
  )cc");
  EXPECT_TRUE(CheckNondetTaint("src/core/report.cc", lex).empty());
}

// ---------------------------------------------------------- hot-path-alloc ----

TEST(HotPathAllocTest, KernelsFileFunctionsAreScannedDirectly) {
  DataflowProgram program;
  program.AddFile("src/tensor/kernels.cc", Lex(R"cc(
    void MatMul(std::vector<float>& out) {
      out.push_back(1.0f);
    }
  )cc"));
  const std::vector<Finding> findings = CheckHotPathAlloc(program);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-path-alloc");
  EXPECT_NE(findings[0].message.find("push_back"), std::string::npos);
  EXPECT_NE(findings[0].message.find("MatMul"), std::string::npos);
}

TEST(HotPathAllocTest, ExecuteBodyAndItsDirectCalleesAreScanned) {
  DataflowProgram program;
  program.AddFile("src/nn/graph_exec.cc", Lex(R"cc(
    void Stage(std::vector<int>& v) { v.push_back(1); }
    void GraphExecutor::Execute() {
      float* buf = new float[16];
      Stage(scratch_);
    }
  )cc"));
  const std::vector<Finding> findings = CheckHotPathAlloc(program);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("'new'"), std::string::npos);
  EXPECT_NE(findings[1].message.find("reachable from GraphExecutor::Execute"),
            std::string::npos);
}

TEST(HotPathAllocTest, OnlyExplainParallelForBodiesAreHot) {
  DataflowProgram program;
  program.AddFile("src/explain/run.cc", Lex(R"cc(
    void Run(std::vector<int>& out) {
      ParallelFor(4, [&](int64_t i) {
        std::string s = std::to_string(i);
      });
      out.push_back(2);
    }
  )cc"));
  program.AddFile("src/core/other.cc", Lex(R"cc(
    void Other(std::vector<int>& out) {
      ParallelFor(4, [&](int64_t i) { out[i] = 1; });
      out.push_back(3);
    }
  )cc"));
  const std::vector<Finding> findings = CheckHotPathAlloc(program);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/explain/run.cc");
  EXPECT_NE(findings[0].message.find("to_string"), std::string::npos);
}

// ------------------------------------------------------------- meta checks ----

// The repo's own lock-acquisition graph must stay acyclic: a cycle is a
// potential deadlock and fails CI via `vsd_lint --dump-lock-graph` too.
TEST(DataflowMetaTest, RepoLockGraphIsAcyclic) {
  const LockGraph graph = BuildLockGraphFromTree(
      VSD_SOURCE_DIR, {"src", "bench", "tools", "tests", "examples"});
  EXPECT_GE(graph.nodes.size(), 4u);
  for (const Finding& f : CheckLockOrder(graph)) {
    ADD_FAILURE() << f.ToString();
  }
}

// The static twin of the runtime zero-allocation contract: nothing on the
// GraphExecutor::Execute path may allocate, not even behind a suppression.
TEST(DataflowMetaTest, ExecutePathHasNoHotPathAllocations) {
  DataflowProgram program;
  for (const std::string& rel : ListSourceFiles(
           VSD_SOURCE_DIR, {"src", "bench", "tools", "tests", "examples"})) {
    std::string content;
    if (ReadFileToString(VSD_SOURCE_DIR, rel, &content)) {
      program.AddFile(rel, Lex(content));
    }
  }
  for (const Finding& f : CheckHotPathAlloc(program)) {
    if (f.message.find("Execute") != std::string::npos) {
      ADD_FAILURE() << f.ToString();
    }
  }
}

}  // namespace
}  // namespace vsd::lint
