#include "lint/annotations.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/dataflow.h"
#include "lint/lexer.h"

namespace vsd::lint {
namespace {

std::vector<ClassExtent> Extents(const std::string& src) {
  return FindClassExtents(Lex(src).tokens);
}

AnnotationIndex Index(const std::string& src) {
  DataflowProgram program;
  program.AddFile("src/x/c.cc", Lex(src));
  return BuildAnnotationIndex(program);
}

// ------------------------------------------------------- class extents ----

TEST(FindClassExtentsTest, RecoversClassesStructsAndNesting) {
  const std::vector<ClassExtent> extents = Extents(R"cc(
    class Outer {
      struct Inner {
        int x;
      };
      int y;
    };
    struct Free { int z; };
  )cc");
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].name, "Outer");
  EXPECT_EQ(extents[1].name, "Inner");
  EXPECT_EQ(extents[2].name, "Free");
  // Inner's body nests strictly inside Outer's.
  EXPECT_GT(extents[1].body_open, extents[0].body_open);
  EXPECT_LT(extents[1].body_close, extents[0].body_close);
}

TEST(FindClassExtentsTest, SkipsEnumsForwardDeclsAndElaboratedUses) {
  const std::vector<ClassExtent> extents = Extents(R"cc(
    enum class Color { kRed };
    class Fwd;
    class Fwd* MakeFwd();
    class Real : public Base<int>, private Other {
      int x;
    };
  )cc");
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].name, "Real");
}

TEST(FindClassExtentsTest, NestedNameKeysByLastComponent) {
  const std::vector<ClassExtent> extents = Extents(R"cc(
    struct Pool::Work {
      int chunks;
    };
  )cc");
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].name, "Work");
}

// ----------------------------------------------------- annotation index ----

TEST(AnnotationIndexTest, CollectsGuardedFieldsMutexesAndContracts) {
  const AnnotationIndex index = Index(R"cc(
    class Replica {
     public:
      void CutLocked() VSD_REQUIRES(mu_);
      void Process() VSD_EXCLUDES(mu_);
      void Lock() VSD_ACQUIRES(mu_);

     private:
      mutable std::mutex mu_;
      std::mutex idle_mu_;
      int pending_ VSD_GUARDED_BY(mu_) = 0;
      bool stop_ VSD_GUARDED_BY(mu_) = false;
    };
  )cc");
  const ClassAnnotations* cls = index.ForClass("Replica");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->file, "src/x/c.cc");
  ASSERT_EQ(cls->guarded.size(), 2u);
  EXPECT_EQ(cls->guarded.at("pending_"), "Replica::mu_");
  EXPECT_EQ(cls->guarded.at("stop_"), "Replica::mu_");
  ASSERT_EQ(cls->mutexes.size(), 2u);
  EXPECT_EQ(cls->mutexes[0].name, "mu_");
  EXPECT_EQ(cls->mutexes[1].name, "idle_mu_");

  const MethodContract* cut = index.ContractFor("Replica", "CutLocked");
  ASSERT_NE(cut, nullptr);
  EXPECT_EQ(cut->requires_held.count("Replica::mu_"), 1u);
  const MethodContract* process = index.ContractFor("Replica", "Process");
  ASSERT_NE(process, nullptr);
  EXPECT_EQ(process->excludes.count("Replica::mu_"), 1u);
  const MethodContract* lock = index.ContractFor("Replica", "Lock");
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->acquires.count("Replica::mu_"), 1u);
}

TEST(AnnotationIndexTest, ContractSurvivesTrailingSpecifiers) {
  const AnnotationIndex index = Index(R"cc(
    class C {
      int64_t NextLocked(int64_t now) const noexcept VSD_REQUIRES(mu_);
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc");
  const MethodContract* contract = index.ContractFor("C", "NextLocked");
  ASSERT_NE(contract, nullptr);
  EXPECT_EQ(contract->requires_held.count("C::mu_"), 1u);
}

TEST(AnnotationIndexTest, OutOfClassDefinitionGetsTheClassContract) {
  const AnnotationIndex index = Index(R"cc(
    class C {
      void DrainLocked() VSD_REQUIRES(mu_);
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
    void C::DrainLocked() { n_ += 1; }
  )cc");
  // The contract declared in the class applies to the out-of-class body:
  // qualifier lookup by last component.
  const MethodContract* contract = index.ContractFor("C", "DrainLocked");
  ASSERT_NE(contract, nullptr);
  EXPECT_EQ(contract->requires_held.count("C::mu_"), 1u);
}

TEST(AnnotationIndexTest, UnknownClassAndMethodReturnNull) {
  const AnnotationIndex index = Index("class C { int x; };");
  EXPECT_EQ(index.ForClass("Missing"), nullptr);
  EXPECT_EQ(index.ContractFor("C", "Missing"), nullptr);
}

// ---------------------------------------------------------- rule checks ----

TEST(CheckGuardedByTest, FindingNamesFieldLockAndFunction) {
  DataflowProgram program;
  program.AddFile("src/x/c.cc", Lex(R"cc(
    class Counter {
     public:
      int Peek() { return n_; }

     private:
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc"));
  const AnnotationIndex index = BuildAnnotationIndex(program);
  const std::vector<Finding> findings = CheckGuardedBy(program, index);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_NE(findings[0].message.find("'n_'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Counter::mu_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Peek"), std::string::npos);
}

TEST(CheckGuardedByTest, GuardedAccessInOutOfClassBodyIsTracked) {
  DataflowProgram program;
  program.AddFile("src/x/c.h", Lex(R"cc(
    class Counter {
     public:
      void Inc();

     private:
      std::mutex mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc"));
  program.AddFile("src/x/c.cc", Lex(R"cc(
    void Counter::Inc() {
      std::lock_guard<std::mutex> lock(mu_);
      n_ += 1;
    }
  )cc"));
  const AnnotationIndex index = BuildAnnotationIndex(program);
  EXPECT_TRUE(CheckGuardedBy(program, index).empty());
}

TEST(CheckUnannotatedMutexTest, OnlySrcClassesWithZeroGuardedFieldsFlag) {
  DataflowProgram program;
  program.AddFile("src/x/c.cc", Lex(R"cc(
    class Bare { std::mutex mu_; int n_; };
    class Annotated {
      std::mutex mu_;
      std::mutex aux_mu_;
      int n_ VSD_GUARDED_BY(mu_) = 0;
    };
  )cc"));
  program.AddFile("tools/t.cc", Lex(R"cc(
    class ToolBare { std::mutex mu_; int n_; };
  )cc"));
  const AnnotationIndex index = BuildAnnotationIndex(program);
  const std::vector<Finding> findings = CheckUnannotatedMutex(index);
  // Bare's mu_ flags; Annotated has a guarded field (aux_mu_ rides along
  // as the class is covered); ToolBare is outside src/.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unannotated-mutex");
  EXPECT_EQ(findings[0].file, "src/x/c.cc");
  EXPECT_NE(findings[0].message.find("'Bare'"), std::string::npos);
}

TEST(CheckRefInvalidationTest, TensorStorageCountsAsContiguous) {
  DataflowProgram program;
  program.AddFile("src/x/c.cc", Lex(R"cc(
    void F() {
      Tensor t;
      float* data = &t.data[0];
      t.data.resize(16);
      data[0] = 1.0f;
    }
  )cc"));
  const std::vector<Finding> findings = CheckRefInvalidation(program);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ref-invalidation");
}

}  // namespace
}  // namespace vsd::lint
