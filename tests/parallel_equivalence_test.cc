// Golden-determinism suite for the parallelism subsystem: every parallel
// code path (metrics evaluation, the three perturbation explainers,
// cross-validation, interpretability plumbing) must produce BIT-IDENTICAL
// results for every thread count. The serial (threads=1) run is the
// reference; any divergence means scheduling leaked into the math.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/sobol.h"
#include "img/slic.h"
#include "vlm/foundation_model.h"

namespace vsd {
namespace {

/// Runs `fn` with the global pool sized to `threads`, restoring the serial
/// pool afterwards so test order cannot leak thread counts.
template <typename T>
T WithThreads(int threads, const std::function<T()>& fn) {
  ThreadPool::SetGlobalThreads(threads);
  T result = fn();
  ThreadPool::SetGlobalThreads(1);
  return result;
}

void ExpectMetricsIdentical(const core::Metrics& a, const core::Metrics& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.n, b.n);
}

/// Small untrained task model over a quick-sized dataset: inference is
/// deterministic and cheap, which is all equivalence testing needs.
struct ModelWorld {
  data::Dataset dataset;
  vlm::FoundationModel model;

  ModelWorld()
      : dataset(data::MakeUvsdSimSmall(48, 1234)),
        model(MakeConfig()) {
    model.PrecomputeFeatures(dataset);
  }

  static vlm::FoundationModelConfig MakeConfig() {
    vlm::FoundationModelConfig config;
    config.vision_dim = 12;
    config.hidden_dim = 24;
    config.au_feature_dim = 12;
    config.seed = 9;
    return config;
  }
};

/// Parameterized over the thread counts the sweep must hold for.
class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

TEST_P(ParallelEquivalenceTest, EvaluatePredictorMetricsBitIdentical) {
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  const auto evaluate = [&] {
    return core::EvaluatePipeline(pipeline, world.dataset);
  };
  const core::Metrics serial = WithThreads<core::Metrics>(1, evaluate);
  const core::Metrics parallel =
      WithThreads<core::Metrics>(GetParam(), evaluate);
  ExpectMetricsIdentical(serial, parallel);
  EXPECT_GT(serial.n, 0);
}

TEST_P(ParallelEquivalenceTest, ExplainerAttributionsBitIdentical) {
  img::Image image(32, 32, 0.2f);
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) image.at(y, x) = 0.9f;
  }
  const img::Segmentation segmentation = img::Slic(image, 16, 20.0f);
  const explain::ClassifierFn oracle = [](const img::Image& im) {
    double sum = 0.0;
    for (int y = 8; y < 16; ++y) {
      for (int x = 8; x < 16; ++x) sum += im.at(y, x);
    }
    return sum / 64.0;
  };

  const explain::LimeExplainer lime(64);
  const explain::KernelShapExplainer shap(64);
  const explain::SobolExplainer sobol(4);
  for (const explain::Explainer* explainer :
       {static_cast<const explain::Explainer*>(&lime),
        static_cast<const explain::Explainer*>(&shap),
        static_cast<const explain::Explainer*>(&sobol)}) {
    const auto explain = [&] {
      Rng rng(77);  // fresh identical stream for both runs
      return explainer->Explain(oracle, image, segmentation, &rng)
          .segment_scores;
    };
    const std::vector<double> serial =
        WithThreads<std::vector<double>>(1, explain);
    const std::vector<double> parallel =
        WithThreads<std::vector<double>>(GetParam(), explain);
    ASSERT_EQ(serial.size(), parallel.size()) << explainer->name();
    for (size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(serial[j], parallel[j])
          << explainer->name() << " segment " << j
          << " differs between threads=1 and threads=" << GetParam();
    }
  }
}

TEST_P(ParallelEquivalenceTest, CrossValidateBitIdentical) {
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  bench::BenchOptions options;
  options.folds = 4;
  options.seed = 55;
  // A fold body that itself evaluates sample-parallel, so this also covers
  // nested parallel loops (fold-level x sample-level).
  const auto cross_validate = [&] {
    return bench::CrossValidate(
        world.dataset, options,
        [&](const data::Dataset& train, const data::Dataset& test,
            uint64_t fold_seed) {
          (void)train;
          (void)fold_seed;
          return core::EvaluatePipeline(pipeline, test);
        });
  };
  const core::Metrics serial = WithThreads<core::Metrics>(1, cross_validate);
  const core::Metrics parallel =
      WithThreads<core::Metrics>(GetParam(), cross_validate);
  ExpectMetricsIdentical(serial, parallel);
  EXPECT_EQ(serial.n, world.dataset.size());
}

TEST_P(ParallelEquivalenceTest, BuildInterpContextSegmentationsBitIdentical) {
  ModelWorld world;
  std::vector<const data::VideoSample*> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(&world.dataset.samples[i]);
  const auto build = [&] {
    return bench::BuildInterpContext(samples).segmentations;
  };
  const auto serial = WithThreads<std::vector<img::Segmentation>>(1, build);
  const auto parallel =
      WithThreads<std::vector<img::Segmentation>>(GetParam(), build);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].num_segments, parallel[i].num_segments);
    EXPECT_EQ(serial[i].labels, parallel[i].labels) << "sample " << i;
  }
}

TEST_P(ParallelEquivalenceTest, ExplainerStreamConsumptionThreadInvariant) {
  // The caller's Rng must advance by the same amount for every thread
  // count, or everything downstream of an Explain call would shift.
  img::Image image(32, 32, 0.5f);
  const img::Segmentation segmentation = img::Slic(image, 16, 20.0f);
  const explain::ClassifierFn constant = [](const img::Image&) {
    return 0.5;
  };
  const auto next_after = [&](int threads) {
    return WithThreads<uint64_t>(threads, [&] {
      Rng rng(31);
      explain::LimeExplainer(32).Explain(constant, image, segmentation,
                                         &rng);
      explain::KernelShapExplainer(32).Explain(constant, image, segmentation,
                                               &rng);
      explain::SobolExplainer(2).Explain(constant, image, segmentation,
                                         &rng);
      return rng.Next();
    });
  };
  EXPECT_EQ(next_after(1), next_after(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace vsd
