// Serving-layer contract suite: faults-off serving is bit-identical to a
// direct PredictBatch at every (worker count, batch cut size, thread count);
// every accepted request's future resolves (backpressure, deadlines,
// shutdown included); and with deterministic fault injection the same seed
// produces the same outcomes on every run.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <tuple>
#include <vector>

#include "common/batching.h"
#include "common/faults.h"
#include "common/thread_pool.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "serve/server.h"
#include "vlm/foundation_model.h"

namespace vsd::serve {
namespace {

using ServeFuture = std::future<vsd::Result<ServeResult>>;

/// Bounded retrieval: a hung future fails the test instead of hanging it.
vsd::Result<ServeResult> Get(ServeFuture& future) {
  const auto status = future.wait_for(std::chrono::seconds(120));
  EXPECT_EQ(status, std::future_status::ready) << "future never resolved";
  if (status != std::future_status::ready) {
    return Status::Internal("future never resolved");
  }
  return future.get();
}

/// Small untrained model + dataset, shared across tests (inference only).
struct ModelWorld {
  data::Dataset dataset;
  vlm::FoundationModel model;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline;

  ModelWorld()
      : dataset(data::MakeUvsdSimSmall(24, 1234)),
        model(MakeConfig()),
        pipeline(&model, chain) {
    model.PrecomputeFeatures(dataset);
  }

  std::vector<const data::VideoSample*> Pointers() const {
    std::vector<const data::VideoSample*> out;
    for (const auto& s : dataset.samples) out.push_back(&s);
    return out;
  }

  static ModelWorld& Shared() {
    static ModelWorld* world = new ModelWorld();
    return *world;
  }

  static vlm::FoundationModelConfig MakeConfig() {
    vlm::FoundationModelConfig config;
    config.vision_dim = 12;
    config.hidden_dim = 24;
    config.au_feature_dim = 12;
    config.seed = 9;
    return config;
  }
};

/// Constant-probability classifier standing in for the cheap pretrained
/// fallback rung.
class ConstClassifier : public baselines::StressClassifier {
 public:
  explicit ConstClassifier(double prob) : prob_(prob) {}
  std::string name() const override { return "const"; }
  void Fit(const data::Dataset&, Rng*) override {}
  double PredictProbStressed(const data::VideoSample&) const override {
    return prob_;
  }

 private:
  double prob_;
};

/// Every test leaves the global injector and pool the way it found them.
class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().Disable();
    ThreadPool::SetGlobalThreads(1);
    SetDefaultBatchSize(32);
  }
};

// ---------------------------------------------------- faults-off serving ----

/// (max_batch, num_workers, pool threads): served results must be
/// bit-identical to the direct batched call for every combination.
class ServeIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  void TearDown() override {
    FaultInjector::Global().Disable();
    ThreadPool::SetGlobalThreads(1);
    SetDefaultBatchSize(32);
  }
};

TEST_P(ServeIdentityTest, FaultsOffServingMatchesDirectPredictBatch) {
  FaultInjector::Global().Disable();
  ThreadPool::SetGlobalThreads(std::get<2>(GetParam()));
  ModelWorld& world = ModelWorld::Shared();
  const auto samples = world.Pointers();
  const std::vector<double> direct = world.pipeline.PredictBatch(samples);

  ServeConfig config;
  config.max_batch = std::get<0>(GetParam());
  config.num_workers = std::get<1>(GetParam());
  config.max_queue = static_cast<int>(samples.size());
  config.max_batch_delay_micros = 200;
  StressServer server(&world.pipeline, config);

  std::vector<ServeFuture> futures;
  futures.reserve(samples.size());
  for (const data::VideoSample* sample : samples) {
    futures.push_back(server.Submit(*sample));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    vsd::Result<ServeResult> result = Get(futures[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->prob_stressed, direct[i]) << "sample " << i;
    EXPECT_EQ(result->label, direct[i] >= 0.5 ? 1 : 0);
    EXPECT_EQ(result->degradation, DegradationLevel::kFull);
    EXPECT_EQ(result->attempts, 1);
  }
  server.Shutdown();

  const ServeStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(samples.size()));
  EXPECT_EQ(stats.completed_full, static_cast<int64_t>(samples.size()));
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.Degraded(), 0);
  EXPECT_EQ(stats.Resolved(), stats.submitted);
  EXPECT_EQ(stats.batched_samples, static_cast<int64_t>(samples.size()));
  EXPECT_GE(stats.batches_cut, 1);
}

INSTANTIATE_TEST_SUITE_P(BatchWorkerThreadSweep, ServeIdentityTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(1, 4)));

// ------------------------------------------------- multi-producer ingest ----

// Ingest stress: N submitter threads racing into one server must not change
// a single bit of any result. Each producer owns a strided slice of the
// dataset and its own future vector (the outer vector is pre-sized, so no
// producer ever touches shared state); per-sample results are then checked
// against the direct batched call, which also proves no request was lost,
// duplicated, or cross-wired to another producer's future under the race.
TEST_F(ServeTest, MultiProducerIngestMatchesDirectPredictBatch) {
  FaultInjector::Global().Disable();
  ThreadPool::SetGlobalThreads(4);
  ModelWorld& world = ModelWorld::Shared();
  const auto samples = world.Pointers();
  const std::vector<double> direct = world.pipeline.PredictBatch(samples);

  constexpr int kProducers = 4;
  constexpr int kRounds = 2;
  ServeConfig config;
  config.max_batch = 5;
  config.num_workers = 3;
  config.max_batch_delay_micros = 200;
  // Queue bound above the total in flight: this test is about racing
  // submission, not backpressure, so no request may be rejected.
  config.max_queue = static_cast<int>(samples.size()) * kRounds;
  StressServer server(&world.pipeline, config);

  // futures[p] belongs to producer p alone; sample_of[p] records the
  // submission order so results can be matched back to `direct`.
  std::vector<std::vector<ServeFuture>> futures(kProducers);
  std::vector<std::vector<size_t>> sample_of(kProducers);
  {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int round = 0; round < kRounds; ++round) {
          for (size_t i = static_cast<size_t>(p); i < samples.size();
               i += kProducers) {
            futures[p].push_back(server.Submit(*samples[i]));
            sample_of[p].push_back(i);
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }

  int64_t resolved = 0;
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(futures[p].size(), sample_of[p].size());
    for (size_t k = 0; k < futures[p].size(); ++k) {
      vsd::Result<ServeResult> result = Get(futures[p][k]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const size_t i = sample_of[p][k];
      EXPECT_EQ(result->prob_stressed, direct[i])
          << "producer " << p << " sample " << i;
      EXPECT_EQ(result->degradation, DegradationLevel::kFull);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved,
            static_cast<int64_t>(samples.size()) * kRounds);
  server.Shutdown();

  const ServeStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.submitted, resolved);
  EXPECT_EQ(stats.completed_full, resolved);
  EXPECT_EQ(stats.rejected_queue_full, 0);
  EXPECT_EQ(stats.dropped_on_shutdown, 0);
  EXPECT_EQ(stats.batched_samples, resolved);
  EXPECT_EQ(stats.Resolved(), stats.submitted);
}

// --------------------------------------------------------- queue limits ----

TEST_F(ServeTest, BackpressureRejectsBeyondBoundAndShutdownDrains) {
  ModelWorld& world = ModelWorld::Shared();
  ServeConfig config;
  config.max_queue = 2;
  config.num_workers = 0;  // Requests queue up; nothing consumes them.
  StressServer server(&world.pipeline, config);

  std::vector<ServeFuture> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(server.Submit(world.dataset.samples[0]));
  }
  // The first two are queued (pending); the rest rejected immediately.
  for (int i = 2; i < 5; ++i) {
    vsd::Result<ServeResult> rejected = Get(futures[i]);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(server.Stats().rejected_queue_full, 3);

  server.Shutdown();
  for (int i = 0; i < 2; ++i) {
    vsd::Result<ServeResult> dropped = Get(futures[i]);
    ASSERT_FALSE(dropped.ok());
    EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  }
  const ServeStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.dropped_on_shutdown, 2);
  EXPECT_EQ(stats.Resolved() + stats.rejected_queue_full, stats.submitted);

  // Post-shutdown submission resolves immediately as Unavailable.
  ServeFuture late = server.Submit(world.dataset.samples[0]);
  EXPECT_EQ(Get(late).status().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, DeadlineExpiresBeforeBatchCut) {
  ModelWorld& world = ModelWorld::Shared();
  ServeConfig config;
  config.max_batch = 4;
  // The age-based cut would fire only after 1s; the request's own 2ms
  // deadline expires long before that (late expiry is fine — sanitizer
  // slowness only makes the deadline *more* expired).
  config.max_batch_delay_micros = 1000000;
  config.num_workers = 1;
  StressServer server(&world.pipeline, config);

  ServeFuture future =
      server.Submit(world.dataset.samples[0], /*deadline_micros=*/2000);
  vsd::Result<ServeResult> result = Get(future);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  server.Shutdown();
  EXPECT_EQ(server.Stats().deadline_exceeded, 1);
}

TEST_F(ServeTest, InvalidInputResolvesAsInvalidArgument) {
  ModelWorld& world = ModelWorld::Shared();
  ServeConfig config;
  config.max_batch_delay_micros = 100;
  StressServer server(&world.pipeline, config);

  data::VideoSample bad = world.dataset.samples[0];
  bad.expressive_frame = img::Image();  // Empty frame: decoder failure.
  ServeFuture bad_future = server.Submit(bad);
  ServeFuture good_future = server.Submit(world.dataset.samples[1]);

  vsd::Result<ServeResult> bad_result = Get(bad_future);
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kInvalidArgument);
  // Per-sample granularity: the bad sample must not fail its batch-mates.
  vsd::Result<ServeResult> good_result = Get(good_future);
  ASSERT_TRUE(good_result.ok()) << good_result.status().ToString();
  EXPECT_EQ(good_result->prob_stressed,
            world.pipeline.PredictProbStressed(world.dataset.samples[1]));
  server.Shutdown();
  EXPECT_EQ(server.Stats().invalid_arguments, 1);
}

// ----------------------------------------------------- faults + retries ----

/// Runs one sequential serving session (submit, wait, next) under the given
/// fault config and returns per-request (ok, code, prob, level, attempts).
struct Outcome {
  bool ok;
  StatusCode code;
  double prob;
  DegradationLevel level;
  int attempts;

  bool operator==(const Outcome& other) const {
    return ok == other.ok && code == other.code && prob == other.prob &&
           level == other.level && attempts == other.attempts;
  }
};

std::vector<Outcome> RunFaultySession(const FaultConfig& faults,
                                      const ServeConfig& config,
                                      const baselines::StressClassifier* fb) {
  ModelWorld& world = ModelWorld::Shared();
  FaultInjector::Global().Configure(faults);
  StressServer server(&world.pipeline, config, fb);
  std::vector<Outcome> outcomes;
  // Sequential submission pins batch composition (one request per batch),
  // so the whole session is deterministic end to end.
  for (const auto& sample : world.dataset.samples) {
    ServeFuture future = server.Submit(sample);
    vsd::Result<ServeResult> result = Get(future);
    Outcome o;
    o.ok = result.ok();
    o.code = result.status().code();
    o.prob = result.ok() ? result->prob_stressed : -1.0;
    o.level = result.ok() ? result->degradation : DegradationLevel::kFull;
    o.attempts = result.ok() ? result->attempts : 0;
    outcomes.push_back(o);
  }
  server.Shutdown();
  FaultInjector::Global().Disable();
  return outcomes;
}

TEST_F(ServeTest, FaultScheduleIsIdenticalAcrossSessionsAndThreadCounts) {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 41;
  faults.transient_rate = 0.3;
  faults.corrupt_rate = 0.05;
  faults.nan_rate = 0.05;
  ServeConfig config;
  config.max_batch_delay_micros = 100;
  config.retry.max_retries = 2;
  config.retry.initial_backoff_micros = 100;

  const std::vector<Outcome> first = RunFaultySession(faults, config, nullptr);
  const std::vector<Outcome> second =
      RunFaultySession(faults, config, nullptr);
  EXPECT_EQ(first, second) << "same seed must reproduce the same outcomes";

  ThreadPool::SetGlobalThreads(4);
  const std::vector<Outcome> threaded =
      RunFaultySession(faults, config, nullptr);
  EXPECT_EQ(first, threaded) << "fault schedule must not depend on threads";

  // The session actually exercised the machinery: some requests resolved
  // degraded or retried, and none hung (RunFaultySession waits on each).
  bool any_degraded = false;
  for (const Outcome& o : first) {
    any_degraded = any_degraded || (o.ok && o.level != DegradationLevel::kFull);
  }
  EXPECT_TRUE(any_degraded) << "fault rates were high enough to degrade";
}

TEST_F(ServeTest, PersistentFailureWalksDegradationLadder) {
  // transient_rate = 1: every pipeline attempt fails, retries are
  // exhausted, and every request lands on the configured lower rung.
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 7;
  faults.transient_rate = 1.0;
  ServeConfig config;
  config.max_batch_delay_micros = 100;
  config.retry.max_retries = 1;
  config.retry.initial_backoff_micros = 100;
  config.prior_prob = 0.7;

  const ConstClassifier fallback(0.25);
  const std::vector<Outcome> with_fallback =
      RunFaultySession(faults, config, &fallback);
  for (const Outcome& o : with_fallback) {
    ASSERT_TRUE(o.ok);
    EXPECT_EQ(o.level, DegradationLevel::kFallback);
    EXPECT_EQ(o.prob, 0.25);
    EXPECT_EQ(o.attempts, 2);  // First try + one retry, both failed.
  }

  const std::vector<Outcome> with_prior =
      RunFaultySession(faults, config, nullptr);
  for (const Outcome& o : with_prior) {
    ASSERT_TRUE(o.ok);
    EXPECT_EQ(o.level, DegradationLevel::kPrior);
    EXPECT_EQ(o.prob, 0.7);
  }
}

TEST_F(ServeTest, RetryRecoversFromTransientFaults) {
  // Moderate transient rate + generous retries: every request eventually
  // resolves, and any request that needed >1 attempt proves retry works
  // (worker faults are keyed by (id, attempt), so a retry draws fresh).
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 3;
  faults.transient_rate = 0.4;
  ServeConfig config;
  config.max_batch_delay_micros = 100;
  config.retry.max_retries = 8;
  config.retry.initial_backoff_micros = 50;

  const std::vector<Outcome> outcomes =
      RunFaultySession(faults, config, nullptr);
  ModelWorld& world = ModelWorld::Shared();
  const std::vector<double> direct =
      world.pipeline.PredictBatch(world.Pointers());
  bool any_retried = false;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok);
    if (outcomes[i].level == DegradationLevel::kFull) {
      // A full answer after retries is still the bit-exact answer.
      EXPECT_EQ(outcomes[i].prob, direct[i]) << "sample " << i;
      any_retried = any_retried || outcomes[i].attempts > 1;
    }
  }
  EXPECT_TRUE(any_retried) << "expected at least one successful retry";
}

TEST_F(ServeTest, BreakerShortCircuitsAfterConsecutiveFailures) {
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 7;
  faults.transient_rate = 1.0;  // Pipeline never succeeds.
  FaultInjector::Global().Configure(faults);

  ModelWorld& world = ModelWorld::Shared();
  ServeConfig config;
  config.max_batch_delay_micros = 100;
  config.retry.max_retries = 0;
  config.breaker_threshold = 1;
  config.breaker_reset_micros = 60000000;  // Stays open for the whole test.
  StressServer server(&world.pipeline, config);

  ServeFuture first = server.Submit(world.dataset.samples[0]);
  vsd::Result<ServeResult> opened = Get(first);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->degradation, DegradationLevel::kPrior);
  EXPECT_EQ(opened->attempts, 1);  // Attempted once, failed, opened breaker.

  ServeFuture second = server.Submit(world.dataset.samples[1]);
  vsd::Result<ServeResult> shorted = Get(second);
  ASSERT_TRUE(shorted.ok());
  EXPECT_EQ(shorted->degradation, DegradationLevel::kPrior);
  EXPECT_EQ(shorted->attempts, 0);  // Breaker open: pipeline never touched.
  server.Shutdown();
}

}  // namespace
}  // namespace vsd::serve
