// Property/fuzz suite for the arena lifetime planner (nn/arena.h): over
// seeded random request lists, no two live intervals may share bytes (sizes and offsets are in bytes), the
// arena never exceeds the no-reuse total, offsets stay aligned, and the
// plan is a pure function of the request list — identical across repeated
// runs and across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/arena.h"

namespace vsd::nn {
namespace {

BufferRequest Req(size_t size, int first_use, int last_use) {
  BufferRequest req;
  req.size = size;
  req.first_use = first_use;
  req.last_use = last_use;
  return req;
}

size_t Aligned(size_t size) {
  return (size + kArenaAlignBytes - 1) / kArenaAlignBytes *
         kArenaAlignBytes;
}

/// Random request list: a mix of pre-written inputs (first_use = -1) and
/// op outputs with assorted sizes (including zero) and lifetimes.
std::vector<BufferRequest> RandomRequests(Rng* rng) {
  const int n = 1 + rng->UniformInt(40);
  std::vector<BufferRequest> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int first = rng->Bernoulli(0.15) ? -1 : rng->UniformInt(60);
    const int last = first + rng->UniformInt(0, 25);
    const size_t size =
        rng->Bernoulli(0.1) ? 0 : static_cast<size_t>(rng->UniformInt(1, 300));
    requests.push_back(Req(size, first, last));
  }
  return requests;
}

bool IntervalsOverlap(const BufferRequest& a, const BufferRequest& b) {
  return a.first_use <= b.last_use && b.first_use <= a.last_use;
}

/// The planner's core guarantee: buffers whose live intervals overlap get
/// disjoint byte ranges.
void ExpectNoLiveOverlap(const std::vector<BufferRequest>& requests,
                         const ArenaPlan& plan) {
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].size == 0) continue;
    for (size_t j = i + 1; j < requests.size(); ++j) {
      if (requests[j].size == 0) continue;
      if (!IntervalsOverlap(requests[i], requests[j])) continue;
      const size_t ai = plan.offsets[i];
      const size_t bi = ai + Aligned(requests[i].size);
      const size_t aj = plan.offsets[j];
      const size_t bj = aj + Aligned(requests[j].size);
      EXPECT_TRUE(bi <= aj || bj <= ai)
          << "buffers " << i << " [" << ai << "," << bi << ") and " << j
          << " [" << aj << "," << bj << ") are live together and overlap";
    }
  }
}

/// Peak concurrently-live bytes: a lower bound no valid plan can beat.
size_t PeakLiveBytes(const std::vector<BufferRequest>& requests) {
  size_t peak = 0;
  for (const BufferRequest& at : requests) {
    for (const int t : {at.first_use, at.last_use}) {
      size_t live = 0;
      for (const BufferRequest& req : requests) {
        if (req.first_use <= t && t <= req.last_use) {
          live += Aligned(req.size);
        }
      }
      peak = std::max(peak, live);
    }
  }
  return peak;
}

TEST(ArenaTest, SequentialChainReusesMemory) {
  // A pipeline a->b->c->d: each buffer is written at step i and last read
  // at step i+1, so at most two are ever live; the arena must not grow
  // linearly with chain length.
  std::vector<BufferRequest> requests;
  for (int i = 0; i < 32; ++i) {
    requests.push_back(Req(100, i, i + 1));
  }
  const ArenaPlan plan = PlanBufferLifetimes(requests);
  EXPECT_EQ(plan.arena_size, 2 * Aligned(100));
  ExpectNoLiveOverlap(requests, plan);
}

TEST(ArenaTest, DisjointLifetimesShareOneSlot) {
  std::vector<BufferRequest> requests = {
      Req(64, 0, 1), Req(64, 2, 3), Req(64, 4, 5)};
  const ArenaPlan plan = PlanBufferLifetimes(requests);
  EXPECT_EQ(plan.arena_size, Aligned(64));
  EXPECT_EQ(plan.offsets[0], 0u);
  EXPECT_EQ(plan.offsets[1], 0u);
  EXPECT_EQ(plan.offsets[2], 0u);
}

TEST(ArenaTest, InputsLiveFromBeforeStepZero) {
  // first_use = -1 marks caller-written inputs: they may not share bytes
  // with anything live up to their last consumer.
  std::vector<BufferRequest> requests = {Req(32, -1, 4), Req(32, 0, 4),
                                         Req(32, 5, 6)};
  const ArenaPlan plan = PlanBufferLifetimes(requests);
  ExpectNoLiveOverlap(requests, plan);
  // The third buffer starts after both die and can reuse offset 0.
  EXPECT_EQ(plan.offsets[2], 0u);
  EXPECT_EQ(plan.arena_size, 2 * Aligned(32));
}

TEST(ArenaTest, ZeroSizeRequestsTakeNoSpace) {
  std::vector<BufferRequest> requests = {Req(0, 0, 10), Req(48, 0, 10)};
  const ArenaPlan plan = PlanBufferLifetimes(requests);
  EXPECT_EQ(plan.arena_size, Aligned(48));
  EXPECT_EQ(plan.offsets[0], 0u);
}

TEST(ArenaTest, OffsetsAreAligned) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const std::vector<BufferRequest> requests = RandomRequests(&rng);
    const ArenaPlan plan = PlanBufferLifetimes(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(plan.offsets[i] % kArenaAlignBytes, 0u)
          << "trial " << trial << " buffer " << i;
    }
  }
}

TEST(ArenaTest, FuzzNoLiveOverlapAndBoundedSize) {
  for (int trial = 0; trial < 200; ++trial) {
    Rng rng(1000 + 17 * static_cast<uint64_t>(trial));
    const std::vector<BufferRequest> requests = RandomRequests(&rng);
    const ArenaPlan plan = PlanBufferLifetimes(requests);

    ExpectNoLiveOverlap(requests, plan);

    // Never worse than no reuse at all...
    size_t total = 0;
    for (const BufferRequest& req : requests) total += Aligned(req.size);
    EXPECT_LE(plan.arena_size, total) << "trial " << trial;
    // ...and never better than the peak of concurrently live bytes.
    EXPECT_GE(plan.arena_size, PeakLiveBytes(requests))
        << "trial " << trial;

    // Every buffer fits inside the arena.
    for (size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].size == 0) continue;
      EXPECT_LE(plan.offsets[i] + Aligned(requests[i].size),
                plan.arena_size)
          << "trial " << trial << " buffer " << i;
    }
  }
}

TEST(ArenaTest, PlanIsDeterministic) {
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(77 + static_cast<uint64_t>(trial));
    const std::vector<BufferRequest> requests = RandomRequests(&rng);
    const ArenaPlan first = PlanBufferLifetimes(requests);
    const ArenaPlan second = PlanBufferLifetimes(requests);
    EXPECT_EQ(first.arena_size, second.arena_size) << "trial " << trial;
    EXPECT_EQ(first.offsets, second.offsets) << "trial " << trial;
  }
}

TEST(ArenaTest, PlanIsIdenticalAcrossThreadCounts) {
  // The planner is called from whatever thread compiles a graph first; its
  // output must be a pure function of the requests, not of the calling
  // context. Plan the same lists serially and from pool workers at several
  // thread counts.
  std::vector<std::vector<BufferRequest>> inputs;
  Rng rng(4242);
  for (int i = 0; i < 8; ++i) inputs.push_back(RandomRequests(&rng));

  std::vector<ArenaPlan> serial;
  serial.reserve(inputs.size());
  for (const auto& requests : inputs) {
    serial.push_back(PlanBufferLifetimes(requests));
  }

  for (const int threads : {1, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<ArenaPlan> parallel(inputs.size());
    ParallelFor(static_cast<int64_t>(inputs.size()), [&](int64_t i) {
      parallel[i] = PlanBufferLifetimes(inputs[i]);
    });
    for (size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(parallel[i].arena_size, serial[i].arena_size)
          << "threads " << threads << " input " << i;
      EXPECT_EQ(parallel[i].offsets, serial[i].offsets)
          << "threads " << threads << " input " << i;
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace vsd::nn
