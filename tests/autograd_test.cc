#include "tensor/autograd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"

namespace vsd::autograd {
namespace {

using ::vsd::tensor::Tensor;

/// Numerically checks d(loss)/d(leaf) against the autograd gradient for a
/// scalar-valued graph builder `f` evaluated at `leaf`.
void CheckGradient(const std::function<Var(const Var&)>& f, Tensor at,
                   float tol = 2e-2f, float eps = 1e-3f) {
  Var leaf(at.Clone(), /*requires_grad=*/true);
  Var loss = f(leaf);
  ASSERT_EQ(loss.value().size(), 1);
  leaf.ZeroGrad();
  Backward(loss);
  const Tensor& grad = leaf.grad();
  ASSERT_EQ(grad.size(), at.size());
  for (int i = 0; i < at.size(); ++i) {
    Tensor plus = at.Clone();
    plus.at(i) += eps;
    Tensor minus = at.Clone();
    minus.at(i) -= eps;
    const float fp = f(Var(plus)).value().at(0);
    const float fm = f(Var(minus)).value().at(0);
    const float numeric = (fp - fm) / (2.0f * eps);
    EXPECT_NEAR(grad.at(i), numeric, tol * std::max(1.0f, std::abs(numeric)))
        << "at flat index " << i;
  }
}

Tensor SmallRand(std::vector<int> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), &rng, -1.0f, 1.0f);
}

TEST(AutogradTest, AddGradient) {
  Tensor b = SmallRand({2, 3}, 1);
  CheckGradient(
      [&](const Var& x) { return SumAll(Add(x, Var(b))); },
      SmallRand({2, 3}, 2));
}

TEST(AutogradTest, AddRowBroadcastGradientOfBias) {
  Tensor x = SmallRand({4, 3}, 3);
  CheckGradient(
      [&](const Var& b) { return SumAll(Add(Var(x), b)); },
      SmallRand({3}, 4));
}

TEST(AutogradTest, SubGradient) {
  Tensor b = SmallRand({5}, 5);
  CheckGradient(
      [&](const Var& x) { return SumAll(Sub(x, Var(b))); },
      SmallRand({5}, 6));
  CheckGradient(
      [&](const Var& x) { return SumAll(Sub(Var(b), x)); },
      SmallRand({5}, 7));
}

TEST(AutogradTest, MulGradientBothSides) {
  Tensor other = SmallRand({2, 3}, 8);
  CheckGradient(
      [&](const Var& x) { return SumAll(Mul(x, Var(other))); },
      SmallRand({2, 3}, 9));
  CheckGradient(
      [&](const Var& x) { return SumAll(Mul(Var(other), x)); },
      SmallRand({2, 3}, 10));
}

TEST(AutogradTest, MulSelfQuadratic) {
  // d/dx sum(x*x) = 2x.
  Tensor at = SmallRand({4}, 11);
  Var x(at.Clone(), true);
  Var loss = SumAll(Mul(x, x));
  Backward(loss);
  for (int i = 0; i < at.size(); ++i) {
    EXPECT_NEAR(x.grad().at(i), 2.0f * at.at(i), 1e-4f);
  }
}

TEST(AutogradTest, ScaleNegGradient) {
  CheckGradient([](const Var& x) { return SumAll(Scale(x, 3.5f)); },
                SmallRand({3}, 12));
  CheckGradient([](const Var& x) { return SumAll(Neg(x)); },
                SmallRand({3}, 13));
}

TEST(AutogradTest, MatMulGradientLeft) {
  Tensor b = SmallRand({3, 2}, 14);
  CheckGradient(
      [&](const Var& x) { return SumAll(MatMul(x, Var(b))); },
      SmallRand({2, 3}, 15));
}

TEST(AutogradTest, MatMulGradientRight) {
  Tensor a = SmallRand({2, 3}, 16);
  CheckGradient(
      [&](const Var& x) { return SumAll(MatMul(Var(a), x)); },
      SmallRand({3, 2}, 17));
}

TEST(AutogradTest, ReluGradient) {
  // Keep values away from the kink.
  Tensor at = Tensor::FromVector({4}, {-0.8f, -0.3f, 0.4f, 1.2f});
  CheckGradient([](const Var& x) { return SumAll(Relu(x)); }, at);
}

TEST(AutogradTest, TanhSigmoidExpLogGradients) {
  CheckGradient([](const Var& x) { return SumAll(TanhV(x)); },
                SmallRand({4}, 18));
  CheckGradient([](const Var& x) { return SumAll(SigmoidV(x)); },
                SmallRand({4}, 19));
  CheckGradient([](const Var& x) { return SumAll(ExpV(x)); },
                SmallRand({4}, 20));
  Tensor positive = Tensor::FromVector({3}, {0.5f, 1.0f, 2.0f});
  CheckGradient([](const Var& x) { return SumAll(LogV(x)); }, positive);
}

TEST(AutogradTest, GeluGradient) {
  CheckGradient([](const Var& x) { return SumAll(Gelu(x)); },
                SmallRand({5}, 21));
}

TEST(AutogradTest, ConcatGradient) {
  Tensor b = SmallRand({2, 2}, 22);
  CheckGradient(
      [&](const Var& x) { return SumAll(Concat(x, Var(b))); },
      SmallRand({2, 3}, 23));
  CheckGradient(
      [&](const Var& x) { return SumAll(Concat(Var(b), x)); },
      SmallRand({2, 3}, 24));
}

TEST(AutogradTest, ReshapeGradient) {
  CheckGradient(
      [](const Var& x) {
        Var r = Reshape(x, {3, 2});
        return SumAll(Mul(r, r));
      },
      SmallRand({2, 3}, 25));
}

TEST(AutogradTest, MeanAllGradient) {
  CheckGradient([](const Var& x) { return MeanAll(Mul(x, x)); },
                SmallRand({2, 3}, 26));
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  std::vector<int> labels = {0, 2, 1};
  CheckGradient(
      [&](const Var& x) { return SoftmaxCrossEntropy(x, labels); },
      SmallRand({3, 3}, 27));
}

TEST(AutogradTest, SoftmaxCrossEntropyValue) {
  // Uniform logits -> loss = log(C).
  Var logits(Tensor::Zeros({2, 4}));
  Var loss = SoftmaxCrossEntropy(logits, {1, 3});
  EXPECT_NEAR(loss.value().at(0), std::log(4.0f), 1e-5f);
}

TEST(AutogradTest, BceWithLogitsGradient) {
  std::vector<float> targets = {1.0f, 0.0f, 1.0f, 0.0f};
  CheckGradient(
      [&](const Var& x) { return BceWithLogits(x, targets); },
      SmallRand({4}, 28));
}

TEST(AutogradTest, BceWithLogitsValue) {
  Var logits(Tensor::Zeros({2}));
  Var loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.value().at(0), std::log(2.0f), 1e-5f);
}

TEST(AutogradTest, LogSoftmaxGradient) {
  CheckGradient(
      [](const Var& x) {
        Var ls = LogSoftmaxRows(x);
        // Weighted sum to give distinct row gradients.
        Tensor w = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0.5f, 2});
        return SumAll(Mul(ls, Var(w)));
      },
      SmallRand({2, 3}, 29));
}

TEST(AutogradTest, SoftmaxRowsVGradient) {
  CheckGradient(
      [](const Var& x) {
        Var p = SoftmaxRowsV(x);
        Tensor w = Tensor::FromVector({2, 2}, {2, -1, 0.5f, 3});
        return SumAll(Mul(p, Var(w)));
      },
      SmallRand({2, 2}, 30));
}

TEST(AutogradTest, LayerNormGradientAll) {
  Tensor gamma = Tensor::FromVector({3}, {1.2f, 0.8f, 1.0f});
  Tensor beta = Tensor::FromVector({3}, {0.1f, -0.2f, 0.0f});
  Tensor x = SmallRand({2, 3}, 31);
  CheckGradient(
      [&](const Var& v) {
        Var y = LayerNormRows(v, Var(gamma), Var(beta));
        return SumAll(Mul(y, y));
      },
      x, /*tol=*/5e-2f);
  CheckGradient(
      [&](const Var& g) {
        Var y = LayerNormRows(Var(x), g, Var(beta));
        return SumAll(Mul(y, y));
      },
      gamma);
  CheckGradient(
      [&](const Var& b) {
        Var y = LayerNormRows(Var(x), Var(gamma), b);
        return SumAll(Mul(y, y));
      },
      beta);
}

TEST(AutogradTest, MeanRowsGradient) {
  CheckGradient(
      [](const Var& x) {
        Var m = MeanRows(x);
        return SumAll(Mul(m, m));
      },
      SmallRand({3, 2}, 32));
}

TEST(AutogradTest, Im2ColGradient) {
  CheckGradient(
      [](const Var& x) {
        Var cols = Im2Col(x, 2, 2, 1, 0);
        return SumAll(Mul(cols, cols));
      },
      SmallRand({1, 3, 3, 2}, 33));
}

TEST(AutogradTest, Im2ColWithStrideAndPad) {
  CheckGradient(
      [](const Var& x) {
        Var cols = Im2Col(x, 3, 3, 2, 1);
        return SumAll(Mul(cols, cols));
      },
      SmallRand({2, 5, 5, 1}, 34));
}

TEST(AutogradTest, Im2ColValues) {
  // 1x2x2x1 image, 2x2 kernel, stride 1, no pad -> one row of 4 values.
  Tensor x = Tensor::FromVector({1, 2, 2, 1}, {1, 2, 3, 4});
  Var cols = Im2Col(Var(x), 2, 2, 1, 0);
  ASSERT_EQ(cols.value().dim(0), 1);
  ASSERT_EQ(cols.value().dim(1), 4);
  EXPECT_EQ(cols.value().at(0, 0), 1.0f);
  EXPECT_EQ(cols.value().at(0, 3), 4.0f);
}

TEST(AutogradTest, ConvOutDim) {
  EXPECT_EQ(ConvOutDim(32, 3, 1, 1), 32);
  EXPECT_EQ(ConvOutDim(32, 3, 2, 1), 16);
  EXPECT_EQ(ConvOutDim(5, 3, 2, 0), 2);
}

TEST(AutogradTest, GradAccumulatesAcrossBackward) {
  Var x(Tensor::FromVector({1}, {2.0f}), true);
  Var loss = Mul(x, x);
  Backward(loss);
  EXPECT_NEAR(x.grad().at(0), 4.0f, 1e-5f);
  Var loss2 = Mul(x, x);
  Backward(loss2);  // accumulates
  EXPECT_NEAR(x.grad().at(0), 8.0f, 1e-5f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad().at(0), 0.0f);
}

TEST(AutogradTest, DiamondGraphGradient) {
  // loss = sum((x + x) * x) = 2*sum(x^2); grad = 4x.
  Tensor at = SmallRand({3}, 35);
  Var x(at.Clone(), true);
  Var loss = SumAll(Mul(Add(x, x), x));
  Backward(loss);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad().at(i), 4.0f * at.at(i), 1e-4f);
  }
}

TEST(AutogradTest, NoGradForConstants) {
  Var c(Tensor::FromVector({2}, {1, 2}), false);
  Var x(Tensor::FromVector({2}, {3, 4}), true);
  Var loss = SumAll(Mul(c, x));
  Backward(loss);
  EXPECT_EQ(c.grad().size(), 0);  // never allocated
  EXPECT_NEAR(x.grad().at(0), 1.0f, 1e-6f);
}

TEST(AutogradTest, DivGradientBothSides) {
  Tensor b = Tensor::FromVector({4}, {1.5f, -2.0f, 0.7f, 3.0f});
  CheckGradient(
      [&](const Var& x) { return SumAll(Div(x, Var(b))); },
      SmallRand({4}, 40));
  Tensor a = SmallRand({4}, 41);
  CheckGradient(
      [&](const Var& x) { return SumAll(Div(Var(a), x)); }, b);
}

TEST(AutogradTest, DivByScalar) {
  Tensor s = Tensor::Full({1}, 2.5f);
  CheckGradient(
      [&](const Var& x) { return SumAll(Div(x, Var(s))); },
      SmallRand({3}, 42));
}

TEST(AutogradTest, SqrtGradient) {
  Tensor positive = Tensor::FromVector({3}, {0.5f, 1.0f, 2.5f});
  CheckGradient([](const Var& x) { return SumAll(SqrtV(x)); }, positive);
}

TEST(AutogradTest, AbsGradient) {
  Tensor at = Tensor::FromVector({4}, {-0.8f, -0.2f, 0.3f, 1.1f});
  CheckGradient([](const Var& x) { return SumAll(AbsV(x)); }, at);
}

TEST(AutogradTest, ClampGradientPassesOnlyInside) {
  Tensor at = Tensor::FromVector({3}, {-2.0f, 0.2f, 2.0f});
  Var x(at.Clone(), true);
  Var loss = SumAll(ClampV(x, -1.0f, 1.0f));
  Backward(loss);
  EXPECT_EQ(x.grad().at(0), 0.0f);   // below lo
  EXPECT_EQ(x.grad().at(1), 1.0f);   // inside
  EXPECT_EQ(x.grad().at(2), 0.0f);   // above hi
}

TEST(AutogradTest, MulColumnGradient) {
  Tensor col = Tensor::FromVector({3, 1}, {0.5f, -1.0f, 2.0f});
  CheckGradient(
      [&](const Var& x) { return SumAll(MulColumn(x, Var(col))); },
      SmallRand({3, 4}, 43));
  Tensor x = SmallRand({3, 4}, 44);
  CheckGradient(
      [&](const Var& c) { return SumAll(MulColumn(Var(x), c)); },
      Tensor::FromVector({3, 1}, {0.5f, -1.0f, 2.0f}));
}

TEST(AutogradTest, SoftplusGradient) {
  CheckGradient([](const Var& x) { return SumAll(Softplus(x)); },
                SmallRand({5}, 45));
}

TEST(AutogradTest, RowSumGradient) {
  CheckGradient(
      [](const Var& x) {
        Var rs = RowSum(x);
        return SumAll(Mul(rs, rs));
      },
      SmallRand({3, 4}, 46));
}

TEST(AutogradTest, DeepChainGradient) {
  // Long chains must not blow the stack (iterative DFS).
  Var x(Tensor::FromVector({1}, {0.5f}), true);
  Var h = x;
  for (int i = 0; i < 2000; ++i) h = Scale(h, 1.0f);
  Backward(h);
  EXPECT_NEAR(x.grad().at(0), 1.0f, 1e-5f);
}

}  // namespace
}  // namespace vsd::autograd
