#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "data/generator.h"
#include "img/pgm.h"
#include "nn/layers.h"
#include "vlm/foundation_model.h"

namespace vsd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripMlp) {
  Rng rng(1);
  nn::Mlp a({4, 8, 2}, nn::Activation::kGelu, &rng);
  nn::Mlp b({4, 8, 2}, nn::Activation::kGelu, &rng);  // different weights
  const std::string path = TempPath("mlp.vsdm");
  ASSERT_TRUE(nn::SaveModule(a, path).ok());
  ASSERT_TRUE(nn::LoadModule(&b, path).ok());
  EXPECT_EQ(a.StateVector(), b.StateVector());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsWrongArchitecture) {
  Rng rng(2);
  nn::Mlp a({4, 8, 2}, nn::Activation::kGelu, &rng);
  nn::Mlp smaller({4, 4, 2}, nn::Activation::kGelu, &rng);
  const std::string path = TempPath("mlp2.vsdm");
  ASSERT_TRUE(nn::SaveModule(a, path).ok());
  const Status status = nn::LoadModule(&smaller, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageFile) {
  const std::string path = TempPath("garbage.vsdm");
  std::ofstream(path) << "this is not a checkpoint";
  Rng rng(3);
  nn::Mlp m({2, 2}, nn::Activation::kRelu, &rng);
  EXPECT_FALSE(nn::LoadModule(&m, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(4);
  nn::Mlp m({2, 2}, nn::Activation::kRelu, &rng);
  EXPECT_EQ(nn::LoadModule(&m, "/nonexistent/vsd.ckpt").code(),
            StatusCode::kNotFound);
}

TEST(SerializeTest, RejectsTruncatedPayload) {
  Rng rng(5);
  nn::Mlp a({4, 8, 2}, nn::Activation::kGelu, &rng);
  const std::string path = TempPath("trunc.vsdm");
  ASSERT_TRUE(nn::SaveModule(a, path).ok());
  // Truncate the payload.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - 32));
  out.close();
  EXPECT_FALSE(nn::LoadModule(&a, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, FoundationModelRoundTripPreservesBehaviour) {
  vlm::FoundationModelConfig config;
  config.vision_dim = 12;
  config.hidden_dim = 24;
  config.au_feature_dim = 12;
  config.seed = 6;
  vlm::FoundationModel a(config);
  config.seed = 7;  // different init
  vlm::FoundationModel b(config);
  const std::string path = TempPath("fm.vsdm");
  ASSERT_TRUE(nn::SaveModule(a, path).ok());
  ASSERT_TRUE(nn::LoadModule(&b, path).ok());

  data::Dataset d = data::MakeUvsdSimSmall(4, 99);
  for (const auto& sample : d.samples) {
    EXPECT_EQ(a.DescriptionLogProb(sample, face::AuMask{}),
              b.DescriptionLogProb(sample, face::AuMask{}));
  }
  std::remove(path.c_str());
}

TEST(PgmTest, RoundTripBinary) {
  Rng rng(8);
  img::Image image(17, 9);
  for (auto& p : image.mutable_pixels()) {
    p = static_cast<float>(rng.Uniform());
  }
  const std::string path = TempPath("face.pgm");
  ASSERT_TRUE(img::WritePgm(image, path).ok());
  auto loaded = img::ReadPgm(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->width(), 17);
  EXPECT_EQ(loaded->height(), 9);
  for (int i = 0; i < image.size(); ++i) {
    EXPECT_NEAR(loaded->pixels()[i], image.pixels()[i], 1.0f / 255.0f);
  }
  std::remove(path.c_str());
}

TEST(PgmTest, ReadsAsciiVariant) {
  const std::string path = TempPath("ascii.pgm");
  std::ofstream(path) << "P2\n# comment\n2 2\n255\n0 128 255 64\n";
  auto loaded = img::ReadPgm(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded->at(0, 1), 128.0f / 255.0f, 1e-6f);
  EXPECT_NEAR(loaded->at(1, 0), 1.0f, 1e-6f);
  std::remove(path.c_str());
}

TEST(PgmTest, RejectsNonPgm) {
  const std::string path = TempPath("notpgm.txt");
  std::ofstream(path) << "hello";
  EXPECT_FALSE(img::ReadPgm(path).ok());
  std::remove(path.c_str());
}

TEST(PgmTest, RejectsEmptyImageWrite) {
  img::Image empty;
  EXPECT_FALSE(img::WritePgm(empty, TempPath("empty.pgm")).ok());
}

}  // namespace
}  // namespace vsd
