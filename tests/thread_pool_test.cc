// Unit tests for the deterministic thread pool: task completion,
// exception propagation, nested-loop safety, the threads=1 inline path,
// and the pool-size-independent static partitioning that underpins the
// parallel-vs-serial equivalence contract.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vsd {
namespace {

TEST(StaticPartitionTest, ChunksCoverRangeExactlyOnce) {
  for (int64_t n : {1, 2, 5, 63, 64, 65, 1000, 4096}) {
    const int chunks = NumChunks(n);
    ASSERT_GE(chunks, 1);
    std::vector<int> hits(n, 0);
    int64_t expected_begin = 0;
    for (int c = 0; c < chunks; ++c) {
      const auto [begin, end] = ChunkBounds(n, c);
      EXPECT_EQ(begin, expected_begin) << "gap before chunk " << c;
      EXPECT_GT(end, begin) << "empty chunk " << c;
      for (int64_t i = begin; i < end; ++i) ++hits[i];
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, n);
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(StaticPartitionTest, MappingIndependentOfPoolSize) {
  // The partition is a pure function of n: pools of any size must see the
  // same index -> chunk mapping. (ChunkBounds takes no pool argument, so
  // this asserts the API cannot regress into pool-size-dependent chunks.)
  const int64_t n = 1000;
  std::vector<int> chunk_of(n, -1);
  for (int c = 0; c < NumChunks(n); ++c) {
    const auto [begin, end] = ChunkBounds(n, c);
    for (int64_t i = begin; i < end; ++i) chunk_of[i] = c;
  }
  for (int pool_size : {1, 2, 3, 8}) {
    ThreadPool pool(pool_size);
    std::vector<int> seen(n, -2);
    pool.ParallelFor(n, [&](int64_t i) {
      // Recompute the chunk this index belongs to; it must match the
      // pool-independent mapping above.
      for (int c = 0; c < NumChunks(n); ++c) {
        const auto [begin, end] = ChunkBounds(n, c);
        if (i >= begin && i < end) {
          seen[i] = c;
          return;
        }
      }
    });
    EXPECT_EQ(seen, chunk_of) << "pool size " << pool_size;
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 500;
    std::vector<int> counts(n, 0);
    pool.ParallelFor(n, [&](int64_t i) { ++counts[i]; });
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), n)
        << "threads=" << threads;
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.ParallelMap<int64_t>(300, [](int64_t i) { return i * i; });
  ASSERT_EQ(out.size(), 300u);
  for (int64_t i = 0; i < 300; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  // vsd-lint: allow(unguarded-capture) — count <= 0, the body never runs.
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  // vsd-lint: allow(unguarded-capture) — count <= 0, the body never runs.
  pool.ParallelFor(-5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(pool.ParallelMap<int>(0, [](int64_t) { return 1; }).empty());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(100, [&](int64_t) {
    // vsd-lint: allow(unguarded-capture) — pool(1) runs inline, one thread.
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(200,
                         [](int64_t i) {
                           if (i == 137) throw std::runtime_error("boom");
                         }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool stays usable after a throwing loop.
    std::atomic<int> ran{0};
    pool.ParallelFor(50, [&](int64_t) { ++ran; });
    EXPECT_EQ(ran.load(), 50);
  }
}

TEST(ThreadPoolTest, LowestFailingIndexWinsDeterministically) {
  // Both the inline and the parallel path must surface the exception of
  // the lowest failing iteration, so error behavior cannot depend on
  // scheduling.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::string what;
    try {
      pool.ParallelFor(400, [](int64_t i) {
        if (i % 100 == 99) {
          throw std::runtime_error("fail@" + std::to_string(i));
        }
      });
      FAIL() << "expected throw, threads=" << threads;
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "fail@99") << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCompletes) {
  ThreadPool pool(4);
  const int64_t outer = 20;
  const int64_t inner = 30;
  std::vector<std::vector<int>> counts(outer, std::vector<int>(inner, 0));
  pool.ParallelFor(outer, [&](int64_t i) {
    // Nested call on the same pool: must not deadlock, and must still run
    // every inner index exactly once.
    pool.ParallelFor(inner, [&](int64_t j) { ++counts[i][j]; });
  });
  for (int64_t i = 0; i < outer; ++i) {
    for (int64_t j = 0; j < inner; ++j) {
      EXPECT_EQ(counts[i][j], 1) << "(" << i << "," << j << ")";
    }
  }
}

TEST(ThreadPoolTest, ConcurrentExternalSubmittersSerialize) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      pool.ParallelFor(100, [&](int64_t) { ++total; });
    });
  }
  for (auto& s : submitters) s.join();
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPoolTest, DefaultThreadsReadsEnvironment) {
  const char* saved = std::getenv("VSD_THREADS");
  const std::string saved_value = saved ? saved : "";
  setenv("VSD_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  setenv("VSD_THREADS", "0", 1);  // degenerate -> serial
  EXPECT_EQ(ThreadPool::DefaultThreads(), 1);
  setenv("VSD_THREADS", "junk", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 1);
  unsetenv("VSD_THREADS");
  EXPECT_EQ(ThreadPool::DefaultThreads(), 1);
  if (saved) setenv("VSD_THREADS", saved_value.c_str(), 1);
}

TEST(ThreadPoolTest, SetGlobalThreadsResizesGlobalPool) {
  const int original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 2);
  std::vector<int> counts(64, 0);
  ParallelFor(64, [&](int64_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
  ThreadPool::SetGlobalThreads(original);
}

}  // namespace
}  // namespace vsd
