// Golden-determinism suite for the batched-inference spine: every batched
// entry point (vision encoding, chain pipeline, baselines, explainers,
// metric evaluation) must produce BIT-IDENTICAL results to the per-sample
// path for every (batch size, thread count) pair. The singles are the
// reference; any divergence means the batch dimension leaked into the math.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "baselines/fdassnn.h"
#include "baselines/zero_shot_lfm.h"
#include "bench/harness.h"
#include "common/batching.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/occlusion.h"
#include "explain/sobol.h"
#include "img/slic.h"
#include "vlm/foundation_model.h"

namespace vsd {
namespace {

void ExpectMetricsIdentical(const core::Metrics& a, const core::Metrics& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.n, b.n);
}

/// Small untrained task model over a quick-sized dataset: inference is
/// deterministic and cheap, which is all equivalence testing needs.
struct ModelWorld {
  data::Dataset dataset;
  vlm::FoundationModel model;

  ModelWorld()
      : dataset(data::MakeUvsdSimSmall(48, 1234)),
        model(MakeConfig()) {
    model.PrecomputeFeatures(dataset);
  }

  std::vector<const data::VideoSample*> Pointers(int n) const {
    std::vector<const data::VideoSample*> out;
    for (int i = 0; i < n && i < dataset.size(); ++i) {
      out.push_back(&dataset.samples[i]);
    }
    return out;
  }

  static vlm::FoundationModelConfig MakeConfig() {
    vlm::FoundationModelConfig config;
    config.vision_dim = 12;
    config.hidden_dim = 24;
    config.au_feature_dim = 12;
    config.seed = 9;
    return config;
  }
};

/// Parameterized over (batch size, thread count): the batched path must be
/// bit-identical to the singles for every combination.
class BatchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override {
    SetDefaultBatchSize(std::get<0>(GetParam()));
    ThreadPool::SetGlobalThreads(std::get<1>(GetParam()));
  }
  void TearDown() override {
    ThreadPool::SetGlobalThreads(1);
    SetDefaultBatchSize(32);
  }
};

TEST_P(BatchEquivalenceTest, VisionEncodeBatchMatchesSingles) {
  ModelWorld world;
  const auto samples = world.Pointers(9);
  std::vector<const img::Image*> images;
  std::vector<const img::Image*> neutrals;
  for (const auto* s : samples) {
    images.push_back(&s->expressive_frame);
    neutrals.push_back(&s->neutral_frame);
  }
  const auto& vision = world.model.vision();

  const tensor::Tensor rows = vision.EncodeBatch(images);
  for (size_t i = 0; i < images.size(); ++i) {
    const tensor::Tensor single = vision.Embed(*images[i]);
    for (int j = 0; j < vision.dim(); ++j) {
      ASSERT_EQ(rows.at(static_cast<int>(i), j), single.at(j))
          << "EncodeBatch row " << i << " col " << j;
    }
  }

  const tensor::Tensor pairs = vision.EmbedPairs(images, neutrals);
  for (size_t i = 0; i < images.size(); ++i) {
    const tensor::Tensor single =
        vision.EmbedPair(*images[i], *neutrals[i]);
    for (int j = 0; j < 2 * vision.dim(); ++j) {
      ASSERT_EQ(pairs.at(static_cast<int>(i), j), single.at(j))
          << "EmbedPairs row " << i << " col " << j;
    }
  }
}

TEST_P(BatchEquivalenceTest, PipelinePredictBatchMatchesSingles) {
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  const auto samples = world.Pointers(world.dataset.size());

  const std::vector<double> probs = pipeline.PredictBatch(samples);
  const std::vector<int> labels = pipeline.PredictLabelBatch(samples);
  ASSERT_EQ(probs.size(), samples.size());
  ASSERT_EQ(labels.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(probs[i], pipeline.PredictProbStressed(*samples[i]))
        << "sample " << i;
    EXPECT_EQ(labels[i], pipeline.PredictLabel(*samples[i]))
        << "sample " << i;
  }
}

TEST_P(BatchEquivalenceTest, PipelineRunBatchMatchesSingles) {
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  const auto samples = world.Pointers(11);

  // Per-sample streams derived from the index, exactly as the benches do.
  std::vector<Rng> batch_rngs;
  batch_rngs.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    batch_rngs.emplace_back(500 + i);
  }
  std::vector<Rng*> rng_ptrs;
  for (auto& rng : batch_rngs) rng_ptrs.push_back(&rng);
  const std::vector<cot::ChainOutput> batched =
      pipeline.RunBatch(samples, rng_ptrs);

  ASSERT_EQ(batched.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    Rng rng(500 + i);
    const cot::ChainOutput single = pipeline.Run(*samples[i], &rng);
    EXPECT_EQ(batched[i].describe.mask, single.describe.mask);
    EXPECT_EQ(batched[i].describe.log_prob, single.describe.log_prob);
    EXPECT_EQ(batched[i].assess.label, single.assess.label);
    EXPECT_EQ(batched[i].assess.prob_stressed, single.assess.prob_stressed);
    EXPECT_EQ(batched[i].highlight.ranked_aus, single.highlight.ranked_aus);
    EXPECT_EQ(batched[i].Transcript(), single.Transcript()) << "sample " << i;
  }
}

TEST_P(BatchEquivalenceTest, EvaluateBatchedMetricsMatchPerSample) {
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);

  const core::Metrics reference = core::EvaluatePredictor(
      [&](const data::VideoSample& sample) {
        return pipeline.PredictLabel(sample);
      },
      world.dataset);
  // batch_size = 0 routes through the sweep's DefaultBatchSize().
  const core::Metrics batched = core::EvaluatePipeline(pipeline,
                                                       world.dataset);
  ExpectMetricsIdentical(reference, batched);

  baselines::ZeroShotLfm lfm(&world.model, "lfm");
  const core::Metrics lfm_reference = core::EvaluatePredictor(
      [&](const data::VideoSample& sample) {
        return lfm.PredictProbStressed(sample) >= 0.5 ? 1 : 0;
      },
      world.dataset);
  const core::Metrics lfm_batched = core::EvaluateClassifier(lfm,
                                                             world.dataset);
  ExpectMetricsIdentical(lfm_reference, lfm_batched);
}

TEST_P(BatchEquivalenceTest, AssessWithFramesBatchMatchesSingles) {
  ModelWorld world;
  const auto samples = world.Pointers(7);
  std::vector<const img::Image*> expressive;
  std::vector<const img::Image*> neutrals;
  for (const auto* s : samples) {
    expressive.push_back(&s->expressive_frame);
    neutrals.push_back(&s->neutral_frame);
  }
  face::AuMask description{};
  description[1] = true;
  description[4] = true;

  // Pairwise overload.
  const std::vector<double> pairwise =
      world.model.AssessProbStressedWithFramesBatch(expressive, neutrals,
                                                    description);
  // Shared-neutral overload (the explainer hot path).
  const img::Image& shared_neutral = samples[0]->neutral_frame;
  const std::vector<double> shared =
      world.model.AssessProbStressedWithFramesBatch(
          expressive, shared_neutral, description);
  ASSERT_EQ(pairwise.size(), samples.size());
  ASSERT_EQ(shared.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(pairwise[i],
              world.model.AssessProbStressedWithFrames(
                  *expressive[i], *neutrals[i], description))
        << "pairwise sample " << i;
    EXPECT_EQ(shared[i],
              world.model.AssessProbStressedWithFrames(
                  *expressive[i], shared_neutral, description))
        << "shared-neutral sample " << i;
  }
}

TEST_P(BatchEquivalenceTest, BaselineBatchOverridesMatchDefaultLoop) {
  ModelWorld world;
  const auto samples = world.Pointers(13);

  baselines::Fdassnn fdassnn;
  Rng fit_rng(41);
  fdassnn.Fit(world.dataset, &fit_rng);
  const std::vector<double> fdassnn_batch =
      fdassnn.PredictProbStressedBatch(samples);
  ASSERT_EQ(fdassnn_batch.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(fdassnn_batch[i], fdassnn.PredictProbStressed(*samples[i]))
        << "FDASSNN sample " << i;
  }

  baselines::ZeroShotLfm lfm(&world.model, "lfm");
  const std::vector<double> lfm_batch = lfm.PredictProbStressedBatch(samples);
  ASSERT_EQ(lfm_batch.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(lfm_batch[i], lfm.PredictProbStressed(*samples[i]))
        << "ZeroShotLfm sample " << i;
  }
}

TEST_P(BatchEquivalenceTest, ExplainerBatchClassifierMatchesPerFrame) {
  img::Image image(32, 32, 0.2f);
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) image.at(y, x) = 0.9f;
  }
  const img::Segmentation segmentation = img::Slic(image, 16, 20.0f);
  const explain::ClassifierFn per_frame = [](const img::Image& im) {
    double sum = 0.0;
    for (int y = 8; y < 16; ++y) {
      for (int x = 8; x < 16; ++x) sum += im.at(y, x);
    }
    return sum / 64.0;
  };
  const explain::BatchClassifierFn batched =
      explain::ToBatchClassifier(per_frame);

  const explain::LimeExplainer lime(48);
  const explain::KernelShapExplainer shap(48);
  const explain::SobolExplainer sobol(3);
  const explain::OcclusionExplainer occlusion;
  for (const explain::Explainer* explainer :
       {static_cast<const explain::Explainer*>(&lime),
        static_cast<const explain::Explainer*>(&shap),
        static_cast<const explain::Explainer*>(&sobol),
        static_cast<const explain::Explainer*>(&occlusion)}) {
    Rng rng_a(77);
    Rng rng_b(77);
    const std::vector<double> via_single =
        explainer->Explain(per_frame, image, segmentation, &rng_a)
            .segment_scores;
    const std::vector<double> via_batch =
        explainer->Explain(batched, image, segmentation, &rng_b)
            .segment_scores;
    ASSERT_EQ(via_single.size(), via_batch.size()) << explainer->name();
    for (size_t j = 0; j < via_single.size(); ++j) {
      EXPECT_EQ(via_single[j], via_batch[j])
          << explainer->name() << " segment " << j;
    }
    // The caller's stream must advance identically through both overloads.
    EXPECT_EQ(rng_a.Next(), rng_b.Next()) << explainer->name();
  }
}

TEST_P(BatchEquivalenceTest, ModelBatchClassifierMatchesModelClassifier) {
  ModelWorld world;
  const data::VideoSample& sample = world.dataset.samples[0];
  const img::Segmentation segmentation =
      img::Slic(sample.expressive_frame, bench::kNumSlicSegments);
  const explain::ClassifierFn single =
      bench::ModelClassifier(world.model, sample, /*use_chain=*/true);
  const explain::BatchClassifierFn batched =
      bench::ModelBatchClassifier(world.model, sample, /*use_chain=*/true);

  // A handful of masked perturbations, evaluated both ways.
  Rng rng(2026);
  std::vector<img::Image> perturbed;
  for (int p = 0; p < 5; ++p) {
    std::vector<float> keep(segmentation.num_segments, 1.0f);
    for (auto& k : keep) k = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    perturbed.push_back(
        explain::ApplySegmentMask(sample.expressive_frame, segmentation,
                                  keep));
  }
  const std::vector<double> batch_probs = batched(perturbed);
  ASSERT_EQ(batch_probs.size(), perturbed.size());
  for (size_t p = 0; p < perturbed.size(); ++p) {
    EXPECT_EQ(batch_probs[p], single(perturbed[p])) << "perturbation " << p;
  }
}

TEST_P(BatchEquivalenceTest, PrecomputeFeaturesBatchedMatchesUncached) {
  ModelWorld world;
  cot::ChainConfig chain;
  const auto samples = world.Pointers(10);

  // Cached (PrecomputeFeatures chunked by the sweep's batch size) vs a
  // fresh clone that computes features on the fly inside the batch call.
  auto uncached = world.model.Clone();
  uncached->ClearFeatureCache();
  cot::ChainPipeline cached_pipeline(&world.model, chain);
  cot::ChainPipeline uncached_pipeline(uncached.get(), chain);
  const std::vector<double> cached = cached_pipeline.PredictBatch(samples);
  const std::vector<double> fresh = uncached_pipeline.PredictBatch(samples);
  ASSERT_EQ(cached.size(), fresh.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(cached[i], fresh[i]) << "sample " << i;
  }
}

TEST_P(BatchEquivalenceTest, RationaleDropsInvariantAcrossSweep) {
  ModelWorld world;
  cot::ChainConfig chain;
  bench::BenchOptions options;
  options.seed = 77;
  const auto samples = world.Pointers(6);

  const std::vector<double> drops =
      bench::RationaleDrops(world.model, chain, samples, options);
  // Serial singles reference: batch 1, one thread.
  SetDefaultBatchSize(1);
  ThreadPool::SetGlobalThreads(1);
  const std::vector<double> reference =
      bench::RationaleDrops(world.model, chain, samples, options);
  EXPECT_EQ(drops, reference);
}

INSTANTIATE_TEST_SUITE_P(
    BatchThreadSweep, BatchEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 32),
                       ::testing::Values(1, 4)));

}  // namespace
}  // namespace vsd
