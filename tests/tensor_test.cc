#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace vsd::tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.size(), 6);
  for (int i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_EQ(t.size(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({4}, 2.5f);
  EXPECT_EQ(t.at(3), 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.at(0), -1.0f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.at(0) = 9.0f;
  EXPECT_EQ(shallow.at(0), 9.0f);
  EXPECT_EQ(deep.at(0), 1.0f);
}

TEST(TensorTest, ReshapeSharesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  b.at(0, 0) = 42.0f;
  EXPECT_EQ(a.at(0, 0), 42.0f);
  EXPECT_EQ(b.at(2, 1), 6.0f);
}

TEST(TensorTest, RowExtraction) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = a.Row(1);
  EXPECT_EQ(r.ndim(), 1);
  EXPECT_EQ(r.at(0), 4.0f);
  EXPECT_EQ(r.at(2), 6.0f);
}

TEST(TensorTest, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t.at(t.size() - 1), 7.0f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(42);
  Tensor t = Tensor::Randn({10000}, &rng, 2.0f);
  double mean = 0.0;
  for (int i = 0; i < t.size(); ++i) mean += t.at(i);
  mean /= t.size();
  double var = 0.0;
  for (int i = 0; i < t.size(); ++i) var += (t.at(i) - mean) * (t.at(i) - mean);
  var /= t.size();
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorTest, UniformRange) {
  Rng rng(43);
  Tensor t = Tensor::Uniform({1000}, &rng, -1.0f, 1.0f);
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.at(i), -1.0f);
    EXPECT_LT(t.at(i), 1.0f);
  }
}

TEST(TensorOpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at(0), 11.0f);
  EXPECT_EQ(c.at(1), 22.0f);
}

TEST(TensorOpsTest, AddScalarBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Full({1}, 10.0f);
  Tensor c = Add(a, s);
  EXPECT_EQ(c.at(1, 1), 14.0f);
}

TEST(TensorOpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at(0, 0), 11.0f);
  EXPECT_EQ(c.at(1, 2), 36.0f);
}

TEST(TensorOpsTest, SubMulScale) {
  Tensor a = Tensor::FromVector({2}, {5, 8});
  Tensor b = Tensor::FromVector({2}, {2, 4});
  EXPECT_EQ(Sub(a, b).at(1), 4.0f);
  EXPECT_EQ(Mul(a, b).at(0), 10.0f);
  EXPECT_EQ(Scale(a, 0.5f).at(1), 4.0f);
}

TEST(TensorOpsTest, MatMulKnownResult) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorOpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor eye = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor c = MatMul(a, eye);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c.at(i), a.at(i));
}

TEST(TensorOpsTest, Transpose) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_EQ(t.at(0, 1), 4.0f);
}

TEST(TensorOpsTest, SumMean) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_EQ(Sum(a), 10.0f);
  EXPECT_EQ(Mean(a), 2.5f);
}

TEST(TensorOpsTest, ElementwiseMaps) {
  Tensor a = Tensor::FromVector({3}, {-1.0f, 0.0f, 2.0f});
  Tensor r = Relu(a);
  EXPECT_EQ(r.at(0), 0.0f);
  EXPECT_EQ(r.at(2), 2.0f);
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6f);
  Tensor t = Tanh(a);
  EXPECT_NEAR(t.at(2), std::tanh(2.0f), 1e-6f);
  Tensor e = Exp(a);
  EXPECT_NEAR(e.at(0), std::exp(-1.0f), 1e-6f);
}

TEST(TensorOpsTest, SoftmaxRowsSumsToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 100, 100, 100});
  Tensor p = SoftmaxRows(a);
  for (int i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 3; ++j) sum += p.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_NEAR(p.at(1, 0), 1.0f / 3.0f, 1e-6f);
  EXPECT_GT(p.at(0, 2), p.at(0, 1));
}

TEST(TensorOpsTest, ArgMaxRows) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = ArgMaxRows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorOpsTest, StackRows) {
  Tensor r0 = Tensor::FromVector({2}, {1, 2});
  Tensor r1 = Tensor::FromVector({2}, {3, 4});
  Tensor s = StackRows({r0, r1});
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.at(1, 1), 4.0f);
}

TEST(TensorOpsTest, AddInPlaceAndScaleInPlace) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  a.AddInPlace(b);
  EXPECT_EQ(a.at(0), 4.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.at(1), 12.0f);
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor a({2, 3});
  EXPECT_NE(a.ToString().find("2x3"), std::string::npos);
}

}  // namespace
}  // namespace vsd::tensor
