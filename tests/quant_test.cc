// Tests for the int8 row-quantization path (tensor/quant.h, Tensor::
// QuantizeInt8) and the kernel registry (tensor/registry.h): round-trip
// error bounds, determinism across thread counts, the fused int8 MatMul's
// bit-identity with dequantize-then-MatMul, registry lookup/fallback, and
// scalar-vs-SIMD bitwise equality for every dispatched kernel including
// vector-width tails.
#include "tensor/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/registry.h"
#include "tensor/tensor.h"

namespace vsd::tensor {
namespace {

namespace k = ::vsd::tensor::kernels;

/// RAII backend override, mirroring GraphModeGuard in graph_exec_test.cc.
class BackendGuard {
 public:
  explicit BackendGuard(k::Backend backend) { k::SetBackend(backend); }
  ~BackendGuard() { k::ClearBackendOverride(); }
};

/// RAII global-thread-count override.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ThreadsGuard() { ThreadPool::SetGlobalThreads(1); }
};

TEST(QuantRowTest, RoundTripErrorBoundedByHalfScale) {
  Rng rng(1);
  constexpr int kN = 257;
  std::vector<float> x(kN);
  for (float& v : x) v = rng.Normal() * 3.0f;
  std::vector<int8_t> q(kN);
  const RowQuant rq = QuantizeRowInt8(x.data(), kN, q.data());
  std::vector<float> dq(kN);
  DequantizeRowInt8(q.data(), kN, rq.scale, rq.zero_point, dq.data());
  // Round-to-nearest: |x - dq| <= scale/2 (plus fp rounding slack).
  const float bound = rq.scale * 0.5f * 1.0001f + 1e-7f;
  for (int i = 0; i < kN; ++i) {
    EXPECT_LE(std::fabs(x[i] - dq[i]), bound) << "i=" << i;
  }
}

TEST(QuantRowTest, DegenerateRowsQuantizeToExactValues) {
  // Constant rows have zero range; the degenerate scale must still
  // round-trip the constant and keep zeros exact.
  for (float c : {0.0f, 1.5f, -2.25f}) {
    std::vector<float> x(8, c);
    std::vector<int8_t> q(8);
    const RowQuant rq = QuantizeRowInt8(x.data(), 8, q.data());
    std::vector<float> dq(8);
    DequantizeRowInt8(q.data(), 8, rq.scale, rq.zero_point, dq.data());
    for (float v : dq) EXPECT_FLOAT_EQ(v, c);
  }
}

TEST(QuantRowTest, ZerosSurviveRoundTripExactly) {
  // The quantization range is widened to include 0 so that exact zeros map
  // to the zero point — the MatMul zero-row skip depends on this.
  std::vector<float> x = {0.0f, 5.0f, 0.0f, -3.0f, 0.0f, 7.5f};
  std::vector<int8_t> q(x.size());
  const RowQuant rq =
      QuantizeRowInt8(x.data(), static_cast<int>(x.size()), q.data());
  std::vector<float> dq(x.size());
  DequantizeRowInt8(q.data(), static_cast<int>(x.size()), rq.scale,
                    rq.zero_point, dq.data());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0f) {
      EXPECT_EQ(dq[i], 0.0f) << "i=" << i;
    }
  }
}

TEST(QuantTensorTest, QuantizeIsDeterministicAcrossThreadCounts) {
  Rng rng(7);
  Tensor w = Tensor::Randn({64, 96}, &rng);
  Tensor q1, q4;
  {
    ThreadsGuard threads(1);
    q1 = w.QuantizeInt8();
  }
  {
    ThreadsGuard threads(4);
    q4 = w.QuantizeInt8();
  }
  const size_t n = static_cast<size_t>(64) * 96;
  EXPECT_EQ(0, std::memcmp(q1.qdata(), q4.qdata(), n * sizeof(int8_t)));
  EXPECT_EQ(0, std::memcmp(q1.qscale(), q4.qscale(), 64 * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(q1.qzero(), q4.qzero(), 64 * sizeof(int32_t)));
}

TEST(QuantTensorTest, DequantizeRoundTripsWithinPerRowBound) {
  Rng rng(9);
  Tensor w = Tensor::Randn({16, 40}, &rng);
  Tensor q = w.QuantizeInt8();
  EXPECT_EQ(q.dtype(), DType::kI8);
  Tensor dq = q.DequantizeF32();
  EXPECT_EQ(dq.dtype(), DType::kF32);
  for (int i = 0; i < 16; ++i) {
    const float bound = q.qscale()[i] * 0.5f * 1.0001f + 1e-7f;
    for (int j = 0; j < 40; ++j) {
      EXPECT_LE(std::fabs(w.data()[i * 40 + j] - dq.data()[i * 40 + j]),
                bound);
    }
  }
}

TEST(QuantMatMulTest, FusedInt8MatchesDequantizeThenMatMulBitwise) {
  // The fused kernel dequantizes inline in the same k-order the fp32
  // kernel reads b, so both orderings see identical float op sequences.
  Rng rng(11);
  for (int backend = 0; backend < (k::SimdCompiled() ? 2 : 1); ++backend) {
    BackendGuard guard(static_cast<k::Backend>(backend));
    for (int n : {8, 13, 64}) {  // Includes non-multiple-of-8 tails.
      Tensor a = Tensor::Randn({5, 24}, &rng);
      Tensor b = Tensor::Randn({24, n}, &rng);
      Tensor bq = b.QuantizeInt8();
      Tensor fused = MatMul(a, bq);
      Tensor reference = MatMul(a, bq.DequantizeF32());
      ASSERT_EQ(fused.size(), reference.size());
      EXPECT_EQ(0, std::memcmp(fused.data(), reference.data(),
                               fused.size() * sizeof(float)))
          << "backend=" << backend << " n=" << n;
    }
  }
}

TEST(RegistryTest, ScalarIsRegisteredForEveryOp) {
  auto& registry = k::KernelRegistry::Instance();
  for (int op = 0; op < k::kNumOps; ++op) {
    EXPECT_NE(nullptr, registry.Find(static_cast<k::OpKind>(op), DType::kF32,
                                     k::Backend::kScalar))
        << "op=" << op;
  }
  EXPECT_NE(nullptr, registry.Find(k::OpKind::kMatMul, DType::kI8,
                                   k::Backend::kScalar));
}

TEST(RegistryTest, ResolveFallsBackToScalarForUnregisteredSlots) {
  auto& registry = k::KernelRegistry::Instance();
  // Tanh has no vectorized variant: the simd key holds the same scalar fn
  // (libm per element), so resolving either backend lands on one kernel.
  const auto scalar =
      registry.Resolve(k::OpKind::kTanh, DType::kF32, k::Backend::kScalar);
  const auto simd =
      registry.Resolve(k::OpKind::kTanh, DType::kF32, k::Backend::kSimd);
  EXPECT_EQ(scalar, simd);  // Same libm-per-element kernel either way.
}

TEST(RegistryTest, BackendOverrideWinsAndClears) {
  {
    BackendGuard guard(k::Backend::kScalar);
    EXPECT_EQ(k::ActiveBackend(), k::Backend::kScalar);
  }
  if (k::SimdCompiled()) {
    BackendGuard guard(k::Backend::kSimd);
    EXPECT_EQ(k::ActiveBackend(), k::Backend::kSimd);
  }
}

// Runs `fn` under both backends into separate buffers and expects bitwise
// equality. Buffers are pre-filled with a dirty pattern so kernels that
// fail to fully define their output range are caught too.
template <typename Fn>
void ExpectBackendsBitIdentical(size_t out_size, Fn&& fn) {
  if (!k::SimdCompiled()) GTEST_SKIP() << "SIMD backend not compiled in";
  std::vector<float> out_scalar(out_size, -123.25f);
  std::vector<float> out_simd(out_size, 456.75f);
  {
    BackendGuard guard(k::Backend::kScalar);
    fn(out_scalar.data());
  }
  {
    BackendGuard guard(k::Backend::kSimd);
    fn(out_simd.data());
  }
  EXPECT_EQ(0, std::memcmp(out_scalar.data(), out_simd.data(),
                           out_size * sizeof(float)));
}

TEST(SimdBitIdentityTest, MatMulF32IncludingTails) {
  Rng rng(21);
  for (int n : {1, 7, 8, 9, 16, 33}) {
    Tensor a = Tensor::Randn({4, 10}, &rng);
    Tensor b = Tensor::Randn({10, n}, &rng);
    ExpectBackendsBitIdentical(static_cast<size_t>(4) * n, [&](float* out) {
      k::MatMulInto(a.data(), b.data(), out, 4, 10, n);
    });
  }
}

TEST(SimdBitIdentityTest, MatMulF32SkipsZeroRows) {
  // The zero-row fast path must fire identically in both backends.
  Rng rng(22);
  Tensor a = Tensor::Randn({6, 12}, &rng);
  for (int j = 0; j < 12; ++j) a.data()[2 * 12 + j] = 0.0f;
  Tensor b = Tensor::Randn({12, 9}, &rng);
  ExpectBackendsBitIdentical(static_cast<size_t>(6) * 9, [&](float* out) {
    k::MatMulInto(a.data(), b.data(), out, 6, 12, 9);
  });
}

TEST(SimdBitIdentityTest, MatMulI8IncludingTails) {
  Rng rng(23);
  for (int n : {1, 7, 8, 15, 32}) {
    Tensor a = Tensor::Randn({3, 20}, &rng);
    Tensor bq = Tensor::Randn({20, n}, &rng).QuantizeInt8();
    ExpectBackendsBitIdentical(static_cast<size_t>(3) * n, [&](float* out) {
      k::MatMulI8Into(a.data(), bq.qdata(), bq.qscale(), bq.qzero(), out, 3,
                      20, n);
    });
  }
}

TEST(SimdBitIdentityTest, AddRowsIncludingTails) {
  Rng rng(24);
  for (int cols : {1, 5, 8, 19, 64}) {
    Tensor a = Tensor::Randn({7, cols}, &rng);
    Tensor bias = Tensor::Randn({cols}, &rng);
    ExpectBackendsBitIdentical(static_cast<size_t>(7) * cols,
                               [&](float* out) {
                                 k::AddRowsInto(a.data(), bias.data(), out, 7,
                                                cols);
                               });
  }
}

TEST(SimdBitIdentityTest, ReluHandlesNegZeroAndSpecials) {
  // The SIMD mask trick must match `x > 0 ? x : 0` exactly, including
  // -0.0f -> +0.0f and denormals.
  std::vector<float> x = {-1.0f, 0.0f,  -0.0f, 2.5f,   -2.5f, 1e-38f,
                          -1e-38f, 3.0f, -4.0f, 0.125f, 7.0f,  -0.5f};
  ExpectBackendsBitIdentical(x.size(), [&](float* out) {
    k::ReluInto(x.data(), out, static_cast<int>(x.size()));
  });
}

TEST(SimdBitIdentityTest, GeluIncludingTails) {
  Rng rng(25);
  for (int n : {3, 8, 11, 40}) {
    Tensor x = Tensor::Randn({n}, &rng);
    ExpectBackendsBitIdentical(static_cast<size_t>(n), [&](float* out) {
      k::GeluInto(x.data(), out, n);
    });
  }
}

TEST(SimdBitIdentityTest, ConcatRowsMixedWidths) {
  Rng rng(26);
  Tensor a = Tensor::Randn({5, 13}, &rng);
  Tensor b = Tensor::Randn({5, 6}, &rng);
  ExpectBackendsBitIdentical(static_cast<size_t>(5) * 19, [&](float* out) {
    k::ConcatRowsInto(a.data(), b.data(), out, 5, 13, 6);
  });
}

TEST(QuantTensorTest, CloneDeepCopiesQuantStorage) {
  Rng rng(31);
  Tensor q = Tensor::Randn({4, 12}, &rng).QuantizeInt8();
  Tensor c = q.Clone();
  EXPECT_EQ(c.dtype(), DType::kI8);
  EXPECT_NE(c.qdata(), q.qdata());
  EXPECT_EQ(0, std::memcmp(c.qdata(), q.qdata(), 4 * 12));
}

}  // namespace
}  // namespace vsd::tensor
