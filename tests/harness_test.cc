// Tests for the bench-harness plumbing that turns chain rationales into
// segment rankings and wires the interpretability protocol together.
#include "bench/harness.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "face/renderer.h"
#include "img/slic.h"

namespace vsd::bench {
namespace {

TEST(HarnessTest, ParseArgsDefaults) {
  const char* argv[] = {"bench"};
  BenchOptions options = ParseBenchArgs(1, const_cast<char**>(argv));
  EXPECT_FALSE(options.quick);
  EXPECT_GE(options.folds, 2);
}

TEST(HarnessTest, ParseArgsQuickAndFolds) {
  const char* argv[] = {"bench", "--quick", "--folds", "5", "--seed", "9"};
  BenchOptions options = ParseBenchArgs(6, const_cast<char**>(argv));
  EXPECT_TRUE(options.quick);
  EXPECT_EQ(options.folds, 5);
  EXPECT_EQ(options.seed, 9u);
}

TEST(HarnessTest, ParseArgsThreads) {
  const char* argv[] = {"bench", "--threads", "2"};
  BenchOptions options = ParseBenchArgs(3, const_cast<char**>(argv));
  EXPECT_EQ(options.threads, 2);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 2);
  const char* degenerate[] = {"bench", "--threads", "0"};
  options = ParseBenchArgs(3, const_cast<char**>(degenerate));
  EXPECT_EQ(options.threads, 1);
  ThreadPool::SetGlobalThreads(1);
}

TEST(HarnessTest, ParseArgsRejectsDegenerateFolds) {
  const char* argv[] = {"bench", "--folds", "1"};
  BenchOptions options = ParseBenchArgs(3, const_cast<char**>(argv));
  EXPECT_GE(options.folds, 2);
}

TEST(HarnessTest, QuickDataHasPaperShapes) {
  BenchOptions options;
  options.quick = true;
  options.seed = 3;
  BenchData data = MakeBenchData(options);
  EXPECT_GT(data.uvsd.size(), data.rsl.size());
  EXPECT_GT(data.uvsd.CountLabel(data::kStressed), 0);
  EXPECT_GT(data.disfa.size(), 0);
  EXPECT_EQ(data.disfa.samples[0].stress_label, data::kNoStressLabel);
}

TEST(HarnessTest, RationaleToSegmentsMapsToRegions) {
  Rng rng(4);
  face::FaceParams params;
  params.identity = face::Identity::Sample(&rng);
  params.au_intensity[2] = 0.8f;   // AU4 (eyebrow)
  params.au_intensity[6] = 0.7f;   // AU12 (mouth)
  const img::Image face_image = face::RenderFace(params, &rng);
  const img::Segmentation seg = img::Slic(face_image, kNumSlicSegments);

  const std::vector<int> rationale = {2, 6};  // AU4, AU12
  const auto segments = RationaleToSegments(rationale, seg);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_NE(segments[0], segments[1]);

  // Each chosen segment's centroid must fall inside (or near) the AU's
  // facial region box.
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto region = face::RegionMask(face::GetAu(rationale[i]).region);
    auto [cy, cx] = seg.SegmentCentroid(segments[i]);
    const int y = static_cast<int>(cy);
    const int x = static_cast<int>(cx);
    bool near_region = false;
    for (int dy = -8; dy <= 8 && !near_region; ++dy) {
      for (int dx = -8; dx <= 8 && !near_region; ++dx) {
        const int yy = y + dy;
        const int xx = x + dx;
        if (yy >= 0 && yy < 96 && xx >= 0 && xx < 96 &&
            region[yy * 96 + xx]) {
          near_region = true;
        }
      }
    }
    EXPECT_TRUE(near_region) << "segment centroid far from AU region";
  }
}

TEST(HarnessTest, RationaleToSegmentsHandlesEmpty) {
  img::Image flat(96, 96, 0.5f);
  const img::Segmentation seg = img::Slic(flat, 16);
  EXPECT_TRUE(RationaleToSegments({}, seg).empty());
}

TEST(HarnessTest, ModelClassifierRespondsToPerturbation) {
  data::Dataset d = data::MakeUvsdSimSmall(4, 5);
  vlm::FoundationModelConfig config;
  config.vision_dim = 12;
  config.hidden_dim = 24;
  config.au_feature_dim = 12;
  config.seed = 11;
  vlm::FoundationModel model(config);
  auto classifier = ModelClassifier(model, d.samples[0], true);
  const double clean = classifier(d.samples[0].expressive_frame);
  EXPECT_GE(clean, 0.0);
  EXPECT_LE(clean, 1.0);
  img::Image black(96, 96);
  const double blanked = classifier(black);
  EXPECT_GE(blanked, 0.0);
  EXPECT_LE(blanked, 1.0);
}

TEST(HarnessTest, CrossValidateAggregatesFolds) {
  BenchOptions options;
  options.folds = 3;
  options.seed = 21;
  data::Dataset d = data::MakeUvsdSimSmall(60, 33);
  int calls = 0;
  const core::Metrics metrics = CrossValidate(
      d, options,
      [&](const data::Dataset& train, const data::Dataset& test,
          uint64_t fold_seed) {
        ++calls;
        EXPECT_EQ(train.size() + test.size(), d.size());
        core::Metrics m;
        m.accuracy = 1.0;
        m.n = test.size();
        return m;
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(metrics.n, d.size());
  EXPECT_NEAR(metrics.accuracy, 1.0, 1e-12);
}

}  // namespace
}  // namespace vsd::bench
