// Property-style parameterized sweeps (TEST_P) over the library's core
// invariants: rendering monotonicity per AU, template round-trips across
// random AU sets, generator class-separation vs the au_gap knob, SLIC
// structural invariants across segment counts, and DPO improvement across
// beta values.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "data/generator.h"
#include "face/au.h"
#include "face/landmarks.h"
#include "face/renderer.h"
#include "img/slic.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "text/templates.h"
#include "vlm/foundation_model.h"

namespace vsd {
namespace {

// ---------------------------------------------------------------------
// Renderer: each AU's visual footprint grows monotonically with intensity.
// ---------------------------------------------------------------------
class AuRenderMonotoneTest : public ::testing::TestWithParam<int> {};

float RenderL1(const face::FaceParams& a, const face::FaceParams& b) {
  img::Image ia = face::RenderFace(a, nullptr);
  img::Image ib = face::RenderFace(b, nullptr);
  float total = 0.0f;
  for (int i = 0; i < ia.size(); ++i) {
    total += std::abs(ia.pixels()[i] - ib.pixels()[i]);
  }
  return total;
}

TEST_P(AuRenderMonotoneTest, FootprintGrowsWithIntensity) {
  const int au = GetParam();
  face::FaceParams neutral;
  neutral.noise_stddev = 0.0f;
  float previous = 0.0f;
  for (float intensity : {0.35f, 0.7f, 1.0f}) {
    face::FaceParams active = neutral;
    active.au_intensity[au] = intensity;
    const float distance = RenderL1(neutral, active);
    // Allow mild non-monotonicity from occlusion (e.g. a fully lowered
    // brow overlapping the bright eye region).
    EXPECT_GE(distance, previous * 0.85f - 1.0f)
        << "AU" << face::GetAu(au).facs_number << " at " << intensity;
    previous = distance;
  }
  EXPECT_GT(previous, 1.0f);  // full intensity clearly visible
}

INSTANTIATE_TEST_SUITE_P(AllAus, AuRenderMonotoneTest,
                         ::testing::Range(0, face::kNumAus));

// ---------------------------------------------------------------------
// Templates: render/parse round-trip for random AU sets across seeds.
// ---------------------------------------------------------------------
class TemplateRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(TemplateRoundTripTest, DescriptionAndRationaleRoundTrip) {
  Rng rng(GetParam() * 7919 + 3);
  face::AuMask mask{};
  for (int j = 0; j < face::kNumAus; ++j) mask[j] = rng.Bernoulli(0.35);
  EXPECT_EQ(text::ParseDescription(text::RenderDescription(mask)), mask);

  auto indices = face::AuMaskToIndices(mask);
  rng.Shuffle(&indices);
  if (indices.size() > 3) indices.resize(3);
  EXPECT_EQ(text::ParseRationale(text::RenderRationale(indices)), indices);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateRoundTripTest,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------
// Generator: larger au_gap -> more separable AU statistics.
// ---------------------------------------------------------------------
class GapSeparationTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

double Au4RateGap(double au_gap, uint64_t seed) {
  data::StressGenConfig config;
  config.num_samples = 400;
  config.num_subjects = 20;
  config.num_stressed = 200;
  config.au_gap = au_gap;
  config.subject_sigma = 0.3;
  config.seed = seed;
  const data::Dataset d = data::GenerateStressDataset(config);
  int s_active = 0, s_n = 0, u_active = 0, u_n = 0;
  for (const auto& sample : d.samples) {
    if (sample.stress_label == 1) {
      ++s_n;
      s_active += sample.au_label[2];  // AU4
    } else {
      ++u_n;
      u_active += sample.au_label[2];
    }
  }
  return static_cast<double>(s_active) / s_n -
         static_cast<double>(u_active) / u_n;
}

TEST_P(GapSeparationTest, BiggerGapSeparatesMore) {
  const auto [small_gap, big_gap] = GetParam();
  EXPECT_LT(Au4RateGap(small_gap, 42), Au4RateGap(big_gap, 42) + 0.05);
  EXPECT_GT(Au4RateGap(big_gap, 42), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Gaps, GapSeparationTest,
    ::testing::Values(std::make_pair(0.2, 0.7), std::make_pair(0.4, 1.0),
                      std::make_pair(0.0, 0.5)));

// ---------------------------------------------------------------------
// SLIC: structural invariants hold across segment counts.
// ---------------------------------------------------------------------
class SlicInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SlicInvariantTest, CoverageContiguityAndSizes) {
  const int requested = GetParam();
  Rng rng(9);
  face::FaceParams params;
  params.identity = face::Identity::Sample(&rng);
  params.au_intensity[2] = 0.7f;
  const img::Image face_image = face::RenderFace(params, &rng);
  const img::Segmentation seg = img::Slic(face_image, requested);

  // Every pixel labeled with a valid segment.
  for (int label : seg.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, seg.num_segments);
  }
  // Labels contiguous (every id used).
  std::set<int> used(seg.labels.begin(), seg.labels.end());
  EXPECT_EQ(static_cast<int>(used.size()), seg.num_segments);
  // Segment count in a sane band around the request.
  EXPECT_GE(seg.num_segments, requested / 2);
  EXPECT_LE(seg.num_segments, requested * 2);
  // Sizes sum to the pixel count.
  const auto sizes = seg.SegmentSizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0),
            face_image.size());
}

INSTANTIATE_TEST_SUITE_P(Counts, SlicInvariantTest,
                         ::testing::Values(9, 16, 36, 64, 100));

// ---------------------------------------------------------------------
// DPO: for any beta, optimization raises the winner/loser margin.
// ---------------------------------------------------------------------
class DpoBetaTest : public ::testing::TestWithParam<float> {};

TEST_P(DpoBetaTest, MarginImprovesForAnyBeta) {
  const float beta = GetParam();
  vlm::FoundationModelConfig config;
  config.vision_dim = 12;
  config.hidden_dim = 24;
  config.au_feature_dim = 12;
  config.seed = 17;
  vlm::FoundationModel model(config);
  data::Dataset d = data::MakeUvsdSimSmall(12, 91);
  model.PrecomputeFeatures(d);
  auto reference = model.Clone();

  std::vector<const data::VideoSample*> batch;
  std::vector<face::AuMask> winners;
  std::vector<face::AuMask> losers;
  Rng rng(5);
  for (const auto& sample : d.samples) {
    batch.push_back(&sample);
    face::AuMask winner{};
    face::AuMask loser{};
    for (int j = 0; j < face::kNumAus; ++j) {
      winner[j] = rng.Bernoulli(0.3);
      loser[j] = rng.Bernoulli(0.3);
    }
    winners.push_back(winner);
    losers.push_back(loser);
  }
  auto margin = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < batch.size(); ++i) {
      total += model.DescriptionLogProb(*batch[i], winners[i]) -
               model.DescriptionLogProb(*batch[i], losers[i]);
    }
    return total;
  };
  const double before = margin();
  nn::Adam opt(model.HeadParameters(), 3e-3f);
  for (int step = 0; step < 15; ++step) {
    nn::Var loss =
        model.DpoDescribeLoss(batch, winners, losers, *reference, beta);
    opt.ZeroGrad();
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_GT(margin(), before) << "beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(Betas, DpoBetaTest,
                         ::testing::Values(0.02f, 0.1f, 0.5f, 1.0f));

// ---------------------------------------------------------------------
// Landmark/AU estimator: estimates track intensity for geometric AUs.
// ---------------------------------------------------------------------
class EstimatorTrackingTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorTrackingTest, EstimateIncreasesWithIntensity) {
  const int au = GetParam();
  face::FaceParams low;
  face::FaceParams high;
  low.au_intensity[au] = 0.2f;
  high.au_intensity[au] = 1.0f;
  const auto est_low = face::EstimateAuIntensities(
      face::ExtractLandmarks(low, 0.0f, nullptr));
  const auto est_high = face::EstimateAuIntensities(
      face::ExtractLandmarks(high, 0.0f, nullptr));
  EXPECT_GT(est_high[au], est_low[au])
      << "AU" << face::GetAu(au).facs_number;
}

// AU9 (index 5) has the weakest geometric signature; the rest must track.
INSTANTIATE_TEST_SUITE_P(GeometricAus, EstimatorTrackingTest,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 7, 8, 9, 10,
                                           11));

}  // namespace
}  // namespace vsd
