// Equivalence + allocation harness for the graph-compiled executor
// (nn/graph.h). Three contracts are pinned here:
//
//  1. Bit-identity: with graph execution on, every wired inference surface
//     (pipeline predictions, model heads, explainer attributions, the
//     fallible Try* paths) produces results bit-identical to the eager
//     reference, across a (batch size, thread count) sweep.
//  2. Zero allocations: GraphExecutor::Execute performs no heap
//     allocations after warm-up, enforced with the counting allocator in
//     common/alloc_stats.h (alloc_hook.cc is linked into this test only).
//  3. Arena hygiene: executing with fresh inputs on a reused arena cannot
//     leak values from the previous batch.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "bench/harness.h"
#include "common/alloc_stats.h"
#include "common/batching.h"
#include "common/faults.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cot/chain_config.h"
#include "cot/pipeline.h"
#include "data/generator.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/occlusion.h"
#include "explain/sobol.h"
#include "img/slic.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "tensor/registry.h"
#include "vlm/foundation_model.h"
#include "vlm/quantize.h"

namespace vsd {
namespace {

namespace graph = ::vsd::nn::graph;

/// Flips compiled execution on/off for a scope and restores the previous
/// mode on exit, so tests compose regardless of VSD_GRAPH_EXEC.
class GraphModeGuard {
 public:
  explicit GraphModeGuard(bool enabled)
      : previous_(graph::GraphExecEnabled()) {
    graph::SetGraphExecEnabled(enabled);
  }
  ~GraphModeGuard() { graph::SetGraphExecEnabled(previous_); }
  GraphModeGuard(const GraphModeGuard&) = delete;
  GraphModeGuard& operator=(const GraphModeGuard&) = delete;

 private:
  bool previous_;
};

/// Pins the kernel backend for a scope (tensor/registry.h) and drops the
/// override on exit, so tests compose regardless of VSD_BACKEND.
class BackendGuard {
 public:
  explicit BackendGuard(tensor::kernels::Backend backend) {
    tensor::kernels::SetBackend(backend);
  }
  ~BackendGuard() { tensor::kernels::ClearBackendOverride(); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

/// Same small untrained world as batch_equivalence_test: deterministic and
/// cheap, which is all equivalence testing needs.
struct ModelWorld {
  data::Dataset dataset;
  vlm::FoundationModel model;

  ModelWorld()
      : dataset(data::MakeUvsdSimSmall(48, 1234)), model(MakeConfig()) {
    model.PrecomputeFeatures(dataset);
  }

  std::vector<const data::VideoSample*> Pointers(int n) const {
    std::vector<const data::VideoSample*> out;
    for (int i = 0; i < n && i < dataset.size(); ++i) {
      out.push_back(&dataset.samples[i]);
    }
    return out;
  }

  static vlm::FoundationModelConfig MakeConfig() {
    vlm::FoundationModelConfig config;
    config.vision_dim = 12;
    config.hidden_dim = 24;
    config.au_feature_dim = 12;
    config.seed = 9;
    return config;
  }
};

/// Parameterized over (batch size, thread count), like the batched-path
/// equivalence suite: compiled-vs-eager identity must hold at every point
/// of the sweep, including under concurrent executor leases.
class GraphExecTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override {
    SetDefaultBatchSize(std::get<0>(GetParam()));
    ThreadPool::SetGlobalThreads(std::get<1>(GetParam()));
  }
  void TearDown() override {
    FaultInjector::Global().Disable();
    ThreadPool::SetGlobalThreads(1);
    SetDefaultBatchSize(32);
  }
};

TEST_P(GraphExecTest, PipelinePredictionsCompiledMatchEager) {
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  const auto samples = world.Pointers(world.dataset.size());

  std::vector<double> eager_probs;
  std::vector<int> eager_labels;
  std::vector<std::string> eager_transcripts;
  {
    GraphModeGuard eager(false);
    eager_probs = pipeline.PredictBatch(samples);
    eager_labels = pipeline.PredictLabelBatch(samples);
    std::vector<Rng> rngs;
    rngs.reserve(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) rngs.emplace_back(900 + i);
    std::vector<Rng*> rng_ptrs;
    for (auto& rng : rngs) rng_ptrs.push_back(&rng);
    for (const auto& output : pipeline.RunBatch(samples, rng_ptrs)) {
      eager_transcripts.push_back(output.Transcript());
    }
  }

  GraphModeGuard compiled(true);
  EXPECT_EQ(pipeline.PredictBatch(samples), eager_probs);
  EXPECT_EQ(pipeline.PredictLabelBatch(samples), eager_labels);
  std::vector<Rng> rngs;
  rngs.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) rngs.emplace_back(900 + i);
  std::vector<Rng*> rng_ptrs;
  for (auto& rng : rngs) rng_ptrs.push_back(&rng);
  const std::vector<cot::ChainOutput> outputs =
      pipeline.RunBatch(samples, rng_ptrs);
  ASSERT_EQ(outputs.size(), eager_transcripts.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].Transcript(), eager_transcripts[i])
        << "sample " << i;
  }
}

TEST_P(GraphExecTest, ModelHeadsCompiledMatchEager) {
  ModelWorld world;
  const auto samples = world.Pointers(9);
  std::vector<face::AuMask> descriptions(samples.size());
  std::vector<int> assessments(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    descriptions[i][i % face::kNumAus] = true;
    descriptions[i][(3 * i) % face::kNumAus] = true;
    assessments[i] = static_cast<int>(i) % 2;
  }

  std::vector<std::vector<double>> eager_probs;
  std::vector<double> eager_log_probs;
  std::vector<double> eager_assess;
  std::vector<std::vector<int>> eager_rationales;
  {
    GraphModeGuard eager(false);
    eager_probs = world.model.DescribeProbsBatch(samples);
    eager_log_probs =
        world.model.DescriptionLogProbBatch(samples, descriptions);
    eager_assess =
        world.model.AssessProbStressedBatch(samples, descriptions);
    for (const auto& result :
         world.model.HighlightBatch(samples, descriptions, assessments,
                                    /*top_m=*/3, /*temperature=*/0.0, {})) {
      eager_rationales.push_back(result.ranked_aus);
    }
  }

  GraphModeGuard compiled(true);
  EXPECT_EQ(world.model.DescribeProbsBatch(samples), eager_probs);
  EXPECT_EQ(world.model.DescriptionLogProbBatch(samples, descriptions),
            eager_log_probs);
  EXPECT_EQ(world.model.AssessProbStressedBatch(samples, descriptions),
            eager_assess);
  const auto highlights =
      world.model.HighlightBatch(samples, descriptions, assessments,
                                 /*top_m=*/3, /*temperature=*/0.0, {});
  ASSERT_EQ(highlights.size(), eager_rationales.size());
  for (size_t i = 0; i < highlights.size(); ++i) {
    EXPECT_EQ(highlights[i].ranked_aus, eager_rationales[i])
        << "sample " << i;
  }
}

TEST_P(GraphExecTest, ExplainerAttributionsCompiledMatchEager) {
  ModelWorld world;
  const data::VideoSample& sample = world.dataset.samples[0];
  const img::Segmentation segmentation =
      img::Slic(sample.expressive_frame, bench::kNumSlicSegments);
  const explain::BatchClassifierFn classifier =
      bench::ModelBatchClassifier(world.model, sample, /*use_chain=*/true);

  const explain::LimeExplainer lime(48);
  const explain::KernelShapExplainer shap(48);
  const explain::SobolExplainer sobol(3);
  const explain::OcclusionExplainer occlusion;
  const std::vector<const explain::Explainer*> explainers = {
      &lime, &shap, &sobol, &occlusion};

  for (const explain::Explainer* explainer : explainers) {
    std::vector<double> eager_scores;
    {
      GraphModeGuard eager(false);
      Rng rng(321);
      eager_scores = explainer
                         ->Explain(classifier, sample.expressive_frame,
                                   segmentation, &rng)
                         .segment_scores;
    }
    GraphModeGuard compiled(true);
    Rng rng(321);
    const std::vector<double> compiled_scores =
        explainer
            ->Explain(classifier, sample.expressive_frame, segmentation,
                      &rng)
            .segment_scores;
    EXPECT_EQ(compiled_scores, eager_scores) << explainer->name();
  }
}

TEST_P(GraphExecTest, TryPathsCompiledMatchEager) {
  ModelWorld world;
  const auto samples = world.Pointers(10);
  std::vector<const img::Image*> images;
  std::vector<const img::Image*> neutrals;
  for (const auto* s : samples) {
    images.push_back(&s->expressive_frame);
    neutrals.push_back(&s->neutral_frame);
  }
  const auto& vision = world.model.vision();

  // Injected per-frame faults key off frame content, so both modes see the
  // exact same fault schedule; the surfaced Status must match too.
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 11;
  faults.corrupt_rate = 0.08;
  faults.nan_rate = 0.1;
  FaultInjector::Global().Configure(faults);

  for (const bool fault_round : {false, true}) {
    if (!fault_round) FaultInjector::Global().Disable();
    if (fault_round) FaultInjector::Global().Configure(faults);

    vsd::Result<tensor::Tensor> eager_encode = Status::Internal("unset");
    vsd::Result<tensor::Tensor> eager_pairs = Status::Internal("unset");
    {
      GraphModeGuard eager(false);
      eager_encode = vision.TryEncodeBatch(images);
      eager_pairs = vision.TryEmbedPairs(images, neutrals);
    }
    GraphModeGuard compiled(true);
    const vsd::Result<tensor::Tensor> compiled_encode =
        vision.TryEncodeBatch(images);
    const vsd::Result<tensor::Tensor> compiled_pairs =
        vision.TryEmbedPairs(images, neutrals);

    ASSERT_EQ(compiled_encode.ok(), eager_encode.ok())
        << "fault_round " << fault_round;
    ASSERT_EQ(compiled_pairs.ok(), eager_pairs.ok())
        << "fault_round " << fault_round;
    if (compiled_encode.ok()) {
      const tensor::Tensor& a = compiled_encode.value();
      const tensor::Tensor& b = eager_encode.value();
      ASSERT_EQ(a.size(), b.size());
      for (int i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.at(i), b.at(i)) << "TryEncodeBatch element " << i;
      }
    } else {
      EXPECT_EQ(compiled_encode.status().ToString(),
                eager_encode.status().ToString());
    }
    if (compiled_pairs.ok()) {
      const tensor::Tensor& a = compiled_pairs.value();
      const tensor::Tensor& b = eager_pairs.value();
      ASSERT_EQ(a.size(), b.size());
      for (int i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.at(i), b.at(i)) << "TryEmbedPairs element " << i;
      }
    } else {
      EXPECT_EQ(compiled_pairs.status().ToString(),
                eager_pairs.status().ToString());
    }
  }
  FaultInjector::Global().Disable();
}

TEST_P(GraphExecTest, RepeatedExecutionOnReusedArenaStaysIdentical) {
  // Executors come back from the pool with a dirty arena; every kernel
  // must fully define its output range, so re-encoding different inputs
  // back-to-back has to keep matching eager exactly.
  ModelWorld world;
  const auto& vision = world.model.vision();
  for (int round = 0; round < 3; ++round) {
    std::vector<const img::Image*> images;
    for (int i = 0; i < 5; ++i) {
      images.push_back(
          &world.dataset.samples[(round * 5 + i) % world.dataset.size()]
               .expressive_frame);
    }
    std::vector<float> eager_rows;
    {
      GraphModeGuard eager(false);
      const tensor::Tensor rows = vision.EncodeBatch(images);
      eager_rows.assign(rows.data(), rows.data() + rows.size());
    }
    GraphModeGuard compiled(true);
    const tensor::Tensor rows = vision.EncodeBatch(images);
    ASSERT_EQ(rows.size(), static_cast<int>(eager_rows.size()));
    for (int i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows.at(i), eager_rows[i])
          << "round " << round << " element " << i;
    }
  }
}

TEST_P(GraphExecTest, SimdBackendMatchesScalarBitwise) {
  // The SIMD kernels keep the scalar k-order, so the whole model forward —
  // eager and compiled alike — must be bitwise identical across backends
  // at every (batch, threads) point of the sweep.
  if (!tensor::kernels::SimdCompiled()) {
    GTEST_SKIP() << "SIMD backend not compiled in";
  }
  ModelWorld world;
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  const auto samples = world.Pointers(world.dataset.size());

  for (bool compiled : {false, true}) {
    GraphModeGuard mode(compiled);
    std::vector<double> scalar_probs;
    {
      BackendGuard scalar(tensor::kernels::Backend::kScalar);
      scalar_probs = pipeline.PredictBatch(samples);
    }
    BackendGuard simd(tensor::kernels::Backend::kSimd);
    EXPECT_EQ(pipeline.PredictBatch(samples), scalar_probs)
        << "compiled=" << compiled;
  }
}

TEST_P(GraphExecTest, QuantizedModelCompiledMatchesEager) {
  // Int8 weights flow through the fused MatMulI8 kernel in both execution
  // modes; compiled-vs-eager identity must survive quantization.
  ModelWorld world;
  const int converted = vlm::QuantizeFrozenModel(&world.model);
  ASSERT_GT(converted, 0);
  cot::ChainConfig chain;
  cot::ChainPipeline pipeline(&world.model, chain);
  const auto samples = world.Pointers(world.dataset.size());

  std::vector<double> eager_probs;
  std::vector<int> eager_labels;
  {
    GraphModeGuard eager(false);
    eager_probs = pipeline.PredictBatch(samples);
    eager_labels = pipeline.PredictLabelBatch(samples);
  }
  GraphModeGuard compiled(true);
  EXPECT_EQ(pipeline.PredictBatch(samples), eager_probs);
  EXPECT_EQ(pipeline.PredictLabelBatch(samples), eager_labels);
}

INSTANTIATE_TEST_SUITE_P(
    BatchThreadSweep, GraphExecTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 32),
                       ::testing::Values(1, 4)));

// ---- Zero-allocation contract ----

TEST(GraphAllocTest, CountingAllocatorIsLinkedIn) {
  ASSERT_TRUE(AllocHookInstalled())
      << "graph_exec_test must link common/alloc_hook.cc";
  const uint64_t before = AllocCount();
  // Direct call: a plain new-expression may legally be elided.
  void* p = ::operator new(16);
  const uint64_t after = AllocCount();
  ::operator delete(p);
  EXPECT_GE(after, before + 1);
}

TEST(GraphAllocTest, ExecuteIsAllocationFreeAfterWarmup) {
  ASSERT_TRUE(AllocHookInstalled());
  Rng rng(5);
  const nn::Mlp mlp({24, 32, 16, 4}, nn::Activation::kGelu, &rng);
  graph::CompiledForward forward(
      [&mlp](graph::GraphBuilder* builder, int n) {
        return mlp.BuildGraph(builder, builder->Input({n, 24}));
      });

  std::vector<float> input(7 * 24);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = 0.01f * static_cast<float>(i) - 0.8f;
  }

  // Warm-up: compiles the graph, constructs the executor, grows the idle
  // pool to steady state.
  float checksum = 0.0f;
  {
    graph::CompiledForward::Lease lease = forward.Acquire(7);
    std::memcpy(lease->InputData(0), input.data(),
                input.size() * sizeof(float));
    lease->Execute();
    checksum = lease->OutputData()[0];
  }

  // Steady state: a full acquire/fill/execute/read/release cycle performs
  // zero heap allocations.
  const uint64_t before = AllocCount();
  float steady = 0.0f;
  {
    graph::CompiledForward::Lease lease = forward.Acquire(7);
    std::memcpy(lease->InputData(0), input.data(),
                input.size() * sizeof(float));
    lease->Execute();
    steady = lease->OutputData()[0];
  }
  const uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u)
      << "compiled forward cycle allocated " << (after - before) << " times";
  EXPECT_EQ(steady, checksum);
}

TEST(GraphAllocTest, ExecuteAloneIsAllocationFreeOnEveryCall) {
  ASSERT_TRUE(AllocHookInstalled());
  Rng rng(6);
  const nn::Linear linear(12, 3, &rng);
  graph::GraphBuilder builder;
  const int output =
      linear.BuildGraph(&builder, builder.Input({5, 12}));
  auto compiled =
      std::make_shared<const graph::CompiledGraph>(std::move(builder), output);
  graph::GraphExecutor executor(compiled);
  for (int i = 0; i < 5 * 12; ++i) {
    executor.InputData(0)[i] = 0.1f * static_cast<float>(i % 13);
  }

  executor.Execute();  // Warm-up (the arena was already constructor-owned).
  const uint64_t before = AllocCount();
  for (int repeat = 0; repeat < 100; ++repeat) {
    executor.Execute();
  }
  const uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u);
}

TEST(GraphAllocTest, ExecuteWithInt8WeightsIsAllocationFree) {
  // The fused int8 MatMul dispatches through the same registry lookup and
  // reads quantized storage in place, so the zero-allocation contract must
  // hold for quantized graphs too.
  ASSERT_TRUE(AllocHookInstalled());
  Rng rng(7);
  const nn::Linear linear(12, 3, &rng);
  for (const nn::Var& param : linear.Parameters()) {
    if (param.value().ndim() == 2) {
      param.node()->value = param.value().QuantizeInt8();
    }
  }
  graph::GraphBuilder builder;
  const int output = linear.BuildGraph(&builder, builder.Input({5, 12}));
  auto compiled =
      std::make_shared<const graph::CompiledGraph>(std::move(builder), output);
  graph::GraphExecutor executor(compiled);
  for (int i = 0; i < 5 * 12; ++i) {
    executor.InputData(0)[i] = 0.1f * static_cast<float>(i % 13);
  }

  executor.Execute();  // Warm-up.
  const uint64_t before = AllocCount();
  for (int repeat = 0; repeat < 100; ++repeat) {
    executor.Execute();
  }
  const uint64_t after = AllocCount();
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace vsd
