#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "text/instructions.h"
#include "text/templates.h"
#include "vlm/api_models.h"
#include "vlm/foundation_model.h"
#include "vlm/vision.h"

namespace vsd::vlm {
namespace {

namespace ag = ::vsd::autograd;
using face::AuMask;

FoundationModelConfig SmallConfig(uint64_t seed = 1) {
  FoundationModelConfig config;
  config.vision_dim = 16;
  config.hidden_dim = 32;
  config.au_feature_dim = 12;
  config.seed = seed;
  return config;
}

class VlmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::MakeUvsdSimSmall(40, 21);
    model_ = std::make_unique<FoundationModel>(SmallConfig());
    model_->PrecomputeFeatures(dataset_);
  }
  data::Dataset dataset_;
  std::unique_ptr<FoundationModel> model_;
};

TEST_F(VlmTest, VisionTowerShapes) {
  Rng rng(2);
  VisionTower tower(24, &rng);
  auto embed = tower.Embed(dataset_.samples[0].expressive_frame);
  EXPECT_EQ(embed.size(), 24);
  auto pair = tower.EmbedPair(dataset_.samples[0].expressive_frame,
                              dataset_.samples[0].neutral_frame);
  EXPECT_EQ(pair.size(), 48);
}

TEST_F(VlmTest, FeatureCacheMatchesDirectComputation) {
  FoundationModel fresh(SmallConfig());
  const auto& sample = dataset_.samples[0];
  auto direct = fresh.VideoFeature(sample);  // no cache
  fresh.PrecomputeFeatures(dataset_);
  auto cached = fresh.VideoFeature(sample);
  for (int i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct.at(i), cached.at(i));
  }
}

TEST_F(VlmTest, DescribeProbsAreProbabilities) {
  const auto probs = model_->DescribeProbs(dataset_.samples[0]);
  ASSERT_EQ(probs.size(), static_cast<size_t>(face::kNumAus));
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST_F(VlmTest, DescribeLogProbConsistent) {
  Rng rng(3);
  const auto& sample = dataset_.samples[1];
  const auto result = model_->Describe(sample, 1.0, &rng);
  EXPECT_NEAR(result.log_prob,
              model_->DescriptionLogProb(sample, result.mask), 1e-9);
  EXPECT_LE(result.log_prob, 0.0);
}

TEST_F(VlmTest, DescribeTemperatureZeroIsNearGreedy) {
  Rng rng(4);
  const auto& sample = dataset_.samples[2];
  const auto probs = model_->DescribeProbs(sample);
  const auto result = model_->Describe(sample, 1e-6, &rng);
  for (int j = 0; j < face::kNumAus; ++j) {
    EXPECT_EQ(result.mask[j], probs[j] > 0.5);
  }
}

TEST_F(VlmTest, AssessGreedyMatchesProbability) {
  const auto& sample = dataset_.samples[3];
  AuMask description{};
  description[0] = true;
  const auto result = model_->Assess(sample, description, 0.0, nullptr);
  const double p = model_->AssessProbStressed(sample, description);
  EXPECT_EQ(result.label, p >= 0.5 ? 1 : 0);
  EXPECT_NEAR(result.prob_stressed, p, 1e-9);
}

TEST_F(VlmTest, AssessWithFramesMatchesCachedForCleanFrames) {
  const auto& sample = dataset_.samples[4];
  AuMask description{};
  const double cached = model_->AssessProbStressed(sample, description);
  const double direct = model_->AssessProbStressedWithFrames(
      sample.expressive_frame, sample.neutral_frame, description);
  EXPECT_NEAR(cached, direct, 1e-6);
}

TEST_F(VlmTest, InContextExampleShiftsDecision) {
  const auto& sample = dataset_.samples[5];
  AuMask description{};
  const auto base = model_->Assess(sample, description, 0.0, nullptr);
  const auto pushed_up = model_->AssessWithExample(
      sample, description, /*example_label=*/1, /*similarity=*/1.0, 0.0,
      nullptr);
  const auto pushed_down = model_->AssessWithExample(
      sample, description, /*example_label=*/0, /*similarity=*/1.0, 0.0,
      nullptr);
  EXPECT_GT(pushed_up.prob_stressed, base.prob_stressed);
  EXPECT_LT(pushed_down.prob_stressed, base.prob_stressed);
  // Zero similarity = no shift.
  const auto neutral = model_->AssessWithExample(sample, description, 1,
                                                 0.0, 0.0, nullptr);
  EXPECT_NEAR(neutral.prob_stressed, base.prob_stressed, 1e-6);
}

TEST_F(VlmTest, HighlightRestrictedToDescription) {
  Rng rng(6);
  AuMask description{};
  description[2] = description[7] = description[9] = true;
  const auto result = model_->Highlight(dataset_.samples[6], description, 1,
                                        /*top_m=*/2, 0.7, &rng);
  EXPECT_EQ(result.ranked_aus.size(), 2u);
  for (int au : result.ranked_aus) EXPECT_TRUE(description[au]);
  // No duplicates.
  EXPECT_NE(result.ranked_aus[0], result.ranked_aus[1]);
}

TEST_F(VlmTest, HighlightEmptyDescriptionUsesAllAus) {
  Rng rng(7);
  const auto result = model_->Highlight(dataset_.samples[7], AuMask{}, 0,
                                        /*top_m=*/3, 0.7, &rng);
  EXPECT_EQ(result.ranked_aus.size(), 3u);
}

TEST_F(VlmTest, SelectVideoGreedyPicksHighestLikelihood) {
  std::vector<const data::VideoSample*> candidates;
  for (int i = 0; i < 4; ++i) candidates.push_back(&dataset_.samples[i]);
  AuMask description{};
  description[0] = description[4] = true;
  const int pick =
      model_->SelectVideoForDescription(candidates, description, 0.0,
                                        nullptr);
  double best = -1e30;
  int expected = -1;
  for (int i = 0; i < 4; ++i) {
    const double lp =
        model_->DescriptionLogProb(*candidates[i], description);
    if (lp > best) {
      best = lp;
      expected = i;
    }
  }
  EXPECT_EQ(pick, expected);
}

TEST_F(VlmTest, CloneProducesIdenticalBehaviour) {
  auto clone = model_->Clone();
  const auto& sample = dataset_.samples[8];
  EXPECT_EQ(model_->DescriptionLogProb(sample, AuMask{}),
            clone->DescriptionLogProb(sample, AuMask{}));
  // Diverges after training the clone.
  nn::Adam opt(clone->HeadParameters(), 0.05f);
  std::vector<const data::VideoSample*> batch = {&sample};
  nn::Var loss = clone->AssessLoss(batch, {AuMask{}}, {1});
  opt.ZeroGrad();
  ag::Backward(loss);
  opt.Step();
  EXPECT_NE(model_->AssessProbStressed(sample, AuMask{}),
            clone->AssessProbStressed(sample, AuMask{}));
}

TEST_F(VlmTest, DescribeLossDecreasesWithTraining) {
  FoundationModel model(SmallConfig(9));
  data::Dataset au_data = data::MakeDisfaSim(5, 60);
  std::vector<const data::VideoSample*> batch;
  std::vector<AuMask> targets;
  for (const auto& sample : au_data.samples) {
    batch.push_back(&sample);
    targets.push_back(sample.au_label);
  }
  nn::Adam opt(model.Parameters(), 2e-3f);
  const float initial =
      model.DescribeLoss(batch, targets, true).value().at(0);
  for (int step = 0; step < 30; ++step) {
    nn::Var loss = model.DescribeLoss(batch, targets, true);
    opt.ZeroGrad();
    ag::Backward(loss);
    opt.Step();
  }
  const float trained =
      model.DescribeLoss(batch, targets, true).value().at(0);
  EXPECT_LT(trained, initial * 0.7f);
}

TEST_F(VlmTest, DpoDescribeLossMovesPolicyTowardWinners) {
  // After DPO steps, winner log-prob should grow relative to loser.
  auto reference = model_->Clone();
  std::vector<const data::VideoSample*> batch;
  std::vector<AuMask> winners;
  std::vector<AuMask> losers;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(&dataset_.samples[i]);
    AuMask winner{};
    winner[2] = winner[7] = true;
    AuMask loser{};
    loser[4] = loser[6] = true;
    winners.push_back(winner);
    losers.push_back(loser);
  }
  auto margin = [&](const FoundationModel& m) {
    double total = 0.0;
    for (int i = 0; i < 10; ++i) {
      total += m.DescriptionLogProb(*batch[i], winners[i]) -
               m.DescriptionLogProb(*batch[i], losers[i]);
    }
    return total;
  };
  const double before = margin(*model_);
  nn::Adam opt(model_->HeadParameters(), 5e-3f);
  for (int step = 0; step < 20; ++step) {
    nn::Var loss =
        model_->DpoDescribeLoss(batch, winners, losers, *reference, 0.1f);
    opt.ZeroGrad();
    ag::Backward(loss);
    opt.Step();
  }
  EXPECT_GT(margin(*model_), before);
}

TEST_F(VlmTest, BernoulliSetLogProbMatchesScalarPath) {
  const auto& sample = dataset_.samples[9];
  AuMask mask{};
  mask[1] = mask[5] = mask[10] = true;
  tensor::Tensor feature = model_->VideoFeature(sample);
  nn::Var logits = model_->DescribeLogitsVar(model_->TrunkForward(
      nn::Var(feature.Reshape({1, feature.size()}))));
  nn::Var lp = FoundationModel::BernoulliSetLogProbVar(logits, {mask});
  EXPECT_NEAR(lp.value().at(0), model_->DescriptionLogProb(sample, mask),
              1e-4);
}

TEST_F(VlmTest, ChatRoutesDescribe) {
  Rng rng(10);
  auto reply = model_->Chat({&dataset_.samples[0]},
                            text::DescribeInstruction(), "", 0.5, &rng);
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.value().find("facial expressions"), std::string::npos);
}

TEST_F(VlmTest, ChatRoutesAssessWithContext) {
  Rng rng(11);
  AuMask description{};
  description[2] = true;
  auto reply = model_->Chat({&dataset_.samples[0]},
                            text::AssessInstruction(),
                            text::RenderDescription(description), 0.0,
                            nullptr);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(text::ParseAssessment(reply.value()).ok());
}

TEST_F(VlmTest, ChatRoutesVerification) {
  Rng rng(12);
  AuMask description{};
  description[0] = true;
  std::vector<const data::VideoSample*> videos;
  for (int i = 0; i < 4; ++i) videos.push_back(&dataset_.samples[i]);
  auto reply = model_->Chat(
      videos, text::VerifyDescribeInstruction(
                  text::RenderDescription(description), 4),
      "", 0.0, nullptr);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().rfind("Video ", 0), 0u);
}

TEST_F(VlmTest, ChatRejectsEmptyVideosAndUnknownInstruction) {
  EXPECT_FALSE(model_->Chat({}, text::DescribeInstruction(), "", 0.5,
                            nullptr)
                   .ok());
  EXPECT_FALSE(model_->Chat({&dataset_.samples[0]}, "gibberish", "", 0.5,
                            nullptr)
                   .ok());
}

TEST(ApiModelTest, NegativityProxyLabel) {
  AuMask sad{};
  sad[7] = true;  // AU15 (sadness)
  EXPECT_EQ(NegativityProxyLabel(sad), 1);
  AuMask anger{};
  anger[2] = anger[3] = true;  // AU4 + AU5
  EXPECT_EQ(NegativityProxyLabel(anger), 1);
  AuMask joy{};
  joy[4] = joy[6] = true;  // AU6 + AU12
  EXPECT_EQ(NegativityProxyLabel(joy), 0);
  // Stress-typical but not basic-negative-emotion units: the proxy
  // deliberately misses these (see api_models.cc).
  AuMask stress_only{};
  stress_only[0] = stress_only[8] = true;  // AU1 + AU17
  EXPECT_EQ(NegativityProxyLabel(stress_only), 0);
  EXPECT_EQ(NegativityProxyLabel(AuMask{}), 0);
}

TEST(ApiModelTest, SpecsOrderedByFidelity) {
  const auto gpt = GetApiModelSpec(ApiModelKind::kGpt4o);
  const auto claude = GetApiModelSpec(ApiModelKind::kClaude35);
  const auto gemini = GetApiModelSpec(ApiModelKind::kGemini15);
  // GPT-4o-sim: biggest capacity, least miscalibrated verdicts.
  EXPECT_GE(gpt.config.hidden_dim, claude.config.hidden_dim);
  EXPECT_GE(claude.config.hidden_dim, gemini.config.hidden_dim);
  EXPECT_LT(gpt.config.assess_margin_bias,
            claude.config.assess_margin_bias);
  EXPECT_LT(gpt.config.assess_margin_bias,
            gemini.config.assess_margin_bias);
  // The backbone init is a cleaner generalist than any API sim.
  EXPECT_LT(BackboneInitSpec().label_corruption, gpt.label_corruption);
  EXPECT_EQ(BackboneInitSpec().config.assess_margin_bias, 0.0f);
}

TEST(ApiModelTest, NamesDistinct) {
  EXPECT_STRNE(ApiModelName(ApiModelKind::kGpt4o),
               ApiModelName(ApiModelKind::kClaude35));
  EXPECT_STRNE(ApiModelName(ApiModelKind::kClaude35),
               ApiModelName(ApiModelKind::kGemini15));
}

}  // namespace
}  // namespace vsd::vlm
