#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "explain/explainer.h"
#include "explain/faithfulness.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/occlusion.h"
#include "explain/sobol.h"
#include "img/image.h"
#include "img/slic.h"

namespace vsd::explain {
namespace {

/// A synthetic "model" whose output depends only on the mean intensity of
/// a known target window: the perfect ground truth for attribution tests.
class WindowOracle {
 public:
  WindowOracle(int y0, int y1, int x0, int x1)
      : y0_(y0), y1_(y1), x0_(x0), x1_(x1) {}

  double operator()(const img::Image& image) const {
    double sum = 0.0;
    int count = 0;
    for (int y = y0_; y < y1_; ++y) {
      for (int x = x0_; x < x1_; ++x) {
        sum += image.at(y, x);
        ++count;
      }
    }
    return sum / count;
  }

 private:
  int y0_, y1_, x0_, x1_;
};

/// Test fixture: a bright patch image, its segmentation, and the oracle
/// focused on that patch.
class ExplainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = img::Image(32, 32, 0.2f);
    for (int y = 8; y < 16; ++y) {
      for (int x = 8; x < 16; ++x) image_.at(y, x) = 0.9f;
    }
    segmentation_ = img::Slic(image_, 16, /*compactness=*/20.0f);
  }

  /// Fraction of the oracle window covered by segment `s`.
  double WindowOverlap(int segment) const {
    int inside = 0;
    int total = 0;
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        if (segmentation_.LabelAt(y, x) != segment) continue;
        ++total;
        if (y >= 8 && y < 16 && x >= 8 && x < 16) ++inside;
      }
    }
    return total > 0 ? static_cast<double>(inside) / total : 0.0;
  }

  void ExpectTopSegmentInWindow(const Explainer& explainer) {
    Rng rng(17);
    WindowOracle oracle(8, 16, 8, 16);
    const Attribution attribution = explainer.Explain(
        [&oracle](const img::Image& im) { return oracle(im); }, image_,
        segmentation_, &rng);
    ASSERT_EQ(static_cast<int>(attribution.segment_scores.size()),
              segmentation_.num_segments);
    const auto ranked = attribution.RankedSegments();
    // The top-ranked segment must overlap the oracle's window.
    EXPECT_GT(WindowOverlap(ranked[0]), 0.3)
        << explainer.name() << " top segment misses the target window";
    EXPECT_GT(attribution.model_evaluations, 0);
  }

  img::Image image_;
  img::Segmentation segmentation_;
};

TEST_F(ExplainerTest, LimeFindsTheWindow) {
  ExpectTopSegmentInWindow(LimeExplainer(400));
}

TEST_F(ExplainerTest, KernelShapFindsTheWindow) {
  ExpectTopSegmentInWindow(KernelShapExplainer(400));
}

TEST_F(ExplainerTest, SobolFindsTheWindow) {
  ExpectTopSegmentInWindow(SobolExplainer(12));
}

TEST_F(ExplainerTest, OcclusionFindsTheWindow) {
  ExpectTopSegmentInWindow(OcclusionExplainer());
}

TEST_F(ExplainerTest, EvaluationBudgetsRespected) {
  Rng rng(18);
  auto constant = [](const img::Image&) { return 0.5; };
  const auto lime =
      LimeExplainer(100).Explain(constant, image_, segmentation_, &rng);
  EXPECT_EQ(lime.model_evaluations, 100);
  const auto shap =
      KernelShapExplainer(100).Explain(constant, image_, segmentation_,
                                       &rng);
  EXPECT_EQ(shap.model_evaluations, 100);
  const auto sobol =
      SobolExplainer(4).Explain(constant, image_, segmentation_, &rng);
  // N * (d + 2) evaluations.
  EXPECT_EQ(sobol.model_evaluations,
            4 * (segmentation_.num_segments + 2));
  const auto occlusion =
      OcclusionExplainer().Explain(constant, image_, segmentation_, &rng);
  EXPECT_EQ(occlusion.model_evaluations, segmentation_.num_segments + 1);
}

TEST_F(ExplainerTest, ConstantModelGetsNearZeroAttributions) {
  Rng rng(19);
  auto constant = [](const img::Image&) { return 0.5; };
  const auto attribution =
      LimeExplainer(300).Explain(constant, image_, segmentation_, &rng);
  for (double score : attribution.segment_scores) {
    EXPECT_NEAR(score, 0.0, 0.05);
  }
}

TEST_F(ExplainerTest, ApplySegmentMaskInterpolatesToMean) {
  std::vector<float> keep(segmentation_.num_segments, 1.0f);
  keep[0] = 0.0f;
  const img::Image masked =
      ApplySegmentMask(image_, segmentation_, keep);
  const float mean = image_.MeanValue();
  bool found = false;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (segmentation_.LabelAt(y, x) == 0) {
        EXPECT_NEAR(masked.at(y, x), mean, 1e-5f);
        found = true;
      } else {
        EXPECT_EQ(masked.at(y, x), image_.at(y, x));
      }
    }
  }
  EXPECT_TRUE(found);
}

// ---- Rng fork-order pins ----
//
// Each explainer forks one child stream per perturbation from the caller's
// Rng, in index order, and (for SOBOL) draws the rotation before any
// evaluation. This fork order is the determinism contract that keeps
// parallel and serial runs bit-identical; a refactor that silently
// reorders draws must fail these tests loudly, not shift every table.

TEST_F(ExplainerTest, LimeConsumesExactlyOneForkPerPerturbation) {
  auto constant = [](const img::Image&) { return 0.5; };
  Rng rng(101);
  LimeExplainer(37).Explain(constant, image_, segmentation_, &rng);
  Rng mirror(101);
  for (int s = 0; s < 37; ++s) mirror.Fork();
  EXPECT_EQ(rng.Next(), mirror.Next())
      << "LIME no longer consumes one Fork() per perturbation";
}

TEST_F(ExplainerTest, KernelShapConsumesExactlyOneForkPerCoalition) {
  auto constant = [](const img::Image&) { return 0.5; };
  Rng rng(103);
  KernelShapExplainer(40).Explain(constant, image_, segmentation_, &rng);
  Rng mirror(103);
  for (int s = 0; s < 40 - 2; ++s) mirror.Fork();  // minus empty/full
  EXPECT_EQ(rng.Next(), mirror.Next())
      << "KernelSHAP no longer consumes one Fork() per sampled coalition";
}

TEST_F(ExplainerTest, SobolConsumesExactlyTheRotationDraws) {
  auto constant = [](const img::Image&) { return 0.5; };
  Rng rng(107);
  SobolExplainer(3).Explain(constant, image_, segmentation_, &rng);
  Rng mirror(107);
  for (int j = 0; j < 2 * segmentation_.num_segments; ++j) mirror.Uniform();
  EXPECT_EQ(rng.Next(), mirror.Next())
      << "SOBOL no longer consumes exactly the 2d rotation uniforms";
}

TEST_F(ExplainerTest, LimeMasksComeFromIndexForkedStreams) {
  // Pins the full index -> fork -> mask mapping: perturbation s must be
  // drawn from the s-th forked child, Bernoulli(0.5) per segment in
  // segment order. Recorded serially (threads=1) so call order == index
  // order.
  ThreadPool::SetGlobalThreads(1);
  std::vector<img::Image> seen;
  auto recorder = [&seen](const img::Image& im) {
    seen.push_back(im);
    return 0.5;
  };
  Rng rng(7);
  LimeExplainer(6).Explain(recorder, image_, segmentation_, &rng);
  ASSERT_EQ(seen.size(), 6u);
  Rng mirror(7);
  for (int s = 0; s < 6; ++s) {
    Rng child = mirror.Fork();
    std::vector<float> keep(segmentation_.num_segments);
    for (int j = 0; j < segmentation_.num_segments; ++j) {
      keep[j] = child.Bernoulli(0.5) ? 1.0f : 0.0f;
    }
    const img::Image expected =
        ApplySegmentMask(image_, segmentation_, keep);
    EXPECT_EQ(expected.pixels(), seen[s].pixels())
        << "perturbation " << s << " not drawn from fork " << s;
  }
}

TEST_F(ExplainerTest, KernelShapCoalitionsComeFromIndexForkedStreams) {
  ThreadPool::SetGlobalThreads(1);
  std::vector<img::Image> seen;
  auto recorder = [&seen](const img::Image& im) {
    seen.push_back(im);
    return 0.5;
  };
  Rng rng(11);
  KernelShapExplainer(8).Explain(recorder, image_, segmentation_, &rng);
  // Call order: empty coalition, full image, then the sampled coalitions.
  const int d = segmentation_.num_segments;
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen[1].pixels(), image_.pixels());
  std::vector<double> size_weights(d - 1);
  for (int s = 1; s <= d - 1; ++s) {
    size_weights[s - 1] =
        static_cast<double>(d - 1) / (static_cast<double>(s) * (d - s));
  }
  Rng mirror(11);
  for (int i = 0; i < 8 - 2; ++i) {
    Rng child = mirror.Fork();
    const int size = 1 + child.SampleIndex(size_weights);
    const std::vector<int> chosen = child.SampleWithoutReplacement(d, size);
    std::vector<float> keep(d, 0.0f);
    for (int j : chosen) keep[j] = 1.0f;
    const img::Image expected =
        ApplySegmentMask(image_, segmentation_, keep);
    EXPECT_EQ(expected.pixels(), seen[2 + i].pixels())
        << "coalition " << i << " not drawn from fork " << i;
  }
}

TEST(QmcSequenceTest, PointsInUnitCubeAndLowDiscrepancy) {
  QmcSequence sequence(8);
  // First 64 points of each dim should cover [0,1) roughly uniformly.
  std::vector<double> sums(8, 0.0);
  for (int i = 0; i < 64; ++i) {
    const auto point = sequence.Point(i);
    for (int j = 0; j < 8; ++j) {
      EXPECT_GE(point[j], 0.0);
      EXPECT_LT(point[j], 1.0);
      sums[j] += point[j];
    }
  }
  for (double sum : sums) EXPECT_NEAR(sum / 64.0, 0.5, 0.08);
}

TEST(QmcSequenceTest, Deterministic) {
  QmcSequence a(4);
  QmcSequence b(4);
  EXPECT_EQ(a.Point(17), b.Point(17));
}

TEST(FaithfulnessTest, OracleRationaleDropsAccuracyMost) {
  // Model: stressed iff the 8..16 window is bright. Samples: half bright
  // (label 1), half dark (label 0). The oracle ranking (window segments
  // first) must cause a larger accuracy drop than a deliberately wrong
  // ranking.
  Rng rng(20);
  WindowOracle oracle(8, 16, 8, 16);
  std::vector<img::Image> images;
  std::vector<img::Segmentation> segmentations;
  std::vector<ExplainedSample> good;
  std::vector<ExplainedSample> bad;
  const int n = 16;
  images.reserve(n);
  segmentations.reserve(n);
  for (int i = 0; i < n; ++i) {
    img::Image image(32, 32, 0.2f);
    const int label = i % 2;
    if (label == 1) {
      for (int y = 8; y < 16; ++y) {
        for (int x = 8; x < 16; ++x) image.at(y, x) = 0.95f;
      }
    }
    images.push_back(image);
    segmentations.push_back(img::Slic(images.back(), 16, 20.0f));
  }
  for (int i = 0; i < n; ++i) {
    const auto& segmentation = segmentations[i];
    // Rank segments by window overlap (oracle) and reverse (bad).
    std::vector<std::pair<double, int>> overlap;
    for (int s = 0; s < segmentation.num_segments; ++s) {
      int inside = 0;
      int total = 0;
      for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
          if (segmentation.LabelAt(y, x) != s) continue;
          ++total;
          inside += (y >= 8 && y < 16 && x >= 8 && x < 16);
        }
      }
      overlap.push_back({total > 0 ? -1.0 * inside / total : 0.0, s});
    }
    std::sort(overlap.begin(), overlap.end());
    ExplainedSample sample;
    sample.image = &images[i];
    sample.segmentation = &segmentation;
    sample.true_label = i % 2;
    // Noise-sensitive oracle: "stressed" needs a bright AND smooth
    // window, so noising a covering segment flips the decision.
    sample.classifier = [](const img::Image& im) {
      double sum = 0.0;
      double sq = 0.0;
      for (int y = 8; y < 16; ++y) {
        for (int x = 8; x < 16; ++x) {
          sum += im.at(y, x);
          sq += im.at(y, x) * im.at(y, x);
        }
      }
      const double mean = sum / 64.0;
      const double var = sq / 64.0 - mean * mean;
      return (mean > 0.5 && var < 0.02) ? 0.9 : 0.1;
    };
    for (const auto& [score, segment] : overlap) {
      sample.ranked_segments.push_back(segment);
    }
    good.push_back(sample);
    ExplainedSample reversed = sample;
    std::reverse(reversed.ranked_segments.begin(),
                 reversed.ranked_segments.end());
    bad.push_back(reversed);
  }
  EXPECT_NEAR(CleanAccuracy(good), 1.0, 1e-9);
  const auto good_drops = TopKAccuracyDrop(good, {1, 2, 3}, 0.8f, &rng);
  Rng rng2(21);
  const auto bad_drops = TopKAccuracyDrop(bad, {1, 2, 3}, 0.8f, &rng2);
  // The faithful ranking flips the stressed half early; the reversed
  // ranking barely touches the window within its top 3.
  EXPECT_GE(good_drops[0], 0.3);
  EXPECT_GT(good_drops[2], bad_drops[2]);
}

}  // namespace
}  // namespace vsd::explain
