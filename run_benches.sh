#!/bin/sh
# Runs every bench binary in a stable order, as `for b in build/bench/*`.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
