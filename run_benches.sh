#!/bin/sh
# Runs every bench binary in a stable order, as `for b in build/bench/*`.
# Extra arguments are forwarded to every harness binary, e.g.:
#   ./run_benches.sh --quick --threads 4
# bench_micro is google-benchmark (rejects harness flags) and runs bare.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$b" in
    */bench_micro) "$b" ;;
    *) "$b" "$@" ;;
  esac
done
