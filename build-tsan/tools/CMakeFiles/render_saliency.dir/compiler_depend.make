# Empty compiler generated dependencies file for render_saliency.
# This may be replaced when dependencies are built.
