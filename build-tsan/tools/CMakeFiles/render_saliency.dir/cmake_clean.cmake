file(REMOVE_RECURSE
  "CMakeFiles/render_saliency.dir/render_saliency.cc.o"
  "CMakeFiles/render_saliency.dir/render_saliency.cc.o.d"
  "render_saliency"
  "render_saliency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_saliency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
