# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tensor_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/autograd_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nn_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/img_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/face_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/data_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/text_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/vlm_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cot_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/explain_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/serialize_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/harness_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_equivalence_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/consistency_test[1]_include.cmake")
