file(REMOVE_RECURSE
  "CMakeFiles/face_test.dir/face_test.cc.o"
  "CMakeFiles/face_test.dir/face_test.cc.o.d"
  "face_test"
  "face_test.pdb"
  "face_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
