# Empty dependencies file for face_test.
# This may be replaced when dependencies are built.
