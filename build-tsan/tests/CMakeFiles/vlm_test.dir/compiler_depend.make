# Empty compiler generated dependencies file for vlm_test.
# This may be replaced when dependencies are built.
