file(REMOVE_RECURSE
  "CMakeFiles/vlm_test.dir/vlm_test.cc.o"
  "CMakeFiles/vlm_test.dir/vlm_test.cc.o.d"
  "vlm_test"
  "vlm_test.pdb"
  "vlm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
