file(REMOVE_RECURSE
  "CMakeFiles/vsd_nn.dir/layers.cc.o"
  "CMakeFiles/vsd_nn.dir/layers.cc.o.d"
  "CMakeFiles/vsd_nn.dir/module.cc.o"
  "CMakeFiles/vsd_nn.dir/module.cc.o.d"
  "CMakeFiles/vsd_nn.dir/optimizer.cc.o"
  "CMakeFiles/vsd_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/vsd_nn.dir/serialize.cc.o"
  "CMakeFiles/vsd_nn.dir/serialize.cc.o.d"
  "libvsd_nn.a"
  "libvsd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
