# Empty dependencies file for vsd_nn.
# This may be replaced when dependencies are built.
