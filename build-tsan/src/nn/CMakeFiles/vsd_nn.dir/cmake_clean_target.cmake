file(REMOVE_RECURSE
  "libvsd_nn.a"
)
