
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/encoder.cc" "src/text/CMakeFiles/vsd_text.dir/encoder.cc.o" "gcc" "src/text/CMakeFiles/vsd_text.dir/encoder.cc.o.d"
  "/root/repo/src/text/instructions.cc" "src/text/CMakeFiles/vsd_text.dir/instructions.cc.o" "gcc" "src/text/CMakeFiles/vsd_text.dir/instructions.cc.o.d"
  "/root/repo/src/text/templates.cc" "src/text/CMakeFiles/vsd_text.dir/templates.cc.o" "gcc" "src/text/CMakeFiles/vsd_text.dir/templates.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/vsd_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/vsd_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/face/CMakeFiles/vsd_face.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/img/CMakeFiles/vsd_img.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
