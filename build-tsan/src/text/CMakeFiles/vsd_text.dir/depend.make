# Empty dependencies file for vsd_text.
# This may be replaced when dependencies are built.
