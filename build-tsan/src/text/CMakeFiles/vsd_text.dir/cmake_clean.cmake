file(REMOVE_RECURSE
  "CMakeFiles/vsd_text.dir/encoder.cc.o"
  "CMakeFiles/vsd_text.dir/encoder.cc.o.d"
  "CMakeFiles/vsd_text.dir/instructions.cc.o"
  "CMakeFiles/vsd_text.dir/instructions.cc.o.d"
  "CMakeFiles/vsd_text.dir/templates.cc.o"
  "CMakeFiles/vsd_text.dir/templates.cc.o.d"
  "CMakeFiles/vsd_text.dir/tokenizer.cc.o"
  "CMakeFiles/vsd_text.dir/tokenizer.cc.o.d"
  "libvsd_text.a"
  "libvsd_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
