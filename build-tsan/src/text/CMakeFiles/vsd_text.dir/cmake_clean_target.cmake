file(REMOVE_RECURSE
  "libvsd_text.a"
)
