
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/img/image.cc" "src/img/CMakeFiles/vsd_img.dir/image.cc.o" "gcc" "src/img/CMakeFiles/vsd_img.dir/image.cc.o.d"
  "/root/repo/src/img/pgm.cc" "src/img/CMakeFiles/vsd_img.dir/pgm.cc.o" "gcc" "src/img/CMakeFiles/vsd_img.dir/pgm.cc.o.d"
  "/root/repo/src/img/slic.cc" "src/img/CMakeFiles/vsd_img.dir/slic.cc.o" "gcc" "src/img/CMakeFiles/vsd_img.dir/slic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
