# Empty dependencies file for vsd_img.
# This may be replaced when dependencies are built.
