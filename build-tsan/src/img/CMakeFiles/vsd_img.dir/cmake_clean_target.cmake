file(REMOVE_RECURSE
  "libvsd_img.a"
)
