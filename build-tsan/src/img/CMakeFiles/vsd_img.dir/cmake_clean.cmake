file(REMOVE_RECURSE
  "CMakeFiles/vsd_img.dir/image.cc.o"
  "CMakeFiles/vsd_img.dir/image.cc.o.d"
  "CMakeFiles/vsd_img.dir/pgm.cc.o"
  "CMakeFiles/vsd_img.dir/pgm.cc.o.d"
  "CMakeFiles/vsd_img.dir/slic.cc.o"
  "CMakeFiles/vsd_img.dir/slic.cc.o.d"
  "libvsd_img.a"
  "libvsd_img.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
