# Empty dependencies file for vsd_vlm.
# This may be replaced when dependencies are built.
