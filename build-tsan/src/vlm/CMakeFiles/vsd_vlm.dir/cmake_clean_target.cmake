file(REMOVE_RECURSE
  "libvsd_vlm.a"
)
