file(REMOVE_RECURSE
  "CMakeFiles/vsd_vlm.dir/api_models.cc.o"
  "CMakeFiles/vsd_vlm.dir/api_models.cc.o.d"
  "CMakeFiles/vsd_vlm.dir/foundation_model.cc.o"
  "CMakeFiles/vsd_vlm.dir/foundation_model.cc.o.d"
  "CMakeFiles/vsd_vlm.dir/vision.cc.o"
  "CMakeFiles/vsd_vlm.dir/vision.cc.o.d"
  "libvsd_vlm.a"
  "libvsd_vlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_vlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
