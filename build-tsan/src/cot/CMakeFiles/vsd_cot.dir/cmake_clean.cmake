file(REMOVE_RECURSE
  "CMakeFiles/vsd_cot.dir/icl.cc.o"
  "CMakeFiles/vsd_cot.dir/icl.cc.o.d"
  "CMakeFiles/vsd_cot.dir/pipeline.cc.o"
  "CMakeFiles/vsd_cot.dir/pipeline.cc.o.d"
  "CMakeFiles/vsd_cot.dir/refinement.cc.o"
  "CMakeFiles/vsd_cot.dir/refinement.cc.o.d"
  "CMakeFiles/vsd_cot.dir/trainer.cc.o"
  "CMakeFiles/vsd_cot.dir/trainer.cc.o.d"
  "libvsd_cot.a"
  "libvsd_cot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_cot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
