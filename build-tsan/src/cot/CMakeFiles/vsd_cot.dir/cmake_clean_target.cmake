file(REMOVE_RECURSE
  "libvsd_cot.a"
)
