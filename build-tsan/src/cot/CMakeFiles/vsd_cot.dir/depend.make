# Empty dependencies file for vsd_cot.
# This may be replaced when dependencies are built.
