file(REMOVE_RECURSE
  "libvsd_baselines.a"
)
