# Empty dependencies file for vsd_baselines.
# This may be replaced when dependencies are built.
