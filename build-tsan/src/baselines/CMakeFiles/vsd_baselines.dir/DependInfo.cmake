
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/baseline.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/baseline.cc.o.d"
  "/root/repo/src/baselines/ding_fusion.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/ding_fusion.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/ding_fusion.cc.o.d"
  "/root/repo/src/baselines/fdassnn.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/fdassnn.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/fdassnn.cc.o.d"
  "/root/repo/src/baselines/gao_svm.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/gao_svm.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/gao_svm.cc.o.d"
  "/root/repo/src/baselines/jeon_attention.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/jeon_attention.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/jeon_attention.cc.o.d"
  "/root/repo/src/baselines/marlin.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/marlin.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/marlin.cc.o.d"
  "/root/repo/src/baselines/singh_resnet.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/singh_resnet.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/singh_resnet.cc.o.d"
  "/root/repo/src/baselines/tsdnet.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/tsdnet.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/tsdnet.cc.o.d"
  "/root/repo/src/baselines/zero_shot_lfm.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/zero_shot_lfm.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/zero_shot_lfm.cc.o.d"
  "/root/repo/src/baselines/zhang_emotion.cc" "src/baselines/CMakeFiles/vsd_baselines.dir/zhang_emotion.cc.o" "gcc" "src/baselines/CMakeFiles/vsd_baselines.dir/zhang_emotion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/vlm/CMakeFiles/vsd_vlm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/vsd_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/vsd_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/face/CMakeFiles/vsd_face.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/text/CMakeFiles/vsd_text.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/img/CMakeFiles/vsd_img.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/vsd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
