file(REMOVE_RECURSE
  "CMakeFiles/vsd_baselines.dir/baseline.cc.o"
  "CMakeFiles/vsd_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/ding_fusion.cc.o"
  "CMakeFiles/vsd_baselines.dir/ding_fusion.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/fdassnn.cc.o"
  "CMakeFiles/vsd_baselines.dir/fdassnn.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/gao_svm.cc.o"
  "CMakeFiles/vsd_baselines.dir/gao_svm.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/jeon_attention.cc.o"
  "CMakeFiles/vsd_baselines.dir/jeon_attention.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/marlin.cc.o"
  "CMakeFiles/vsd_baselines.dir/marlin.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/singh_resnet.cc.o"
  "CMakeFiles/vsd_baselines.dir/singh_resnet.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/tsdnet.cc.o"
  "CMakeFiles/vsd_baselines.dir/tsdnet.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/zero_shot_lfm.cc.o"
  "CMakeFiles/vsd_baselines.dir/zero_shot_lfm.cc.o.d"
  "CMakeFiles/vsd_baselines.dir/zhang_emotion.cc.o"
  "CMakeFiles/vsd_baselines.dir/zhang_emotion.cc.o.d"
  "libvsd_baselines.a"
  "libvsd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
