file(REMOVE_RECURSE
  "libvsd_face.a"
)
