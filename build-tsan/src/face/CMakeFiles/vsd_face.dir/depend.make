# Empty dependencies file for vsd_face.
# This may be replaced when dependencies are built.
