
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/face/au.cc" "src/face/CMakeFiles/vsd_face.dir/au.cc.o" "gcc" "src/face/CMakeFiles/vsd_face.dir/au.cc.o.d"
  "/root/repo/src/face/landmarks.cc" "src/face/CMakeFiles/vsd_face.dir/landmarks.cc.o" "gcc" "src/face/CMakeFiles/vsd_face.dir/landmarks.cc.o.d"
  "/root/repo/src/face/renderer.cc" "src/face/CMakeFiles/vsd_face.dir/renderer.cc.o" "gcc" "src/face/CMakeFiles/vsd_face.dir/renderer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/img/CMakeFiles/vsd_img.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
