file(REMOVE_RECURSE
  "CMakeFiles/vsd_face.dir/au.cc.o"
  "CMakeFiles/vsd_face.dir/au.cc.o.d"
  "CMakeFiles/vsd_face.dir/landmarks.cc.o"
  "CMakeFiles/vsd_face.dir/landmarks.cc.o.d"
  "CMakeFiles/vsd_face.dir/renderer.cc.o"
  "CMakeFiles/vsd_face.dir/renderer.cc.o.d"
  "libvsd_face.a"
  "libvsd_face.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_face.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
