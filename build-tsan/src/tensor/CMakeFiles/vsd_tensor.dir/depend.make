# Empty dependencies file for vsd_tensor.
# This may be replaced when dependencies are built.
