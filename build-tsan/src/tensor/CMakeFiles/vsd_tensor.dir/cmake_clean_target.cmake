file(REMOVE_RECURSE
  "libvsd_tensor.a"
)
