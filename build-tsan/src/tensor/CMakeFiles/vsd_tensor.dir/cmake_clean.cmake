file(REMOVE_RECURSE
  "CMakeFiles/vsd_tensor.dir/autograd.cc.o"
  "CMakeFiles/vsd_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/vsd_tensor.dir/tensor.cc.o"
  "CMakeFiles/vsd_tensor.dir/tensor.cc.o.d"
  "libvsd_tensor.a"
  "libvsd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
