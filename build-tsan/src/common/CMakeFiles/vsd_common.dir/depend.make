# Empty dependencies file for vsd_common.
# This may be replaced when dependencies are built.
