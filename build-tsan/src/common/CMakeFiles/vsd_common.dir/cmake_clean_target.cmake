file(REMOVE_RECURSE
  "libvsd_common.a"
)
