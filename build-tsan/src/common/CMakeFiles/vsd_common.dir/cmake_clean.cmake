file(REMOVE_RECURSE
  "CMakeFiles/vsd_common.dir/logging.cc.o"
  "CMakeFiles/vsd_common.dir/logging.cc.o.d"
  "CMakeFiles/vsd_common.dir/math_util.cc.o"
  "CMakeFiles/vsd_common.dir/math_util.cc.o.d"
  "CMakeFiles/vsd_common.dir/rng.cc.o"
  "CMakeFiles/vsd_common.dir/rng.cc.o.d"
  "CMakeFiles/vsd_common.dir/status.cc.o"
  "CMakeFiles/vsd_common.dir/status.cc.o.d"
  "CMakeFiles/vsd_common.dir/string_util.cc.o"
  "CMakeFiles/vsd_common.dir/string_util.cc.o.d"
  "CMakeFiles/vsd_common.dir/table.cc.o"
  "CMakeFiles/vsd_common.dir/table.cc.o.d"
  "CMakeFiles/vsd_common.dir/thread_pool.cc.o"
  "CMakeFiles/vsd_common.dir/thread_pool.cc.o.d"
  "libvsd_common.a"
  "libvsd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
