file(REMOVE_RECURSE
  "CMakeFiles/vsd_core.dir/evaluation.cc.o"
  "CMakeFiles/vsd_core.dir/evaluation.cc.o.d"
  "CMakeFiles/vsd_core.dir/metrics.cc.o"
  "CMakeFiles/vsd_core.dir/metrics.cc.o.d"
  "CMakeFiles/vsd_core.dir/stress_detector.cc.o"
  "CMakeFiles/vsd_core.dir/stress_detector.cc.o.d"
  "libvsd_core.a"
  "libvsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
