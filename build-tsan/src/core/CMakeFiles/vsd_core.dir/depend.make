# Empty dependencies file for vsd_core.
# This may be replaced when dependencies are built.
