file(REMOVE_RECURSE
  "libvsd_core.a"
)
