# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("nn")
subdirs("img")
subdirs("face")
subdirs("data")
subdirs("text")
subdirs("vlm")
subdirs("cot")
subdirs("explain")
subdirs("baselines")
subdirs("core")
