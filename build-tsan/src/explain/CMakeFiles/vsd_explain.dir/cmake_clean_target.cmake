file(REMOVE_RECURSE
  "libvsd_explain.a"
)
