# Empty dependencies file for vsd_explain.
# This may be replaced when dependencies are built.
