file(REMOVE_RECURSE
  "CMakeFiles/vsd_explain.dir/explainer.cc.o"
  "CMakeFiles/vsd_explain.dir/explainer.cc.o.d"
  "CMakeFiles/vsd_explain.dir/faithfulness.cc.o"
  "CMakeFiles/vsd_explain.dir/faithfulness.cc.o.d"
  "CMakeFiles/vsd_explain.dir/kernel_shap.cc.o"
  "CMakeFiles/vsd_explain.dir/kernel_shap.cc.o.d"
  "CMakeFiles/vsd_explain.dir/lime.cc.o"
  "CMakeFiles/vsd_explain.dir/lime.cc.o.d"
  "CMakeFiles/vsd_explain.dir/occlusion.cc.o"
  "CMakeFiles/vsd_explain.dir/occlusion.cc.o.d"
  "CMakeFiles/vsd_explain.dir/sobol.cc.o"
  "CMakeFiles/vsd_explain.dir/sobol.cc.o.d"
  "libvsd_explain.a"
  "libvsd_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
