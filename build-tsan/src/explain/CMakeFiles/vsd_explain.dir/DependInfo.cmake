
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/explainer.cc" "src/explain/CMakeFiles/vsd_explain.dir/explainer.cc.o" "gcc" "src/explain/CMakeFiles/vsd_explain.dir/explainer.cc.o.d"
  "/root/repo/src/explain/faithfulness.cc" "src/explain/CMakeFiles/vsd_explain.dir/faithfulness.cc.o" "gcc" "src/explain/CMakeFiles/vsd_explain.dir/faithfulness.cc.o.d"
  "/root/repo/src/explain/kernel_shap.cc" "src/explain/CMakeFiles/vsd_explain.dir/kernel_shap.cc.o" "gcc" "src/explain/CMakeFiles/vsd_explain.dir/kernel_shap.cc.o.d"
  "/root/repo/src/explain/lime.cc" "src/explain/CMakeFiles/vsd_explain.dir/lime.cc.o" "gcc" "src/explain/CMakeFiles/vsd_explain.dir/lime.cc.o.d"
  "/root/repo/src/explain/occlusion.cc" "src/explain/CMakeFiles/vsd_explain.dir/occlusion.cc.o" "gcc" "src/explain/CMakeFiles/vsd_explain.dir/occlusion.cc.o.d"
  "/root/repo/src/explain/sobol.cc" "src/explain/CMakeFiles/vsd_explain.dir/sobol.cc.o" "gcc" "src/explain/CMakeFiles/vsd_explain.dir/sobol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/img/CMakeFiles/vsd_img.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
