file(REMOVE_RECURSE
  "CMakeFiles/vsd_data.dir/clip.cc.o"
  "CMakeFiles/vsd_data.dir/clip.cc.o.d"
  "CMakeFiles/vsd_data.dir/folds.cc.o"
  "CMakeFiles/vsd_data.dir/folds.cc.o.d"
  "CMakeFiles/vsd_data.dir/generator.cc.o"
  "CMakeFiles/vsd_data.dir/generator.cc.o.d"
  "CMakeFiles/vsd_data.dir/sample.cc.o"
  "CMakeFiles/vsd_data.dir/sample.cc.o.d"
  "libvsd_data.a"
  "libvsd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
