
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/clip.cc" "src/data/CMakeFiles/vsd_data.dir/clip.cc.o" "gcc" "src/data/CMakeFiles/vsd_data.dir/clip.cc.o.d"
  "/root/repo/src/data/folds.cc" "src/data/CMakeFiles/vsd_data.dir/folds.cc.o" "gcc" "src/data/CMakeFiles/vsd_data.dir/folds.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/vsd_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/vsd_data.dir/generator.cc.o.d"
  "/root/repo/src/data/sample.cc" "src/data/CMakeFiles/vsd_data.dir/sample.cc.o" "gcc" "src/data/CMakeFiles/vsd_data.dir/sample.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/face/CMakeFiles/vsd_face.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/img/CMakeFiles/vsd_img.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
