file(REMOVE_RECURSE
  "libvsd_data.a"
)
