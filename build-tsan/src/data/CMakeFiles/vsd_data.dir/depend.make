# Empty dependencies file for vsd_data.
# This may be replaced when dependencies are built.
