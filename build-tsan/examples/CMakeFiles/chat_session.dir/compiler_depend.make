# Empty compiler generated dependencies file for chat_session.
# This may be replaced when dependencies are built.
