file(REMOVE_RECURSE
  "CMakeFiles/chat_session.dir/chat_session.cpp.o"
  "CMakeFiles/chat_session.dir/chat_session.cpp.o.d"
  "chat_session"
  "chat_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
