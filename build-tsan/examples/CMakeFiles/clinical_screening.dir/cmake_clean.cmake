file(REMOVE_RECURSE
  "CMakeFiles/clinical_screening.dir/clinical_screening.cpp.o"
  "CMakeFiles/clinical_screening.dir/clinical_screening.cpp.o.d"
  "clinical_screening"
  "clinical_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
