# Empty compiler generated dependencies file for clinical_screening.
# This may be replaced when dependencies are built.
