# Empty compiler generated dependencies file for realtime_monitor.
# This may be replaced when dependencies are built.
