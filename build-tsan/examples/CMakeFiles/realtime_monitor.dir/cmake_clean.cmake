file(REMOVE_RECURSE
  "CMakeFiles/realtime_monitor.dir/realtime_monitor.cpp.o"
  "CMakeFiles/realtime_monitor.dir/realtime_monitor.cpp.o.d"
  "realtime_monitor"
  "realtime_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
