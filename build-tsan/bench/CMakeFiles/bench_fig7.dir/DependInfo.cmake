
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7.cc" "bench/CMakeFiles/bench_fig7.dir/bench_fig7.cc.o" "gcc" "bench/CMakeFiles/bench_fig7.dir/bench_fig7.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/bench/CMakeFiles/vsd_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/vsd_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cot/CMakeFiles/vsd_cot.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/vsd_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/explain/CMakeFiles/vsd_explain.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/vlm/CMakeFiles/vsd_vlm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/text/CMakeFiles/vsd_text.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/vsd_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/vsd_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/vsd_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/face/CMakeFiles/vsd_face.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/img/CMakeFiles/vsd_img.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
