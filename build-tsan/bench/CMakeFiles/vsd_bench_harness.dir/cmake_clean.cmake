file(REMOVE_RECURSE
  "CMakeFiles/vsd_bench_harness.dir/harness.cc.o"
  "CMakeFiles/vsd_bench_harness.dir/harness.cc.o.d"
  "libvsd_bench_harness.a"
  "libvsd_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsd_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
