# Empty dependencies file for vsd_bench_harness.
# This may be replaced when dependencies are built.
