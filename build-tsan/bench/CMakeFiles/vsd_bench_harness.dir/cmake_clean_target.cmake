file(REMOVE_RECURSE
  "libvsd_bench_harness.a"
)
