// The text ("prompt the model") interface: a scripted dialogue driving the
// model through the paper's instructions — I1 (describe), I2 (assess), I3
// (highlight), a reflection turn, a self-verification turn in a fresh
// session, and the chain-free direct prompt of the "w/o Chain" ablation.
//
// Build & run:   ./build/examples/chat_session
#include <cstdio>

#include "common/rng.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"
#include "text/instructions.h"

int main() {
  using namespace vsd;  // NOLINT(build/namespaces): example code

  std::printf("Training the model...\n");
  data::Dataset stress = data::MakeUvsdSimSmall(400, 4040);
  data::Dataset au_data = data::MakeDisfaSim(4041, 300);
  Rng rng(123);
  auto split = data::StratifiedHoldout(stress, 0.2, &rng);
  data::Dataset train = stress.Subset(split.train);
  data::Dataset test = stress.Subset(split.test);

  core::StressDetector::Options options;
  options.seed = 21;
  core::StressDetector detector(options);
  detector.Train(au_data, train, &rng);
  detector.PrecomputeFeatures(test);
  const auto& model = detector.model();

  const data::VideoSample& video = test.samples[0];
  Rng chat_rng(7);
  auto say = [&](const std::string& instruction, const std::string& context,
                 const std::vector<const data::VideoSample*>& videos) {
    std::printf("\n>>> USER: %s\n", instruction.c_str());
    auto reply = model.Chat(videos, instruction, context, 0.5, &chat_rng);
    std::printf("<<< MODEL: %s\n",
                reply.ok() ? reply.value().c_str()
                           : reply.status().ToString().c_str());
    return reply.ok() ? reply.value() : std::string();
  };

  std::printf("\n===== Chain-of-thought session (video %d, truth: %s) =====\n",
              video.id, video.stress_label == 1 ? "stressed" : "unstressed");
  // I1 -> I2 -> I3, context accumulating like a dialogue history.
  const std::string description =
      say(text::DescribeInstruction(), "", {&video});
  const std::string assessment =
      say(text::AssessInstruction(), description, {&video});
  say(text::HighlightInstruction(), description + "\n" + assessment,
      {&video});

  // Reflection (Fig. 3): with the ground-truth outcome revealed.
  say(text::ReflectDescribeInstruction(description, video.stress_label), "",
      {&video});

  // Self-verification (Fig. 4): a *fresh* session — no dialogue history —
  // must pick which of four videos the description refers to.
  std::vector<const data::VideoSample*> lineup = {
      &test.samples[1], &video, &test.samples[2], &test.samples[3]};
  std::printf("\n(The described video is option 2.)\n");
  say(text::VerifyDescribeInstruction(description, 4), "", lineup);

  // The "w/o Chain" direct prompt.
  say(text::DirectAssessInstruction(), "", {&video});
  return 0;
}
