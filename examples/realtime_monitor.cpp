// Real-time monitoring scenario: a stress monitor watches a continuous
// "video feed" of a subject whose state drifts from calm to stressed and
// back. Each window of frames is reduced to the (most, least) expressive
// pair and run through the chain; the monitor reports detection latency
// relative to the true onset and prints the rationale at the moment of
// the first alarm — the always-on use-case the paper's introduction
// motivates (surveillance / wellbeing monitoring).
//
// Build & run:   ./build/examples/realtime_monitor
#include <cstdio>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"
#include "face/renderer.h"

namespace {

using namespace vsd;  // NOLINT(build/namespaces): example code

/// One synthetic "window" of the stream: the subject's AU state at time t,
/// rendered into an expressive/neutral frame pair.
data::VideoSample WindowAt(int t, double stress_level,
                           const face::Identity& identity, Rng* rng) {
  // Class-conditional AU profile interpolated by the latent stress level.
  face::FaceParams params;
  params.identity = identity;
  params.noise_stddev = 0.035f;
  params.lighting = static_cast<float>(rng->Uniform(0.9, 1.1));
  for (int j = 0; j < face::kNumAus; ++j) {
    const double p_on =
        data::AuActivationProbability(j, true, 1.0) * stress_level +
        data::AuActivationProbability(j, false, 1.0) * (1.0 - stress_level);
    params.au_intensity[j] =
        rng->Bernoulli(p_on)
            ? static_cast<float>(vsd::Clamp(rng->Normal(0.65, 0.15), 0.3,
                                            1.0))
            : static_cast<float>(vsd::Clamp(rng->Normal(0.05, 0.05), 0.0,
                                            0.25));
  }
  data::VideoSample sample;
  sample.id = 1000000 + t;  // distinct from the training ids
  sample.subject_id = 9999;
  sample.render_params = params;
  sample.expressive_frame = face::RenderFace(params, rng);
  sample.neutral_params = params.WithExpressiveness(0.15f);
  sample.neutral_frame = face::RenderFace(sample.neutral_params, rng);
  sample.stress_label = stress_level >= 0.5 ? 1 : 0;
  return sample;
}

}  // namespace

int main() {
  std::printf("Training the monitor's detector...\n");
  data::Dataset stress = data::MakeUvsdSimSmall(450, 6001);
  data::Dataset au_data = data::MakeDisfaSim(6002, 300);
  Rng rng(31);
  auto split = data::StratifiedHoldout(stress, 0.2, &rng);
  core::StressDetector::Options options;
  options.seed = 17;
  core::StressDetector detector(options);
  detector.Train(au_data, stress.Subset(split.train), &rng);

  // The stream: calm (t<20), stress episode (20..44), recovery (45..).
  const face::Identity subject = face::Identity::Sample(&rng);
  const int kSteps = 60;
  const int kOnset = 20;
  const int kOffset = 45;
  int first_alarm = -1;
  int cleared_at = -1;
  // Simple 3-window majority debounce so single-frame noise does not trip
  // the alarm.
  int votes = 0;
  std::printf("\n t | p(stressed) | state\n");
  for (int t = 0; t < kSteps; ++t) {
    const double level = (t >= kOnset && t < kOffset) ? 0.95 : 0.05;
    data::VideoSample window = WindowAt(t, level, subject, &rng);
    const double p = detector.PredictProbStressed(window);
    votes = std::min(3, std::max(0, votes + (p >= 0.5 ? 1 : -1)));
    const bool alarmed = votes >= 2;
    if (alarmed && first_alarm < 0 && t >= kOnset) {
      first_alarm = t;
      std::printf("%2d |    %.2f     | *** ALARM raised ***\n", t, p);
      std::printf("---- rationale at alarm ----\n%s----\n",
                  detector.Explain(window).c_str());
      continue;
    }
    if (!alarmed && first_alarm >= 0 && cleared_at < 0 && t >= kOffset) {
      cleared_at = t;
      std::printf("%2d |    %.2f     | alarm cleared\n", t, p);
      continue;
    }
    if (t % 5 == 0) {
      std::printf("%2d |    %.2f     | %s\n", t, p,
                  alarmed ? "alarmed" : "calm");
    }
  }
  if (first_alarm >= 0) {
    std::printf("\nDetection latency: %d windows after onset (t=%d).\n",
                first_alarm - kOnset, kOnset);
  } else {
    std::printf("\nNo alarm raised — episode missed.\n");
  }
  if (cleared_at >= 0) {
    std::printf("Recovery latency: %d windows after offset (t=%d).\n",
                cleared_at - kOffset, kOffset);
  }
  return 0;
}
