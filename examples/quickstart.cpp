// Quickstart: train the interpretable stress detector on a small UVSD-sim
// subset and inspect a prediction with its chain-of-thought transcript.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/evaluation.h"
#include "core/metrics.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"

int main() {
  using namespace vsd;  // NOLINT(build/namespaces): example code

  // 1. Data: a small UVSD-like stress dataset and an AU-annotated
  //    DISFA+-like dataset for the Describe step.
  std::printf("Generating datasets...\n");
  data::Dataset stress = data::MakeUvsdSimSmall(/*num_samples=*/400);
  data::Dataset au_data = data::MakeDisfaSim(/*seed=*/11, /*num_samples=*/250);
  Rng rng(123);
  data::Split split = data::StratifiedHoldout(stress, /*test_fraction=*/0.25,
                                              &rng);
  data::Dataset train = stress.Subset(split.train);
  data::Dataset test = stress.Subset(split.test);
  std::printf("  train=%d test=%d stressed(train)=%d\n", train.size(),
              test.size(), train.CountLabel(data::kStressed));

  // 2. Train the detector (generalist pretrain + Algorithm 1).
  std::printf("Training (pretrain + describe tuning + self-refine DPO)...\n");
  core::StressDetector::Options options;
  options.seed = 42;
  core::StressDetector detector(options);
  const cot::TrainReport report = detector.Train(au_data, train, &rng);
  std::printf("  refined descriptions: %d, DPO pairs: describe=%d"
              " rationale=%d\n",
              report.refined_descriptions, report.describe_dpo_pairs,
              report.rationale_dpo_pairs);

  // 3. Evaluate.
  detector.PrecomputeFeatures(test);
  const core::Metrics metrics =
      core::EvaluatePipeline(detector.pipeline(), test);
  std::printf("Test metrics: acc=%.2f%% prec=%.2f%% rec=%.2f%% f1=%.2f%%\n",
              100 * metrics.accuracy, 100 * metrics.precision,
              100 * metrics.recall, 100 * metrics.f1);

  // 4. Interpret one stressed sample: full Describe->Assess->Highlight
  //    transcript.
  for (const auto& sample : test.samples) {
    if (sample.stress_label != data::kStressed) continue;
    std::printf("\n--- Sample %d (subject %d, ground truth: stressed) ---\n",
                sample.id, sample.subject_id);
    std::printf("%s\n", detector.Explain(sample).c_str());
    break;
  }
  return 0;
}
