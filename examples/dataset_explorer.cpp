// Dataset explorer: prints the statistics that define the simulated
// UVSD / RSL / DISFA+ datasets (the paper's Sec. IV-A), shows
// class-conditional AU activation rates, renders sample faces as ASCII,
// and exports a contact sheet of PGM images for visual inspection.
//
// Build & run:   ./build/examples/dataset_explorer [out_dir]
#include <cstdio>
#include <string>

#include "common/table.h"
#include "data/generator.h"
#include "face/au.h"
#include "img/pgm.h"

int main(int argc, char** argv) {
  using namespace vsd;  // NOLINT(build/namespaces): example code
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  std::printf("Generating datasets (full paper sizes)...\n");
  const data::Dataset uvsd = data::MakeUvsdSim();
  const data::Dataset rsl = data::MakeRslSim();
  const data::Dataset disfa = data::MakeDisfaSim();

  // ---- Cardinalities (paper Sec. IV-A). ----
  Table sizes({"Dataset", "Samples", "Subjects", "Stressed", "Unstressed"});
  for (const auto* d : {&uvsd, &rsl}) {
    sizes.AddRow({d->name, std::to_string(d->size()),
                  std::to_string(d->CountSubjects()),
                  std::to_string(d->CountLabel(data::kStressed)),
                  std::to_string(d->CountLabel(data::kUnstressed))});
  }
  sizes.AddRow({disfa.name, std::to_string(disfa.size()),
                std::to_string(disfa.CountSubjects()), "-", "-"});
  std::printf("\n%s\n", sizes.ToString().c_str());

  // ---- Class-conditional AU activation rates on UVSD. ----
  Table rates({"AU", "Name", "P(active | stressed)",
               "P(active | unstressed)"});
  for (int j = 0; j < face::kNumAus; ++j) {
    int s_active = 0, s_n = 0, u_active = 0, u_n = 0;
    for (const auto& sample : uvsd.samples) {
      if (sample.stress_label == data::kStressed) {
        ++s_n;
        s_active += sample.au_label[j];
      } else {
        ++u_n;
        u_active += sample.au_label[j];
      }
    }
    const auto& au = face::GetAu(j);
    char s_buf[16], u_buf[16];
    std::snprintf(s_buf, sizeof(s_buf), "%.2f",
                  static_cast<double>(s_active) / s_n);
    std::snprintf(u_buf, sizeof(u_buf), "%.2f",
                  static_cast<double>(u_active) / u_n);
    rates.AddRow({"AU" + std::to_string(au.facs_number), au.name, s_buf,
                  u_buf});
  }
  std::printf("UVSD-sim class-conditional AU activation rates:\n%s\n",
              rates.ToString().c_str());

  // ---- Show one stressed and one unstressed face. ----
  const data::VideoSample* stressed = nullptr;
  const data::VideoSample* unstressed = nullptr;
  for (const auto& sample : uvsd.samples) {
    if (sample.stress_label == data::kStressed && !stressed) {
      stressed = &sample;
    }
    if (sample.stress_label == data::kUnstressed && !unstressed) {
      unstressed = &sample;
    }
    if (stressed && unstressed) break;
  }
  std::printf("A stressed subject (AUs: %s):\n%s\n",
              face::AuMaskToString(stressed->au_label).c_str(),
              stressed->expressive_frame.ToAscii().c_str());
  std::printf("An unstressed subject (AUs: %s):\n%s\n",
              face::AuMaskToString(unstressed->au_label).c_str(),
              unstressed->expressive_frame.ToAscii().c_str());

  // ---- Export PGM contact sheet. ----
  int exported = 0;
  for (int i = 0; i < 6 && i < uvsd.size(); ++i) {
    const auto& sample = uvsd.samples[i];
    const std::string base = out_dir + "/uvsd_" + std::to_string(sample.id);
    if (img::WritePgm(sample.expressive_frame, base + "_expressive.pgm")
            .ok() &&
        img::WritePgm(sample.neutral_frame, base + "_neutral.pgm").ok()) {
      exported += 2;
    }
  }
  std::printf("Exported %d PGM frames to %s/\n", exported, out_dir.c_str());
  return 0;
}
