// Clinical screening scenario: a wellbeing service screens a day's worth
// of consultation videos, ranks subjects by stress probability, and
// attaches the chain-of-thought rationale to every flagged case so a
// clinician can audit the decision — the interpretability use-case that
// motivates the paper.
//
// Build & run:   ./build/examples/clinical_screening
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"

namespace {

struct ScreeningRecord {
  int subject_id;
  int sample_id;
  double stress_probability;
  std::string rationale;
  int ground_truth;
};

}  // namespace

int main() {
  using namespace vsd;  // NOLINT(build/namespaces): example code

  // Historical annotated data to train the screening model.
  std::printf("Preparing training data and model...\n");
  data::Dataset history = data::MakeUvsdSimSmall(500, 2024);
  data::Dataset au_data = data::MakeDisfaSim(2025, 300);
  Rng rng(99);
  auto split = data::StratifiedHoldout(history, 0.2, &rng);
  data::Dataset train = history.Subset(split.train);
  // Today's intake: the held-out subjects.
  data::Dataset intake = history.Subset(split.test);

  core::StressDetector::Options options;
  options.seed = 77;
  core::StressDetector detector(options);
  detector.Train(au_data, train, &rng);
  detector.PrecomputeFeatures(intake);

  // Screen the intake queue.
  std::printf("Screening %d intake videos...\n", intake.size());
  std::vector<ScreeningRecord> records;
  for (const auto& sample : intake.samples) {
    const auto output = detector.Analyze(sample);
    ScreeningRecord record;
    record.subject_id = sample.subject_id;
    record.sample_id = sample.id;
    record.stress_probability = output.assess.prob_stressed;
    record.rationale = output.highlight.text;
    record.ground_truth = sample.stress_label;
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const ScreeningRecord& a, const ScreeningRecord& b) {
              return a.stress_probability > b.stress_probability;
            });

  // Clinician-facing report: top flagged cases with auditable rationale.
  std::printf("\n===== Priority screening report (top 5 of %zu) =====\n",
              records.size());
  const int top = std::min<size_t>(5, records.size());
  for (int i = 0; i < top; ++i) {
    const auto& record = records[i];
    std::printf(
        "\n#%d subject %03d (video %04d)  p(stressed)=%.2f  [truth: %s]\n",
        i + 1, record.subject_id, record.sample_id,
        record.stress_probability,
        record.ground_truth == 1 ? "stressed" : "unstressed");
    std::printf("%s", record.rationale.c_str());
  }

  // Screening quality summary at the triage threshold.
  int flagged = 0;
  int flagged_correct = 0;
  int missed = 0;
  for (const auto& record : records) {
    if (record.stress_probability >= 0.5) {
      ++flagged;
      flagged_correct += (record.ground_truth == 1);
    } else if (record.ground_truth == 1) {
      ++missed;
    }
  }
  std::printf("\nFlagged %d cases (%d correct); missed %d stressed"
              " subjects.\n",
              flagged, flagged_correct, missed);
  return 0;
}
