// Explainer comparison on one sample: our self-explained rationale vs the
// post-hoc explainers (LIME / SHAP / SOBOL / occlusion), with per-method
// wall-clock cost and an ASCII saliency sketch — a miniature of the
// paper's Table II + Figure 6 story.
//
// Build & run:   ./build/examples/explainer_comparison
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "core/stress_detector.h"
#include "data/folds.h"
#include "data/generator.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/occlusion.h"
#include "explain/sobol.h"
#include "img/slic.h"

namespace {

using namespace vsd;  // NOLINT(build/namespaces): example code

/// Renders top-3 segments of an attribution as an ASCII overlay.
void PrintSaliency(const img::Image& image, const img::Segmentation& seg,
                   const std::vector<int>& top) {
  const int rows = 20;
  const int cols = 40;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int y = r * image.height() / rows;
      const int x = c * image.width() / cols;
      const int label = seg.LabelAt(y, x);
      char mark = " .:-=+*#%@"[std::min(
          9, static_cast<int>(image.at(y, x) * 9.99f))];
      for (size_t k = 0; k < top.size(); ++k) {
        if (label == top[k]) mark = static_cast<char>('1' + k);
      }
      std::putchar(mark);
    }
    std::putchar('\n');
  }
}

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::printf("Training a detector on a small UVSD-sim subset...\n");
  data::Dataset stress = data::MakeUvsdSimSmall(400, 3030);
  data::Dataset au_data = data::MakeDisfaSim(3031, 300);
  Rng rng(55);
  auto split = data::StratifiedHoldout(stress, 0.2, &rng);
  data::Dataset train = stress.Subset(split.train);
  data::Dataset test = stress.Subset(split.test);

  core::StressDetector::Options options;
  options.seed = 11;
  core::StressDetector detector(options);
  detector.Train(au_data, train, &rng);
  detector.PrecomputeFeatures(test);

  // Pick a stressed test sample.
  const data::VideoSample* sample = nullptr;
  for (const auto& s : test.samples) {
    if (s.stress_label == data::kStressed) {
      sample = &s;
      break;
    }
  }
  if (sample == nullptr) sample = &test.samples[0];

  const auto output = detector.Analyze(*sample);
  std::printf("\nModel chain output:\n%s\n", output.Transcript().c_str());

  // Segment the expressive frame (paper protocol: 64 SLIC segments).
  img::Segmentation seg = img::Slic(sample->expressive_frame, 64);
  const auto& model = detector.model();
  face::AuMask description = output.describe.mask;
  auto classifier = [&](const img::Image& frame) {
    return model.AssessProbStressedWithFrames(frame, sample->neutral_frame,
                                              description);
  };

  // Our rationale mapped to segments (free: already generated above).
  std::vector<int> ours_segments;
  {
    std::vector<bool> used(seg.num_segments, false);
    for (int au : output.highlight.ranked_aus) {
      const auto region = face::RegionMask(face::GetAu(au).region);
      int best = -1;
      int best_overlap = 0;
      for (int s = 0; s < seg.num_segments; ++s) {
        if (used[s]) continue;
        int overlap = 0;
        for (int y = 0; y < seg.height; ++y) {
          for (int x = 0; x < seg.width; ++x) {
            if (seg.LabelAt(y, x) == s && region[y * seg.width + x]) {
              ++overlap;
            }
          }
        }
        if (overlap > best_overlap) {
          best_overlap = overlap;
          best = s;
        }
      }
      if (best >= 0) {
        used[best] = true;
        ours_segments.push_back(best);
      }
    }
  }
  std::printf("Ours (self-explained, ~3 model calls) top segments:\n");
  PrintSaliency(sample->expressive_frame, seg, ours_segments);

  // Post-hoc explainers.
  struct Entry {
    const char* name;
    std::unique_ptr<explain::Explainer> explainer;
  };
  std::vector<Entry> entries;
  entries.push_back({"LIME (1000 evals)",
                     std::make_unique<explain::LimeExplainer>(1000)});
  entries.push_back({"SHAP (1000 evals)",
                     std::make_unique<explain::KernelShapExplainer>(1000)});
  entries.push_back(
      {"SOBOL", std::make_unique<explain::SobolExplainer>(15)});
  entries.push_back(
      {"Occlusion", std::make_unique<explain::OcclusionExplainer>()});
  for (const auto& entry : entries) {
    Rng explain_rng(7);
    const auto start = std::chrono::steady_clock::now();
    const auto attribution = entry.explainer->Explain(
        classifier, sample->expressive_frame, seg, &explain_rng);
    const double seconds = Seconds(start);
    auto ranked = attribution.RankedSegments();
    ranked.resize(3);
    std::printf("\n%s: %.2fs, %lld model evaluations, top segments:\n",
                entry.name, seconds,
                static_cast<long long>(attribution.model_evaluations));
    PrintSaliency(sample->expressive_frame, seg, ranked);
  }
  return 0;
}
