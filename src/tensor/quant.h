#ifndef VSD_TENSOR_QUANT_H_
#define VSD_TENSOR_QUANT_H_

#include <cstdint>

namespace vsd::tensor {

// ---- Per-row int8 quantization primitives ----
//
// Weight matrices are quantized one row at a time with an asymmetric
// affine map: real = scale * (q - zero_point), q in [-128, 127]. Rows are
// the MatMul reduction dimension (a [K,N] weight quantizes per k-row), so
// the int8 MatMul kernel can dequantize inline while preserving the fixed
// k-order accumulation contract. Each row is a pure function of its own
// values — quantization is deterministic at every thread count.

struct RowQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

/// Quantizes `n` floats into `q` (int8) and returns the row's parameters.
/// The range is widened to include 0 so the zero-point is exactly
/// representable; degenerate all-constant rows get scale 1. Every input
/// satisfies |x - Dequantize(Quantize(x))| <= scale / 2 (up to one float
/// rounding of the scale computation).
RowQuant QuantizeRowInt8(const float* x, int n, int8_t* q);

/// Reconstructs `n` floats from a quantized row: out[i] =
/// scale * (q[i] - zero_point), computed in exactly the op order the int8
/// MatMul kernel uses inline, so dequantize-then-MatMul is bit-identical
/// to the fused int8 MatMul.
void DequantizeRowInt8(const int8_t* q, int n, float scale,
                       int32_t zero_point, float* out);

}  // namespace vsd::tensor

#endif  // VSD_TENSOR_QUANT_H_
