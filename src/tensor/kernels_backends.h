#ifndef VSD_TENSOR_KERNELS_BACKENDS_H_
#define VSD_TENSOR_KERNELS_BACKENDS_H_

#include <cstdint>

namespace vsd::tensor::kernels {

// ---- Backend implementations (internal) ----
//
// Declarations shared between the backend translation units and the
// registry, which wires them into the dispatch table. Callers outside
// src/tensor/ go through the dispatchers in tensor/kernels.h; these
// symbols are not part of the public kernel API.
//
// Both backends are compiled with -ffp-contract=off (see
// src/tensor/CMakeLists.txt): the bit-identity contract requires every
// multiply-accumulate to round the product and the sum separately, and a
// build with FMA enabled (-mfma / -march=native) must not contract one
// backend differently from the other.

namespace scalar {

void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n);
void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n);
void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols);
void ReluInto(const float* x, float* out, int n);
void TanhInto(const float* x, float* out, int n);
void SigmoidInto(const float* x, float* out, int n);
void GeluInto(const float* x, float* out, int n);
void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db);
void Im2ColInto(const float* x, float* out, int n, int h, int w, int c,
                int kh, int kw, int stride, int pad);

}  // namespace scalar

namespace simd {

/// False when the translation unit was built without vector-extension
/// support; the registry then leaves the simd slots empty and dispatch
/// falls back to scalar.
bool Available();

void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n);
void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n);
void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols);
void ReluInto(const float* x, float* out, int n);
void GeluInto(const float* x, float* out, int n);
void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db);
// Tanh/Sigmoid/Im2Col have no vector variant: the transcendental maps
// must call the exact same libm function per element to stay
// bit-identical, and im2col is a pure copy/scatter already bounded by
// memory. The registry registers the scalar functions under the simd key.

}  // namespace simd

}  // namespace vsd::tensor::kernels

#endif  // VSD_TENSOR_KERNELS_BACKENDS_H_
