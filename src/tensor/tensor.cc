#include "tensor/tensor.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace vsd::tensor {
namespace {

int ShapeProduct(const std::vector<int>& shape) {
  int n = 1;
  for (int d : shape) {
    VSD_CHECK(d >= 0) << "negative dimension " << d;
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor() : data_(std::make_shared<std::vector<float>>()) {}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      size_(ShapeProduct(shape_)),
      data_(std::make_shared<std::vector<float>>(size_, 0.0f)) {}

Tensor Tensor::Zeros(std::vector<int> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int> shape,
                          std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = ShapeProduct(t.shape_);
  VSD_CHECK(static_cast<int>(values.size()) == t.size_)
      << "FromVector: " << values.size() << " values for size " << t.size_;
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.size_; ++i) {
    t.data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Uniform(std::vector<int> shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.size_; ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

int Tensor::dim(int i) const {
  VSD_CHECK(i >= 0 && i < ndim()) << "dim index " << i;
  return shape_[i];
}

float* Tensor::data() {
  VSD_CHECK(dtype_ == DType::kF32) << "data() on int8 tensor";
  return data_->data();
}
const float* Tensor::data() const {
  VSD_CHECK(dtype_ == DType::kF32) << "data() on int8 tensor";
  return data_->data();
}

const int8_t* Tensor::qdata() const {
  VSD_CHECK(dtype_ == DType::kI8) << "qdata() on fp32 tensor";
  return qstore_->q.data();
}
const float* Tensor::qscale() const {
  VSD_CHECK(dtype_ == DType::kI8) << "qscale() on fp32 tensor";
  return qstore_->scale.data();
}
const int32_t* Tensor::qzero() const {
  VSD_CHECK(dtype_ == DType::kI8) << "qzero() on fp32 tensor";
  return qstore_->zero.data();
}

Tensor Tensor::QuantizeInt8() const {
  VSD_CHECK(dtype_ == DType::kF32) << "QuantizeInt8 on int8 tensor";
  VSD_CHECK(ndim() == 2) << "QuantizeInt8 requires 2-D, got rank " << ndim();
  const int rows = shape_[0];
  const int cols = shape_[1];
  VSD_CHECK(rows == 0 || cols > 0) << "QuantizeInt8 on zero-width rows";
  auto store = std::make_shared<QuantStorage>();
  store->q.resize(static_cast<size_t>(size_));
  store->scale.resize(static_cast<size_t>(rows));
  store->zero.resize(static_cast<size_t>(rows));
  const float* src = data_->data();
  // Rows quantize independently, so the split across workers cannot
  // change the result — quantization is deterministic per VSD_THREADS.
  ParallelFor(rows, [&](int64_t r) {
    const RowQuant params = QuantizeRowInt8(
        src + r * cols, cols, store->q.data() + r * cols);
    store->scale[static_cast<size_t>(r)] = params.scale;
    store->zero[static_cast<size_t>(r)] = params.zero_point;
  });
  Tensor t;
  t.shape_ = shape_;
  t.size_ = size_;
  t.dtype_ = DType::kI8;
  t.qstore_ = std::move(store);
  return t;
}

Tensor Tensor::DequantizeF32() const {
  VSD_CHECK(dtype_ == DType::kI8) << "DequantizeF32 on fp32 tensor";
  const int rows = shape_[0];
  const int cols = shape_[1];
  Tensor out(shape_);
  float* dst = out.data();
  for (int r = 0; r < rows; ++r) {
    DequantizeRowInt8(qstore_->q.data() + static_cast<size_t>(r) * cols,
                      cols, qstore_->scale[static_cast<size_t>(r)],
                      qstore_->zero[static_cast<size_t>(r)],
                      dst + static_cast<size_t>(r) * cols);
  }
  return out;
}

float& Tensor::at(int i) { return (*data_)[i]; }
float Tensor::at(int i) const { return (*data_)[i]; }

float& Tensor::at(int i, int j) { return (*data_)[i * shape_[1] + j]; }
float Tensor::at(int i, int j) const { return (*data_)[i * shape_[1] + j]; }

float& Tensor::at4(int n, int c, int h, int w) {
  return (*data_)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}
float Tensor::at4(int n, int c, int h, int w) const {
  return (*data_)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.size_ = size_;
  t.dtype_ = dtype_;
  if (dtype_ == DType::kI8) {
    t.qstore_ = std::make_shared<const QuantStorage>(*qstore_);
  } else {
    t.data_ = std::make_shared<std::vector<float>>(*data_);
  }
  return t;
}

Tensor Tensor::Reshape(std::vector<int> shape) const {
  VSD_CHECK(dtype_ == DType::kF32) << "Reshape on int8 tensor";
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = ShapeProduct(t.shape_);
  VSD_CHECK(t.size_ == size_) << "Reshape size mismatch";
  t.data_ = data_;
  return t;
}

Tensor Tensor::Row(int row) const {
  VSD_CHECK(ndim() == 2) << "Row requires 2-D";
  VSD_CHECK(row >= 0 && row < shape_[0]) << "row " << row;
  const int d = shape_[1];
  Tensor out({d});
  for (int j = 0; j < d; ++j) out.at(j) = at(row, j);
  return out;
}

void Tensor::Fill(float value) {
  for (auto& x : *data_) x = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  VSD_CHECK(SameShape(*this, other)) << "AddInPlace shape mismatch";
  for (int i = 0; i < size_; ++i) (*data_)[i] += other.at(i);
}

void Tensor::ScaleInPlace(float s) {
  for (auto& x : *data_) x *= s;
}

std::vector<float> Tensor::ToVector() const { return *data_; }

std::string Tensor::ToString() const {
  std::string out = "Tensor[";
  for (int i = 0; i < ndim(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(shape_[i]);
  }
  out += "]{";
  const int show = std::min(size_, 8);
  char buf[32];
  for (int i = 0; i < show; ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.4g", at(i));
    out += buf;
  }
  if (size_ > show) out += ", ...";
  out += "}";
  return out;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

namespace {

enum class BroadcastKind { kSame, kScalarB, kRowB, kInvalid };

BroadcastKind ClassifyBroadcast(const Tensor& a, const Tensor& b) {
  if (SameShape(a, b)) return BroadcastKind::kSame;
  if (b.size() == 1) return BroadcastKind::kScalarB;
  if (a.ndim() == 2 && b.ndim() == 1 && b.dim(0) == a.dim(1)) {
    return BroadcastKind::kRowB;
  }
  if (a.ndim() == 2 && b.ndim() == 2 && b.dim(0) == 1 &&
      b.dim(1) == a.dim(1)) {
    return BroadcastKind::kRowB;
  }
  return BroadcastKind::kInvalid;
}

template <typename Op>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Op op, const char* name) {
  const BroadcastKind kind = ClassifyBroadcast(a, b);
  VSD_CHECK(kind != BroadcastKind::kInvalid) << name << " shape mismatch";
  Tensor out(a.shape());
  switch (kind) {
    case BroadcastKind::kSame:
      for (int i = 0; i < a.size(); ++i) out.at(i) = op(a.at(i), b.at(i));
      break;
    case BroadcastKind::kScalarB: {
      const float s = b.at(0);
      for (int i = 0; i < a.size(); ++i) out.at(i) = op(a.at(i), s);
      break;
    }
    case BroadcastKind::kRowB: {
      const int n = a.dim(0);
      const int d = a.dim(1);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < d; ++j) {
          out.at(i * d + j) = op(a.at(i * d + j), b.at(j));
        }
      }
      break;
    }
    case BroadcastKind::kInvalid:
      break;
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  // Row-broadcast adds go through the shared kernel so the eager path and
  // the compiled graph executor run the same compiled loop (bit-identity).
  if (ClassifyBroadcast(a, b) == BroadcastKind::kRowB) {
    Tensor out(a.shape());
    kernels::AddRowsInto(a.data(), b.data(), out.data(), a.dim(0),
                         a.dim(1));
    return out;
  }
  return BinaryOp(a, b, [](float x, float y) { return x + y; }, "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x - y; }, "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x * y; }, "Mul");
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a.Clone();
  out.ScaleInPlace(s);
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  VSD_CHECK(a.ndim() == 2 && b.ndim() == 2) << "MatMul requires 2-D";
  VSD_CHECK(a.dim(1) == b.dim(0)) << "MatMul inner dim mismatch";
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  Tensor out({m, n});
  if (b.dtype() == DType::kI8) {
    kernels::MatMulI8Into(a.data(), b.qdata(), b.qscale(), b.qzero(),
                          out.data(), m, k, n);
  } else {
    kernels::MatMulInto(a.data(), b.data(), out.data(), m, k, n);
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  VSD_CHECK(a.ndim() == 2) << "Transpose requires 2-D";
  const int m = a.dim(0);
  const int n = a.dim(1);
  Tensor out({n, m});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

float Sum(const Tensor& a) {
  double s = 0.0;
  for (int i = 0; i < a.size(); ++i) s += a.at(i);
  return static_cast<float>(s);
}

float Mean(const Tensor& a) {
  if (a.size() == 0) return 0.0f;
  return Sum(a) / static_cast<float>(a.size());
}

namespace {
template <typename Op>
Tensor UnaryOp(const Tensor& a, Op op) {
  Tensor out(a.shape());
  for (int i = 0; i < a.size(); ++i) out.at(i) = op(a.at(i));
  return out;
}
}  // namespace

Tensor Relu(const Tensor& a) {
  Tensor out(a.shape());
  kernels::ReluInto(a.data(), out.data(), a.size());
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out(a.shape());
  kernels::TanhInto(a.data(), out.data(), a.size());
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out(a.shape());
  kernels::SigmoidInto(a.data(), out.data(), a.size());
  return out;
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}

Tensor SoftmaxRows(const Tensor& a) {
  VSD_CHECK(a.ndim() == 2) << "SoftmaxRows requires 2-D";
  const int n = a.dim(0);
  const int d = a.dim(1);
  Tensor out(a.shape());
  for (int i = 0; i < n; ++i) {
    float m = a.at(i, 0);
    for (int j = 1; j < d; ++j) m = std::max(m, a.at(i, j));
    float sum = 0.0f;
    for (int j = 0; j < d; ++j) {
      const float e = std::exp(a.at(i, j) - m);
      out.at(i, j) = e;
      sum += e;
    }
    for (int j = 0; j < d; ++j) out.at(i, j) /= sum;
  }
  return out;
}

std::vector<int> ArgMaxRows(const Tensor& a) {
  VSD_CHECK(a.ndim() == 2) << "ArgMaxRows requires 2-D";
  const int n = a.dim(0);
  const int d = a.dim(1);
  std::vector<int> out(n, 0);
  for (int i = 0; i < n; ++i) {
    float best = a.at(i, 0);
    for (int j = 1; j < d; ++j) {
      if (a.at(i, j) > best) {
        best = a.at(i, j);
        out[i] = j;
      }
    }
  }
  return out;
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  VSD_CHECK(!rows.empty()) << "StackRows: empty input";
  const int d = rows[0].size();
  Tensor out({static_cast<int>(rows.size()), d});
  for (size_t i = 0; i < rows.size(); ++i) {
    VSD_CHECK(rows[i].size() == d) << "StackRows: ragged rows";
    for (int j = 0; j < d; ++j) {
      out.at(static_cast<int>(i), j) = rows[i].at(j);
    }
  }
  return out;
}

}  // namespace vsd::tensor
