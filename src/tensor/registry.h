#ifndef VSD_TENSOR_REGISTRY_H_
#define VSD_TENSOR_REGISTRY_H_

#include <cstdint>

#include "tensor/dtype.h"

namespace vsd::tensor::kernels {

// ---- Kernel registry: (OpKind, DType, Backend) -> implementation ----
//
// The public kernel entry points in tensor/kernels.h are thin dispatchers
// over this table, so the eager tensor/autograd path and the compiled
// graph executor still share a single dispatch site per op (the
// single-compiled-instance bit-identity contract). The table is a fixed
// 3-D array resolved by plain indexing — dispatch performs no heap
// allocation and is safe inside GraphExecutor::Execute's zero-allocation
// contract.
//
// Backends must be bit-identical to scalar for fp32 (docs/INTERNALS.md
// "Kernel registry, dtypes & backends" states the rules); scalar is the
// always-registered reference, and Resolve falls back to it when a
// (op, dtype, backend) entry is absent.

/// Op vocabulary of the kernel layer. Mirrors the compute ops of
/// nn::graph::OpKind minus the structural ones (Input/Weight/Reshape),
/// which have no kernel.
enum class OpKind {
  kMatMul = 0,
  kAddRows,
  kRelu,
  kTanh,
  kSigmoid,
  kGelu,
  kConcatRows,
  kIm2Col,
};

inline constexpr int kNumOps = 8;

enum class Backend {
  kScalar = 0,  ///< Reference implementation; always registered.
  kSimd = 1,    ///< Vectorized fp32 / int8 variants; bit-identical to scalar.
};

inline constexpr int kNumBackends = 2;

constexpr const char* BackendName(Backend backend) {
  return backend == Backend::kSimd ? "simd" : "scalar";
}

/// True when the vectorized backend was compiled in (GCC/Clang vector
/// extensions; lowered to whatever SIMD ISA the build targets, or scalar
/// code on targets without one — the "portable vector path").
bool SimdCompiled();

/// The backend the dispatchers use: a SetBackend override wins, else the
/// VSD_BACKEND environment variable ("scalar" | "simd"), else kSimd when
/// compiled in (safe because fp32 SIMD is bit-identical to scalar).
Backend ActiveBackend();

/// Runtime override of VSD_BACKEND (tests, benches). Requesting kSimd
/// when it is not compiled in falls back to scalar at dispatch time.
void SetBackend(Backend backend);

/// Drops the SetBackend override, returning control to the environment.
void ClearBackendOverride();

// ---- Kernel signatures ----

using MatMulF32Fn = void (*)(const float* a, const float* b, float* out,
                             int m, int k, int n);
/// Int8 row-quantized weight MatMul: b is [K,N] int8 with per-k-row
/// scale/zero_point; accumulation is fp32 in the same fixed k-order as the
/// fp32 kernel.
using MatMulI8Fn = void (*)(const float* a, const int8_t* bq,
                            const float* bscale, const int32_t* bzero,
                            float* out, int m, int k, int n);
using AddRowsFn = void (*)(const float* a, const float* bias, float* out,
                           int rows, int cols);
using MapFn = void (*)(const float* x, float* out, int n);
using ConcatRowsFn = void (*)(const float* a, const float* b, float* out,
                              int rows, int da, int db);
using Im2ColFn = void (*)(const float* x, float* out, int n, int h, int w,
                          int c, int kh, int kw, int stride, int pad);

/// Generic function-pointer slot; entries are cast back to the exact
/// signature they were registered with (per (op, dtype) above).
using AnyKernelFn = void (*)();

/// Fixed-size dispatch table. One process-wide instance registers the
/// built-in backends in its constructor; tests may Register additional
/// entries (last registration wins).
class KernelRegistry {
 public:
  static KernelRegistry& Instance();

  void Register(OpKind op, DType dtype, Backend backend, AnyKernelFn fn);

  /// Exact lookup; nullptr when the slot is empty.
  AnyKernelFn Find(OpKind op, DType dtype, Backend backend) const;

  /// Lookup with scalar fallback; aborts if not even scalar is registered
  /// (a registration bug, not a runtime condition).
  AnyKernelFn Resolve(OpKind op, DType dtype, Backend backend) const;

 private:
  KernelRegistry();

  AnyKernelFn table_[kNumOps][kNumDTypes][kNumBackends] = {};
};

}  // namespace vsd::tensor::kernels

#endif  // VSD_TENSOR_REGISTRY_H_
