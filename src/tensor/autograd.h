#ifndef VSD_TENSOR_AUTOGRAD_H_
#define VSD_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace vsd::autograd {

using ::vsd::tensor::Tensor;

/// One vertex of the dynamically built computation graph.
struct Node {
  Tensor value;
  Tensor grad;  ///< Allocated lazily; same shape as `value`.
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Reads `self->grad` and accumulates into the parents' grads. Unset for
  /// leaves.
  std::function<void(Node* self)> backward;

  /// Allocates (if needed) and returns the gradient tensor.
  Tensor& EnsureGrad();
};

/// \brief Handle to a graph node; the user-facing autograd value type.
///
/// Cheap to copy (shared node). Leaf variables created with
/// `requires_grad=true` act as trainable parameters: after `Backward()` their
/// `grad()` holds d(root)/d(param).
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false);
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Tensor& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }

  /// Resets this node's gradient to zeros (allocating it if needed).
  void ZeroGrad();

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode differentiation from `root` (which must be scalar,
/// i.e. size 1). Gradients accumulate into every reachable node with
/// `requires_grad`.
void Backward(const Var& root);

// ---- Differentiable ops. Shapes follow tensor:: value ops. ----

/// Element-wise sum; supports `b` scalar or row-broadcast [D] vs [N,D].
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Scale(const Var& a, float s);
Var Neg(const Var& a);

/// [M,K]x[K,N] -> [M,N].
Var MatMul(const Var& a, const Var& b);

Var Relu(const Var& a);
Var TanhV(const Var& a);
Var SigmoidV(const Var& a);
Var ExpV(const Var& a);
/// Natural log; inputs are clamped away from zero for stability.
Var LogV(const Var& a);
/// Gaussian error linear unit (tanh approximation).
Var Gelu(const Var& a);

/// Concatenates 2-D tensors [N,D1] and [N,D2] along axis 1.
Var Concat(const Var& a, const Var& b);

/// View with a new shape (shares storage; gradient is reshaped back).
Var Reshape(const Var& a, std::vector<int> shape);

/// Sum of all elements -> scalar [1].
Var SumAll(const Var& a);
/// Mean of all elements -> scalar [1].
Var MeanAll(const Var& a);

/// Mean softmax cross-entropy of logits [N,C] against integer labels.
Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& labels);

/// Mean binary cross-entropy with logits [N] (or [N,1]) against targets.
Var BceWithLogits(const Var& logits, const std::vector<float>& targets);

/// Row-wise log-softmax of 2-D logits.
Var LogSoftmaxRows(const Var& logits);

/// im2col over NHWC input: [N,H,W,C] -> [N*OH*OW, kh*kw*C] patches;
/// differentiable (backward is col2im). `pad` is symmetric zero padding.
/// NHWC is used so a following matmul yields [N,OH,OW,F] by plain reshape.
Var Im2Col(const Var& x, int kh, int kw, int stride, int pad);

/// Row-wise softmax of 2-D input (differentiable).
Var SoftmaxRowsV(const Var& logits);

/// Layer normalization over the last axis of [N,D] with learnable gamma and
/// beta (each [D]).
Var LayerNormRows(const Var& x, const Var& gamma, const Var& beta,
                  float eps = 1e-5f);

/// Mean over rows: [N,D] -> [1,D] (differentiable).
Var MeanRows(const Var& x);

/// Numerically stable softplus log(1 + exp(x)).
Var Softplus(const Var& a);

/// Column-broadcast product: x [N,D] scaled row-wise by col [N,1].
Var MulColumn(const Var& x, const Var& col);

/// Sum along axis 1: [N,D] -> [N,1] (differentiable).
Var RowSum(const Var& x);

/// Element-wise quotient; `b` must have no zero entries. Same broadcast
/// rules as Mul.
Var Div(const Var& a, const Var& b);

/// Element-wise square root (inputs clamped to >= 1e-12 for stability).
Var SqrtV(const Var& a);

/// Element-wise absolute value (subgradient 0 at the origin).
Var AbsV(const Var& a);

/// Element-wise clamp; gradient passes only inside (lo, hi).
Var ClampV(const Var& a, float lo, float hi);

/// Output spatial size of a conv/im2col along one axis.
int ConvOutDim(int in, int k, int stride, int pad);

}  // namespace vsd::autograd

#endif  // VSD_TENSOR_AUTOGRAD_H_
