// Scalar reference backend + the public dispatchers. The scalar loops are
// the semantic definition of every kernel: all other backends must be
// bit-identical to them (tests/quant_test.cc sweeps the contract).
#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "tensor/kernels_backends.h"
#include "tensor/registry.h"

namespace vsd::tensor::kernels {

namespace scalar {

void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n) {
  std::fill(out, out + static_cast<long long>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* orow = out + i * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n) {
  std::fill(out, out + static_cast<long long>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const int8_t* brow = bq + p * n;
      const float scale = bscale[p];
      const int32_t zero = bzero[p];
      float* orow = out + i * n;
      // Dequantize inline with the exact op order of
      // quant.h::DequantizeRowInt8 (scale * (q - zero), then av * w), so
      // the fused kernel is bit-identical to dequantize-then-MatMulInto.
      for (int j = 0; j < n; ++j) {
        const float w =
            scale * static_cast<float>(static_cast<int32_t>(brow[j]) - zero);
        orow[j] += av * w;
      }
    }
  }
}

void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols) {
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      out[i * cols + j] = a[i * cols + j] + bias[j];
    }
  }
}

void ReluInto(const float* x, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void TanhInto(const float* x, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void SigmoidInto(const float* x, float* out, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<float>(vsd::Sigmoid(static_cast<double>(x[i])));
  }
}

void GeluInto(const float* x, float* out, int n) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  for (int i = 0; i < n; ++i) {
    const float v = x[i];
    const float inner = kC * (v + 0.044715f * v * v * v);
    out[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db) {
  const int d = da + db;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < da; ++j) out[i * d + j] = a[i * da + j];
    for (int j = 0; j < db; ++j) out[i * d + da + j] = b[i * db + j];
  }
}

void Im2ColInto(const float* x, float* out, int n, int h, int w, int c,
                int kh, int kw, int stride, int pad) {
  const int oh = (h + 2 * pad - kh) / stride + 1;
  const int ow = (w + 2 * pad - kw) / stride + 1;
  const int patch = kh * kw * c;
  std::fill(out, out + static_cast<long long>(n) * oh * ow * patch, 0.0f);
  for (int b = 0; b < n; ++b) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int row = (b * oh + oy) * ow + ox;
        int col = 0;
        for (int ky = 0; ky < kh; ++ky) {
          const int iy = oy * stride + ky - pad;
          for (int kx = 0; kx < kw; ++kx) {
            const int ix = ox * stride + kx - pad;
            for (int ch = 0; ch < c; ++ch, ++col) {
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                out[row * patch + col] =
                    x[((b * h + iy) * w + ix) * c + ch];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace scalar

// ---- Dispatchers ----

namespace {

template <typename Fn>
Fn Dispatch(OpKind op, DType dtype) {
  return reinterpret_cast<Fn>(
      KernelRegistry::Instance().Resolve(op, dtype, ActiveBackend()));
}

}  // namespace

void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n) {
  Dispatch<MatMulF32Fn>(OpKind::kMatMul, DType::kF32)(a, b, out, m, k, n);
}

void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n) {
  Dispatch<MatMulI8Fn>(OpKind::kMatMul, DType::kI8)(a, bq, bscale, bzero,
                                                    out, m, k, n);
}

void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols) {
  Dispatch<AddRowsFn>(OpKind::kAddRows, DType::kF32)(a, bias, out, rows,
                                                     cols);
}

void ReluInto(const float* x, float* out, int n) {
  Dispatch<MapFn>(OpKind::kRelu, DType::kF32)(x, out, n);
}

void TanhInto(const float* x, float* out, int n) {
  Dispatch<MapFn>(OpKind::kTanh, DType::kF32)(x, out, n);
}

void SigmoidInto(const float* x, float* out, int n) {
  Dispatch<MapFn>(OpKind::kSigmoid, DType::kF32)(x, out, n);
}

void GeluInto(const float* x, float* out, int n) {
  Dispatch<MapFn>(OpKind::kGelu, DType::kF32)(x, out, n);
}

void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db) {
  Dispatch<ConcatRowsFn>(OpKind::kConcatRows, DType::kF32)(a, b, out, rows,
                                                           da, db);
}

void Im2ColInto(const float* x, float* out, int n, int h, int w, int c,
                int kh, int kw, int stride, int pad) {
  Dispatch<Im2ColFn>(OpKind::kIm2Col, DType::kF32)(x, out, n, h, w, c, kh,
                                                   kw, stride, pad);
}

}  // namespace vsd::tensor::kernels
