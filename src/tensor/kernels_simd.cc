// Vectorized backend via GCC/Clang vector extensions (portable: the
// compiler lowers vf to AVX when targeted, SSE pairs or scalar code
// otherwise). Every loop keeps the scalar backend's exact rounding:
//   * accumulation stays in fixed k-order (vectorization is along the
//     row-independent output columns only),
//   * multiply and add round separately — this TU is compiled with
//     -ffp-contract=off (src/tensor/CMakeLists.txt) so no FMA contraction
//     can merge them even under -march=native,
//   * tails reuse the same per-element expression as the vector body.
// The scalar/simd bitwise sweeps in tests/quant_test.cc and
// tests/graph_exec_test.cc pin the contract.
#include <cmath>
#include <cstdint>
#include <cstring>

#include "tensor/kernels_backends.h"

#if defined(__GNUC__) || defined(__clang__)
#define VSD_SIMD_VECTOR_EXT 1
#endif

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace vsd::tensor::kernels::simd {

#ifdef VSD_SIMD_VECTOR_EXT

namespace {

// Vector width follows the target ISA: 8 lanes (32-byte ymm) only when
// AVX2 is compiled in — without it GCC *scalarizes* 32-byte compares,
// selects, and integer ops instead of splitting them, which is slower
// than the plain loops. The 4-lane (16-byte xmm) types lower to single
// SSE2 instructions on every x86-64 baseline build.
#ifdef __AVX2__
typedef float vf __attribute__((vector_size(32)));
typedef int32_t vs __attribute__((vector_size(32)));
constexpr int kLanes = 8;
#else
typedef float vf __attribute__((vector_size(16)));
typedef int32_t vs __attribute__((vector_size(16)));
constexpr int kLanes = 4;
#endif

// Scalar-vector binary ops broadcast, so these work at either width.
inline vf Splat(float s) { return vf{} + s; }
inline vs SplatI(int32_t s) { return vs{} + s; }

// Unaligned load/store through memcpy — compiles to single vector moves.
inline vf LoadF(const float* p) {
  vf v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreF(float* p, vf v) { std::memcpy(p, &v, sizeof(v)); }

#ifdef __AVX2__
// Sign-extending load of 8 int8 lanes into int32 lanes. GCC scalarizes
// __builtin_convertvector out of narrow int8 vectors, so use the
// single-instruction widen (vpmovsxbd) instead.
inline vs LoadQ(const int8_t* p) {
  return (vs)_mm256_cvtepi8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}
#endif

}  // namespace

bool Available() { return true; }

void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n) {
  std::memset(out, 0, static_cast<size_t>(m) * n * sizeof(float));
  const int n8 = n - n % kLanes;
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<long long>(p) * n;
      float* orow = out + static_cast<long long>(i) * n;
      const vf avv = Splat(av);
      int j = 0;
      for (; j < n8; j += kLanes) {
        StoreF(orow + j, LoadF(orow + j) + avv * LoadF(brow + j));
      }
      for (; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n) {
#ifndef __AVX2__
  // Without the single-instruction int8 widen (vpmovsxbd) the hand-rolled
  // loop loses to what the auto-vectorizer makes of the scalar reference;
  // delegate rather than ship a slower "optimized" path. (Bit-identical
  // either way — it is the same arithmetic.)
  scalar::MatMulI8Into(a, bq, bscale, bzero, out, m, k, n);
#else
  std::memset(out, 0, static_cast<size_t>(m) * n * sizeof(float));
  const int n8 = n - n % kLanes;
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const int8_t* brow = bq + static_cast<long long>(p) * n;
      const float scale = bscale[p];
      const int32_t zero = bzero[p];
      float* orow = out + static_cast<long long>(i) * n;
      const vf avv = Splat(av);
      const vf scv = Splat(scale);
      const vs zv = SplatI(zero);
      int j = 0;
      for (; j < n8; j += kLanes) {
        // Same op order as scalar::MatMulI8Into: widen, subtract the zero
        // point exactly in int32, convert, one rounding for scale*(q-z).
        const vf w = scv * __builtin_convertvector(LoadQ(brow + j) - zv, vf);
        StoreF(orow + j, LoadF(orow + j) + avv * w);
      }
      for (; j < n; ++j) {
        const float w =
            scale * static_cast<float>(static_cast<int32_t>(brow[j]) - zero);
        orow[j] += av * w;
      }
    }
  }
#endif  // __AVX2__
}

void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols) {
  const int c8 = cols - cols % kLanes;
  for (int i = 0; i < rows; ++i) {
    const float* arow = a + static_cast<long long>(i) * cols;
    float* orow = out + static_cast<long long>(i) * cols;
    int j = 0;
    for (; j < c8; j += kLanes) {
      StoreF(orow + j, LoadF(arow + j) + LoadF(bias + j));
    }
    for (; j < cols; ++j) orow[j] = arow[j] + bias[j];
  }
}

void ReluInto(const float* x, float* out, int n) {
  const int n8 = n - n % kLanes;
  const vf zero = Splat(0.0f);
  int i = 0;
  for (; i < n8; i += kLanes) {
    const vf v = LoadF(x + i);
    // The vector ternary reproduces the scalar `v > 0 ? v : 0.0f` exactly
    // (NaN and -0.0f compare false and collapse to +0.0f, positive values
    // pass through bit-unchanged) and stays in the vector domain on SSE2
    // and AVX alike — an explicit int-mask formulation scalarizes to
    // per-lane comiss without AVX.
    StoreF(out + i, v > zero ? v : zero);
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void GeluInto(const float* x, float* out, int n) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kCube = 0.044715f;
  const int n8 = n - n % kLanes;
  const vf kcv = Splat(kC);
  const vf cubev = Splat(kCube);
  const vf halfv = Splat(0.5f);
  const vf onev = Splat(1.0f);
  int i = 0;
  for (; i < n8; i += kLanes) {
    const vf v = LoadF(x + i);
    // Same association as scalar::GeluInto: ((kCube*v)*v)*v, then kC*(...).
    const vf inner = kcv * (v + ((cubev * v) * v) * v);
    // tanh must hit the exact same libm call per element; no vector libm.
    alignas(sizeof(vf)) float lanes[kLanes];
    StoreF(lanes, inner);
    for (int l = 0; l < kLanes; ++l) lanes[l] = std::tanh(lanes[l]);
    const vf t = LoadF(lanes);
    StoreF(out + i, (halfv * v) * (onev + t));
  }
  for (; i < n; ++i) {
    const float v = x[i];
    const float inner = kC * (v + kCube * v * v * v);
    out[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db) {
  const int d = da + db;
  for (int i = 0; i < rows; ++i) {
    std::memcpy(out + static_cast<long long>(i) * d,
                a + static_cast<long long>(i) * da,
                static_cast<size_t>(da) * sizeof(float));
    std::memcpy(out + static_cast<long long>(i) * d + da,
                b + static_cast<long long>(i) * db,
                static_cast<size_t>(db) * sizeof(float));
  }
}

#else  // !VSD_SIMD_VECTOR_EXT — forward to scalar so the symbols exist.

bool Available() { return false; }

void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n) {
  scalar::MatMulInto(a, b, out, m, k, n);
}
void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n) {
  scalar::MatMulI8Into(a, bq, bscale, bzero, out, m, k, n);
}
void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols) {
  scalar::AddRowsInto(a, bias, out, rows, cols);
}
void ReluInto(const float* x, float* out, int n) {
  scalar::ReluInto(x, out, n);
}
void GeluInto(const float* x, float* out, int n) {
  scalar::GeluInto(x, out, n);
}
void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db) {
  scalar::ConcatRowsInto(a, b, out, rows, da, db);
}

#endif  // VSD_SIMD_VECTOR_EXT

}  // namespace vsd::tensor::kernels::simd
