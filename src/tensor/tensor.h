#ifndef VSD_TENSOR_TENSOR_H_
#define VSD_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/dtype.h"

namespace vsd::tensor {

/// \brief A dense row-major N-dimensional array, fp32 by default.
///
/// Copies are shallow (shared storage); use `Clone()` for a deep copy.
/// All shape errors are programming errors and abort via VSD_CHECK — tensors
/// sit on the hot path and returning `Status` from every op would be
/// prohibitive; callers validate shapes at API boundaries instead.
///
/// A tensor may alternatively hold int8 row-quantized storage
/// (`dtype() == DType::kI8`, produced by `QuantizeInt8()`): a 2-D int8
/// payload plus per-row scale/zero_point in the tensor/quant.h format.
/// Int8 tensors are frozen-weight storage only — they support shape
/// queries, Clone/Reshape-free passing, the q* accessors, and appearing as
/// the rhs of `MatMul`; every float accessor (`data()`, `at()`, ...)
/// aborts on them. Training code never sees an int8 tensor.
class Tensor {
 public:
  /// An empty (rank-0, size-0) tensor.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  static Tensor Zeros(std::vector<int> shape);
  static Tensor Full(std::vector<int> shape, float value);
  /// Takes ownership of `values`; size must equal the shape product.
  static Tensor FromVector(std::vector<int> shape, std::vector<float> values);
  /// I.i.d. normal(0, stddev) entries.
  static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev = 1.0f);
  /// I.i.d. uniform [lo, hi) entries.
  static Tensor Uniform(std::vector<int> shape, Rng* rng, float lo,
                        float hi);

  int ndim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  /// Total element count.
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  DType dtype() const { return dtype_; }

  /// Float payload; aborts on int8 tensors (use the q* accessors).
  float* data();
  const float* data() const;

  /// Int8 payload accessors; abort on fp32 tensors.
  const int8_t* qdata() const;
  /// Per-row scales, [dim(0)].
  const float* qscale() const;
  /// Per-row zero points, [dim(0)].
  const int32_t* qzero() const;

  /// Row-quantizes a 2-D fp32 tensor into an int8 tensor of the same
  /// shape (rows are dim 0 — the MatMul reduction dim when this tensor is
  /// the rhs). Per-row parameters are computed independently, so the
  /// result is identical under any thread count.
  Tensor QuantizeInt8() const;

  /// Expands an int8 tensor back to a fresh fp32 tensor (the exact values
  /// the fused int8 MatMul kernel sees).
  Tensor DequantizeF32() const;

  /// Flat accessor.
  float& at(int i);
  float at(int i) const;
  /// 2-D accessor; requires ndim() == 2.
  float& at(int i, int j);
  float at(int i, int j) const;
  /// 4-D accessor (n, c, h, w); requires ndim() == 4.
  float& at4(int n, int c, int h, int w);
  float at4(int n, int c, int h, int w) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Returns a tensor sharing this storage with a new shape (same size).
  Tensor Reshape(std::vector<int> shape) const;

  /// Copies the `row`-th row of a 2-D tensor into a new [D] tensor.
  Tensor Row(int row) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Element-wise `this += other` (same shape).
  void AddInPlace(const Tensor& other);
  /// Element-wise `this *= s`.
  void ScaleInPlace(float s);

  /// Flat std::vector copy of the contents.
  std::vector<float> ToVector() const;

  /// "Tensor[2x3]{...}" debugging aid (truncated for large tensors).
  std::string ToString() const;

 private:
  /// Shared int8 payload (immutable once built — int8 tensors are frozen
  /// weights, so shallow copies never race on it).
  struct QuantStorage {
    std::vector<int8_t> q;      ///< [rows*cols] row-major
    std::vector<float> scale;   ///< [rows]
    std::vector<int32_t> zero;  ///< [rows]
  };

  std::vector<int> shape_;
  int size_ = 0;
  DType dtype_ = DType::kF32;
  std::shared_ptr<std::vector<float>> data_;
  std::shared_ptr<const QuantStorage> qstore_;
};

/// True when shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

// ---- Value-level math (no autograd). Results are freshly allocated. ----

/// Element-wise sum with limited broadcasting: shapes equal, `b` scalar
/// (size 1), or `a`=[N,D] with `b`=[D].
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

/// 2-D matrix product [M,K]x[K,N] -> [M,N].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor Transpose(const Tensor& a);

/// Sum of all elements.
float Sum(const Tensor& a);
/// Mean of all elements.
float Mean(const Tensor& a);

/// Element-wise maps.
Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);

/// Row-wise softmax of a 2-D tensor.
Tensor SoftmaxRows(const Tensor& a);

/// Row-wise argmax of a 2-D tensor.
std::vector<int> ArgMaxRows(const Tensor& a);

/// Stacks equal-length [D] tensors into [N,D].
Tensor StackRows(const std::vector<Tensor>& rows);

}  // namespace vsd::tensor

#endif  // VSD_TENSOR_TENSOR_H_
