#ifndef VSD_TENSOR_DTYPE_H_
#define VSD_TENSOR_DTYPE_H_

#include <cstddef>

namespace vsd::tensor {

/// Element type of a Tensor. kF32 is the universal compute type; kI8 is a
/// storage format for frozen inference weights only (per-row asymmetric
/// quantization, see tensor/quant.h) — training and every activation stay
/// fp32.
enum class DType {
  kF32 = 0,
  kI8 = 1,
};

inline constexpr int kNumDTypes = 2;

/// Bytes per element of the dense payload (quantization side tables — the
/// per-row scales and zero-points — are accounted separately).
constexpr size_t DTypeSize(DType dtype) {
  return dtype == DType::kI8 ? 1 : 4;
}

constexpr const char* DTypeName(DType dtype) {
  return dtype == DType::kI8 ? "i8" : "f32";
}

}  // namespace vsd::tensor

#endif  // VSD_TENSOR_DTYPE_H_
