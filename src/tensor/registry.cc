#include "tensor/registry.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "tensor/kernels_backends.h"

namespace vsd::tensor::kernels {

namespace {

int EnvBackend() {
  const char* env = std::getenv("VSD_BACKEND");
  if (env == nullptr || env[0] == '\0') return -1;
  if (std::strcmp(env, "scalar") == 0) return 0;
  if (std::strcmp(env, "simd") == 0) return 1;
  VSD_CHECK(false) << "VSD_BACKEND must be 'scalar' or 'simd', got '" << env
                   << "'";
  return -1;
}

/// -1 = unset (fall back to the environment); set by SetBackend.
std::atomic<int>& BackendOverrideSlot() {
  static std::atomic<int> override_flag{-1};
  return override_flag;
}

Backend ClampToCompiled(int flag) {
  if (flag == 1 && simd::Available()) return Backend::kSimd;
  return Backend::kScalar;
}

}  // namespace

bool SimdCompiled() { return simd::Available(); }

Backend ActiveBackend() {
  const int override_flag =
      BackendOverrideSlot().load(std::memory_order_relaxed);
  if (override_flag >= 0) return ClampToCompiled(override_flag);
  static const int env_flag = EnvBackend();
  if (env_flag >= 0) return ClampToCompiled(env_flag);
  // Default: prefer the vectorized backend. Safe because fp32 SIMD is
  // bit-identical to scalar (the equivalence suites pin this).
  return ClampToCompiled(1);
}

void SetBackend(Backend backend) {
  BackendOverrideSlot().store(backend == Backend::kSimd ? 1 : 0,
                              std::memory_order_relaxed);
}

void ClearBackendOverride() {
  BackendOverrideSlot().store(-1, std::memory_order_relaxed);
}

// ---- KernelRegistry ----

KernelRegistry& KernelRegistry::Instance() {
  static KernelRegistry registry;
  return registry;
}

void KernelRegistry::Register(OpKind op, DType dtype, Backend backend,
                              AnyKernelFn fn) {
  table_[static_cast<int>(op)][static_cast<int>(dtype)]
        [static_cast<int>(backend)] = fn;
}

AnyKernelFn KernelRegistry::Find(OpKind op, DType dtype,
                                 Backend backend) const {
  return table_[static_cast<int>(op)][static_cast<int>(dtype)]
               [static_cast<int>(backend)];
}

AnyKernelFn KernelRegistry::Resolve(OpKind op, DType dtype,
                                    Backend backend) const {
  AnyKernelFn fn = Find(op, dtype, backend);
  if (fn == nullptr) fn = Find(op, dtype, Backend::kScalar);
  VSD_CHECK(fn != nullptr) << "no kernel registered for op "
                           << static_cast<int>(op) << " dtype "
                           << DTypeName(dtype);
  return fn;
}

KernelRegistry::KernelRegistry() {
  const DType f32 = DType::kF32;
  const DType i8 = DType::kI8;
  const Backend sc = Backend::kScalar;
  auto reg = [this](OpKind op, DType dtype, Backend backend, auto* fn) {
    Register(op, dtype, backend, reinterpret_cast<AnyKernelFn>(fn));
  };

  reg(OpKind::kMatMul, f32, sc, &scalar::MatMulInto);
  reg(OpKind::kMatMul, i8, sc, &scalar::MatMulI8Into);
  reg(OpKind::kAddRows, f32, sc, &scalar::AddRowsInto);
  reg(OpKind::kRelu, f32, sc, &scalar::ReluInto);
  reg(OpKind::kTanh, f32, sc, &scalar::TanhInto);
  reg(OpKind::kSigmoid, f32, sc, &scalar::SigmoidInto);
  reg(OpKind::kGelu, f32, sc, &scalar::GeluInto);
  reg(OpKind::kConcatRows, f32, sc, &scalar::ConcatRowsInto);
  reg(OpKind::kIm2Col, f32, sc, &scalar::Im2ColInto);

  if (simd::Available()) {
    const Backend sd = Backend::kSimd;
    reg(OpKind::kMatMul, f32, sd, &simd::MatMulInto);
    reg(OpKind::kMatMul, i8, sd, &simd::MatMulI8Into);
    reg(OpKind::kAddRows, f32, sd, &simd::AddRowsInto);
    reg(OpKind::kRelu, f32, sd, &simd::ReluInto);
    reg(OpKind::kGelu, f32, sd, &simd::GeluInto);
    reg(OpKind::kConcatRows, f32, sd, &simd::ConcatRowsInto);
    // Transcendental maps and im2col must call the same libm code per
    // element to stay bit-identical; register scalar under the simd key.
    reg(OpKind::kTanh, f32, sd, &scalar::TanhInto);
    reg(OpKind::kSigmoid, f32, sd, &scalar::SigmoidInto);
    reg(OpKind::kIm2Col, f32, sd, &scalar::Im2ColInto);
  }
}

}  // namespace vsd::tensor::kernels
