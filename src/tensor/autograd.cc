#include "tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace vsd::autograd {

namespace t = ::vsd::tensor;

Tensor& Node::EnsureGrad() {
  if (grad.size() != value.size()) grad = Tensor(value.shape());
  return grad;
}

Var::Var(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

void Var::ZeroGrad() { node_->EnsureGrad().Fill(0.0f); }

namespace {

bool AnyRequiresGrad(const std::vector<std::shared_ptr<Node>>& parents) {
  for (const auto& p : parents) {
    if (p->requires_grad) return true;
  }
  return false;
}

Var MakeOp(Tensor value, std::vector<std::shared_ptr<Node>> parents,
           std::function<void(Node*)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = AnyRequiresGrad(parents);
  node->parents = std::move(parents);
  if (node->requires_grad) node->backward = std::move(backward);
  return Var(node);
}

/// Sums `g` down to `shape` (for broadcasted operands).
Tensor ReduceGradToShape(const Tensor& g, const std::vector<int>& shape) {
  if (g.shape() == shape) return g.Clone();
  Tensor out(shape);
  if (out.size() == 1) {
    out.at(0) = t::Sum(g);
    return out;
  }
  // Row broadcast: g is [N,D], target is [D] or [1,D].
  VSD_CHECK(g.ndim() == 2) << "unsupported broadcast reduce";
  const int n = g.dim(0);
  const int d = g.dim(1);
  VSD_CHECK(out.size() == d) << "unsupported broadcast reduce shape";
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) out.at(j) += g.at(i, j);
  }
  return out;
}

void Accumulate(Node* target, const Tensor& g) {
  if (!target->requires_grad) return;
  Tensor reduced = ReduceGradToShape(g, target->value.shape());
  target->EnsureGrad().AddInPlace(reduced);
}

}  // namespace

void Backward(const Var& root) {
  VSD_CHECK(root.defined()) << "Backward on undefined Var";
  VSD_CHECK(root.value().size() == 1) << "Backward root must be scalar";
  // Iterative DFS topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent >= frame.node->parents.size()) {
      order.push_back(frame.node);
      stack.pop_back();
      continue;
    }
    // `frame` dies here: the push_back below may reallocate the stack.
    Node* parent = frame.node->parents[frame.next_parent++].get();
    if (visited.insert(parent).second) stack.push_back({parent, 0});
  }
  root.node()->EnsureGrad().Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->requires_grad && node->backward &&
        node->grad.size() == node->value.size()) {
      node->backward(node);
    }
  }
}

Var Add(const Var& a, const Var& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(t::Add(a.value(), b.value()), {an, bn},
                [an, bn](Node* self) {
                  Accumulate(an.get(), self->grad);
                  Accumulate(bn.get(), self->grad);
                });
}

Var Sub(const Var& a, const Var& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(t::Sub(a.value(), b.value()), {an, bn},
                [an, bn](Node* self) {
                  Accumulate(an.get(), self->grad);
                  Accumulate(bn.get(), t::Scale(self->grad, -1.0f));
                });
}

Var Mul(const Var& a, const Var& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(
      t::Mul(a.value(), b.value()), {an, bn}, [an, bn](Node* self) {
        // d/da = g * b ; d/db = g * a (with broadcast handled by Mul +
        // ReduceGradToShape).
        if (an->requires_grad) {
          Tensor ga(self->grad.shape());
          if (bn->value.size() == 1) {
            ga = t::Scale(self->grad, bn->value.at(0));
          } else {
            ga = t::Mul(self->grad, bn->value);
          }
          Accumulate(an.get(), ga);
        }
        if (bn->requires_grad) {
          Tensor gb(self->grad.shape());
          if (bn->value.size() == 1 ||
              bn->value.size() != an->value.size()) {
            gb = t::Mul(self->grad, an->value);
          } else {
            gb = t::Mul(self->grad, an->value);
          }
          Accumulate(bn.get(), gb);
        }
      });
}

Var Scale(const Var& a, float s) {
  auto an = a.node();
  return MakeOp(t::Scale(a.value(), s), {an}, [an, s](Node* self) {
    Accumulate(an.get(), t::Scale(self->grad, s));
  });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var MatMul(const Var& a, const Var& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(t::MatMul(a.value(), b.value()), {an, bn},
                [an, bn](Node* self) {
                  if (an->requires_grad) {
                    Accumulate(an.get(),
                               t::MatMul(self->grad,
                                         t::Transpose(bn->value)));
                  }
                  if (bn->requires_grad) {
                    Accumulate(bn.get(),
                               t::MatMul(t::Transpose(an->value),
                                         self->grad));
                  }
                });
}

Var Relu(const Var& a) {
  auto an = a.node();
  return MakeOp(t::Relu(a.value()), {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      g.at(i) = an->value.at(i) > 0.0f ? self->grad.at(i) : 0.0f;
    }
    Accumulate(an.get(), g);
  });
}

Var TanhV(const Var& a) {
  auto an = a.node();
  Tensor y = t::Tanh(a.value());
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      const float yi = self->value.at(i);
      g.at(i) = self->grad.at(i) * (1.0f - yi * yi);
    }
    Accumulate(an.get(), g);
  });
}

Var SigmoidV(const Var& a) {
  auto an = a.node();
  Tensor y = t::Sigmoid(a.value());
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      const float yi = self->value.at(i);
      g.at(i) = self->grad.at(i) * yi * (1.0f - yi);
    }
    Accumulate(an.get(), g);
  });
}

Var ExpV(const Var& a) {
  auto an = a.node();
  Tensor y = t::Exp(a.value());
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      g.at(i) = self->grad.at(i) * self->value.at(i);
    }
    Accumulate(an.get(), g);
  });
}

Var LogV(const Var& a) {
  auto an = a.node();
  Tensor y(a.value().shape());
  for (int i = 0; i < y.size(); ++i) {
    y.at(i) = std::log(std::max(a.value().at(i), 1e-12f));
  }
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      g.at(i) = self->grad.at(i) / std::max(an->value.at(i), 1e-12f);
    }
    Accumulate(an.get(), g);
  });
}

Var Gelu(const Var& a) {
  auto an = a.node();
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  Tensor y(a.value().shape());
  t::kernels::GeluInto(a.value().data(), y.data(), y.size());
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      const float x = an->value.at(i);
      const float inner = kC * (x + 0.044715f * x * x * x);
      const float th = std::tanh(inner);
      const float sech2 = 1.0f - th * th;
      const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
      const float dy = 0.5f * (1.0f + th) + 0.5f * x * sech2 * dinner;
      g.at(i) = self->grad.at(i) * dy;
    }
    Accumulate(an.get(), g);
  });
}

Var Concat(const Var& a, const Var& b) {
  VSD_CHECK(a.value().ndim() == 2 && b.value().ndim() == 2)
      << "Concat requires 2-D";
  VSD_CHECK(a.value().dim(0) == b.value().dim(0)) << "Concat row mismatch";
  const int n = a.value().dim(0);
  const int da = a.value().dim(1);
  const int db = b.value().dim(1);
  Tensor y({n, da + db});
  t::kernels::ConcatRowsInto(a.value().data(), b.value().data(), y.data(),
                             n, da, db);
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(y, {an, bn}, [an, bn, n, da, db](Node* self) {
    if (an->requires_grad) {
      Tensor ga({n, da});
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < da; ++j) ga.at(i, j) = self->grad.at(i, j);
      }
      Accumulate(an.get(), ga);
    }
    if (bn->requires_grad) {
      Tensor gb({n, db});
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < db; ++j) gb.at(i, j) = self->grad.at(i, da + j);
      }
      Accumulate(bn.get(), gb);
    }
  });
}

Var Reshape(const Var& a, std::vector<int> shape) {
  auto an = a.node();
  Tensor y = a.value().Reshape(shape);
  // Clone to keep node values independent (Reshape shares storage, which is
  // fine for the forward value but the backward must not alias grads).
  return MakeOp(y.Clone(), {an}, [an](Node* self) {
    Accumulate(an.get(), self->grad.Reshape(an->value.shape()));
  });
}

Var SumAll(const Var& a) {
  auto an = a.node();
  Tensor y({1});
  y.at(0) = t::Sum(a.value());
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(an->value.shape());
    g.Fill(self->grad.at(0));
    Accumulate(an.get(), g);
  });
}

Var MeanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return Scale(SumAll(a), inv);
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& labels) {
  VSD_CHECK(logits.value().ndim() == 2) << "SCE requires 2-D logits";
  const int n = logits.value().dim(0);
  const int c = logits.value().dim(1);
  VSD_CHECK(static_cast<int>(labels.size()) == n) << "SCE label count";
  Tensor probs = t::SoftmaxRows(logits.value());
  Tensor y({1});
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    VSD_CHECK(labels[i] >= 0 && labels[i] < c) << "SCE label range";
    loss -= std::log(std::max(probs.at(i, labels[i]), 1e-12f));
  }
  y.at(0) = static_cast<float>(loss / n);
  auto ln = logits.node();
  return MakeOp(y, {ln}, [ln, probs, labels, n, c](Node* self) {
    Tensor g({n, c});
    const float scale = self->grad.at(0) / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < c; ++j) {
        const float onehot = (labels[i] == j) ? 1.0f : 0.0f;
        g.at(i, j) = scale * (probs.at(i, j) - onehot);
      }
    }
    Accumulate(ln.get(), g);
  });
}

Var BceWithLogits(const Var& logits, const std::vector<float>& targets) {
  const int n = logits.value().size();
  VSD_CHECK(static_cast<int>(targets.size()) == n) << "BCE target count";
  Tensor y({1});
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const float x = logits.value().at(i);
    // log(1 + exp(-|x|)) + max(x, 0) - x*t, the stable form.
    loss += std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f) -
            x * targets[i];
  }
  y.at(0) = static_cast<float>(loss / n);
  auto ln = logits.node();
  return MakeOp(y, {ln}, [ln, targets, n](Node* self) {
    Tensor g(ln->value.shape());
    const float scale = self->grad.at(0) / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      const float p = static_cast<float>(
          1.0 / (1.0 + std::exp(-static_cast<double>(ln->value.at(i)))));
      g.at(i) = scale * (p - targets[i]);
    }
    Accumulate(ln.get(), g);
  });
}

Var LogSoftmaxRows(const Var& logits) {
  VSD_CHECK(logits.value().ndim() == 2) << "LogSoftmax requires 2-D";
  const int n = logits.value().dim(0);
  const int c = logits.value().dim(1);
  Tensor probs = t::SoftmaxRows(logits.value());
  Tensor y({n, c});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < c; ++j) {
      y.at(i, j) = std::log(std::max(probs.at(i, j), 1e-12f));
    }
  }
  auto ln = logits.node();
  return MakeOp(y, {ln}, [ln, probs, n, c](Node* self) {
    Tensor g({n, c});
    for (int i = 0; i < n; ++i) {
      float grow = 0.0f;
      for (int j = 0; j < c; ++j) grow += self->grad.at(i, j);
      for (int j = 0; j < c; ++j) {
        g.at(i, j) = self->grad.at(i, j) - probs.at(i, j) * grow;
      }
    }
    Accumulate(ln.get(), g);
  });
}

Var Div(const Var& a, const Var& b) {
  auto an = a.node();
  auto bn = b.node();
  const bool scalar_b = b.value().size() == 1;
  Tensor y(a.value().shape());
  if (scalar_b) {
    const float inv = 1.0f / bn->value.at(0);
    for (int i = 0; i < y.size(); ++i) y.at(i) = an->value.at(i) * inv;
  } else {
    VSD_CHECK(SameShape(a.value(), b.value())) << "Div shape mismatch";
    for (int i = 0; i < y.size(); ++i) {
      y.at(i) = an->value.at(i) / bn->value.at(i);
    }
  }
  return MakeOp(y, {an, bn}, [an, bn, scalar_b](Node* self) {
    if (an->requires_grad) {
      Tensor ga(self->grad.shape());
      if (scalar_b) {
        ga = t::Scale(self->grad, 1.0f / bn->value.at(0));
      } else {
        for (int i = 0; i < ga.size(); ++i) {
          ga.at(i) = self->grad.at(i) / bn->value.at(i);
        }
      }
      Accumulate(an.get(), ga);
    }
    if (bn->requires_grad) {
      // d/db (a/b) = -a / b^2.
      Tensor gb(self->grad.shape());
      for (int i = 0; i < gb.size(); ++i) {
        const float bv = scalar_b ? bn->value.at(0) : bn->value.at(i);
        gb.at(i) = -self->grad.at(i) * an->value.at(i) / (bv * bv);
      }
      Accumulate(bn.get(), gb);
    }
  });
}

Var SqrtV(const Var& a) {
  auto an = a.node();
  Tensor y(a.value().shape());
  for (int i = 0; i < y.size(); ++i) {
    y.at(i) = std::sqrt(std::max(a.value().at(i), 1e-12f));
  }
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      g.at(i) = self->grad.at(i) * 0.5f / std::max(self->value.at(i),
                                                   1e-6f);
    }
    Accumulate(an.get(), g);
  });
}

Var AbsV(const Var& a) {
  auto an = a.node();
  Tensor y(a.value().shape());
  for (int i = 0; i < y.size(); ++i) y.at(i) = std::abs(a.value().at(i));
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      const float x = an->value.at(i);
      g.at(i) = x > 0.0f ? self->grad.at(i)
                         : (x < 0.0f ? -self->grad.at(i) : 0.0f);
    }
    Accumulate(an.get(), g);
  });
}

Var ClampV(const Var& a, float lo, float hi) {
  VSD_CHECK(lo <= hi) << "ClampV bounds";
  auto an = a.node();
  Tensor y(a.value().shape());
  for (int i = 0; i < y.size(); ++i) {
    y.at(i) = std::clamp(a.value().at(i), lo, hi);
  }
  return MakeOp(y, {an}, [an, lo, hi](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      const float x = an->value.at(i);
      g.at(i) = (x > lo && x < hi) ? self->grad.at(i) : 0.0f;
    }
    Accumulate(an.get(), g);
  });
}

int ConvOutDim(int in, int k, int stride, int pad) {
  return (in + 2 * pad - k) / stride + 1;
}

Var Im2Col(const Var& x, int kh, int kw, int stride, int pad) {
  VSD_CHECK(x.value().ndim() == 4) << "Im2Col requires [N,H,W,C]";
  const int n = x.value().dim(0);
  const int h = x.value().dim(1);
  const int w = x.value().dim(2);
  const int c = x.value().dim(3);
  const int oh = ConvOutDim(h, kh, stride, pad);
  const int ow = ConvOutDim(w, kw, stride, pad);
  VSD_CHECK(oh > 0 && ow > 0) << "Im2Col degenerate output";
  Tensor cols({n * oh * ow, kh * kw * c});
  t::kernels::Im2ColInto(x.value().data(), cols.data(), n, h, w, c, kh, kw,
                         stride, pad);
  auto xn = x.node();
  return MakeOp(cols, {xn},
                [xn, n, c, h, w, oh, ow, kh, kw, stride, pad](Node* self) {
                  if (!xn->requires_grad) return;
                  Tensor g({n, h, w, c});
                  for (int b = 0; b < n; ++b) {
                    for (int oy = 0; oy < oh; ++oy) {
                      for (int ox = 0; ox < ow; ++ox) {
                        const int row = (b * oh + oy) * ow + ox;
                        int col = 0;
                        for (int ky = 0; ky < kh; ++ky) {
                          const int iy = oy * stride + ky - pad;
                          for (int kx = 0; kx < kw; ++kx) {
                            const int ix = ox * stride + kx - pad;
                            for (int ch = 0; ch < c; ++ch, ++col) {
                              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                                g.at4(b, iy, ix, ch) +=
                                    self->grad.at(row, col);
                              }
                            }
                          }
                        }
                      }
                    }
                  }
                  Accumulate(xn.get(), g);
                });
}

Var SoftmaxRowsV(const Var& logits) {
  VSD_CHECK(logits.value().ndim() == 2) << "SoftmaxRowsV requires 2-D";
  Tensor probs = t::SoftmaxRows(logits.value());
  const int n = probs.dim(0);
  const int c = probs.dim(1);
  auto ln = logits.node();
  return MakeOp(probs, {ln}, [ln, n, c](Node* self) {
    Tensor g({n, c});
    for (int i = 0; i < n; ++i) {
      float dot = 0.0f;
      for (int j = 0; j < c; ++j) {
        dot += self->grad.at(i, j) * self->value.at(i, j);
      }
      for (int j = 0; j < c; ++j) {
        g.at(i, j) = self->value.at(i, j) * (self->grad.at(i, j) - dot);
      }
    }
    Accumulate(ln.get(), g);
  });
}

Var LayerNormRows(const Var& x, const Var& gamma, const Var& beta,
                  float eps) {
  VSD_CHECK(x.value().ndim() == 2) << "LayerNormRows requires 2-D";
  const int n = x.value().dim(0);
  const int d = x.value().dim(1);
  VSD_CHECK(gamma.value().size() == d && beta.value().size() == d)
      << "LayerNorm parameter size";
  Tensor y({n, d});
  Tensor xhat({n, d});
  std::vector<float> inv_std(n);
  for (int i = 0; i < n; ++i) {
    float mu = 0.0f;
    for (int j = 0; j < d; ++j) mu += x.value().at(i, j);
    mu /= static_cast<float>(d);
    float var = 0.0f;
    for (int j = 0; j < d; ++j) {
      const float diff = x.value().at(i, j) - mu;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    inv_std[i] = 1.0f / std::sqrt(var + eps);
    for (int j = 0; j < d; ++j) {
      xhat.at(i, j) = (x.value().at(i, j) - mu) * inv_std[i];
      y.at(i, j) = xhat.at(i, j) * gamma.value().at(j) + beta.value().at(j);
    }
  }
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return MakeOp(y, {xn, gn, bn},
                [xn, gn, bn, xhat, inv_std, n, d](Node* self) {
    if (gn->requires_grad) {
      Tensor gg({d});
      for (int j = 0; j < d; ++j) {
        float s = 0.0f;
        for (int i = 0; i < n; ++i) s += self->grad.at(i, j) * xhat.at(i, j);
        gg.at(j) = s;
      }
      Accumulate(gn.get(), gg);
    }
    if (bn->requires_grad) {
      Tensor gb({d});
      for (int j = 0; j < d; ++j) {
        float s = 0.0f;
        for (int i = 0; i < n; ++i) s += self->grad.at(i, j);
        gb.at(j) = s;
      }
      Accumulate(bn.get(), gb);
    }
    if (xn->requires_grad) {
      Tensor gx({n, d});
      for (int i = 0; i < n; ++i) {
        // dL/dxhat = g * gamma; standard layernorm backward.
        float sum_dxhat = 0.0f;
        float sum_dxhat_xhat = 0.0f;
        for (int j = 0; j < d; ++j) {
          const float dxhat = self->grad.at(i, j) * gn->value.at(j);
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xhat.at(i, j);
        }
        for (int j = 0; j < d; ++j) {
          const float dxhat = self->grad.at(i, j) * gn->value.at(j);
          gx.at(i, j) = inv_std[i] *
                        (dxhat - (sum_dxhat +
                                  xhat.at(i, j) * sum_dxhat_xhat) /
                                     static_cast<float>(d));
        }
      }
      Accumulate(xn.get(), gx);
    }
  });
}

Var Softplus(const Var& a) {
  auto an = a.node();
  Tensor y(a.value().shape());
  for (int i = 0; i < y.size(); ++i) {
    const float x = a.value().at(i);
    y.at(i) = std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f);
  }
  return MakeOp(y, {an}, [an](Node* self) {
    Tensor g(self->grad.shape());
    for (int i = 0; i < g.size(); ++i) {
      const float x = an->value.at(i);
      const float sig = static_cast<float>(
          1.0 / (1.0 + std::exp(-static_cast<double>(x))));
      g.at(i) = self->grad.at(i) * sig;
    }
    Accumulate(an.get(), g);
  });
}

Var MulColumn(const Var& x, const Var& col) {
  VSD_CHECK(x.value().ndim() == 2 && col.value().ndim() == 2)
      << "MulColumn requires 2-D";
  const int n = x.value().dim(0);
  const int d = x.value().dim(1);
  VSD_CHECK(col.value().dim(0) == n && col.value().dim(1) == 1)
      << "MulColumn column shape";
  Tensor y({n, d});
  for (int i = 0; i < n; ++i) {
    const float c = col.value().at(i, 0);
    for (int j = 0; j < d; ++j) y.at(i, j) = x.value().at(i, j) * c;
  }
  auto xn = x.node();
  auto cn = col.node();
  return MakeOp(y, {xn, cn}, [xn, cn, n, d](Node* self) {
    if (xn->requires_grad) {
      Tensor gx({n, d});
      for (int i = 0; i < n; ++i) {
        const float c = cn->value.at(i, 0);
        for (int j = 0; j < d; ++j) gx.at(i, j) = self->grad.at(i, j) * c;
      }
      Accumulate(xn.get(), gx);
    }
    if (cn->requires_grad) {
      Tensor gc({n, 1});
      for (int i = 0; i < n; ++i) {
        float s = 0.0f;
        for (int j = 0; j < d; ++j) {
          s += self->grad.at(i, j) * xn->value.at(i, j);
        }
        gc.at(i, 0) = s;
      }
      Accumulate(cn.get(), gc);
    }
  });
}

Var RowSum(const Var& x) {
  VSD_CHECK(x.value().ndim() == 2) << "RowSum requires 2-D";
  const int n = x.value().dim(0);
  const int d = x.value().dim(1);
  Tensor y({n, 1});
  for (int i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int j = 0; j < d; ++j) s += x.value().at(i, j);
    y.at(i, 0) = s;
  }
  auto xn = x.node();
  return MakeOp(y, {xn}, [xn, n, d](Node* self) {
    Tensor g({n, d});
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) g.at(i, j) = self->grad.at(i, 0);
    }
    Accumulate(xn.get(), g);
  });
}

Var MeanRows(const Var& x) {
  VSD_CHECK(x.value().ndim() == 2) << "MeanRows requires 2-D";
  const int n = x.value().dim(0);
  const int d = x.value().dim(1);
  Tensor y({1, d});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      y.at(0, j) += x.value().at(i, j) / static_cast<float>(n);
    }
  }
  auto xn = x.node();
  return MakeOp(y, {xn}, [xn, n, d](Node* self) {
    Tensor g({n, d});
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) {
        g.at(i, j) = self->grad.at(0, j) / static_cast<float>(n);
      }
    }
    Accumulate(xn.get(), g);
  });
}

}  // namespace vsd::autograd
