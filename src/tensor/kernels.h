#ifndef VSD_TENSOR_KERNELS_H_
#define VSD_TENSOR_KERNELS_H_

#include <cstdint>

namespace vsd::tensor::kernels {

// ---- Shared compute kernels (backend-dispatched) ----
//
// Every op that appears both in the eager tensor/autograd forward pass and
// in the compiled graph executor (`nn::graph`) is reached exactly once
// through the entry points below, which dispatch through the
// KernelRegistry (tensor/registry.h) keyed by (OpKind, DType, Backend).
// Bit-identity between the execution modes is therefore structural: both
// resolve to the same registered kernel for a given backend, and every
// non-scalar backend is required to be bit-identical to the scalar
// reference (fixed k-order accumulation, separate mul/add rounding — see
// docs/INTERNALS.md "Kernel registry, dtypes & backends").
// `tests/graph_exec_test.cc` and `tests/quant_test.cc` pin the contract.
//
// Kernels fully define their output range (zero-initializing first where
// the loop accumulates or writes sparsely), so callers may hand them
// arbitrary dirty memory — e.g. a reused arena slot. Dispatch is a fixed
// array lookup: no heap allocation, safe inside Execute's zero-allocation
// contract.

/// [M,K]x[K,N] -> [M,N] with rows of zeros in `a` skipped (the one-hot /
/// sparse-mask fast path the eager MatMul relies on).
void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n);

/// [M,K]x[K,N] -> [M,N] where b is int8 row-quantized: bq[p*n+j] with
/// per-k-row scale/zero_point (tensor/quant.h format). Dequantizes inline
/// in the same fixed k-order as the fp32 kernel and accumulates in fp32,
/// so the result is bit-identical to MatMulInto over the dequantized b.
void MatMulI8Into(const float* a, const int8_t* bq, const float* bscale,
                  const int32_t* bzero, float* out, int m, int k, int n);

/// Row-broadcast sum: out[i,j] = a[i,j] + bias[j] for a [rows,cols].
void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols);

/// Element-wise maps over `n` contiguous floats.
void ReluInto(const float* x, float* out, int n);
void TanhInto(const float* x, float* out, int n);
void SigmoidInto(const float* x, float* out, int n);
/// GELU, tanh approximation — the only form the model uses.
void GeluInto(const float* x, float* out, int n);

/// Row-wise concat of a [rows,da] and b [rows,db] into out [rows,da+db].
void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db);

/// im2col over NHWC input x [n,h,w,c] into out [n*oh*ow, kh*kw*c] where
/// oh/ow follow `autograd::ConvOutDim`. Out-of-bounds taps read as zero.
void Im2ColInto(const float* x, float* out, int n, int h, int w, int c,
                int kh, int kw, int stride, int pad);

}  // namespace vsd::tensor::kernels

#endif  // VSD_TENSOR_KERNELS_H_
