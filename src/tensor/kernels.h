#ifndef VSD_TENSOR_KERNELS_H_
#define VSD_TENSOR_KERNELS_H_

namespace vsd::tensor::kernels {

// ---- Shared raw-pointer compute kernels ----
//
// Every op that appears both in the eager tensor/autograd forward pass and
// in the compiled graph executor (`nn::graph`) is implemented exactly once
// here and called from both places. Bit-identity between the two execution
// modes is therefore structural: there is a single compiled instance of
// each accumulation loop, so no amount of compiler freedom (FMA
// contraction, reassociation within one translation unit) can make the
// paths diverge. `tests/graph_exec_test.cc` pins the contract.
//
// Kernels fully define their output range (zero-initializing first where
// the loop accumulates or writes sparsely), so callers may hand them
// arbitrary dirty memory — e.g. a reused arena slot.

/// [M,K]x[K,N] -> [M,N] with rows of zeros in `a` skipped (the one-hot /
/// sparse-mask fast path the eager MatMul relies on).
void MatMulInto(const float* a, const float* b, float* out, int m, int k,
                int n);

/// Row-broadcast sum: out[i,j] = a[i,j] + bias[j] for a [rows,cols].
void AddRowsInto(const float* a, const float* bias, float* out, int rows,
                 int cols);

/// Element-wise maps over `n` contiguous floats.
void ReluInto(const float* x, float* out, int n);
void TanhInto(const float* x, float* out, int n);
void SigmoidInto(const float* x, float* out, int n);
/// GELU, tanh approximation — the only form the model uses.
void GeluInto(const float* x, float* out, int n);

/// Row-wise concat of a [rows,da] and b [rows,db] into out [rows,da+db].
void ConcatRowsInto(const float* a, const float* b, float* out, int rows,
                    int da, int db);

/// im2col over NHWC input x [n,h,w,c] into out [n*oh*ow, kh*kw*c] where
/// oh/ow follow `autograd::ConvOutDim`. Out-of-bounds taps read as zero.
void Im2ColInto(const float* x, float* out, int n, int h, int w, int c,
                int kh, int kw, int stride, int pad);

}  // namespace vsd::tensor::kernels

#endif  // VSD_TENSOR_KERNELS_H_
