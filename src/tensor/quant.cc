#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vsd::tensor {

namespace {
constexpr int kQMin = -128;
constexpr int kQMax = 127;
}  // namespace

RowQuant QuantizeRowInt8(const float* x, int n, int8_t* q) {
  VSD_CHECK(n > 0) << "QuantizeRowInt8: empty row";
  // Widen the range to include zero so the zero-point lands inside
  // [kQMin, kQMax] and a true 0.0f input survives the round trip exactly
  // (the MatMul zero-row fast path depends on zeros staying zeros).
  float lo = 0.0f;
  float hi = 0.0f;
  for (int i = 0; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  RowQuant params;
  const float range = hi - lo;
  params.scale =
      range > 0.0f ? range / static_cast<float>(kQMax - kQMin) : 1.0f;
  params.zero_point = static_cast<int32_t>(
      kQMin - std::lround(static_cast<double>(lo / params.scale)));
  params.zero_point = std::clamp(params.zero_point, kQMin, kQMax);
  for (int i = 0; i < n; ++i) {
    const long v =
        std::lround(static_cast<double>(x[i] / params.scale)) +
        params.zero_point;
    q[i] = static_cast<int8_t>(std::clamp<long>(v, kQMin, kQMax));
  }
  return params;
}

void DequantizeRowInt8(const int8_t* q, int n, float scale,
                       int32_t zero_point, float* out) {
  for (int i = 0; i < n; ++i) {
    out[i] =
        scale * static_cast<float>(static_cast<int32_t>(q[i]) - zero_point);
  }
}

}  // namespace vsd::tensor
