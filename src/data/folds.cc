#include "data/folds.h"

#include <map>

#include "common/logging.h"

namespace vsd::data {

namespace {

/// Indices grouped by stress label, each group shuffled.
std::map<int, std::vector<int>> GroupByLabel(const Dataset& dataset,
                                             Rng* rng) {
  std::map<int, std::vector<int>> groups;
  for (int i = 0; i < dataset.size(); ++i) {
    groups[dataset.samples[i].stress_label].push_back(i);
  }
  for (auto& [label, indices] : groups) rng->Shuffle(&indices);
  return groups;
}

}  // namespace

std::vector<Split> StratifiedKFold(const Dataset& dataset, int k, Rng* rng) {
  VSD_CHECK(k >= 2) << "k-fold needs k >= 2";
  VSD_CHECK(dataset.size() >= k) << "fewer samples than folds";
  auto groups = GroupByLabel(dataset, rng);

  std::vector<std::vector<int>> folds(k);
  for (auto& [label, indices] : groups) {
    for (size_t i = 0; i < indices.size(); ++i) {
      folds[i % k].push_back(indices[i]);
    }
  }
  std::vector<Split> splits(k);
  for (int f = 0; f < k; ++f) {
    splits[f].test = folds[f];
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      splits[f].train.insert(splits[f].train.end(), folds[other].begin(),
                             folds[other].end());
    }
    rng->Shuffle(&splits[f].train);
  }
  return splits;
}

Split StratifiedHoldout(const Dataset& dataset, double test_fraction,
                        Rng* rng) {
  VSD_CHECK(test_fraction > 0.0 && test_fraction < 1.0)
      << "test_fraction must be in (0,1)";
  auto groups = GroupByLabel(dataset, rng);
  Split split;
  for (auto& [label, indices] : groups) {
    const int n_test =
        std::max(1, static_cast<int>(indices.size() * test_fraction));
    for (size_t i = 0; i < indices.size(); ++i) {
      if (static_cast<int>(i) < n_test) {
        split.test.push_back(indices[i]);
      } else {
        split.train.push_back(indices[i]);
      }
    }
  }
  rng->Shuffle(&split.train);
  return split;
}

}  // namespace vsd::data
