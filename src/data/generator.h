#ifndef VSD_DATA_GENERATOR_H_
#define VSD_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/sample.h"

namespace vsd::data {

/// \brief Configuration for the synthetic stress-dataset generator.
///
/// The generative process follows the stress-AU literature the paper builds
/// on ([14,15] and the UVSD construction in Zhang et al.): a latent stress
/// state drives class-conditional facial action unit activations (tension
/// AUs under stress, enjoyment AUs otherwise); faces are rendered from
/// those activations; the recorded label equals the latent state except for
/// a small annotation-noise fraction. `au_gap` scales how separable the
/// class-conditional AU distributions are, which (with `label_noise`) sets
/// the achievable ceiling — tuned so UVSD-sim is easier than RSL-sim, as in
/// the paper.
struct StressGenConfig {
  std::string name = "stress-sim";
  int num_samples = 500;
  int num_subjects = 40;
  int num_stressed = 220;
  /// 1.0 = full class separation of AU activation probabilities; smaller
  /// values interpolate toward the unstressed profile.
  double au_gap = 1.0;
  /// Stddev of per-subject logit offsets on AU activation probabilities.
  double subject_sigma = 0.6;
  /// Fraction of recorded labels flipped relative to the latent state.
  double label_noise = 0.015;
  /// Pixel noise of the renderer.
  float render_noise = 0.035f;
  /// Probability that each non-profile AU fires spuriously.
  double distractor_rate = 0.06;
  /// Expressiveness of the least expressive frame (f_l).
  float neutral_scale = 0.15f;
  /// Probability that a *stressed* subject socially masks with a smile
  /// (AU6+AU12 activated on top of the tension pattern). High in
  /// deception footage (RSL): liars smile, which fools generic
  /// negative-emotion detectors but not AU-pattern models.
  double masking_rate = 0.0;
  uint64_t seed = 1234;
};

/// Generates a stress dataset per `config`.
Dataset GenerateStressDataset(const StressGenConfig& config);

/// UVSD simulation: 2092 samples, 112 subjects, 920 stressed (Sec. IV-A).
Dataset MakeUvsdSim(uint64_t seed = 20250601);

/// RSL simulation: 706 samples, 60 subjects, 209 stressed, harder regime.
Dataset MakeRslSim(uint64_t seed = 20250602);

/// Smaller variants for unit tests / quick examples (same distributions).
Dataset MakeUvsdSimSmall(int num_samples, uint64_t seed = 7);
Dataset MakeRslSimSmall(int num_samples, uint64_t seed = 8);

/// DISFA+ simulation: 645 AU-annotated videos over 12 AUs drawn from
/// prototypical expression combinations (no stress labels).
Dataset MakeDisfaSim(uint64_t seed = 20250603, int num_samples = 645);

/// Web-scale emotion corpus used for generalist (API-model) pretraining:
/// the same AU prototype distribution as DISFA-sim but with the domain
/// shift of in-the-wild imagery — stronger sensor noise and wider
/// lighting variation than lab-recorded video.
Dataset MakeWebEmotionCorpus(uint64_t seed, int num_samples);

/// Class-conditional AU activation probability for one AU given the latent
/// stress state (before subject offsets); exposed for tests and analysis.
double AuActivationProbability(int au_index, bool stressed, double au_gap);


/// \brief Frame augmentation for describe tuning: each video sample in a
/// real AU dataset contributes many annotated frames, not just one. This
/// re-renders each sample `copies` extra times (same AU activations and
/// identity, fresh lighting/noise), mimicking sampling additional frames
/// from the same clip.
Dataset AugmentFrames(const Dataset& dataset, int copies, uint64_t seed);

}  // namespace vsd::data

#endif  // VSD_DATA_GENERATOR_H_
