#ifndef VSD_DATA_FOLDS_H_
#define VSD_DATA_FOLDS_H_

#include <vector>

#include "common/rng.h"
#include "data/sample.h"

namespace vsd::data {

/// One train/test split by sample index.
struct Split {
  std::vector<int> train;
  std::vector<int> test;
};

/// \brief Stratified k-fold cross-validation splits.
///
/// Samples of each stress label are shuffled and dealt round-robin into `k`
/// folds so every fold preserves the class balance (the paper reports
/// 10-fold CV averages). Unlabeled samples are distributed round-robin.
std::vector<Split> StratifiedKFold(const Dataset& dataset, int k, Rng* rng);

/// Random stratified train/test split with the given test fraction.
Split StratifiedHoldout(const Dataset& dataset, double test_fraction,
                        Rng* rng);

}  // namespace vsd::data

#endif  // VSD_DATA_FOLDS_H_
