#include "data/sample.h"

#include <cmath>
#include <set>
#include <string>

namespace vsd::data {

Status ValidateFrame(const img::Image& frame, const char* what) {
  if (frame.width() <= 0 || frame.height() <= 0) {
    return Status::InvalidArgument(std::string(what) + " is empty (" +
                                   std::to_string(frame.width()) + "x" +
                                   std::to_string(frame.height()) + ")");
  }
  const std::vector<float>& pixels = frame.pixels();
  for (size_t i = 0; i < pixels.size(); ++i) {
    if (!std::isfinite(pixels[i])) {
      return Status::InvalidArgument(std::string(what) +
                                     " has a non-finite pixel at index " +
                                     std::to_string(i));
    }
  }
  return Status::OK();
}

Status ValidateSample(const VideoSample& sample) {
  VSD_RETURN_IF_ERROR(ValidateFrame(sample.expressive_frame,
                                    "expressive frame"));
  return ValidateFrame(sample.neutral_frame, "neutral frame");
}

int Dataset::CountLabel(int label) const {
  int n = 0;
  for (const auto& s : samples) n += (s.stress_label == label);
  return n;
}

int Dataset::CountSubjects() const {
  std::set<int> subjects;
  for (const auto& s : samples) subjects.insert(s.subject_id);
  return static_cast<int>(subjects.size());
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  Dataset out;
  out.name = name;
  out.samples.reserve(indices.size());
  for (int i : indices) out.samples.push_back(samples[i]);
  return out;
}

}  // namespace vsd::data
