#include "data/sample.h"

#include <set>

namespace vsd::data {

int Dataset::CountLabel(int label) const {
  int n = 0;
  for (const auto& s : samples) n += (s.stress_label == label);
  return n;
}

int Dataset::CountSubjects() const {
  std::set<int> subjects;
  for (const auto& s : samples) subjects.insert(s.subject_id);
  return static_cast<int>(subjects.size());
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  Dataset out;
  out.name = name;
  out.samples.reserve(indices.size());
  for (int i : indices) out.samples.push_back(samples[i]);
  return out;
}

}  // namespace vsd::data
