#ifndef VSD_DATA_CLIP_H_
#define VSD_DATA_CLIP_H_

#include <vector>

#include "common/rng.h"
#include "data/sample.h"
#include "face/renderer.h"
#include "img/image.h"

namespace vsd::data {

/// \brief A multi-frame video clip before frame selection.
///
/// The paper (Sec. IV-H, following Zhang et al.) does not feed whole
/// videos to the model: it extracts the most expressive frame f_e and the
/// least expressive frame f_l. The main generators bake that reduction in;
/// this type exposes the *full* pipeline — clip in, frame pair out — for
/// users bringing their own frame sequences.
struct VideoClip {
  int id = 0;
  int subject_id = 0;
  std::vector<img::Image> frames;
  std::vector<face::FaceParams> frame_params;  ///< Generative ground truth.
  int stress_label = kNoStressLabel;
};

/// Expressiveness score of a frame: total geometric displacement of the
/// detected landmarks from the subject's neutral configuration (no model
/// needed; mirrors the facial-emotion-recognition scoring TSDNet uses to
/// pick its frames).
double ExpressivenessScore(const face::FaceParams& params,
                           float landmark_noise, Rng* rng);

/// Reduces a clip to a `VideoSample` by picking the most expressive frame
/// as f_e and the least expressive as f_l. Requires >= 2 frames.
VideoSample SelectFramePair(const VideoClip& clip, float landmark_noise,
                            Rng* rng);

/// Generates a synthetic stress clip: the subject's AU intensities ramp
/// up to a peak and decay over `num_frames`, rendered per frame.
VideoClip MakeStressClip(int id, int subject_id,
                         const face::Identity& identity,
                         const std::array<float, face::kNumAus>&
                             peak_intensity,
                         int stress_label, int num_frames, Rng* rng);

}  // namespace vsd::data

#endif  // VSD_DATA_CLIP_H_
