#ifndef VSD_DATA_SAMPLE_H_
#define VSD_DATA_SAMPLE_H_

#include <array>
#include <string>
#include <vector>

#include "common/status.h"
#include "face/au.h"
#include "face/renderer.h"
#include "img/image.h"

namespace vsd::data {

/// Stress labels. DISFA-style AU datasets have no stress annotation.
inline constexpr int kUnstressed = 0;
inline constexpr int kStressed = 1;
inline constexpr int kNoStressLabel = -1;

/// \brief One video sample, reduced (as in the paper, following Zhang et
/// al.) to its most expressive frame `f_e` and least expressive frame
/// `f_l`.
///
/// `render_params` / `neutral_params` are the generative parameters. Models
/// must not read them directly; they exist so the *simulated landmark
/// detector* (face/landmarks.h) can produce realistic detector output, and
/// so tests can assert against ground truth.
struct VideoSample {
  int id = 0;
  int subject_id = 0;

  img::Image expressive_frame;  ///< f_e, 96x96.
  img::Image neutral_frame;     ///< f_l, 96x96.

  face::FaceParams render_params;   ///< Parameters behind f_e.
  face::FaceParams neutral_params;  ///< Parameters behind f_l.

  /// Ground-truth AU annotation (presence at intensity >= 0.3), as a human
  /// FACS coder would label the expressive frame.
  face::AuMask au_label{};
  /// Latent AU intensities that generated the sample.
  std::array<float, face::kNumAus> au_intensity{};

  /// kStressed / kUnstressed, or kNoStressLabel for AU-only datasets.
  int stress_label = kNoStressLabel;
};

/// Validates one inference input frame: non-empty (both dimensions > 0)
/// and every pixel finite. `what` names the frame in the error message.
/// Returns `InvalidArgument` on violation — degraded clips (the RSL
/// occlusion/noise regime, decoder failures) must surface as explicit
/// errors at the serving boundary, never as silently propagated NaN.
Status ValidateFrame(const img::Image& frame, const char* what);

/// Validates a sample for inference: both frames pass `ValidateFrame`.
Status ValidateSample(const VideoSample& sample);

/// A named collection of samples.
struct Dataset {
  std::string name;
  std::vector<VideoSample> samples;

  int size() const { return static_cast<int>(samples.size()); }

  /// Counts samples with the given stress label.
  int CountLabel(int label) const;

  /// Number of distinct subjects.
  int CountSubjects() const;

  /// Returns the subset of samples whose index is in `indices`.
  Dataset Subset(const std::vector<int>& indices) const;
};

}  // namespace vsd::data

#endif  // VSD_DATA_SAMPLE_H_
