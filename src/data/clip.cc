#include "data/clip.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "face/landmarks.h"

namespace vsd::data {

double ExpressivenessScore(const face::FaceParams& params,
                           float landmark_noise, Rng* rng) {
  // Distance of the (possibly jittered) landmarks from the same identity's
  // neutral landmarks.
  face::FaceParams neutral = params;
  neutral.au_intensity = {};
  const auto active = face::ExtractLandmarks(params, landmark_noise, rng);
  const auto rest = face::ExtractLandmarks(neutral, 0.0f, nullptr);
  double total = 0.0;
  for (size_t i = 0; i < active.size(); ++i) {
    const double dx = active[i].x - rest[i].x;
    const double dy = active[i].y - rest[i].y;
    total += std::sqrt(dx * dx + dy * dy);
  }
  return total;
}

VideoSample SelectFramePair(const VideoClip& clip, float landmark_noise,
                            Rng* rng) {
  VSD_CHECK(clip.frames.size() >= 2) << "clip needs at least 2 frames";
  VSD_CHECK(clip.frames.size() == clip.frame_params.size())
      << "clip frames/params mismatch";
  int most = 0;
  int least = 0;
  double best = -1.0;
  double worst = 1e300;
  for (size_t f = 0; f < clip.frames.size(); ++f) {
    const double score =
        ExpressivenessScore(clip.frame_params[f], landmark_noise, rng);
    if (score > best) {
      best = score;
      most = static_cast<int>(f);
    }
    if (score < worst) {
      worst = score;
      least = static_cast<int>(f);
    }
  }
  VideoSample sample;
  sample.id = clip.id;
  sample.subject_id = clip.subject_id;
  sample.stress_label = clip.stress_label;
  sample.expressive_frame = clip.frames[most];
  sample.render_params = clip.frame_params[most];
  sample.neutral_frame = clip.frames[least];
  sample.neutral_params = clip.frame_params[least];
  sample.au_intensity = clip.frame_params[most].au_intensity;
  for (int j = 0; j < face::kNumAus; ++j) {
    sample.au_label[j] = sample.au_intensity[j] >= 0.3f;
  }
  return sample;
}

VideoClip MakeStressClip(int id, int subject_id,
                         const face::Identity& identity,
                         const std::array<float, face::kNumAus>&
                             peak_intensity,
                         int stress_label, int num_frames, Rng* rng) {
  VSD_CHECK(num_frames >= 2) << "clip needs at least 2 frames";
  VideoClip clip;
  clip.id = id;
  clip.subject_id = subject_id;
  clip.stress_label = stress_label;
  clip.frames.reserve(num_frames);
  clip.frame_params.reserve(num_frames);
  // Expression envelope: onset -> peak (at ~2/3) -> partial decay, with
  // per-frame jitter.
  const double peak_at = 0.66 * (num_frames - 1);
  for (int f = 0; f < num_frames; ++f) {
    double envelope;
    if (f <= peak_at) {
      envelope = 0.15 + 0.85 * (f / std::max(peak_at, 1.0));
    } else {
      envelope = 1.0 - 0.5 * ((f - peak_at) / std::max(1.0, num_frames - 1 -
                                                                peak_at));
    }
    envelope = std::clamp(envelope + rng->Normal(0.0, 0.05), 0.0, 1.0);
    face::FaceParams params;
    params.identity = identity;
    params.lighting = static_cast<float>(rng->Uniform(0.9, 1.1));
    params.noise_stddev = 0.035f;
    for (int j = 0; j < face::kNumAus; ++j) {
      params.au_intensity[j] =
          static_cast<float>(peak_intensity[j] * envelope);
    }
    clip.frame_params.push_back(params);
    clip.frames.push_back(face::RenderFace(params, rng));
  }
  return clip;
}

}  // namespace vsd::data
