#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace vsd::data {

namespace {

using face::kNumAus;

/// Base activation probabilities per AU, indexed by catalog order
/// {AU1, AU2, AU4, AU5, AU6, AU9, AU12, AU15, AU17, AU20, AU25, AU26}.
/// Stress raises tension AUs (1, 4, 9, 15, 17, 20) and suppresses the
/// enjoyment pair (6, 12) — per the facial-cue stress literature.
constexpr double kStressedP[kNumAus] = {0.70, 0.35, 0.80, 0.45, 0.06, 0.35,
                                        0.05, 0.60, 0.55, 0.60, 0.35, 0.25};
constexpr double kUnstressedP[kNumAus] = {0.10, 0.20, 0.05, 0.12, 0.72,
                                          0.03, 0.80, 0.05, 0.07, 0.05,
                                          0.35, 0.25};

double Logit(double p) { return std::log(p / (1.0 - p)); }

}  // namespace

/// Shared builder behind MakeDisfaSim / MakeWebEmotionCorpus.
Dataset internal_MakeAuDataset(uint64_t seed, int num_samples,
                               float render_noise, float lighting_lo,
                               float lighting_hi, const char* name);

double AuActivationProbability(int au_index, bool stressed, double au_gap) {
  VSD_CHECK(au_index >= 0 && au_index < kNumAus) << "AU index";
  const double pu = kUnstressedP[au_index];
  if (!stressed) return pu;
  const double ps = kStressedP[au_index];
  return pu + au_gap * (ps - pu);
}

Dataset GenerateStressDataset(const StressGenConfig& config) {
  // Degenerate configs are programming errors; reject them loudly here
  // rather than letting a 0-subject modulo or a 0-sample dataset surface as
  // a crash (or an empty clip) deep inside training or serving.
  VSD_CHECK(config.num_samples > 0)
      << "StressGenConfig.num_samples must be > 0, got "
      << config.num_samples;
  VSD_CHECK(config.num_subjects > 0)
      << "StressGenConfig.num_subjects must be > 0, got "
      << config.num_subjects;
  VSD_CHECK(config.num_stressed >= 0 &&
            config.num_stressed <= config.num_samples)
      << "StressGenConfig.num_stressed (" << config.num_stressed
      << ") must be in [0, num_samples=" << config.num_samples << "]";
  Rng rng(config.seed);

  // Per-subject identity and idiosyncratic AU propensity offsets.
  std::vector<face::Identity> identities(config.num_subjects);
  std::vector<std::array<double, kNumAus>> subject_offsets(
      config.num_subjects);
  for (int s = 0; s < config.num_subjects; ++s) {
    identities[s] = face::Identity::Sample(&rng);
    for (int a = 0; a < kNumAus; ++a) {
      subject_offsets[s][a] = rng.Normal(0.0, config.subject_sigma);
    }
  }

  // Latent stress assignment: exactly num_stressed latent-stressed samples,
  // spread across subjects.
  std::vector<int> latent(config.num_samples, kUnstressed);
  for (int i = 0; i < config.num_stressed; ++i) latent[i] = kStressed;
  rng.Shuffle(&latent);

  Dataset dataset;
  dataset.name = config.name;
  dataset.samples.reserve(config.num_samples);

  for (int i = 0; i < config.num_samples; ++i) {
    VideoSample sample;
    sample.id = i;
    sample.subject_id = i % config.num_subjects;
    const bool stressed = latent[i] == kStressed;
    const auto& offsets = subject_offsets[sample.subject_id];

    face::FaceParams params;
    params.identity = identities[sample.subject_id];
    params.lighting = static_cast<float>(rng.Uniform(0.88, 1.12));
    params.noise_stddev = config.render_noise;

    for (int a = 0; a < kNumAus; ++a) {
      double p = AuActivationProbability(a, stressed, config.au_gap);
      p = vsd::Sigmoid(Logit(vsd::Clamp(p, 0.02, 0.98)) + offsets[a]);
      bool active = rng.Bernoulli(p);
      // Spurious distractor activations blur the signal further.
      if (!active && rng.Bernoulli(config.distractor_rate)) active = true;
      if (active) {
        const double mean = stressed ? 0.68 : 0.62;
        params.au_intensity[a] = static_cast<float>(
            vsd::Clamp(rng.Normal(mean, 0.18), 0.30, 1.0));
      } else {
        // Sub-threshold micro-activity.
        params.au_intensity[a] = static_cast<float>(
            vsd::Clamp(rng.Normal(0.05, 0.05), 0.0, 0.25));
      }
    }

    // Social masking: some stressed subjects overlay a smile.
    if (stressed && rng.Bernoulli(config.masking_rate)) {
      for (int a : {4, 6}) {  // AU6, AU12
        params.au_intensity[a] = std::max(
            params.au_intensity[a],
            static_cast<float>(vsd::Clamp(rng.Normal(0.55, 0.1), 0.30,
                                          1.0)));
      }
    }

    sample.render_params = params;
    sample.au_intensity = params.au_intensity;
    for (int a = 0; a < kNumAus; ++a) {
      sample.au_label[a] = params.au_intensity[a] >= 0.3f;
    }
    sample.expressive_frame = face::RenderFace(params, &rng);

    face::FaceParams neutral = params.WithExpressiveness(
        config.neutral_scale +
        static_cast<float>(rng.Uniform(0.0, 0.1)));
    sample.neutral_params = neutral;
    sample.neutral_frame = face::RenderFace(neutral, &rng);

    sample.stress_label = stressed ? kStressed : kUnstressed;
    if (rng.Bernoulli(config.label_noise)) {
      sample.stress_label = 1 - sample.stress_label;
    }
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

Dataset MakeUvsdSim(uint64_t seed) {
  StressGenConfig config;
  config.name = "UVSD-sim";
  config.num_samples = 2092;
  config.num_subjects = 112;
  config.num_stressed = 920;
  config.au_gap = 1.0;
  config.subject_sigma = 0.40;
  config.label_noise = 0.012;
  config.render_noise = 0.035f;
  config.distractor_rate = 0.03;
  config.seed = seed;
  return GenerateStressDataset(config);
}

Dataset MakeRslSim(uint64_t seed) {
  // Harder: TV-show footage — weaker AU/stress coupling (liars conceal),
  // stronger subject idiosyncrasy, noisier frames, noisier labels,
  // imbalanced classes.
  StressGenConfig config;
  config.name = "RSL-sim";
  config.num_samples = 706;
  config.num_subjects = 60;
  config.num_stressed = 209;
  config.au_gap = 0.92;
  config.subject_sigma = 0.50;
  config.label_noise = 0.030;
  config.render_noise = 0.050f;
  config.distractor_rate = 0.05;
  config.masking_rate = 0.22;
  config.seed = seed;
  return GenerateStressDataset(config);
}

Dataset MakeUvsdSimSmall(int num_samples, uint64_t seed) {
  StressGenConfig config;
  config.name = "UVSD-sim-small";
  config.num_samples = num_samples;
  config.num_subjects = std::max(2, num_samples / 18);
  config.num_stressed = num_samples * 920 / 2092;
  config.au_gap = 1.0;
  config.subject_sigma = 0.40;
  config.label_noise = 0.012;
  config.render_noise = 0.035f;
  config.distractor_rate = 0.03;
  config.seed = seed;
  return GenerateStressDataset(config);
}

Dataset MakeRslSimSmall(int num_samples, uint64_t seed) {
  StressGenConfig config;
  config.name = "RSL-sim-small";
  config.num_samples = num_samples;
  config.num_subjects = std::max(2, num_samples / 12);
  config.num_stressed = num_samples * 209 / 706;
  config.au_gap = 0.92;
  config.subject_sigma = 0.50;
  config.label_noise = 0.030;
  config.render_noise = 0.050f;
  config.distractor_rate = 0.05;
  config.masking_rate = 0.22;
  config.seed = seed;
  return GenerateStressDataset(config);
}

Dataset MakeDisfaSim(uint64_t seed, int num_samples) {
  return internal_MakeAuDataset(seed, num_samples, /*render_noise=*/0.03f,
                                /*lighting_lo=*/0.9f, /*lighting_hi=*/1.1f,
                                "DISFA+-sim");
}

Dataset MakeWebEmotionCorpus(uint64_t seed, int num_samples) {
  // In-the-wild domain: noisier sensors, wider lighting.
  return internal_MakeAuDataset(seed, num_samples, /*render_noise=*/0.065f,
                                /*lighting_lo=*/0.78f, /*lighting_hi=*/1.22f,
                                "web-emotion-sim");
}

namespace {
Dataset internal_MakeAuDatasetImpl(uint64_t seed, int num_samples,
                                   float render_noise, float lighting_lo,
                                   float lighting_hi, const char* name);
}  // namespace

Dataset internal_MakeAuDataset(uint64_t seed, int num_samples,
                               float render_noise, float lighting_lo,
                               float lighting_hi, const char* name) {
  return internal_MakeAuDatasetImpl(seed, num_samples, render_noise,
                                    lighting_lo, lighting_hi, name);
}

namespace {
Dataset internal_MakeAuDatasetImpl(uint64_t seed, int num_samples,
                                   float render_noise, float lighting_lo,
                                   float lighting_hi, const char* name) {
  Rng rng(seed);
  // Prototypical AU combinations (FACS emotion prototypes) plus random
  // combinations, mirroring the posed+spontaneous mix of DISFA+.
  // Indices follow the catalog: {AU1,AU2,AU4,AU5,AU6,AU9,AU12,AU15,AU17,
  // AU20,AU25,AU26}.
  const std::vector<std::vector<int>> kPrototypes = {
      {4, 6},            // happiness: AU6+AU12
      {4, 6, 10},        // broad smile: AU6+AU12+AU25
      {0, 2, 7},         // sadness: AU1+AU4+AU15
      {0, 1, 3, 11},     // surprise: AU1+AU2+AU5+AU26
      {0, 1, 2, 3, 9},   // fear: AU1+AU2+AU4+AU5+AU20
      {5, 7, 8},         // disgust: AU9+AU15+AU17
      {2, 3, 8},         // anger: AU4+AU5+AU17
      {2},               // isolated brow lowerer
      {10, 11},          // jaw drop with lips part
      {},                // neutral
  };
  const int num_subjects = 27;
  std::vector<face::Identity> identities(num_subjects);
  for (auto& id : identities) id = face::Identity::Sample(&rng);

  Dataset dataset;
  dataset.name = name;
  dataset.samples.reserve(num_samples);
  for (int i = 0; i < num_samples; ++i) {
    VideoSample sample;
    sample.id = i;
    sample.subject_id = i % num_subjects;

    face::FaceParams params;
    params.identity = identities[sample.subject_id];
    params.lighting =
        static_cast<float>(rng.Uniform(lighting_lo, lighting_hi));
    params.noise_stddev = render_noise;

    // DISFA+ mixes spontaneous expressions with *posed* material: isolated
    // single AUs and experimenter-directed combinations. The mix below
    // (40% emotion prototypes, 30% single posed AUs, 30% independent
    // random combinations) is what lets a model learn per-AU visual
    // features instead of prototype co-occurrence priors.
    face::AuMask active{};
    const double mix = rng.Uniform();
    if (mix < 0.4) {
      const auto& proto = kPrototypes[rng.UniformInt(
          static_cast<int>(kPrototypes.size()))];
      for (int a : proto) active[a] = true;
      // Occasional extra/missing unit (spontaneous variation).
      if (rng.Bernoulli(0.25)) active[rng.UniformInt(kNumAus)] = true;
      if (rng.Bernoulli(0.15)) active[rng.UniformInt(kNumAus)] = false;
    } else if (mix < 0.7) {
      active[rng.UniformInt(kNumAus)] = true;  // posed single AU
    } else {
      for (int a = 0; a < kNumAus; ++a) active[a] = rng.Bernoulli(0.25);
    }

    for (int a = 0; a < kNumAus; ++a) {
      if (active[a]) {
        params.au_intensity[a] = static_cast<float>(
            vsd::Clamp(rng.Normal(0.7, 0.15), 0.30, 1.0));
      } else {
        params.au_intensity[a] = static_cast<float>(
            vsd::Clamp(rng.Normal(0.04, 0.04), 0.0, 0.25));
      }
    }
    sample.render_params = params;
    sample.au_intensity = params.au_intensity;
    for (int a = 0; a < kNumAus; ++a) {
      sample.au_label[a] = params.au_intensity[a] >= 0.3f;
    }
    sample.expressive_frame = face::RenderFace(params, &rng);
    face::FaceParams neutral = params.WithExpressiveness(0.1f);
    sample.neutral_params = neutral;
    sample.neutral_frame = face::RenderFace(neutral, &rng);
    sample.stress_label = kNoStressLabel;
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}
}  // namespace

}  // namespace vsd::data

namespace vsd::data {
Dataset AugmentFrames(const Dataset& dataset, int copies, uint64_t seed) {
  VSD_CHECK(copies >= 0) << "AugmentFrames copies must be >= 0, got "
                         << copies;
  Rng rng(seed);
  Dataset out;
  out.name = dataset.name + "+frames";
  out.samples.reserve(dataset.size() * (copies + 1));
  int next_id = 0;
  for (const auto& s : dataset.samples) next_id = std::max(next_id, s.id + 1);
  for (const auto& sample : dataset.samples) {
    out.samples.push_back(sample);
    for (int c = 0; c < copies; ++c) {
      VideoSample copy = sample;
      copy.id = next_id++;
      face::FaceParams params = sample.render_params;
      params.lighting = static_cast<float>(rng.Uniform(0.88, 1.12));
      copy.render_params = params;
      copy.expressive_frame = face::RenderFace(params, &rng);
      face::FaceParams neutral = sample.neutral_params;
      neutral.lighting = params.lighting;
      copy.neutral_params = neutral;
      copy.neutral_frame = face::RenderFace(neutral, &rng);
      out.samples.push_back(std::move(copy));
    }
  }
  return out;
}
}  // namespace vsd::data
