#ifndef VSD_LINT_CAPTURES_H_
#define VSD_LINT_CAPTURES_H_

#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace vsd::lint {

/// Rule `unguarded-capture`: a static race check over the lambdas handed to
/// `ParallelFor` / `ParallelMap` / `*.Submit(...)`. The loop body runs
/// concurrently, so any variable captured by reference and *written* inside
/// the body is a data race — and, because scheduling decides the write
/// order, a determinism bug — unless one of the sanctioned patterns holds:
///
///  * the write lands in a per-index slot (`out[i] = ...`, subscript
///    anywhere on the left-hand side);
///  * the target is body-local (declared inside the lambda, including loop
///    variables, structured bindings, and parameters);
///  * the target is a `std::atomic` (declared as such in this file) or the
///    write is an atomic member op (`fetch_add`, `store`, ...);
///  * the body takes a lock (`lock_guard` / `unique_lock` / `scoped_lock` /
///    explicit `.lock()`), which makes this checker stand down for the
///    whole lambda — lock-to-write matching is beyond a lexer;
///  * the capture is by value (writes hit a private copy).
///
/// Reference aliases to shared state (`auto& a = shared; a = 1;`) are a
/// known blind spot: the alias counts as a body-local. TSan remains the
/// dynamic backstop; this check exists to catch the common mistakes before
/// a nondeterministic bench ever runs.
void CheckUnguardedCaptures(const std::string& path, const LexResult& lex,
                            std::vector<Finding>* findings);

}  // namespace vsd::lint

#endif  // VSD_LINT_CAPTURES_H_
