#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace vsd::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Longest-match punctuator set. Only operators the rules care about need to
// be grouped correctly; everything else may fall through to single chars.
const char* const kPuncts3[] = {"<<=", ">>=", "...", "->*", "<=>"};
const char* const kPuncts2[] = {"::", "->", "==", "!=", "<=", ">=", "&&",
                                "||", "++", "--", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "<<", ">>"};

// Parses "vsd-lint: allow(rule-a, rule-b)" out of a comment body, if present.
void ParseSuppression(const std::string& comment, int line, LexResult* out) {
  const std::string kTag = "vsd-lint:";
  size_t tag = comment.find(kTag);
  if (tag == std::string::npos) return;
  size_t allow = comment.find("allow", tag + kTag.size());
  if (allow == std::string::npos) return;
  size_t open = comment.find('(', allow);
  if (open == std::string::npos) return;
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string rules = comment.substr(open + 1, close - open - 1);
  std::string cur;
  for (size_t i = 0; i <= rules.size(); ++i) {
    char c = i < rules.size() ? rules[i] : ',';
    if (c == ',' ) {
      if (!cur.empty()) out->suppressions[line].insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
}

// Length of a raw-string-literal prefix ("R\"", "u8R\"", "uR\"", "UR\"",
// "LR\"") starting at `i`, or 0 if none. Only these exact spellings open a
// raw string; anything else (e.g. `MACRO_R"..."`) is an identifier followed
// by an ordinary string literal under max munch.
size_t RawPrefixLen(const std::string& s, size_t i) {
  static const char* const kPrefixes[] = {"u8R\"", "uR\"", "UR\"", "LR\"",
                                          "R\""};
  for (const char* p : kPrefixes) {
    size_t len = std::char_traits<char>::length(p);
    if (s.compare(i, len, p) == 0) return len;
  }
  return 0;
}

// A raw-string delimiter is at most 16 chars and contains no parenthesis,
// backslash, quote, or whitespace. Invalid delimiters mean the `R"` was not
// actually opening a raw string (ill-formed or macro trickery) — the caller
// falls back to ordinary tokenization.
bool IsValidRawDelimiter(const std::string& delim) {
  if (delim.size() > 16) return false;
  for (char c : delim) {
    if (c == '(' || c == ')' || c == '\\' || c == '"' ||
        std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

}  // namespace

LexResult Lex(const std::string& source) {
  LexResult out;
  size_t i = 0;
  const size_t n = source.size();
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the last newline.

  auto push = [&](TokenKind kind, std::string text, bool is_float = false) {
    out.tokens.push_back(Token{kind, std::move(text), line, is_float});
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment: may carry a suppression annotation. A backslash
    // immediately before the newline splices the next physical line into
    // the comment (phase-2 line splicing happens before comments form), so
    // the comment only ends at an unescaped newline.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      int start_line = line;
      std::string body;
      size_t end = i + 2;
      while (end < n) {
        if (source[end] == '\\' && end + 1 < n && source[end + 1] == '\n') {
          ++line;
          end += 2;
          body += ' ';
          continue;
        }
        if (source[end] == '\n') break;
        body += source[end];
        ++end;
      }
      ParseSuppression(body, start_line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int start_line = line;
      size_t end = source.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      std::string body = source.substr(i, end - i);
      ParseSuppression(body, start_line, &out);
      for (char bc : body) {
        if (bc == '\n') ++line;
      }
      i = end;
      continue;
    }

    // Preprocessor directive: '#' first on the line; folds continuations.
    if (c == '#' && at_line_start) {
      int start_line = line;
      std::string text;
      while (i < n) {
        char d = source[i];
        if (d == '\\' && i + 1 < n && source[i + 1] == '\n') {
          ++line;
          i += 2;
          text += ' ';
          continue;
        }
        if (d == '\n') break;
        // A trailing // comment is not part of the directive.
        if (d == '/' && i + 1 < n &&
            (source[i + 1] == '/' || source[i + 1] == '*')) {
          break;
        }
        text += d;
        ++i;
      }
      // Trim trailing whitespace.
      while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
        text.pop_back();
      }
      out.directives.push_back(PpDirective{start_line, std::move(text)});
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // Raw string literal, with optional encoding prefix:
    // (u8|u|U|L)?R"delim( ... )delim". Without this check, `u8R"(...)"`
    // would lex as identifier `u8R` plus an ordinary string that terminates
    // at the first '"' inside the raw body.
    if (size_t plen = RawPrefixLen(source, i); plen > 0) {
      size_t quote = i + plen - 1;  // The '"' after the prefix.
      size_t paren = source.find('(', quote + 1);
      std::string delim = paren == std::string::npos
                              ? std::string()
                              : source.substr(quote + 1, paren - quote - 1);
      if (paren != std::string::npos && IsValidRawDelimiter(delim)) {
        std::string closer = ")" + delim + "\"";
        size_t end = source.find(closer, paren + 1);
        if (end == std::string::npos) end = n; else end += closer.size();
        for (size_t k = i; k < end; ++k) {
          if (source[k] == '\n') ++line;
        }
        push(TokenKind::kString, "");
        i = end;
        continue;
      }
    }

    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::string text;
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i];
          text += source[i + 1];
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;  // Unterminated; keep line count sane.
        text += source[i];
        ++i;
      }
      if (i < n) ++i;  // Closing quote.
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar, std::move(text));
      continue;
    }

    // Number: digit, or '.' followed by digit.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::string text;
      bool hex = c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X');
      while (i < n) {
        char d = source[i];
        // A digit separator is only part of the literal when digits (or hex
        // letters) continue after it; a bare trailing quote belongs to the
        // next token (e.g. a following char literal).
        bool take = std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
                    (d == '\'' && i + 1 < n &&
                     std::isalnum(static_cast<unsigned char>(source[i + 1])));
        // Exponent signs: 1e-3, 0x1p+2.
        if ((d == '+' || d == '-') && !text.empty()) {
          char prev = text.back();
          take = prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P';
        }
        if (!take) break;
        text += d;
        ++i;
      }
      bool is_float = false;
      if (!hex) {
        for (char d : text) {
          if (d == '.' || d == 'e' || d == 'E' || d == 'f' || d == 'F') {
            is_float = true;
            break;
          }
        }
      } else {
        for (char d : text) {
          if (d == '.' || d == 'p' || d == 'P') {
            is_float = true;
            break;
          }
        }
      }
      push(TokenKind::kNumber, std::move(text), is_float);
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      std::string text;
      while (i < n && IsIdentChar(source[i])) {
        text += source[i];
        ++i;
      }
      push(TokenKind::kIdentifier, std::move(text));
      continue;
    }

    // Punctuator, longest match first.
    bool matched = false;
    for (const char* p : kPuncts3) {
      if (source.compare(i, 3, p) == 0) {
        push(TokenKind::kPunct, p);
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPuncts2) {
      if (source.compare(i, 2, p) == 0) {
        push(TokenKind::kPunct, p);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokenKind::kPunct, std::string(1, c));
    ++i;
  }

  push(TokenKind::kEof, "");
  return out;
}

}  // namespace vsd::lint
