#ifndef VSD_LINT_ANNOTATIONS_H_
#define VSD_LINT_ANNOTATIONS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/dataflow.h"
#include "lint/lexer.h"
#include "lint/lint.h"

/// Annotation-enforced thread-safety and reference-invalidation analyses,
/// built on the dataflow engine (lint/dataflow.h). The annotation macros
/// themselves live in src/common/annotations.h and expand to nothing; this
/// module reads them back out of the token stream:
///
///  * guarded-by         — every read/write of a VSD_GUARDED_BY(mu) field
///                         must happen with mu held (guard declaration,
///                         manual lock/unlock window, or VSD_REQUIRES on
///                         the enclosing function); resolvable calls to
///                         VSD_REQUIRES functions without the lock, or to
///                         VSD_EXCLUDES functions with it, are findings.
///  * unannotated-mutex  — a std::mutex member in src/ whose class has no
///                         VSD_GUARDED_BY fields guards nothing the linter
///                         can check; annotate or allow() with a reason.
///  * ref-invalidation   — a reference/pointer/iterator bound into vector
///                         or Tensor storage that stays live across a
///                         mutating call on the same container
///                         (push_back/resize/Append/clear/...) — the
///                         static twin of the PR-7 Conv2d::BuildGraph
///                         use-after-free.
namespace vsd::lint {

/// One class/struct body recovered from the token stream. `name` is the
/// last component for nested definitions (`struct Outer::Inner`). Nested
/// extents all appear; innermost-containing wins for attribution.
struct ClassExtent {
  std::string name;
  int line = 0;
  size_t body_open = 0;   ///< Token index of the class body '{'.
  size_t body_close = 0;  ///< Token index of the matching '}'.
};

/// All class/struct definitions in a token stream (skips `enum class`,
/// forward declarations, and elaborated type specifiers).
std::vector<ClassExtent> FindClassExtents(const std::vector<Token>& toks);

/// Lock contract on one member function, parsed from trailing
/// VSD_REQUIRES/VSD_ACQUIRES/VSD_EXCLUDES annotations. Lock names are
/// canonical ("Replica::mu_").
struct MethodContract {
  std::set<std::string> requires_held;  ///< Caller must hold these.
  std::set<std::string> acquires;       ///< Acquired internally.
  std::set<std::string> excludes;       ///< Caller must NOT hold these.
};

struct MutexMember {
  std::string name;
  int line = 0;
};

/// Everything annotation-relevant about one class.
struct ClassAnnotations {
  std::string file;  ///< File the class body was found in.
  int line = 0;
  /// Field name -> canonical lock id required to touch it.
  std::map<std::string, std::string> guarded;
  /// Mutex-typed members (std::mutex / shared_mutex / recursive_mutex...).
  std::vector<MutexMember> mutexes;
  /// Method name -> lock contract.
  std::map<std::string, MethodContract> methods;
};

/// Whole-program index of annotations, keyed by class name. Classes with
/// the same name in different files merge (same policy as call resolution:
/// the tree keeps class names unique).
class AnnotationIndex {
 public:
  void AddFile(const std::string& path, const std::vector<Token>& toks);

  /// Annotations for `cls` (bare class name), or nullptr.
  const ClassAnnotations* ForClass(const std::string& cls) const;

  /// Contract for qualifier::name (qualifier matched by last component),
  /// or nullptr when the method carries no annotation.
  const MethodContract* ContractFor(const std::string& qualifier,
                                    const std::string& name) const;

  const std::map<std::string, ClassAnnotations>& classes() const {
    return classes_;
  }

 private:
  std::map<std::string, ClassAnnotations> classes_;
};

/// Index over every file already registered in `program`.
AnnotationIndex BuildAnnotationIndex(const DataflowProgram& program);

/// The guarded-by rule (see file comment).
std::vector<Finding> CheckGuardedBy(const DataflowProgram& program,
                                    const AnnotationIndex& index);

/// The unannotated-mutex rule: one finding per mutex member, at the mutex
/// declaration line, for src/ classes with zero VSD_GUARDED_BY fields.
std::vector<Finding> CheckUnannotatedMutex(const AnnotationIndex& index);

/// The ref-invalidation rule (see file comment).
std::vector<Finding> CheckRefInvalidation(const DataflowProgram& program);

}  // namespace vsd::lint

#endif  // VSD_LINT_ANNOTATIONS_H_
