#include "lint/annotations.h"

#include <algorithm>
#include <utility>

namespace vsd::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

/// Index of the "(" matching the ")" at `close`, or toks.size() when
/// unbalanced.
size_t MatchBackward(const std::vector<Token>& toks, size_t close) {
  int depth = 1;
  size_t k = close;
  while (k > 0 && depth > 0) {
    --k;
    if (toks[k].text == ")") ++depth;
    else if (toks[k].text == "(") --depth;
  }
  return depth == 0 ? k : toks.size();
}

/// Mutex-ish std type names whose members demand annotation.
const std::set<std::string>& MutexTypes() {
  static const std::set<std::string> kTypes = {
      "mutex",       "shared_mutex",       "recursive_mutex",
      "timed_mutex", "shared_timed_mutex",
  };
  return kTypes;
}

std::string LastComponent(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

}  // namespace

std::vector<ClassExtent> FindClassExtents(const std::vector<Token>& toks) {
  std::vector<ClassExtent> extents;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "class" && t != "struct") continue;
    if (i > 0 && toks[i - 1].text == "enum") continue;
    size_t j = i + 1;
    if (!IsIdent(toks[j])) continue;  // Anonymous — nothing to key on.
    std::string name = toks[j].text;
    ++j;
    while (j + 1 < toks.size() && toks[j].text == "::" &&
           IsIdent(toks[j + 1])) {
      name = toks[j + 1].text;  // `struct Outer::Inner` keys as "Inner".
      j += 2;
    }
    if (j < toks.size() && toks[j].text == "<") {
      j = SkipAngles(toks, j);  // Explicit specialization.
    }
    if (j < toks.size() && toks[j].text == "final") ++j;
    if (j < toks.size() && toks[j].text == ":") {  // Base clause.
      ++j;
      int angle = 0;
      bool ok = true;
      while (j < toks.size()) {
        const std::string& u = toks[j].text;
        if (angle == 0 && u == "{") break;
        if (angle == 0 && (u == ";" || u == ")" || u == "}")) {
          ok = false;  // Bit-field / ternary / mis-shape, not a base clause.
          break;
        }
        if (u == "<") ++angle;
        else if (u == ">") --angle;
        else if (u == ">>") angle -= 2;
        ++j;
      }
      if (!ok || j >= toks.size()) continue;
    }
    if (j >= toks.size() || toks[j].text != "{") continue;
    const size_t close = MatchForward(toks, j, "{", "}");
    if (close >= toks.size()) continue;
    extents.push_back(ClassExtent{name, toks[i].line, j, close});
  }
  return extents;
}

void AnnotationIndex::AddFile(const std::string& path,
                              const std::vector<Token>& toks) {
  const std::vector<ClassExtent> extents = FindClassExtents(toks);
  const std::vector<DfFunction> fns = ExtractFunctions(path, toks);

  auto innermost = [&](size_t k) -> const ClassExtent* {
    const ClassExtent* best = nullptr;
    for (const ClassExtent& c : extents) {
      if (k > c.body_open && k < c.body_close &&
          (best == nullptr || c.body_open > best->body_open)) {
        best = &c;
      }
    }
    return best;
  };
  auto in_function_body = [&](size_t k) {
    for (const DfFunction& f : fns) {
      if (k > f.body_open && k < f.body_close) return true;
    }
    return false;
  };
  auto cls_entry = [&](const std::string& name, int line) -> ClassAnnotations& {
    ClassAnnotations& ca = classes_[name];
    if (ca.file.empty()) {
      ca.file = path;
      ca.line = line;
    }
    return ca;
  };

  for (size_t k = 0; k + 1 < toks.size(); ++k) {
    if (!IsIdent(toks[k]) || toks[k + 1].text != "(") continue;
    const std::string& t = toks[k].text;

    if (t == "VSD_GUARDED_BY") {
      const size_t close = MatchForward(toks, k + 1, "(", ")");
      if (close >= toks.size()) continue;
      const std::string chain = WalkBackChain(toks, close - 1);
      const ClassExtent* c = innermost(k);
      if (c == nullptr || chain.empty() || k == 0 || !IsIdent(toks[k - 1])) {
        continue;
      }
      cls_entry(c->name, c->line).guarded[toks[k - 1].text] =
          c->name + "::" + chain;
      continue;
    }

    if (t == "VSD_REQUIRES" || t == "VSD_ACQUIRES" || t == "VSD_EXCLUDES") {
      const size_t close = MatchForward(toks, k + 1, "(", ")");
      if (close >= toks.size()) continue;
      const std::string chain = WalkBackChain(toks, close - 1);
      if (chain.empty()) continue;
      // Walk back over trailing specifiers (and earlier annotation macros)
      // to the ')' closing the parameter list, then to the method name.
      size_t j = k;
      while (j > 0) {
        const std::string& u = toks[j - 1].text;
        if (u == "const" || u == "override" || u == "final" || u == "&" ||
            u == "&&" || u == "noexcept") {
          --j;
          continue;
        }
        if (u == ")") break;
        j = 0;
        break;
      }
      if (j == 0) continue;
      size_t open = MatchBackward(toks, j - 1);
      // An earlier VSD_*(...) group is a specifier too: hop over it.
      while (open < toks.size() && open > 0 && IsIdent(toks[open - 1]) &&
             StartsWith(toks[open - 1].text, "VSD_")) {
        size_t m = open - 1;
        while (m > 0) {
          const std::string& u = toks[m - 1].text;
          if (u == "const" || u == "override" || u == "final" || u == "&" ||
              u == "&&" || u == "noexcept") {
            --m;
            continue;
          }
          break;
        }
        if (m == 0 || toks[m - 1].text != ")") {
          open = toks.size();
          break;
        }
        open = MatchBackward(toks, m - 1);
      }
      if (open >= toks.size() || open == 0 || !IsIdent(toks[open - 1])) {
        continue;
      }
      const size_t name_idx = open - 1;
      const std::string method = toks[name_idx].text;
      std::string cls;
      if (const ClassExtent* c = innermost(k)) {
        cls = c->name;
      } else if (name_idx >= 2 && toks[name_idx - 1].text == "::" &&
                 IsIdent(toks[name_idx - 2])) {
        cls = toks[name_idx - 2].text;  // Out-of-class definition.
      }
      if (cls.empty()) continue;
      MethodContract& mc =
          cls_entry(cls, toks[k].line).methods[method];
      const std::string id = cls + "::" + chain;
      if (t == "VSD_REQUIRES") mc.requires_held.insert(id);
      else if (t == "VSD_ACQUIRES") mc.acquires.insert(id);
      else mc.excludes.insert(id);
      continue;
    }
  }

  // Mutex-typed members (declaration shape `mutex name ;`, at class scope
  // but not inside a member-function body).
  for (size_t k = 1; k + 2 < toks.size(); ++k) {
    if (!IsIdent(toks[k]) || !MutexTypes().count(toks[k].text)) continue;
    if (!IsIdent(toks[k + 1]) || toks[k + 2].text != ";") continue;
    const std::string& prev = toks[k - 1].text;
    if (prev == "." || prev == "->") continue;
    const ClassExtent* c = innermost(k);
    if (c == nullptr || in_function_body(k)) continue;
    cls_entry(c->name, c->line)
        .mutexes.push_back(MutexMember{toks[k + 1].text, toks[k + 1].line});
  }
}

const ClassAnnotations* AnnotationIndex::ForClass(
    const std::string& cls) const {
  auto it = classes_.find(cls);
  return it == classes_.end() ? nullptr : &it->second;
}

const MethodContract* AnnotationIndex::ContractFor(
    const std::string& qualifier, const std::string& name) const {
  const ClassAnnotations* ca = ForClass(LastComponent(qualifier));
  if (ca == nullptr) return nullptr;
  auto it = ca->methods.find(name);
  return it == ca->methods.end() ? nullptr : &it->second;
}

AnnotationIndex BuildAnnotationIndex(const DataflowProgram& program) {
  AnnotationIndex index;
  for (const std::string& file : program.files()) {
    index.AddFile(file, program.tokens(file));
  }
  return index;
}

// ---------------------------------------------------------------------------
// guarded-by
// ---------------------------------------------------------------------------

namespace {

struct HeldLock {
  std::string id;
  std::string guard;  ///< Guard variable; empty for manual/REQUIRES holds.
  int depth = 0;
  bool manual = false;  ///< Manual or REQUIRES: never popped by scope exit.
};

std::string ShortLock(const std::string& id) {
  return LastComponent(id);
}

}  // namespace

std::vector<Finding> CheckGuardedBy(const DataflowProgram& program,
                                    const AnnotationIndex& index) {
  std::vector<Finding> findings;
  for (const DfFunction& fn : program.functions()) {
    const std::vector<Token>& toks = program.tokens(fn.file);
    const std::string cls = LastComponent(fn.qualifier);
    const ClassAnnotations* ca = index.ForClass(cls);
    const MethodContract* self = index.ContractFor(fn.qualifier, fn.name);
    // Constructors/destructors run before/after the object is shared;
    // field initialization there needs no lock.
    const bool ctor_like =
        !cls.empty() && (fn.name == cls || fn.name == "~" + cls);

    const std::set<std::string> locals =
        CollectBodyLocals(toks, fn.body_open, fn.body_close);
    std::vector<HeldLock> held;
    if (self != nullptr) {
      for (const std::string& id : self->requires_held) {
        held.push_back(HeldLock{id, "", 0, true});
      }
    }
    auto holds = [&](const std::string& id) {
      for (const HeldLock& h : held) {
        if (h.id == id) return true;
      }
      return false;
    };
    std::set<std::string> reported;
    int depth = 0;

    for (size_t k = fn.body_open + 1; k < fn.body_close && k < toks.size();
         ++k) {
      const std::string& t = toks[k].text;
      if (t == "{") {
        ++depth;
        continue;
      }
      if (t == "}") {
        --depth;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const HeldLock& h) {
                                    return !h.manual && h.depth > depth;
                                  }),
                   held.end());
        continue;
      }
      if (!IsIdent(toks[k])) continue;

      // Guard declaration acquires its mutex args for the scope.
      if (GuardTypes().count(t)) {
        size_t j = k + 1;
        if (j < toks.size() && toks[j].text == "<") j = SkipAngles(toks, j);
        if (j >= toks.size() || !IsIdent(toks[j])) continue;
        const std::string guard = toks[j].text;
        ++j;
        if (j >= toks.size() ||
            (toks[j].text != "(" && toks[j].text != "{")) {
          continue;
        }
        const bool paren = toks[j].text == "(";
        const size_t close = paren ? MatchForward(toks, j, "(", ")")
                                   : MatchForward(toks, j, "{", "}");
        for (const std::string& chain : GuardArgChains(toks, j, close)) {
          held.push_back(
              HeldLock{LockId(fn, locals, chain), guard, depth, false});
        }
        k = close;
        continue;
      }

      // Manual mu.lock()/unlock() windows (and guard-var relock/unlock).
      if ((t == "lock" || t == "lock_shared" || t == "unlock" ||
           t == "unlock_shared") &&
          k >= 2 && (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
          k + 1 < toks.size() && toks[k + 1].text == "(") {
        const std::string chain = WalkBackChain(toks, k - 2);
        if (chain.empty()) continue;
        const std::string id = LockId(fn, locals, chain);
        if (t == "lock" || t == "lock_shared") {
          bool is_guard = false;
          for (HeldLock& h : held) is_guard |= h.guard == chain;
          if (is_guard) continue;
          // Re-acquiring through a deferred/unlocked guard variable.
          bool relock = false;
          for (const HeldLock& h : held) relock |= h.id == id;
          if (!relock) held.push_back(HeldLock{id, "", depth, true});
        } else {
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const HeldLock& h) {
                                      return h.guard == chain || h.id == id;
                                    }),
                     held.end());
        }
        continue;
      }

      // Access to a VSD_GUARDED_BY field of this class.
      if (!ctor_like && ca != nullptr && ca->guarded.count(t) &&
          !locals.count(t) && !fn.params.count(t)) {
        const std::string& prev = toks[k - 1].text;
        const bool bare = prev != "." && prev != "->" && prev != "::";
        const bool via_this =
            prev == "->" && k >= 2 && toks[k - 2].text == "this";
        if (bare || via_this) {
          const std::string& required = ca->guarded.at(t);
          if (!holds(required)) {
            const std::string key =
                t + ":" + std::to_string(toks[k].line);
            if (reported.insert(key).second) {
              findings.push_back(Finding{
                  fn.file, toks[k].line, "guarded-by",
                  "'" + t + "' is VSD_GUARDED_BY(" + ShortLock(required) +
                      ") but " + fn.QualifiedName() +
                      " touches it without holding '" + required +
                      "'; take the lock, or mark the function VSD_REQUIRES(" +
                      ShortLock(required) + ") and fix its callers"});
            }
          }
          continue;
        }
      }

      // Resolvable call: enforce the callee's REQUIRES/EXCLUDES contract.
      if (k + 1 < toks.size() && toks[k + 1].text == "(" &&
          !HeadKeywords().count(t)) {
        const std::string& prev = toks[k - 1].text;
        const bool via_this =
            prev == "->" && k >= 2 && toks[k - 2].text == "this";
        if ((prev == "." || prev == "->") && !via_this) continue;
        if (prev == "::") {
          size_t e = k;
          while (e >= 2 && toks[e - 1].text == "::" && IsIdent(toks[e - 2])) {
            e -= 2;
          }
          static const std::set<std::string> kStdish = {
              "std", "chrono", "this_thread", "fs", "filesystem", "testing",
          };
          if (kStdish.count(toks[e].text)) continue;
        }
        for (const DfFunction* callee : program.Resolve(fn, t)) {
          const MethodContract* c2 =
              index.ContractFor(callee->qualifier, callee->name);
          if (c2 == nullptr) continue;
          for (const std::string& id : c2->requires_held) {
            if (holds(id)) continue;
            const std::string key =
                "req:" + t + ":" + id + ":" + std::to_string(toks[k].line);
            if (reported.insert(key).second) {
              findings.push_back(Finding{
                  fn.file, toks[k].line, "guarded-by",
                  "call to '" + callee->QualifiedName() +
                      "' which is VSD_REQUIRES(" + ShortLock(id) +
                      ") without holding '" + id +
                      "'; acquire the lock before the call"});
            }
          }
          for (const std::string& id : c2->excludes) {
            if (!holds(id)) continue;
            const std::string key =
                "exc:" + t + ":" + id + ":" + std::to_string(toks[k].line);
            if (reported.insert(key).second) {
              findings.push_back(Finding{
                  fn.file, toks[k].line, "guarded-by",
                  "call to '" + callee->QualifiedName() +
                      "' which is VSD_EXCLUDES(" + ShortLock(id) +
                      ") while holding '" + id +
                      "'; a non-recursive mutex self-deadlocks — release "
                      "before the call"});
            }
          }
        }
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// unannotated-mutex
// ---------------------------------------------------------------------------

std::vector<Finding> CheckUnannotatedMutex(const AnnotationIndex& index) {
  std::vector<Finding> findings;
  for (const auto& [cls, ca] : index.classes()) {
    if (!StartsWith(ca.file, "src/")) continue;
    if (ca.mutexes.empty() || !ca.guarded.empty()) continue;
    for (const MutexMember& mu : ca.mutexes) {
      findings.push_back(Finding{
          ca.file, mu.line, "unannotated-mutex",
          "class '" + cls + "' has a mutex member '" + mu.name +
              "' but no VSD_GUARDED_BY fields — the lock guards nothing "
              "the linter can check; annotate the fields it protects "
              "(common/annotations.h) or allow() with the reason it is "
              "not a data guard"});
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// ref-invalidation
// ---------------------------------------------------------------------------

namespace {

enum class ContKind {
  kInvalidating,  ///< Contiguous/reallocating storage (vector, Tensor...).
  kStable,        ///< Node-based: refs survive insert/erase (map, list...).
  kUnknown,
};

/// Declared container kinds, by variable/member name, over a whole file.
std::map<std::string, ContKind> DeclaredContainers(
    const std::vector<Token>& toks) {
  static const std::set<std::string> kContig = {
      "vector", "deque", "string", "basic_string", "Tensor",
  };
  static const std::set<std::string> kNode = {
      "map",           "set",
      "multimap",      "multiset",
      "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset",
      "list",          "forward_list",
      "array",  // Fixed storage: never reallocates.
  };
  std::map<std::string, ContKind> kinds;
  for (size_t k = 0; k + 1 < toks.size(); ++k) {
    if (!IsIdent(toks[k])) continue;
    ContKind kind;
    if (kContig.count(toks[k].text)) kind = ContKind::kInvalidating;
    else if (kNode.count(toks[k].text)) kind = ContKind::kStable;
    else continue;
    size_t j = k + 1;
    if (j < toks.size() && toks[j].text == "<") j = SkipAngles(toks, j);
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && IsIdent(toks[j])) kinds[toks[j].text] = kind;
  }
  return kinds;
}

/// Member calls that (may) reallocate or invalidate into contiguous
/// storage. pop_back is deliberately absent: the dominant repo idiom is
/// DFS stacks where the popped frame is no longer referenced.
const std::set<std::string>& InvalidatingMutators() {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "insert", "emplace",  "erase",
      "resize",    "Resize",       "reserve", "Reserve", "clear",
      "Clear",     "Append",       "append",  "assign",  "shrink_to_fit",
  };
  return kMut;
}

/// The subset that still invalidates node-based containers.
const std::set<std::string>& NodeMutators() {
  static const std::set<std::string> kMut = {"clear", "assign"};
  return kMut;
}

struct RefBinding {
  std::string var;
  std::string recv;       ///< Receiver chain ("nodes_", "t.data").
  std::string kind_word;  ///< "reference" / "pointer" / "iterator".
  ContKind cont = ContKind::kUnknown;
  int line = 0;
  int depth = 0;
  size_t decl_token = 0;      ///< The declared name's own token index.
  bool is_ref = false;        ///< Writes through the name are uses.
  size_t mutated_at = 0;      ///< Token index past the mutating call, or 0.
  int mutated_line = 0;
  std::string mutator;
  bool active = true;
};

/// True when `r` is `b` or a receiver prefix of `b` ("t" mutates "t.data").
bool ChainCovers(const std::string& r, const std::string& b) {
  if (r == b) return true;
  return b.size() > r.size() && b.compare(0, r.size(), r) == 0 &&
         b[r.size()] == '.';
}

}  // namespace

std::vector<Finding> CheckRefInvalidation(const DataflowProgram& program) {
  // Pass A: member container chains each function mutates (for one level
  // of same-class call linking — the `Append(...)` in Conv2d::BuildGraph).
  const std::vector<DfFunction>& fns = program.functions();
  std::vector<std::set<std::string>> mutated_members(fns.size());
  for (size_t i = 0; i < fns.size(); ++i) {
    const std::vector<Token>& toks = program.tokens(fns[i].file);
    const std::set<std::string> locals =
        CollectBodyLocals(toks, fns[i].body_open, fns[i].body_close);
    for (size_t k = fns[i].body_open + 1;
         k + 1 < fns[i].body_close && k + 1 < toks.size(); ++k) {
      if (!IsIdent(toks[k]) || !InvalidatingMutators().count(toks[k].text)) {
        continue;
      }
      if (toks[k - 1].text != "." && toks[k - 1].text != "->") continue;
      if (toks[k + 1].text != "(") continue;
      const std::string chain = WalkBackChain(toks, k - 2);
      if (chain.empty()) continue;
      const std::string base = chain.substr(0, chain.find('.'));
      if (locals.count(base) || fns[i].params.count(base)) continue;
      mutated_members[i].insert(chain);
    }
  }
  std::map<const DfFunction*, size_t> index;
  for (size_t i = 0; i < fns.size(); ++i) index[&fns[i]] = i;

  static const std::set<std::string> kRefAccessors = {
      "back", "front", "at", "top", "data",
  };
  static const std::set<std::string> kIterAccessors = {
      "begin", "end", "cbegin", "cend", "rbegin", "rend", "data",
  };

  std::vector<Finding> findings;
  for (const DfFunction& fn : fns) {
    const std::vector<Token>& toks = program.tokens(fn.file);
    const std::map<std::string, ContKind> kinds = DeclaredContainers(toks);
    const std::set<std::string> locals =
        CollectBodyLocals(toks, fn.body_open, fn.body_close);
    std::vector<RefBinding> bindings;
    int depth = 0;

    auto kind_of = [&](const std::string& chain) {
      const std::string base = chain.substr(0, chain.find('.'));
      auto it = kinds.find(base);
      return it == kinds.end() ? ContKind::kUnknown : it->second;
    };
    auto add_binding = [&](const std::string& var, size_t decl_token,
                           size_t rhs_begin, size_t rhs_end,
                           const char* kind_word, bool is_ref, bool iter,
                           int line) {
      std::string recv;
      for (size_t m = rhs_begin; m + 2 < rhs_end && m + 2 < toks.size();
           ++m) {
        if (!iter && toks[m].text == "[" && m > rhs_begin) {
          recv = WalkBackChain(toks, m - 1);
          if (!recv.empty()) break;
        }
        if ((toks[m].text == "." || toks[m].text == "->") &&
            IsIdent(toks[m + 1]) && toks[m + 2].text == "(" &&
            (iter ? kIterAccessors : kRefAccessors)
                .count(toks[m + 1].text) &&
            m > rhs_begin) {
          recv = WalkBackChain(toks, m - 1);
          if (!recv.empty()) break;
        }
      }
      if (recv.empty()) return;
      RefBinding b;
      b.var = var;
      b.recv = recv;
      b.kind_word = kind_word;
      b.cont = kind_of(recv);
      b.line = line;
      b.depth = depth;
      b.decl_token = decl_token;
      b.is_ref = is_ref;
      bindings.push_back(std::move(b));
    };

    for (size_t k = fn.body_open + 1; k < fn.body_close && k < toks.size();
         ++k) {
      const std::string& t = toks[k].text;
      if (t == "{") {
        ++depth;
        continue;
      }
      if (t == "}") {
        --depth;
        for (RefBinding& b : bindings) {
          if (b.depth > depth) b.active = false;
        }
        continue;
      }

      // New binding declarations.
      if ((t == "&" || t == "&&" || t == "*" || t == "auto") &&
          k + 2 < toks.size() && IsIdent(toks[k + 1]) &&
          toks[k + 2].text == "=") {
        const std::string& prev = toks[k - 1].text;
        const bool type_before = IsIdent(toks[k - 1]) || prev == ">";
        const bool ref_like = (t == "&" || t == "&&") && type_before &&
                              prev != "return" && prev != "operator";
        const bool ptr_like = t == "*" && type_before && prev != "return";
        const bool auto_val = t == "auto" && prev != "&" && prev != "*";
        if (!ref_like && !ptr_like && !auto_val) continue;
        size_t rhs_end = k + 3;
        int pd = 0;
        while (rhs_end < fn.body_close && rhs_end < toks.size()) {
          const std::string& u = toks[rhs_end].text;
          if (pd == 0 && (u == ";" || u == "{")) break;
          if (u == "(" || u == "[") ++pd;
          else if (u == ")" || u == "]") --pd;
          ++rhs_end;
        }
        if (ref_like) {
          add_binding(toks[k + 1].text, k + 1, k + 3, rhs_end, "reference",
                      true, false, toks[k + 1].line);
        } else if (ptr_like) {
          add_binding(toks[k + 1].text, k + 1, k + 3, rhs_end, "pointer",
                      false, false, toks[k + 1].line);
        } else {
          add_binding(toks[k + 1].text, k + 1, k + 3, rhs_end, "iterator",
                      false, true, toks[k + 1].line);
        }
        continue;
      }

      if (!IsIdent(toks[k])) continue;

      // Direct mutating member call on a tracked receiver.
      if (InvalidatingMutators().count(t) && k >= 2 &&
          (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
          k + 1 < toks.size() && toks[k + 1].text == "(") {
        const std::string recv = WalkBackChain(toks, k - 2);
        if (!recv.empty()) {
          const size_t close = MatchForward(toks, k + 1, "(", ")");
          for (RefBinding& b : bindings) {
            if (!b.active || b.mutated_at != 0) continue;
            if (!ChainCovers(recv, b.recv)) continue;
            if (b.cont == ContKind::kStable && !NodeMutators().count(t)) {
              continue;
            }
            b.mutated_at = close;
            b.mutated_line = toks[k].line;
            b.mutator = recv + "." + t + "()";
          }
        }
        continue;
      }

      // Same-class call that mutates a member container the binding points
      // into (the PR-7 `Append` shape), one level deep.
      if (k + 1 < toks.size() && toks[k + 1].text == "(" &&
          !HeadKeywords().count(t) && !fn.qualifier.empty()) {
        const std::string& prev = toks[k - 1].text;
        const bool via_this =
            prev == "->" && k >= 2 && toks[k - 2].text == "this";
        const bool bare = prev != "." && prev != "->" && prev != "::";
        if (bare || via_this) {
          for (const DfFunction* callee : program.Resolve(fn, t)) {
            if (callee->qualifier != fn.qualifier) continue;
            const size_t close = MatchForward(toks, k + 1, "(", ")");
            for (const std::string& chain :
                 mutated_members[index[callee]]) {
              for (RefBinding& b : bindings) {
                if (!b.active || b.mutated_at != 0) continue;
                if (!ChainCovers(chain, b.recv)) continue;
                const std::string base = b.recv.substr(0, b.recv.find('.'));
                if (locals.count(base) || fn.params.count(base)) continue;
                if (b.cont == ContKind::kStable) continue;
                b.mutated_at = close;
                b.mutated_line = toks[k].line;
                b.mutator = t + "() [mutates " + chain + "]";
              }
            }
          }
        }
      }

      // Use of a bound name after its container mutated.
      for (RefBinding& b : bindings) {
        if (!b.active || b.var != t || k == b.decl_token) continue;
        const std::string& prev = toks[k - 1].text;
        if (prev == "." || prev == "->" || prev == "::") continue;
        const bool rebind = !b.is_ref && k + 1 < toks.size() &&
                            toks[k + 1].text == "=" && prev != "*";
        if (rebind) {
          b.active = false;
          continue;
        }
        if (b.mutated_at == 0 || k <= b.mutated_at) continue;
        findings.push_back(Finding{
            fn.file, toks[k].line, "ref-invalidation",
            "'" + b.var + "' (" + b.kind_word + " into '" + b.recv +
                "', bound at line " + std::to_string(b.line) +
                ") is used after '" + b.mutator + "' at line " +
                std::to_string(b.mutated_line) +
                " may reallocate or invalidate it; re-take it after the "
                "mutation or reserve capacity up front (the "
                "Conv2d::BuildGraph use-after-free shape)"});
        b.active = false;
      }
    }
  }
  return findings;
}

}  // namespace vsd::lint
