#ifndef VSD_LINT_FIX_H_
#define VSD_LINT_FIX_H_

#include <string>
#include <vector>

namespace vsd::lint {

/// Result of autofixing one file's contents.
struct FixOutcome {
  std::string content;         ///< Canonical contents (== input if clean).
  int include_order_fixes = 0; ///< Include blocks rewritten.
  int header_guard_fixes = 0;  ///< Guards inserted or repaired.

  bool changed() const {
    return include_order_fixes + header_guard_fixes > 0;
  }
};

/// Rewrites every *fixable* finding in `content` to canonical form. Fixable
/// rules are the purely mechanical ones:
///
///  * include-order — each contiguous include block with a finding is
///    rewritten: <system> includes first, sorted, then a blank line, then
///    sorted "project" includes. Trailing same-line comments travel with
///    their include; blocks containing line continuations are left alone.
///  * header-guard  — a missing guard is synthesized from the path
///    (src/lint/fix.h -> VSD_LINT_FIX_H_) and wrapped around the file; a
///    #define that mismatches its #ifndef is rewritten to match.
///
/// Fixes are driven by `LintContent` findings, so suppressed findings are
/// never "fixed". The rewrite is idempotent: running it on its own output
/// changes nothing (tests/lint_fix_test.cc holds this as an invariant).
FixOutcome FixContent(const std::string& path, const std::string& content);

/// One file rewritten in place by `FixTree`.
struct FixedFile {
  std::string path;  ///< Repo-relative.
  int fixes = 0;     ///< Total fixes applied in this file.
};

/// Applies `FixContent` to every source file under `root`/`subdirs`
/// (the same walk as LintTree) and writes changed files back in place.
/// Returns the files that changed, sorted by path. Unreadable or
/// unwritable files are skipped — the lint walk reports io-errors.
std::vector<FixedFile> FixTree(const std::string& root,
                               const std::vector<std::string>& subdirs);

}  // namespace vsd::lint

#endif  // VSD_LINT_FIX_H_
