#include "lint/fix.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "lint/lint.h"

namespace vsd::lint {
namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Splits on '\n'. The final newline (present in every checked-in file) is
/// re-appended by Join, so a trailing "" element never appears.
std::vector<std::string> SplitLines(const std::string& content,
                                    bool* trailing_newline) {
  *trailing_newline = !content.empty() && content.back() == '\n';
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      if (start < content.size()) lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string Join(const std::vector<std::string>& lines, bool trailing_newline) {
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || trailing_newline) out += '\n';
  }
  return out;
}

/// Parses `#include <x>` / `#include "x"` (whitespace-tolerant). Returns
/// false for non-include lines and macro includes.
bool ParseIncludeLine(const std::string& line, char* kind,
                      std::string* target) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return false;
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
    return false;
  }
  size_t open = line.find_first_of("<\"", i + 7);
  if (open == std::string::npos) return false;
  *kind = line[open];
  char closer = *kind == '<' ? '>' : '"';
  size_t close = line.find(closer, open + 1);
  if (close == std::string::npos) return false;
  *target = line.substr(open + 1, close - open - 1);
  return true;
}

/// The repo guard convention: path minus a leading src/, uppercased,
/// non-alphanumerics to '_', wrapped VSD_..._ (src/lint/fix.h ->
/// VSD_LINT_FIX_H_).
std::string GuardMacro(const std::string& path) {
  std::string p = StartsWith(path, "src/") ? path.substr(4) : path;
  std::string macro = "VSD_";
  for (char c : p) {
    macro += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  macro += '_';
  return macro;
}

struct IncludeEntry {
  char kind;
  std::string target;
  std::string text;  ///< The whole original line, trailing comment included.
};

}  // namespace

FixOutcome FixContent(const std::string& path, const std::string& content) {
  FixOutcome outcome;
  outcome.content = content;

  std::set<int> order_lines;  // 1-based lines of include-order findings.
  bool guard_missing = false;
  int guard_define_line = 0;  // 1-based #define line of a mismatched guard.
  for (const Finding& f : LintContent(path, content)) {
    if (f.rule == "include-order") {
      order_lines.insert(f.line);
    } else if (f.rule == "header-guard") {
      if (f.message.find("does not match") != std::string::npos) {
        guard_define_line = f.line;
      } else {
        guard_missing = true;
      }
    }
  }
  if (order_lines.empty() && !guard_missing && guard_define_line == 0) {
    return outcome;
  }

  bool trailing_newline = false;
  std::vector<std::string> lines = SplitLines(content, &trailing_newline);

  // Repair a mismatched #define from its #ifndef before any reflow moves
  // line numbers around.
  if (guard_define_line > 0 &&
      static_cast<size_t>(guard_define_line) <= lines.size()) {
    std::string macro;
    for (const std::string& line : lines) {
      size_t i = line.find_first_not_of(" \t");
      if (i != std::string::npos && line.compare(i, 7, "#ifndef") == 0) {
        size_t m = line.find_first_not_of(" \t", i + 7);
        if (m != std::string::npos) {
          macro = line.substr(m, line.find_first_of(" \t", m) - m);
        }
        break;
      }
    }
    if (!macro.empty()) {
      lines[guard_define_line - 1] = "#define " + macro;
      ++outcome.header_guard_fixes;
    }
  }

  // Rewrite each contiguous include block that carries a finding: system
  // includes first, sorted, then a blank line, then sorted project
  // includes. Blocks with line continuations are left for a human.
  std::vector<std::string> out;
  size_t i = 0;
  while (i < lines.size()) {
    char kind;
    std::string target;
    if (!ParseIncludeLine(lines[i], &kind, &target)) {
      out.push_back(lines[i]);
      ++i;
      continue;
    }
    std::vector<IncludeEntry> block;
    bool dirty = false;
    bool continuation = false;
    size_t j = i;
    while (j < lines.size() && ParseIncludeLine(lines[j], &kind, &target)) {
      block.push_back(IncludeEntry{kind, target, lines[j]});
      if (order_lines.count(static_cast<int>(j + 1))) dirty = true;
      if (!lines[j].empty() && lines[j].back() == '\\') continuation = true;
      ++j;
    }
    if (!dirty || continuation) {
      for (const IncludeEntry& e : block) out.push_back(e.text);
    } else {
      std::stable_sort(block.begin(), block.end(),
                       [](const IncludeEntry& a, const IncludeEntry& b) {
                         return a.kind != b.kind ? a.kind == '<'
                                                 : a.target < b.target;
                       });
      bool mixed = block.front().kind != block.back().kind;
      for (size_t k = 0; k < block.size(); ++k) {
        if (mixed && k > 0 && block[k].kind != block[k - 1].kind) {
          out.emplace_back();
        }
        out.push_back(block[k].text);
      }
      ++outcome.include_order_fixes;
    }
    i = j;
  }
  lines = std::move(out);

  if (guard_missing) {
    const std::string macro = GuardMacro(path);
    std::vector<std::string> wrapped;
    wrapped.push_back("#ifndef " + macro);
    wrapped.push_back("#define " + macro);
    wrapped.emplace_back();
    wrapped.insert(wrapped.end(), lines.begin(), lines.end());
    if (!lines.empty() && !lines.back().empty()) wrapped.emplace_back();
    wrapped.push_back("#endif  // " + macro);
    lines = std::move(wrapped);
    trailing_newline = true;
    ++outcome.header_guard_fixes;
  }

  outcome.content = Join(lines, trailing_newline);
  return outcome;
}

std::vector<FixedFile> FixTree(const std::string& root,
                               const std::vector<std::string>& subdirs) {
  std::vector<FixedFile> fixed;
  for (const std::string& rel : ListSourceFiles(root, subdirs)) {
    std::string content;
    if (!ReadFileToString(root, rel, &content)) continue;
    FixOutcome outcome = FixContent(rel, content);
    if (!outcome.changed()) continue;
    std::ofstream out(fs::path(root) / rel,
                      std::ios::binary | std::ios::trunc);
    if (!out) continue;
    out << outcome.content;
    fixed.push_back(FixedFile{
        rel, outcome.include_order_fixes + outcome.header_guard_fixes});
  }
  return fixed;
}

}  // namespace vsd::lint
