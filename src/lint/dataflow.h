#ifndef VSD_LINT_DATAFLOW_H_
#define VSD_LINT_DATAFLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

/// Lightweight intraprocedural dataflow on top of the lexer (no parser, no
/// types — see docs/INTERNALS.md "Dataflow analyses"). The engine recovers
/// function extents from the token stream, builds a whole-program function
/// table with call-site resolution, and runs three analyses over it:
///
///  * lock-order     — whole-program lock-acquisition graph; an edge A -> B
///                     means B is acquired while A is held (including through
///                     one level of resolved direct calls); any cycle is a
///                     potential deadlock.
///  * nondet-taint   — values derived from nondeterministic sources (wall
///                     clocks, thread ids, shared-Rng draws in ParallelFor
///                     bodies, pointer-to-integer casts) are propagated
///                     through assignments, arithmetic, and container inserts
///                     until they reach a result sink (CSV/metrics writers,
///                     BENCH_* sidecars, returns from src/core/ and bench/).
///  * hot-path-alloc — heap allocations reachable from
///                     GraphExecutor::Execute (one call level deep), inside
///                     src/tensor/kernels, or inside ParallelFor bodies in
///                     src/explain/: the static twin of the runtime counting
///                     operator-new contract in tests/graph_exec_test.cc.
namespace vsd::lint {

/// One function definition recovered from the token stream. Recovery is a
/// heuristic (identifier + balanced parens + optional specifiers/ctor-init
/// list + braced body); declarations, calls, and control-flow headers are
/// excluded by shape and keyword. Macro-style bodies (TEST(A, B) { ... })
/// are recovered under the macro's name, which is harmless.
struct DfFunction {
  std::string file;       ///< Repo-relative path the function lives in.
  std::string qualifier;  ///< "GraphExecutor" for GraphExecutor::Execute.
  std::string name;       ///< Unqualified name ("Execute", "~ThreadPool").
  int line = 0;           ///< Line of the function name.
  size_t body_open = 0;   ///< Token index of the body '{'.
  size_t body_close = 0;  ///< Token index of the matching '}'.
  std::set<std::string> params;  ///< Parameter names.

  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

/// Recovers all function definitions in a token stream (see DfFunction).
std::vector<DfFunction> ExtractFunctions(const std::string& file,
                                         const std::vector<Token>& toks);

/// Names declared as locals inside [body_open, body_close): `Type name ...`
/// shapes, including static locals. Used to scope lock identities and to
/// distinguish per-function statics from class members.
std::set<std::string> CollectBodyLocals(const std::vector<Token>& toks,
                                        size_t body_open, size_t body_close);

/// Whole-program function table over the same file walk as the include
/// graph. Call sites are resolved by name only for bare and ::-qualified
/// calls (member calls through . / -> are never linked — the receiver's
/// type is unknown): same-class candidates win, then same-file, then a
/// unique cross-file match; ambiguous names resolve to nothing rather than
/// risk a false edge.
class DataflowProgram {
 public:
  /// Registers a lexed file. Call in sorted path order for deterministic
  /// function/edge ordering downstream.
  void AddFile(const std::string& path, const LexResult& lex);

  const std::vector<std::string>& files() const { return files_; }
  const std::vector<Token>& tokens(const std::string& file) const;
  const std::vector<DfFunction>& functions() const { return functions_; }

  /// Candidate definitions for a call to `name` made from `caller`, or
  /// empty if unknown or ambiguous. All returned candidates share one file
  /// (overloads), so callers may union over them.
  std::vector<const DfFunction*> Resolve(const DfFunction& caller,
                                         const std::string& name) const;

 private:
  std::vector<std::string> files_;
  std::map<std::string, std::vector<Token>> tokens_;
  std::vector<DfFunction> functions_;
  std::map<std::string, std::vector<size_t>> by_name_;
};

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// Edge in the lock-acquisition graph: `to` is acquired (at file:line) while
/// `from` is held. `via` names the callee when the acquisition happens one
/// call level away rather than lexically inside the holder.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string via;
};

struct LockGraph {
  std::vector<std::string> nodes;  ///< Sorted canonical lock identities.
  std::vector<LockEdge> edges;     ///< Deduped by (from, to), sorted.
};

/// Lock identities are canonical strings: members lock as "Class::name",
/// locals/statics as "Function::name", file-scope mutexes in free functions
/// as "file::name" — consistent naming is what makes cycles comparable
/// across functions.
LockGraph BuildLockGraph(const DataflowProgram& program);

/// Cycles in the acquisition graph, one "lock-order" finding per distinct
/// cycle at the edge that closes it.
std::vector<Finding> CheckLockOrder(const LockGraph& graph);

/// DOT export for `vsd_lint --dump-lock-graph` (mirrors DumpDot for the
/// include graph). Call-linked edges are dashed.
std::string DumpLockDot(const LockGraph& graph);

/// Lex + AddFile over the standard tree walk, then BuildLockGraph.
LockGraph BuildLockGraphFromTree(const std::string& root,
                                 const std::vector<std::string>& subdirs);

// ---------------------------------------------------------------------------
// nondet-taint
// ---------------------------------------------------------------------------

/// A nondeterministic source occurrence inside one function body.
struct TaintSource {
  size_t token = 0;  ///< Token index of the source.
  int line = 0;
  std::string what;  ///< Human description ("wall clock 'system_clock'").
};

/// All nondeterministic sources in `fn`'s body: wall-clock reads, thread
/// ids, pointer-to-integer casts, and shared-Rng draws inside ParallelFor/
/// ParallelMap call extents.
std::vector<TaintSource> FindNondetSources(const std::string& path,
                                           const std::vector<Token>& toks,
                                           const DfFunction& fn);

/// Forward taint propagation over `fn`'s body: a variable is tainted when a
/// source or an already-tainted identifier appears on the right of an
/// assignment/compound-assignment targeting it, or in the arguments of a
/// container mutator (push_back/insert/...) it receives. Iterated to a
/// fixpoint, so ordering between statements is conservative (taint sticks).
/// Returns var name -> originating source.
std::map<std::string, TaintSource> PropagateTaint(
    const std::vector<Token>& toks, const DfFunction& fn,
    const std::vector<TaintSource>& seeds);

/// The nondet-taint rule over one lexed file (intraprocedural): sources
/// propagated to result sinks — AddRow/WriteCsv/WriteBenchPerfJson calls
/// anywhere, and `return` values in src/core/ and bench/.
std::vector<Finding> CheckNondetTaint(const std::string& path,
                                      const LexResult& lex);

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// The hot-path-alloc rule: heap allocations (new, make_unique/make_shared,
/// growing container calls, string growth) inside GraphExecutor::Execute
/// and its one-level resolved callees, inside any function in
/// src/tensor/kernels.*, or inside ParallelFor/ParallelMap call extents in
/// src/explain/ files.
std::vector<Finding> CheckHotPathAlloc(const DataflowProgram& program);

}  // namespace vsd::lint

#endif  // VSD_LINT_DATAFLOW_H_
