#ifndef VSD_LINT_DATAFLOW_H_
#define VSD_LINT_DATAFLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

/// Lightweight intraprocedural dataflow on top of the lexer (no parser, no
/// types — see docs/INTERNALS.md "Dataflow analyses"). The engine recovers
/// function extents from the token stream, builds a whole-program function
/// table with call-site resolution, and runs three analyses over it:
///
///  * lock-order     — whole-program lock-acquisition graph; an edge A -> B
///                     means B is acquired while A is held (including through
///                     one level of resolved direct calls); any cycle is a
///                     potential deadlock.
///  * nondet-taint   — values derived from nondeterministic sources (wall
///                     clocks, thread ids, shared-Rng draws in ParallelFor
///                     bodies, pointer-to-integer casts) are propagated
///                     through assignments, arithmetic, and container inserts
///                     until they reach a result sink (CSV/metrics writers,
///                     BENCH_* sidecars, returns from src/core/ and bench/).
///  * hot-path-alloc — heap allocations reachable from
///                     GraphExecutor::Execute (one call level deep), inside
///                     src/tensor/kernels, or inside ParallelFor bodies in
///                     src/explain/: the static twin of the runtime counting
///                     operator-new contract in tests/graph_exec_test.cc.
namespace vsd::lint {

/// One function definition recovered from the token stream. Recovery is a
/// heuristic (identifier + balanced parens + optional specifiers/ctor-init
/// list + braced body); declarations, calls, and control-flow headers are
/// excluded by shape and keyword. Macro-style bodies (TEST(A, B) { ... })
/// are recovered under the macro's name, which is harmless.
struct DfFunction {
  std::string file;       ///< Repo-relative path the function lives in.
  std::string qualifier;  ///< "GraphExecutor" for GraphExecutor::Execute.
  std::string name;       ///< Unqualified name ("Execute", "~ThreadPool").
  int line = 0;           ///< Line of the function name.
  size_t body_open = 0;   ///< Token index of the body '{'.
  size_t body_close = 0;  ///< Token index of the matching '}'.
  std::set<std::string> params;  ///< Parameter names.

  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "::" + name;
  }
};

/// Recovers all function definitions in a token stream (see DfFunction).
std::vector<DfFunction> ExtractFunctions(const std::string& file,
                                         const std::vector<Token>& toks);

// Token-walk utilities shared with the annotation analyses
// (lint/annotations.h). Semantics are pinned by tests/dataflow_test.cc.

/// Keywords that can precede '(' without being a call or definition head.
const std::set<std::string>& HeadKeywords();

/// Index of the token matching the opener at `open` ("(" / "{" / "["), or
/// toks.size() when unbalanced.
size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer);

/// With toks[open] == "<", returns the index one past the matching ">".
/// Handles ">>" closing two levels (template shorthand).
size_t SkipAngles(const std::vector<Token>& toks, size_t open);

/// Receiver chain ending at token `e`, walked back through . / -> (and a
/// leading `this->`), e.g. "entry.mu". Empty when the receiver is dynamic
/// (call or subscript result) or not an identifier.
std::string WalkBackChain(const std::vector<Token>& toks, size_t e);

/// Canonical graph identity for a mutex named by `chain` inside `fn`:
/// locals/statics are per-function, members are per-class, everything else
/// (file-scope globals seen from free functions) is per-file.
std::string LockId(const DfFunction& fn, const std::set<std::string>& locals,
                   const std::string& chain);

/// RAII guard class names treated as lock acquisitions (lock_guard,
/// unique_lock, shared_lock, scoped_lock).
const std::set<std::string>& GuardTypes();

/// Mutex argument chains of a guard constructor: top-level comma-separated
/// args in (open, close), std lock tags skipped, dynamic expressions
/// dropped.
std::vector<std::string> GuardArgChains(const std::vector<Token>& toks,
                                        size_t open, size_t close);

/// Names declared as locals inside [body_open, body_close): `Type name ...`
/// shapes, including static locals. Used to scope lock identities and to
/// distinguish per-function statics from class members.
std::set<std::string> CollectBodyLocals(const std::vector<Token>& toks,
                                        size_t body_open, size_t body_close);

/// Whole-program function table over the same file walk as the include
/// graph. Call sites are resolved by name only for bare and ::-qualified
/// calls (member calls through . / -> are never linked — the receiver's
/// type is unknown): same-class candidates win, then same-file, then a
/// unique cross-file match; ambiguous names resolve to nothing rather than
/// risk a false edge.
class DataflowProgram {
 public:
  /// Registers a lexed file. Call in sorted path order for deterministic
  /// function/edge ordering downstream.
  void AddFile(const std::string& path, const LexResult& lex);

  const std::vector<std::string>& files() const { return files_; }
  const std::vector<Token>& tokens(const std::string& file) const;
  const std::vector<DfFunction>& functions() const { return functions_; }

  /// Candidate definitions for a call to `name` made from `caller`, or
  /// empty if unknown or ambiguous. All returned candidates share one file
  /// (overloads), so callers may union over them.
  std::vector<const DfFunction*> Resolve(const DfFunction& caller,
                                         const std::string& name) const;

 private:
  std::vector<std::string> files_;
  std::map<std::string, std::vector<Token>> tokens_;
  std::vector<DfFunction> functions_;
  std::map<std::string, std::vector<size_t>> by_name_;
};

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// Edge in the lock-acquisition graph: `to` is acquired (at file:line) while
/// `from` is held. `via` names the callee when the acquisition happens one
/// call level away rather than lexically inside the holder.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string via;
};

struct LockGraph {
  std::vector<std::string> nodes;  ///< Sorted canonical lock identities.
  std::vector<LockEdge> edges;     ///< Deduped by (from, to), sorted.
};

/// Lock identities are canonical strings: members lock as "Class::name",
/// locals/statics as "Function::name", file-scope mutexes in free functions
/// as "file::name" — consistent naming is what makes cycles comparable
/// across functions.
LockGraph BuildLockGraph(const DataflowProgram& program);

/// Cycles in the acquisition graph, one "lock-order" finding per distinct
/// cycle at the edge that closes it.
std::vector<Finding> CheckLockOrder(const LockGraph& graph);

/// DOT export for `vsd_lint --dump-lock-graph` (mirrors DumpDot for the
/// include graph). Call-linked edges are dashed.
std::string DumpLockDot(const LockGraph& graph);

/// Lex + AddFile over the standard tree walk, then BuildLockGraph.
LockGraph BuildLockGraphFromTree(const std::string& root,
                                 const std::vector<std::string>& subdirs);

// ---------------------------------------------------------------------------
// nondet-taint
// ---------------------------------------------------------------------------

/// A nondeterministic source occurrence inside one function body.
struct TaintSource {
  size_t token = 0;  ///< Token index of the source.
  int line = 0;
  std::string what;  ///< Human description ("wall clock 'system_clock'").
};

/// All nondeterministic sources in `fn`'s body: wall-clock reads, thread
/// ids, pointer-to-integer casts, and shared-Rng draws inside ParallelFor/
/// ParallelMap call extents.
std::vector<TaintSource> FindNondetSources(const std::string& path,
                                           const std::vector<Token>& toks,
                                           const DfFunction& fn);

/// Forward taint propagation over `fn`'s body: a variable is tainted when a
/// source or an already-tainted identifier appears on the right of an
/// assignment/compound-assignment targeting it, or in the arguments of a
/// container mutator (push_back/insert/...) it receives. Iterated to a
/// fixpoint, so ordering between statements is conservative (taint sticks).
/// Returns var name -> originating source.
std::map<std::string, TaintSource> PropagateTaint(
    const std::vector<Token>& toks, const DfFunction& fn,
    const std::vector<TaintSource>& seeds);

/// The nondet-taint rule over one lexed file (intraprocedural): sources
/// propagated to result sinks — AddRow/WriteCsv/WriteBenchPerfJson calls
/// anywhere, and `return` values in src/core/ and bench/.
std::vector<Finding> CheckNondetTaint(const std::string& path,
                                      const LexResult& lex);

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// The hot-path-alloc rule: heap allocations (new, make_unique/make_shared,
/// growing container calls, string growth) inside GraphExecutor::Execute
/// and its one-level resolved callees, inside any function in
/// src/tensor/kernels.*, or inside ParallelFor/ParallelMap call extents in
/// src/explain/ files.
std::vector<Finding> CheckHotPathAlloc(const DataflowProgram& program);

}  // namespace vsd::lint

#endif  // VSD_LINT_DATAFLOW_H_
