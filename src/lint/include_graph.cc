#include "lint/include_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace vsd::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Prefix -> layer. Order matters only for readability; prefixes are
/// disjoint. Kept in one table so the checker, the DOT dump, and the docs
/// diagram can never drift apart.
struct LayerEntry {
  const char* prefix;
  int layer;
};
constexpr LayerEntry kLayerTable[] = {
    {"src/common/", 0},
    {"src/tensor/", 1},    {"src/img/", 1},     {"src/text/", 1},
    {"src/data/", 2},      {"src/nn/", 2},      {"src/face/", 2},
    {"src/vlm/", 3},
    {"src/cot/", 4},
    {"src/baselines/", 5}, {"src/explain/", 5},
    {"src/core/", 6},
    {"src/serve/", 7},
    {"src/lint/", 8},      {"bench/", 8},       {"tools/", 8},
    {"examples/", 8},
};

const std::string kLayerNames[] = {
    "common",           "tensor/img/text", "data/nn/face", "vlm",
    "cot",              "baselines/explain", "core",       "serve",
    "lint/bench/tools",
};

/// "src/cot/pipeline.h" -> "src/cot"; "bench/harness.h" -> "bench".
std::string ModuleOf(const std::string& path) {
  size_t first = path.find('/');
  if (first == std::string::npos) return path;
  if (path.compare(0, first, "src") == 0) {
    size_t second = path.find('/', first + 1);
    if (second == std::string::npos) return path;
    return path.substr(0, second);
  }
  return path.substr(0, first);
}

std::string DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

int LayerOf(const std::string& path) {
  for (const LayerEntry& e : kLayerTable) {
    if (StartsWith(path, e.prefix)) return e.layer;
  }
  return -1;
}

const std::string& LayerName(int layer) {
  return kLayerNames[layer];
}

void IncludeGraphBuilder::AddFile(const std::string& path,
                                  const LexResult& lex) {
  files_.push_back(path);
  for (const PpDirective& d : lex.directives) {
    if (!StartsWith(d.text, "#include")) continue;
    size_t open = d.text.find('"', 8);
    if (open == std::string::npos) continue;  // System or macro include.
    size_t close = d.text.find('"', open + 1);
    if (close == std::string::npos) continue;
    includes_.push_back(
        RawInclude{path, d.text.substr(open + 1, close - open - 1), d.line});
  }
}

IncludeGraph IncludeGraphBuilder::Build() const {
  IncludeGraph graph;
  graph.files = files_;
  std::sort(graph.files.begin(), graph.files.end());
  const std::set<std::string> known(graph.files.begin(), graph.files.end());

  for (const RawInclude& inc : includes_) {
    // Quoted-include resolution order, mirroring the build's include dirs.
    const std::string candidates[] = {
        "src/" + inc.target,
        inc.target,
        DirOf(inc.from) + "/" + inc.target,
    };
    for (const std::string& c : candidates) {
      if (known.count(c)) {
        graph.edges.push_back(IncludeEdge{inc.from, c, inc.line});
        break;
      }
    }
  }
  std::stable_sort(graph.edges.begin(), graph.edges.end(),
                   [](const IncludeEdge& a, const IncludeEdge& b) {
                     return a.from != b.from ? a.from < b.from
                                             : a.line < b.line;
                   });
  return graph;
}

std::vector<Finding> CheckLayering(const IncludeGraph& graph) {
  std::vector<Finding> findings;
  for (const IncludeEdge& e : graph.edges) {
    const int from_layer = LayerOf(e.from);
    const int to_layer = LayerOf(e.to);
    if (from_layer < 0 || to_layer < 0 || to_layer <= from_layer) continue;
    findings.push_back(Finding{
        e.from, e.line, "layering",
        "'" + e.to + "' (layer " + std::to_string(to_layer) + ": " +
            LayerName(to_layer) + ") is above this file's layer " +
            std::to_string(from_layer) + " (" + LayerName(from_layer) +
            "); includes must point toward common — move the shared type "
            "down a layer or invert the dependency"});
  }
  return findings;
}

std::vector<Finding> CheckCycles(const IncludeGraph& graph) {
  // Adjacency in deterministic order.
  std::map<std::string, std::vector<const IncludeEdge*>> adj;
  for (const IncludeEdge& e : graph.edges) adj[e.from].push_back(&e);

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const std::string& f : graph.files) color[f] = Color::kWhite;

  std::vector<Finding> findings;
  std::set<std::string> reported;  // Canonical cycle keys, reported once.

  // Iterative DFS; `path` mirrors the gray stack for cycle extraction.
  struct Frame {
    std::string node;
    size_t next_edge = 0;
  };
  for (const std::string& start : graph.files) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start, 0}};
    std::vector<std::string> path{start};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& edges = adj[frame.node];
      if (frame.next_edge >= edges.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const IncludeEdge* e = edges[frame.next_edge++];
      switch (color[e->to]) {
        case Color::kWhite:
          color[e->to] = Color::kGray;
          stack.push_back(Frame{e->to, 0});
          path.push_back(e->to);
          break;
        case Color::kGray: {
          // Cycle: path from e->to to the top, closed by this edge.
          auto begin =
              std::find(path.begin(), path.end(), e->to);
          std::vector<std::string> cycle(begin, path.end());
          // Canonical key: rotate so the smallest node leads.
          auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string key;
          std::string pretty;
          for (const std::string& node : cycle) {
            key += node + "|";
            pretty += node + " -> ";
          }
          pretty += cycle.front();
          if (reported.insert(key).second) {
            findings.push_back(Finding{
                e->from, e->line, "include-cycle",
                "include cycle: " + pretty +
                    "; no layering can order these files — break the cycle "
                    "with a forward declaration or by splitting the header"});
          }
          break;
        }
        case Color::kBlack:
          break;
      }
    }
  }
  return findings;
}

std::string DumpDot(const IncludeGraph& graph) {
  std::set<std::string> modules;
  for (const std::string& f : graph.files) modules.insert(ModuleOf(f));
  std::map<std::pair<std::string, std::string>, int> edge_counts;
  for (const IncludeEdge& e : graph.edges) {
    const std::string from = ModuleOf(e.from);
    const std::string to = ModuleOf(e.to);
    if (from != to) ++edge_counts[{from, to}];
  }

  std::ostringstream out;
  out << "digraph vsd_includes {\n";
  out << "  // Generated by `vsd_lint --dump-graph`. Edges point at the\n";
  out << "  // included (lower-layer) module; `layer` attrs match\n";
  out << "  // lint::LayerOf.\n";
  out << "  rankdir=BT;\n";
  out << "  node [shape=box];\n";
  std::map<int, std::vector<std::string>> by_layer;
  for (const std::string& m : modules) {
    // A representative path inside the module resolves its layer.
    const int layer = LayerOf(m + "/x.h");
    out << "  \"" << m << "\" [layer=" << layer;
    if (layer >= 0) out << ", label=\"" << m << "\\nL" << layer << "\"";
    out << "];\n";
    by_layer[layer].push_back(m);
  }
  for (const auto& [layer, members] : by_layer) {
    if (layer < 0 || members.size() < 2) continue;
    out << "  { rank=same;";
    for (const std::string& m : members) out << " \"" << m << "\";";
    out << " }\n";
  }
  for (const auto& [pair, count] : edge_counts) {
    out << "  \"" << pair.first << "\" -> \"" << pair.second << "\" [label=\""
        << count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

IncludeGraph BuildIncludeGraphFromTree(
    const std::string& root, const std::vector<std::string>& subdirs) {
  IncludeGraphBuilder builder;
  for (const std::string& rel : ListSourceFiles(root, subdirs)) {
    std::string content;
    if (!ReadFileToString(root, rel, &content)) continue;
    builder.AddFile(rel, Lex(content));
  }
  return builder.Build();
}

}  // namespace vsd::lint
