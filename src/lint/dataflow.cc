#include "lint/dataflow.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "lint/annotations.h"

namespace vsd::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

}  // namespace

const std::set<std::string>& HeadKeywords() {
  static const std::set<std::string> kw = {
      "if",      "for",      "while",    "switch",        "catch",
      "return",  "sizeof",   "alignof",  "decltype",      "constexpr",
      "static_assert",       "assert",   "defined",       "new",
      "delete",  "throw",    "else",     "case",          "do",
      "alignas", "noexcept", "typename", "static_cast",   "const_cast",
      "dynamic_cast",        "reinterpret_cast",          "operator",
  };
  return kw;
}

size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer) {
  int depth = 1;
  size_t k = open + 1;
  while (k < toks.size() && depth > 0) {
    if (toks[k].text == opener) ++depth;
    else if (toks[k].text == closer) --depth;
    if (depth == 0) break;
    ++k;
  }
  return k;
}

size_t SkipAngles(const std::vector<Token>& toks, size_t open) {
  int depth = 1;
  size_t j = open + 1;
  while (j < toks.size() && depth > 0) {
    if (toks[j].text == "<") ++depth;
    else if (toks[j].text == ">") --depth;
    else if (toks[j].text == ">>") depth -= 2;
    ++j;
  }
  return j;
}

std::vector<DfFunction> ExtractFunctions(const std::string& file,
                                         const std::vector<Token>& toks) {
  std::vector<DfFunction> fns;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || toks[i + 1].text != "(") continue;
    if (HeadKeywords().count(toks[i].text)) continue;

    // Name and optional A::B:: qualifier / ~ destructor marker.
    size_t q = i;
    std::string name = toks[i].text;
    if (q > 0 && toks[q - 1].text == "~") {
      name = "~" + name;
      --q;
    }
    std::string qualifier;
    while (q >= 2 && toks[q - 1].text == "::" && IsIdent(toks[q - 2])) {
      qualifier =
          qualifier.empty() ? toks[q - 2].text : toks[q - 2].text + "::" + qualifier;
      q -= 2;
    }
    // A member call (obj.Name(...), obj->Name(...)) is a use, not a
    // definition.
    if (q > 0 && (toks[q - 1].text == "." || toks[q - 1].text == "->")) continue;

    const size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= toks.size()) break;

    // Walk trailing specifiers until the body '{' — or bail on anything
    // that marks a declaration, call, or initializer instead.
    size_t j = close + 1;
    bool ok = true;
    while (ok && j < toks.size()) {
      const std::string& t = toks[j].text;
      if (t == "{") break;
      if (t == "const" || t == "override" || t == "final" || t == "mutable" ||
          t == "&" || t == "&&") {
        ++j;
        continue;
      }
      if (t == "noexcept") {
        ++j;
        if (j < toks.size() && toks[j].text == "(") {
          j = MatchForward(toks, j, "(", ")") + 1;
        }
        continue;
      }
      // Thread-safety annotation macros (common/annotations.h) expand to
      // nothing; skip `VSD_REQUIRES(mu_)` and friends like a specifier.
      if (t.rfind("VSD_", 0) == 0 && j + 1 < toks.size() &&
          toks[j + 1].text == "(") {
        j = MatchForward(toks, j + 1, "(", ")") + 1;
        continue;
      }
      if (t == "->") {  // Trailing return type.
        ++j;
        int angle = 0;
        while (j < toks.size()) {
          const std::string& u = toks[j].text;
          if (angle == 0 && u == "{") break;
          if (angle == 0 &&
              (u == ";" || u == "," || u == ")" || u == "=" || u == "}")) {
            ok = false;
            break;
          }
          if (u == "<") ++angle;
          else if (u == ">") --angle;
          else if (u == ">>") angle -= 2;
          else if (u == "(") j = MatchForward(toks, j, "(", ")");
          ++j;
        }
        continue;
      }
      if (t == ":") {  // Constructor initializer list.
        ++j;
        while (j < toks.size()) {
          if (!IsIdent(toks[j])) {
            ok = false;
            break;
          }
          ++j;
          if (j < toks.size() && toks[j].text == "<") j = SkipAngles(toks, j);
          if (j >= toks.size() ||
              (toks[j].text != "(" && toks[j].text != "{")) {
            ok = false;
            break;
          }
          j = toks[j].text == "("
                  ? MatchForward(toks, j, "(", ")") + 1
                  : MatchForward(toks, j, "{", "}") + 1;
          if (j < toks.size() && toks[j].text == ",") {
            ++j;
            continue;
          }
          break;
        }
        if (ok && (j >= toks.size() || toks[j].text != "{")) ok = false;
        break;
      }
      ok = false;
      break;
    }
    if (!ok || j >= toks.size() || toks[j].text != "{") continue;
    const size_t body_close = MatchForward(toks, j, "{", "}");
    if (body_close >= toks.size()) continue;

    DfFunction fn;
    fn.file = file;
    fn.qualifier = qualifier;
    fn.name = name;
    fn.line = toks[i].line;
    fn.body_open = j;
    fn.body_close = body_close;
    for (size_t k = i + 2; k + 1 <= close && k < toks.size(); ++k) {
      if (!IsIdent(toks[k]) || HeadKeywords().count(toks[k].text)) continue;
      const std::string& nx = toks[k + 1].text;
      if (nx == "," || nx == ")" || nx == "=" || nx == "[") {
        fn.params.insert(toks[k].text);
      }
    }
    fns.push_back(std::move(fn));
    i = j;  // Resume at the body '{'; nested heads inside are re-scanned.
  }
  return fns;
}

std::set<std::string> CollectBodyLocals(const std::vector<Token>& toks,
                                        size_t body_open, size_t body_close) {
  static const std::set<std::string> kNotType = {
      "return", "else",     "delete", "new",      "throw",  "case",
      "goto",   "do",       "public", "private",  "protected",
      "break",  "continue", "struct", "class",    "enum",
  };
  std::set<std::string> locals;
  for (size_t k = body_open + 1; k + 1 < body_close && k < toks.size(); ++k) {
    if (!IsIdent(toks[k]) || HeadKeywords().count(toks[k].text)) continue;
    const Token& prev = toks[k - 1];
    const Token& next = toks[k + 1];
    const auto type_ish = [](const Token& t) {
      return (IsIdent(t) && !kNotType.count(t.text) &&
              !HeadKeywords().count(t.text)) ||
             t.text == ">";
    };
    // A declarator sigil only counts when a type precedes it: `int* p`
    // and `Foo& r` declare, but the `&`/`*` in `f(&x)` or `= &v[0]` are
    // address-of/deref operators and `x`/`v` are not being declared.
    const bool sigil =
        prev.text == "*" || prev.text == "&" || prev.text == "&&";
    const bool type_before =
        sigil ? (k >= 2 && type_ish(toks[k - 2])) : type_ish(prev);
    if (!type_before) continue;
    if (next.text == "=" || next.text == ";" || next.text == "(" ||
        next.text == "{" || next.text == "[") {
      locals.insert(toks[k].text);
    }
  }
  return locals;
}

void DataflowProgram::AddFile(const std::string& path, const LexResult& lex) {
  files_.push_back(path);
  tokens_[path] = lex.tokens;
  const std::vector<ClassExtent> extents = FindClassExtents(tokens_[path]);
  for (DfFunction& fn : ExtractFunctions(path, tokens_[path])) {
    if (fn.qualifier.empty()) {
      // Inline member functions carry no lexical qualifier; the innermost
      // class extent containing the body names them, which is what makes
      // member-mutex lock identities ("ServeStats::mu_") consistent between
      // header-inline and out-of-class definitions.
      size_t innermost = 0;
      for (const ClassExtent& c : extents) {
        if (fn.body_open > c.body_open && fn.body_close < c.body_close &&
            (fn.qualifier.empty() || c.body_open > innermost)) {
          fn.qualifier = c.name;
          innermost = c.body_open;
        }
      }
    }
    by_name_[fn.name].push_back(functions_.size());
    functions_.push_back(std::move(fn));
  }
}

const std::vector<Token>& DataflowProgram::tokens(
    const std::string& file) const {
  static const std::vector<Token> kEmpty;
  auto it = tokens_.find(file);
  return it == tokens_.end() ? kEmpty : it->second;
}

std::vector<const DfFunction*> DataflowProgram::Resolve(
    const DfFunction& caller, const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return {};
  std::vector<const DfFunction*> all;
  for (size_t idx : it->second) all.push_back(&functions_[idx]);

  if (!caller.qualifier.empty()) {
    std::vector<const DfFunction*> same_class;
    for (const DfFunction* f : all) {
      if (f->qualifier == caller.qualifier) same_class.push_back(f);
    }
    if (!same_class.empty()) return same_class;
  }
  std::vector<const DfFunction*> same_file;
  for (const DfFunction* f : all) {
    if (f->file == caller.file) same_file.push_back(f);
  }
  if (!same_file.empty()) return same_file;

  std::set<std::string> files;
  for (const DfFunction* f : all) files.insert(f->file);
  if (files.size() == 1) return all;
  return {};  // Ambiguous across files (e.g. Sigmoid): no link, no false edge.
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

const std::set<std::string>& GuardTypes() {
  static const std::set<std::string> kGuards = {
      "lock_guard", "unique_lock", "shared_lock", "scoped_lock",
  };
  return kGuards;
}

std::string WalkBackChain(const std::vector<Token>& toks, size_t e) {
  if (e >= toks.size() || !IsIdent(toks[e])) return {};
  std::vector<std::string> parts{toks[e].text};
  while (e >= 2 && (toks[e - 1].text == "." || toks[e - 1].text == "->") &&
         IsIdent(toks[e - 2])) {
    parts.insert(parts.begin(), toks[e - 2].text);
    e -= 2;
  }
  if (parts.front() == "this") parts.erase(parts.begin());
  std::string chain;
  for (const std::string& p : parts) {
    if (!chain.empty()) chain += ".";
    chain += p;
  }
  return chain;
}

std::string LockId(const DfFunction& fn, const std::set<std::string>& locals,
                   const std::string& chain) {
  const std::string base = chain.substr(0, chain.find('.'));
  if (locals.count(base) || fn.params.count(base)) {
    return fn.QualifiedName() + "::" + chain;
  }
  if (!fn.qualifier.empty()) return fn.qualifier + "::" + chain;
  return fn.file + "::" + chain;
}

std::vector<std::string> GuardArgChains(const std::vector<Token>& toks,
                                        size_t open, size_t close) {
  static const std::set<std::string> kTags = {"defer_lock", "adopt_lock",
                                              "try_to_lock"};
  std::vector<std::string> chains;
  size_t arg_begin = open + 1;
  int depth = 0;
  for (size_t k = open + 1; k <= close && k < toks.size(); ++k) {
    const std::string& t = toks[k].text;
    const bool arg_end = k == close || (depth == 0 && t == ",");
    if (!arg_end) {
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      continue;
    }
    // Parse [arg_begin, k): optional * / & deref, then an ident chain.
    size_t a = arg_begin;
    while (a < k && (toks[a].text == "*" || toks[a].text == "&")) ++a;
    bool simple = a < k;
    bool tagged = false;
    for (size_t m = a; m < k; ++m) {
      if (kTags.count(toks[m].text)) tagged = true;
      if (IsIdent(toks[m]) || toks[m].text == "." || toks[m].text == "->" ||
          toks[m].text == "::") {
        continue;
      }
      simple = false;
    }
    if (simple && !tagged && a < k) {
      const std::string chain = WalkBackChain(toks, k - 1);
      if (!chain.empty()) chains.push_back(chain);
    }
    arg_begin = k + 1;
  }
  return chains;
}

namespace {

struct Held {
  std::string id;
  std::string guard;  ///< Guard variable; empty for a manual .lock().
  int depth = 0;      ///< Brace depth at declaration (guards pop with it).
  bool manual = false;
};

/// One callback per acquisition (with the currently-held set) and one per
/// resolvable call made while holding at least one lock.
struct LockScanHooks {
  std::function<void(const std::string& id, int line,
                     const std::vector<Held>& held)>
      on_acquire;
  std::function<void(const std::string& name, int line,
                     const std::vector<Held>& held)>
      on_call;
};

/// `initial` seeds the held set on entry (VSD_REQUIRES contracts: the
/// caller already holds those locks). Seeded entries are `manual`, so brace
/// pops never release them.
void ScanFunctionLocks(const std::vector<Token>& toks, const DfFunction& fn,
                       const LockScanHooks& hooks,
                       const std::set<std::string>& initial = {}) {
  const std::set<std::string> locals =
      CollectBodyLocals(toks, fn.body_open, fn.body_close);
  std::vector<Held> held;
  for (const std::string& id : initial) {
    held.push_back(Held{id, "", 0, true});
  }
  int depth = 0;
  for (size_t k = fn.body_open + 1; k < fn.body_close && k < toks.size();
       ++k) {
    const std::string& t = toks[k].text;
    if (t == "{") {
      ++depth;
      continue;
    }
    if (t == "}") {
      --depth;
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const Held& h) {
                                  return !h.manual && h.depth > depth;
                                }),
                 held.end());
      continue;
    }
    if (!IsIdent(toks[k])) continue;

    // Guard declaration: lock_guard<...> name(mu[, mu2...]).
    if (GuardTypes().count(t)) {
      size_t j = k + 1;
      if (j < toks.size() && toks[j].text == "<") j = SkipAngles(toks, j);
      if (j >= toks.size() || !IsIdent(toks[j])) continue;
      const std::string guard = toks[j].text;
      ++j;
      if (j >= toks.size() || (toks[j].text != "(" && toks[j].text != "{")) {
        continue;
      }
      const bool paren = toks[j].text == "(";
      const size_t close = paren ? MatchForward(toks, j, "(", ")")
                                 : MatchForward(toks, j, "{", "}");
      std::vector<Held> newly;
      for (const std::string& chain : GuardArgChains(toks, j, close)) {
        const std::string id = LockId(fn, locals, chain);
        if (hooks.on_acquire) hooks.on_acquire(id, toks[k].line, held);
        newly.push_back(Held{id, guard, depth, false});
      }
      // scoped_lock's own arguments acquire atomically: edges only from
      // locks already held, never among the group — so push after.
      held.insert(held.end(), newly.begin(), newly.end());
      k = close;
      continue;
    }

    // Manual mu.lock() / mu.unlock() (and shared variants).
    if ((t == "lock" || t == "lock_shared" || t == "unlock" ||
         t == "unlock_shared") &&
        k >= 2 && (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
        k + 1 < toks.size() && toks[k + 1].text == "(") {
      const std::string chain = WalkBackChain(toks, k - 2);
      if (chain.empty()) continue;
      const std::string id = LockId(fn, locals, chain);
      if (t == "lock" || t == "lock_shared") {
        // Re-locking through a guard variable (defer_lock) re-acquires the
        // guard's mutex, which is already in `held`; skip those.
        bool is_guard = false;
        for (const Held& h : held) is_guard |= h.guard == chain;
        if (!is_guard) {
          if (hooks.on_acquire) hooks.on_acquire(id, toks[k].line, held);
          held.push_back(Held{id, "", depth, true});
        }
      } else {
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const Held& h) {
                                    return h.guard == chain || h.id == id;
                                  }),
                   held.end());
      }
      continue;
    }

    // Call made while holding a lock: candidate for one-level linking.
    // Only bare / ::-qualified heads; member calls have unknown receivers.
    if (hooks.on_call && !held.empty() && k + 1 < toks.size() &&
        toks[k + 1].text == "(" && !HeadKeywords().count(t)) {
      const std::string& prev = k > 0 ? toks[k - 1].text : std::string();
      if (prev == "." || prev == "->") continue;
      if (prev == "::") {
        // Walk to the leftmost qualifier; skip std & friends.
        size_t e = k;
        while (e >= 2 && toks[e - 1].text == "::" && IsIdent(toks[e - 2])) {
          e -= 2;
        }
        static const std::set<std::string> kStdish = {
            "std", "chrono", "this_thread", "fs", "filesystem", "testing",
        };
        if (kStdish.count(toks[e].text)) continue;
      }
      hooks.on_call(t, toks[k].line, held);
    }
  }
}

}  // namespace

LockGraph BuildLockGraph(const DataflowProgram& program) {
  const std::vector<DfFunction>& fns = program.functions();
  const AnnotationIndex ann = BuildAnnotationIndex(program);

  // Per-function REQUIRES set (held on entry) from annotations.
  std::vector<std::set<std::string>> entry_held(fns.size());

  // Pass 1: direct acquisitions per function (for one-level call linking).
  // VSD_ACQUIRES contracts count as direct acquisitions even when the
  // acquisition is not lexically recoverable in the body.
  std::vector<std::set<std::string>> direct(fns.size());
  std::map<const DfFunction*, size_t> index;
  std::set<std::string> nodes;
  for (size_t i = 0; i < fns.size(); ++i) {
    index[&fns[i]] = i;
    if (const MethodContract* c = ann.ContractFor(fns[i].qualifier,
                                                  fns[i].name)) {
      entry_held[i] = c->requires_held;
      for (const std::string& id : c->requires_held) nodes.insert(id);
      for (const std::string& id : c->acquires) {
        direct[i].insert(id);
        nodes.insert(id);
      }
    }
    LockScanHooks hooks;
    hooks.on_acquire = [&](const std::string& id, int, const std::vector<Held>&) {
      direct[i].insert(id);
      nodes.insert(id);
    };
    ScanFunctionLocks(program.tokens(fns[i].file), fns[i], hooks);
  }

  // Pass 2: edges — direct nesting plus held-across-call acquisitions.
  LockGraph graph;
  std::set<std::pair<std::string, std::string>> seen;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& via) {
    if (from == to) return;
    if (!seen.insert({from, to}).second) return;
    graph.edges.push_back(LockEdge{from, to, file, line, via});
  };
  for (size_t i = 0; i < fns.size(); ++i) {
    // A function with no locks (direct or REQUIRES-seeded) adds nothing.
    if (direct[i].empty() && entry_held[i].empty()) continue;
    LockScanHooks hooks;
    hooks.on_acquire = [&](const std::string& id, int line,
                           const std::vector<Held>& held) {
      for (const Held& h : held) add_edge(h.id, id, fns[i].file, line, "");
    };
    hooks.on_call = [&](const std::string& name, int line,
                        const std::vector<Held>& held) {
      for (const DfFunction* callee : program.Resolve(fns[i], name)) {
        for (const std::string& id : direct[index[callee]]) {
          for (const Held& h : held) {
            add_edge(h.id, id, fns[i].file, line, name);
          }
        }
      }
    };
    ScanFunctionLocks(program.tokens(fns[i].file), fns[i], hooks,
                      entry_held[i]);
  }
  // Pass 2 skipped lock-free functions, so re-run call linking for them.
  for (size_t i = 0; i < fns.size(); ++i) {
    if (!direct[i].empty() || !entry_held[i].empty()) continue;
    LockScanHooks hooks;
    hooks.on_call = [&](const std::string& name, int line,
                        const std::vector<Held>& held) {
      for (const DfFunction* callee : program.Resolve(fns[i], name)) {
        for (const std::string& id : direct[index[callee]]) {
          for (const Held& h : held) {
            add_edge(h.id, id, fns[i].file, line, name);
          }
        }
      }
    };
    ScanFunctionLocks(program.tokens(fns[i].file), fns[i], hooks);
  }

  graph.nodes.assign(nodes.begin(), nodes.end());
  std::sort(graph.edges.begin(), graph.edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  return graph;
}

std::vector<Finding> CheckLockOrder(const LockGraph& graph) {
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : graph.edges) adj[e.from].push_back(&e);

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const std::string& n : graph.nodes) color[n] = Color::kWhite;

  std::vector<Finding> findings;
  std::set<std::string> reported;

  struct Frame {
    std::string node;
    size_t next_edge = 0;
  };
  for (const std::string& start : graph.nodes) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start, 0}};
    std::vector<std::string> path{start};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& edges = adj[frame.node];
      if (frame.next_edge >= edges.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const LockEdge* e = edges[frame.next_edge++];
      switch (color[e->to]) {
        case Color::kWhite:
          color[e->to] = Color::kGray;
          stack.push_back(Frame{e->to, 0});
          path.push_back(e->to);
          break;
        case Color::kGray: {
          auto begin = std::find(path.begin(), path.end(), e->to);
          std::vector<std::string> cycle(begin, path.end());
          auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string key;
          std::string pretty;
          for (const std::string& node : cycle) {
            key += node + "|";
            pretty += node + " -> ";
          }
          pretty += cycle.front();
          if (reported.insert(key).second) {
            std::string via =
                e->via.empty() ? "" : " (via call to '" + e->via + "')";
            findings.push_back(Finding{
                e->file, e->line, "lock-order",
                "lock acquisition cycle: " + pretty + via +
                    "; two threads taking these locks in opposite orders can "
                    "deadlock — impose one global acquisition order"});
          }
          break;
        }
        case Color::kBlack:
          break;
      }
    }
  }
  return findings;
}

std::string DumpLockDot(const LockGraph& graph) {
  std::ostringstream out;
  out << "digraph vsd_locks {\n";
  out << "  // Generated by `vsd_lint --dump-lock-graph`. An edge A -> B\n";
  out << "  // means B is acquired while A is held; dashed edges go through\n";
  out << "  // one call level. Any cycle is a potential deadlock.\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=box];\n";
  for (const std::string& n : graph.nodes) {
    out << "  \"" << n << "\";\n";
  }
  for (const LockEdge& e : graph.edges) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"" << e.file
        << ":" << e.line << "\"";
    if (!e.via.empty()) out << ", style=dashed";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

LockGraph BuildLockGraphFromTree(const std::string& root,
                                 const std::vector<std::string>& subdirs) {
  DataflowProgram program;
  for (const std::string& rel : ListSourceFiles(root, subdirs)) {
    std::string content;
    if (!ReadFileToString(root, rel, &content)) continue;
    program.AddFile(rel, Lex(content));
  }
  return BuildLockGraph(program);
}

// ---------------------------------------------------------------------------
// nondet-taint
// ---------------------------------------------------------------------------

namespace {

/// ParallelFor/ParallelMap call extents (open paren, close paren) inside
/// [begin, end).
std::vector<std::pair<size_t, size_t>> ParallelExtents(
    const std::vector<Token>& toks, size_t begin, size_t end) {
  std::vector<std::pair<size_t, size_t>> extents;
  for (size_t i = begin; i + 1 < end && i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i]) ||
        (toks[i].text != "ParallelFor" && toks[i].text != "ParallelMap")) {
      continue;
    }
    size_t j = i + 1;
    if (toks[j].text == "<") j = SkipAngles(toks, j);
    if (j >= toks.size() || toks[j].text != "(") continue;
    extents.emplace_back(j, MatchForward(toks, j, "(", ")"));
    i = j;
  }
  return extents;
}

}  // namespace

std::vector<TaintSource> FindNondetSources(const std::string& path,
                                           const std::vector<Token>& toks,
                                           const DfFunction& fn) {
  (void)path;
  static const std::set<std::string> kWallClock = {
      "system_clock", "high_resolution_clock", "time",
      "localtime",    "gmtime",                "ctime",
      "strftime",     "clock",                 "timespec_get",
      "gettimeofday", "clock_gettime",
  };
  static const std::set<std::string> kThreadId = {
      "get_id", "pthread_self", "gettid",
  };
  static const std::set<std::string> kIntTypes = {
      "uintptr_t", "intptr_t", "size_t",    "uint64_t", "uint32_t",
      "int64_t",   "long",     "ptrdiff_t", "unsigned",
  };
  static const std::set<std::string> kDrawMethods = {
      "Next",        "Uniform",  "UniformInt",
      "Normal",      "Bernoulli", "Shuffle",
      "SampleIndex", "SampleWithoutReplacement", "Fork",
  };

  std::vector<TaintSource> seeds;
  for (size_t k = fn.body_open + 1; k < fn.body_close && k < toks.size();
       ++k) {
    if (!IsIdent(toks[k])) continue;
    const std::string& t = toks[k].text;
    const bool member =
        k > 0 && (toks[k - 1].text == "." || toks[k - 1].text == "->");
    // Clock/thread-id sources must look like calls or scope uses
    // (time(...), system_clock::now()); a local merely *named* `time` is
    // not a source.
    const bool call_like =
        k + 1 < toks.size() &&
        (toks[k + 1].text == "(" || toks[k + 1].text == "::");
    if (kWallClock.count(t) && !member && call_like) {
      seeds.push_back(TaintSource{k, toks[k].line, "wall clock '" + t + "'"});
    } else if (kThreadId.count(t) && call_like) {
      seeds.push_back(TaintSource{k, toks[k].line, "thread id '" + t + "'"});
    } else if (t == "reinterpret_cast" && k + 1 < toks.size() &&
               toks[k + 1].text == "<") {
      const size_t close = SkipAngles(toks, k + 1);
      for (size_t m = k + 2; m + 1 < close; ++m) {
        if (IsIdent(toks[m]) && kIntTypes.count(toks[m].text)) {
          seeds.push_back(TaintSource{k, toks[k].line,
                                      "pointer-to-integer cast ('" +
                                          toks[m].text + "')"});
          break;
        }
      }
    }
  }

  // Shared-Rng draws inside ParallelFor bodies (the flow-sensitive side of
  // rng-fork: the *drawn value* is scheduling-dependent).
  for (const auto& [open, close] :
       ParallelExtents(toks, fn.body_open + 1, fn.body_close)) {
    std::set<std::string> locals;
    for (size_t k = open + 1; k + 1 < close; ++k) {
      if (IsIdent(toks[k]) &&
          (toks[k].text == "Rng" || toks[k].text == "auto")) {
        size_t m = k + 1;
        while (m < close && (toks[m].text == "&" || toks[m].text == "*" ||
                             toks[m].text == "const")) {
          ++m;
        }
        if (m < close && IsIdent(toks[m])) locals.insert(toks[m].text);
      }
    }
    for (size_t k = open + 2; k + 1 < close; ++k) {
      if (!IsIdent(toks[k]) || !kDrawMethods.count(toks[k].text)) continue;
      const std::string& access = toks[k - 1].text;
      if (access != "." && access != "->") continue;
      if (toks[k + 1].text != "(") continue;
      const Token& recv = toks[k - 2];
      if (recv.text == "]" || recv.text == ")") continue;
      if (!IsIdent(recv) || locals.count(recv.text)) continue;
      seeds.push_back(TaintSource{
          k, toks[k].line,
          "shared Rng draw '" + recv.text + "." + toks[k].text +
              "()' inside a ParallelFor body"});
    }
  }
  return seeds;
}

namespace {

/// Leftmost identifier of the lvalue chain ending at `e` (walking back over
/// subscripts and . / -> links): the tainted "root" object of an
/// assignment target like `result.scores[j]`.
std::string LhsRoot(const std::vector<Token>& toks, size_t lo, size_t e) {
  while (e > lo) {
    if (toks[e].text == "]") {  // Skip a subscript backwards.
      int depth = 1;
      while (e > lo && depth > 0) {
        --e;
        if (toks[e].text == "]") ++depth;
        else if (toks[e].text == "[") --depth;
      }
      if (e == lo) return {};
      --e;
      continue;
    }
    break;
  }
  if (e < lo || !IsIdent(toks[e])) return {};
  std::string root = toks[e].text;
  while (e >= lo + 2 &&
         (toks[e - 1].text == "." || toks[e - 1].text == "->") &&
         IsIdent(toks[e - 2])) {
    e -= 2;
    root = toks[e].text;
  }
  return root == "this" ? std::string() : root;
}

struct TaintAssign {
  std::string lhs;
  std::vector<std::string> rhs_idents;
  int rhs_seed = -1;  ///< Index into seeds, or -1.
};

}  // namespace

std::map<std::string, TaintSource> PropagateTaint(
    const std::vector<Token>& toks, const DfFunction& fn,
    const std::vector<TaintSource>& seeds) {
  static const std::set<std::string> kAssignOps = {
      "=",  "+=", "-=", "*=",  "/=",  "%=",
      "&=", "|=", "^=", "<<=", ">>=",
  };
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "insert", "emplace",
      "append",    "push",         "assign",
  };
  std::map<size_t, size_t> seed_at;  // token index -> seeds index
  for (size_t s = 0; s < seeds.size(); ++s) seed_at[seeds[s].token] = s;

  auto collect_rhs = [&](size_t begin, size_t end, TaintAssign* a) {
    for (size_t m = begin; m < end && m < toks.size(); ++m) {
      if (auto it = seed_at.find(m); it != seed_at.end() && a->rhs_seed < 0) {
        a->rhs_seed = static_cast<int>(it->second);
      }
      if (IsIdent(toks[m])) a->rhs_idents.push_back(toks[m].text);
    }
  };

  std::vector<TaintAssign> assigns;
  for (size_t k = fn.body_open + 1; k < fn.body_close && k < toks.size();
       ++k) {
    // Assignment / compound assignment.
    if (toks[k].kind == TokenKind::kPunct && kAssignOps.count(toks[k].text)) {
      const std::string lhs = LhsRoot(toks, fn.body_open + 1, k - 1);
      if (lhs.empty()) continue;
      size_t end = k + 1;
      while (end < fn.body_close && toks[end].text != ";" &&
             toks[end].text != "{" && toks[end].text != "}") {
        ++end;
      }
      TaintAssign a;
      a.lhs = lhs;
      collect_rhs(k + 1, end, &a);
      if (!a.rhs_idents.empty() || a.rhs_seed >= 0) {
        assigns.push_back(std::move(a));
      }
      continue;
    }
    // Container mutator: receiver absorbs taint from the arguments.
    if (IsIdent(toks[k]) && kMutators.count(toks[k].text) && k >= 2 &&
        (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
        k + 1 < toks.size() && toks[k + 1].text == "(") {
      const std::string recv = LhsRoot(toks, fn.body_open + 1, k - 2);
      if (recv.empty()) continue;
      const size_t close = MatchForward(toks, k + 1, "(", ")");
      TaintAssign a;
      a.lhs = recv;
      collect_rhs(k + 2, close, &a);
      if (!a.rhs_idents.empty() || a.rhs_seed >= 0) {
        assigns.push_back(std::move(a));
      }
      k = k + 1;
    }
  }

  std::map<std::string, TaintSource> taint;
  bool changed = true;
  for (int pass = 0; changed && pass < 8; ++pass) {
    changed = false;
    for (const TaintAssign& a : assigns) {
      if (taint.count(a.lhs)) continue;
      if (a.rhs_seed >= 0) {
        taint[a.lhs] = seeds[a.rhs_seed];
        changed = true;
        continue;
      }
      for (const std::string& id : a.rhs_idents) {
        auto it = taint.find(id);
        if (it != taint.end()) {
          taint[a.lhs] = it->second;
          changed = true;
          break;
        }
      }
    }
  }
  return taint;
}

std::vector<Finding> CheckNondetTaint(const std::string& path,
                                      const LexResult& lex) {
  static const std::set<std::string> kSinkCalls = {
      "AddRow", "WriteCsv", "WriteBenchPerfJson", "WriteJson",
  };
  const bool return_is_sink =
      StartsWith(path, "src/core/") || StartsWith(path, "bench/");

  const std::vector<Token>& toks = lex.tokens;
  std::vector<Finding> findings;
  std::set<std::pair<int, std::string>> seen;  // (line, message) dedup.
  auto report = [&](int line, const std::string& message) {
    if (seen.insert({line, message}).second) {
      findings.push_back(Finding{path, line, "nondet-taint", message});
    }
  };

  for (const DfFunction& fn : ExtractFunctions(path, toks)) {
    const std::vector<TaintSource> seeds = FindNondetSources(path, toks, fn);
    if (seeds.empty()) continue;
    std::map<size_t, size_t> seed_at;
    for (size_t s = 0; s < seeds.size(); ++s) seed_at[seeds[s].token] = s;
    const std::map<std::string, TaintSource> taint =
        PropagateTaint(toks, fn, seeds);

    auto scan_args = [&](size_t begin, size_t end, const std::string& sink,
                         int line) {
      for (size_t m = begin; m < end && m < toks.size(); ++m) {
        if (auto it = seed_at.find(m); it != seed_at.end()) {
          report(line, seeds[it->second].what + " flows into " + sink +
                           "; results must be a pure function of inputs — "
                           "pass deterministic data instead");
          return;
        }
        if (IsIdent(toks[m])) {
          auto it = taint.find(toks[m].text);
          if (it != taint.end()) {
            report(line, "'" + toks[m].text + "' is derived from " +
                             it->second.what + " (line " +
                             std::to_string(it->second.line) +
                             ") and flows into " + sink +
                             "; results must be a pure function of inputs — "
                             "pass deterministic data instead");
            return;
          }
        }
      }
    };

    for (size_t k = fn.body_open + 1; k < fn.body_close && k < toks.size();
         ++k) {
      if (!IsIdent(toks[k])) continue;
      const std::string& t = toks[k].text;
      if (kSinkCalls.count(t) && k + 1 < toks.size() &&
          toks[k + 1].text == "(") {
        const size_t close = MatchForward(toks, k + 1, "(", ")");
        scan_args(k + 2, close, "'" + t + "()'", toks[k].line);
      } else if (t == "return" && return_is_sink) {
        size_t end = k + 1;
        while (end < fn.body_close && toks[end].text != ";") ++end;
        scan_args(k + 1, end, "a returned result value", toks[k].line);
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

namespace {

/// Reports every allocating token in [begin, end). `where` names the hot
/// path for the message.
void ScanAllocs(const std::string& file, const std::vector<Token>& toks,
                size_t begin, size_t end, const std::string& where,
                std::vector<Finding>* findings) {
  static const std::set<std::string> kMemberAllocs = {
      "push_back", "emplace_back", "resize", "reserve",
      "insert",    "emplace",      "append", "substr",
  };
  static const std::set<std::string> kFreeAllocs = {
      "make_unique", "make_shared", "to_string",
  };
  auto report = [&](int line, const std::string& what) {
    findings->push_back(Finding{
        file, line, "hot-path-alloc",
        what + " allocates on a hot path (" + where +
            "); hot loops must reuse pre-sized buffers — hoist the "
            "allocation out of the loop or stage into a per-iteration "
            "buffer sized up front"});
  };
  for (size_t k = begin; k < end && k + 1 < toks.size(); ++k) {
    if (!IsIdent(toks[k])) continue;
    const std::string& t = toks[k].text;
    const std::string& prev = k > 0 ? toks[k - 1].text : std::string();
    if (t == "new") {
      if (prev != "operator" && prev != "." && prev != "->") {
        report(toks[k].line, "'new'");
      }
      continue;
    }
    if (kMemberAllocs.count(t) && (prev == "." || prev == "->") &&
        toks[k + 1].text == "(") {
      report(toks[k].line, "'" + t + "()'");
      continue;
    }
    if (kFreeAllocs.count(t) && prev != "." && prev != "->" &&
        (toks[k + 1].text == "(" || toks[k + 1].text == "<")) {
      report(toks[k].line, "'" + t + "'");
      continue;
    }
    // String growth: `s += "..."` (string-literal append grows the buffer).
    if (k + 2 < end && k + 2 < toks.size() && toks[k + 1].text == "+=" &&
        toks[k + 2].kind == TokenKind::kString) {
      report(toks[k + 1].line, "'+=' on a string");
    }
  }
}

bool IsExecuteFn(const DfFunction& fn) {
  if (fn.name != "Execute") return false;
  return fn.qualifier == "GraphExecutor" ||
         (fn.qualifier.size() > 14 &&
          fn.qualifier.compare(fn.qualifier.size() - 14, 14,
                               "::GraphExecutor") == 0);
}

}  // namespace

std::vector<Finding> CheckHotPathAlloc(const DataflowProgram& program) {
  std::vector<Finding> findings;

  for (const DfFunction& fn : program.functions()) {
    const std::vector<Token>& toks = program.tokens(fn.file);
    const bool in_kernels = StartsWith(fn.file, "src/tensor/kernels.");
    const bool is_execute = IsExecuteFn(fn);
    if (in_kernels) {
      ScanAllocs(fn.file, toks, fn.body_open + 1, fn.body_close,
                 "kernel '" + fn.QualifiedName() + "' in src/tensor/kernels",
                 &findings);
    }
    if (!is_execute) continue;
    ScanAllocs(fn.file, toks, fn.body_open + 1, fn.body_close,
               "GraphExecutor::Execute — the zero-allocation contract of "
               "tests/graph_exec_test.cc",
               &findings);
    // One level of resolved callees: allocations there break the same
    // runtime contract, just one frame down.
    for (size_t k = fn.body_open + 1;
         k + 1 < fn.body_close && k + 1 < toks.size(); ++k) {
      if (!IsIdent(toks[k]) || toks[k + 1].text != "(" ||
          HeadKeywords().count(toks[k].text)) {
        continue;
      }
      const std::string& prev = toks[k - 1].text;
      if (prev == "." || prev == "->") continue;
      for (const DfFunction* callee : program.Resolve(fn, toks[k].text)) {
        if (callee->body_open == fn.body_open &&
            callee->file == fn.file) {
          continue;  // Recursion guard.
        }
        std::string where = "'";
        where += callee->QualifiedName();
        where += "' reachable from GraphExecutor::Execute via the call at ";
        where += fn.file;
        where += ":";
        where += std::to_string(toks[k].line);
        ScanAllocs(callee->file, program.tokens(callee->file),
                   callee->body_open + 1, callee->body_close, where,
                   &findings);
      }
    }
  }

  // Explainer perturbation loops: every ParallelFor/ParallelMap call extent
  // in src/explain/ is a hot loop body.
  for (const std::string& file : program.files()) {
    if (!StartsWith(file, "src/explain/")) continue;
    const std::vector<Token>& toks = program.tokens(file);
    for (const auto& [open, close] : ParallelExtents(toks, 0, toks.size())) {
      ScanAllocs(file, toks, open + 1, close,
                 "ParallelFor body in an explainer loop", &findings);
    }
  }
  return findings;
}

}  // namespace vsd::lint
