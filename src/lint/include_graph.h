#ifndef VSD_LINT_INCLUDE_GRAPH_H_
#define VSD_LINT_INCLUDE_GRAPH_H_

#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace vsd::lint {

/// One resolved project `#include`: `from` includes `to`, both repo-relative
/// with '/' separators. System includes and includes that do not resolve to
/// a file in the graph are not edges.
struct IncludeEdge {
  std::string from;
  std::string to;
  int line = 0;  ///< Line of the `#include` directive in `from`.
};

/// The whole-program include graph over one lint walk.
struct IncludeGraph {
  std::vector<std::string> files;  ///< Sorted, repo-relative.
  std::vector<IncludeEdge> edges;  ///< Sorted by (from, line).
};

/// Architectural layer of `path` (see docs/INTERNALS.md "Include layering"):
///
///   0 src/common
///   1 src/tensor  src/img  src/text
///   2 src/data    src/nn   src/face
///   3 src/vlm
///   4 src/cot
///   5 src/baselines  src/explain
///   6 src/core
///   7 src/serve
///   8 src/lint  bench  tools  examples
///
/// Includes may only point sideways or down (toward common). Returns -1 for
/// unconstrained paths (tests/ may include anything; unknown roots are not
/// checked).
int LayerOf(const std::string& path);

/// Human-readable name of a layer index ("common", "tensor/img/text", ...).
/// Used in findings and the DOT dump. Aborts on out-of-range.
const std::string& LayerName(int layer);

/// Accumulates lexed files into an `IncludeGraph`. Include targets are
/// resolved against the set of added files, trying in order:
/// `src/<target>`, `<target>`, `<dir of includer>/<target>` — matching how
/// the build resolves quoted includes (-Isrc, -I<repo root>, includer dir).
class IncludeGraphBuilder {
 public:
  /// Registers `path` and every `#include "..."` directive in `lex`.
  void AddFile(const std::string& path, const LexResult& lex);

  /// Resolves targets and returns the graph. May be called once per builder.
  IncludeGraph Build() const;

 private:
  struct RawInclude {
    std::string from;
    std::string target;
    int line = 0;
  };
  std::vector<std::string> files_;
  std::vector<RawInclude> includes_;
};

/// Rule `layering`: flags every edge whose target sits in a *higher* layer
/// than its source (an upward include breaks the one-way dependency order
/// the build and the docs promise). Findings point at the offending
/// `#include` line.
std::vector<Finding> CheckLayering(const IncludeGraph& graph);

/// Rule `include-cycle`: flags every distinct cycle in the file-level graph
/// (each reported once, at the edge that closes it, with the full path in
/// the message). A cyclic include graph means no valid layering exists at
/// all, so these are errors even where `LayerOf` is -1.
std::vector<Finding> CheckCycles(const IncludeGraph& graph);

/// Directory-level DOT export for `vsd_lint --dump-graph`: one node per
/// module (e.g. "src/cot", "bench"), labeled with its layer, one edge per
/// inter-module dependency labeled with the number of file-level includes
/// behind it. Same-layer modules share a DOT rank. Deterministic output.
std::string DumpDot(const IncludeGraph& graph);

/// Walks `root`/`subdirs` like `LintTree` and builds the graph from disk.
/// Unreadable files are skipped (the lint walk reports those separately).
IncludeGraph BuildIncludeGraphFromTree(const std::string& root,
                                       const std::vector<std::string>& subdirs);

}  // namespace vsd::lint

#endif  // VSD_LINT_INCLUDE_GRAPH_H_
