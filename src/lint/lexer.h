#ifndef VSD_LINT_LEXER_H_
#define VSD_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsd::lint {

enum class TokenKind {
  kIdentifier,  ///< Identifiers and keywords (no distinction needed here).
  kNumber,      ///< Integer or floating literal, suffixes included.
  kString,      ///< String literal (quotes stripped), incl. raw strings.
  kChar,        ///< Character literal.
  kPunct,       ///< Operator / punctuator, longest-match (e.g. "==", "::").
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;          ///< 1-based line of the token's first character.
  bool is_float = false; ///< For kNumber: literal has '.', exponent, or f/F.
};

/// A preprocessor directive, captured as one trimmed line ("#include <x>",
/// "#pragma once", ...). Continuation lines are folded in.
struct PpDirective {
  int line = 0;
  std::string text;
};

/// Output of `Lex`. Comments and preprocessor lines never become tokens;
/// comments feed `suppressions`, preprocessor lines feed `directives`.
struct LexResult {
  std::vector<Token> tokens;           ///< Ends with a kEof token.
  std::vector<PpDirective> directives;
  /// Line -> rule names named in a `// vsd-lint: allow(rule, ...)` comment
  /// on that line. A suppression covers its own line and the next line, so
  /// it works both trailing an offending statement and on the line above.
  std::map<int, std::set<std::string>> suppressions;
};

/// Tokenizes C++ source. This is a lexer, not a parser: it understands
/// comments (including backslash line-continuation), string/char literals
/// (including raw strings with encoding prefixes), numbers (including digit
/// separators), and multi-character punctuators well enough that rule code
/// can pattern-match token sequences without being fooled by the contents
/// of literals.
LexResult Lex(const std::string& source);

}  // namespace vsd::lint

#endif  // VSD_LINT_LEXER_H_
