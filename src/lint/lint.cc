#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/thread_pool.h"
#include "lint/annotations.h"
#include "lint/captures.h"
#include "lint/dataflow.h"
#include "lint/include_graph.h"
#include "lint/lexer.h"

namespace vsd::lint {
namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& path) { return EndsWith(path, ".h"); }

struct FileCtx {
  const std::string& path;
  const LexResult& lex;
  std::vector<Finding>* findings;

  void Report(int line, const char* rule, std::string message) const {
    findings->push_back(Finding{path, line, rule, std::move(message)});
  }
};

/// Paths whose output lands in reported tables/explanations/chains. The
/// determinism rules (unordered-iter, wall-clock, thread-id, pointer-key)
/// are scoped here: infrastructure may time and schedule, result code may
/// not observe the clock, the scheduler, or the address space.
bool InResultPath(const std::string& path) {
  static const char* const kResultPaths[] = {
      "src/core/", "src/explain/", "src/cot/",
      "src/baselines/", "src/vlm/", "bench/",
  };
  for (const char* p : kResultPaths) {
    if (StartsWith(path, p)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// raw-rand: the determinism contract (docs/INTERNALS.md) requires every
// stochastic component to draw from an explicit vsd::Rng. Any use of the
// <cstdlib>/<random> machinery outside src/common/rng.* introduces a second,
// unseeded entropy source and breaks bit-reproducibility.
// ---------------------------------------------------------------------------
void CheckRawRand(const FileCtx& ctx) {
  if (StartsWith(ctx.path, "src/common/rng.")) return;
  static const std::set<std::string> kBanned = {
      "rand",          "srand",          "rand_r",
      "random_device", "mt19937",        "mt19937_64",
      "minstd_rand",   "minstd_rand0",   "default_random_engine",
      "random_shuffle", "ranlux24_base", "ranlux48_base",
      "ranlux24",      "ranlux48",       "knuth_b",
  };
  const auto& toks = ctx.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (kBanned.find(toks[i].text) == kBanned.end()) continue;
    // Member access (config.rand, obj->rand) is some other class's member,
    // not the C library; `std::rand` / `::rand` / bare `rand` all still hit.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    ctx.Report(toks[i].line, "raw-rand",
               "'" + toks[i].text +
                   "' bypasses vsd::Rng; all randomness must flow through "
                   "src/common/rng.* so runs stay bit-reproducible");
  }
}

// ---------------------------------------------------------------------------
// rng-fork: drawing from an Rng that was captured by reference inside a
// ParallelFor/ParallelMap body is both a data race (Rng::Next mutates state)
// and nondeterministic (draw order depends on scheduling). The sanctioned
// pattern forks one child stream per iteration index *before* the loop and
// indexes it inside (streams[i].Uniform()), or declares a body-local Rng.
// ---------------------------------------------------------------------------
void CheckRngFork(const FileCtx& ctx) {
  static const std::set<std::string> kDrawMethods = {
      "Next",        "Uniform",  "UniformInt",
      "Normal",      "Bernoulli", "Shuffle",
      "SampleIndex", "SampleWithoutReplacement", "Fork",
  };
  const auto& toks = ctx.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        (toks[i].text != "ParallelFor" && toks[i].text != "ParallelMap")) {
      continue;
    }
    // Skip optional template arguments: ParallelMap<T>(...).
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">") --depth;
        else if (toks[j].text == ">>") depth -= 2;
        ++j;
      }
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    // Find the matching close paren: [open, close) is the call's extent.
    size_t open = j;
    int depth = 1;
    size_t close = open + 1;
    while (close < toks.size() && depth > 0) {
      if (toks[close].text == "(") ++depth;
      else if (toks[close].text == ")") --depth;
      if (depth == 0) break;
      ++close;
    }

    // Identifiers declared inside the call extent (Rng r / Rng& r / auto r)
    // are per-iteration locals and safe to draw from.
    std::set<std::string> locals;
    for (size_t k = open + 1; k + 1 < close; ++k) {
      if (toks[k].kind != TokenKind::kIdentifier ||
          (toks[k].text != "Rng" && toks[k].text != "auto")) {
        continue;
      }
      size_t m = k + 1;
      while (m < close &&
             (toks[m].text == "&" || toks[m].text == "*" ||
              toks[m].text == "const")) {
        ++m;
      }
      if (m < close && toks[m].kind == TokenKind::kIdentifier) {
        locals.insert(toks[m].text);
      }
    }

    for (size_t k = open + 2; k + 1 < close; ++k) {
      if (toks[k].kind != TokenKind::kIdentifier ||
          kDrawMethods.find(toks[k].text) == kDrawMethods.end()) {
        continue;
      }
      const std::string& access = toks[k - 1].text;
      if (access != "." && access != "->") continue;
      if (k + 1 >= close || toks[k + 1].text != "(") continue;
      const Token& recv = toks[k - 2];
      // streams[i].Uniform() / MakeRng(i).Next(): the receiver is a
      // per-index expression, which is exactly the sanctioned pattern.
      if (recv.text == "]" || recv.text == ")") continue;
      if (recv.kind != TokenKind::kIdentifier) continue;
      // Qualified receivers (obj.rng.Next) still end in an identifier, and
      // a shared nested member is just as racy, so fall through for those.
      if (locals.count(recv.text)) continue;
      ctx.Report(toks[k].line, "rng-fork",
                 "'" + recv.text + "." + toks[k].text +
                     "()' inside a ParallelFor/ParallelMap body draws from a "
                     "shared Rng (data race + scheduling-dependent results); "
                     "Fork() per-index streams before the loop or declare a "
                     "body-local Rng");
    }
    i = open;  // Continue after the call head; nested calls re-scan inside.
  }
}

// ---------------------------------------------------------------------------
// float-eq: exact ==/!= on floating-point values inside the metric and math
// kernels is almost always a tolerance bug that shifts reported tables.
// Scoped to src/core/metrics.* and src/common/math_util.*; legitimate exact
// guards (e.g. `total == 0.0` before dividing) carry an explicit
// allow(float-eq) suppression comment with a reason.
// ---------------------------------------------------------------------------
void CheckFloatEq(const FileCtx& ctx) {
  if (!StartsWith(ctx.path, "src/core/metrics.") &&
      !StartsWith(ctx.path, "src/common/math_util.")) {
    return;
  }
  const auto& toks = ctx.lex.tokens;
  // Identifiers declared in this file with type double/float.
  std::set<std::string> float_vars;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        (toks[i].text != "double" && toks[i].text != "float")) {
      continue;
    }
    size_t m = i + 1;
    while (m < toks.size() &&
           (toks[m].text == "&" || toks[m].text == "*" ||
            toks[m].text == "const")) {
      ++m;
    }
    if (m < toks.size() && toks[m].kind == TokenKind::kIdentifier) {
      float_vars.insert(toks[m].text);
    }
  }
  auto is_floaty = [&](const Token& t) {
    if (t.kind == TokenKind::kNumber) return t.is_float;
    if (t.kind == TokenKind::kIdentifier) return float_vars.count(t.text) > 0;
    return false;
  };
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct ||
        (toks[i].text != "==" && toks[i].text != "!=")) {
      continue;
    }
    if (is_floaty(toks[i - 1]) || is_floaty(toks[i + 1])) {
      ctx.Report(toks[i].line, "float-eq",
                 "exact '" + toks[i].text +
                     "' on a floating-point value; compare against a "
                     "tolerance (see math_util) or suppress with a reason if "
                     "the exact comparison is intentional");
    }
  }
}

// ---------------------------------------------------------------------------
// header-guard: every header starts with #pragma once or a matching
// #ifndef/#define include-guard pair (the repo convention: VSD_<PATH>_H_).
// ---------------------------------------------------------------------------
void CheckHeaderGuard(const FileCtx& ctx) {
  if (!IsHeaderPath(ctx.path)) return;
  const auto& dirs = ctx.lex.directives;
  if (!dirs.empty() && dirs[0].text == "#pragma once") return;
  if (dirs.size() >= 2 && StartsWith(dirs[0].text, "#ifndef") &&
      StartsWith(dirs[1].text, "#define")) {
    std::istringstream a(dirs[0].text), b(dirs[1].text);
    std::string kw_a, macro_a, kw_b, macro_b;
    a >> kw_a >> macro_a;
    b >> kw_b >> macro_b;
    if (!macro_a.empty() && macro_a == macro_b) return;
    ctx.Report(dirs[1].line, "header-guard",
               "include guard #define '" + macro_b +
                   "' does not match #ifndef '" + macro_a + "'");
    return;
  }
  ctx.Report(dirs.empty() ? 1 : dirs[0].line, "header-guard",
             "header must begin with '#pragma once' or an "
             "#ifndef/#define include guard");
}

// ---------------------------------------------------------------------------
// include-order: within a contiguous include block (no blank line or other
// directive in between), all includes are of one kind (<...> or "...") and
// sorted alphabetically. Blank lines separate groups, matching the repo
// style: own header / <system block> / "project block".
// ---------------------------------------------------------------------------
void CheckIncludeOrder(const FileCtx& ctx) {
  struct Inc {
    int line;
    char kind;  // '<' or '"'
    std::string target;
  };
  // Split includes into groups of directly adjacent lines.
  std::vector<std::vector<Inc>> groups;
  int prev_line = -10;
  bool prev_was_include = false;
  for (const auto& d : ctx.lex.directives) {
    if (!StartsWith(d.text, "#include")) {
      prev_was_include = false;
      continue;
    }
    size_t open = d.text.find_first_of("<\"", 8);
    if (open == std::string::npos) {
      prev_was_include = false;
      continue;  // Macro include; out of scope.
    }
    char kind = d.text[open];
    char closer = kind == '<' ? '>' : '"';
    size_t end = d.text.find(closer, open + 1);
    if (end == std::string::npos) end = d.text.size();
    Inc inc{d.line, kind, d.text.substr(open + 1, end - open - 1)};
    if (!prev_was_include || d.line != prev_line + 1 || groups.empty()) {
      groups.emplace_back();
    }
    groups.back().push_back(std::move(inc));
    prev_line = d.line;
    prev_was_include = true;
  }
  for (const auto& g : groups) {
    for (size_t i = 1; i < g.size(); ++i) {
      if (g[i].kind != g[0].kind) {
        ctx.Report(g[i].line, "include-order",
                   "include block mixes <...> and \"...\" includes; separate "
                   "system and project includes with a blank line");
        break;
      }
    }
    for (size_t i = 1; i < g.size(); ++i) {
      if (g[i].kind == g[i - 1].kind && g[i].target < g[i - 1].target) {
        ctx.Report(g[i].line, "include-order",
                   "'" + g[i].target + "' breaks alphabetical order (after '" +
                       g[i - 1].target + "')");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-iter: iterating an unordered container in code that produces
// results (metrics, explanations, chains, baselines, benches) makes output
// depend on hash-table layout — libstdc++ version, insertion order, even
// ASLR for pointer keys. Result paths must iterate ordered containers or
// sorted snapshots.
// ---------------------------------------------------------------------------
void CheckUnorderedIter(const FileCtx& ctx) {
  if (!InResultPath(ctx.path)) return;

  const auto& toks = ctx.lex.tokens;
  // Identifiers declared in this file as std::unordered_{map,set}<...>.
  std::set<std::string> unordered_vars;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        (toks[i].text != "unordered_map" && toks[i].text != "unordered_set" &&
         toks[i].text != "unordered_multimap" &&
         toks[i].text != "unordered_multiset")) {
      continue;
    }
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 1;
    ++j;
    while (j < toks.size() && depth > 0) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">") --depth;
      else if (toks[j].text == ">>") depth -= 2;
      ++j;
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      unordered_vars.insert(toks[j].text);
    }
  }
  if (unordered_vars.empty()) return;

  // Range-for whose range expression names an unordered container.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || toks[i].text != "for" ||
        toks[i + 1].text != "(") {
      continue;
    }
    size_t open = i + 1;
    int depth = 1;
    size_t close = open + 1;
    size_t colon = 0;
    while (close < toks.size() && depth > 0) {
      if (toks[close].text == "(") ++depth;
      else if (toks[close].text == ")") --depth;
      if (depth == 0) break;
      if (depth == 1 && toks[close].text == ":" && colon == 0) colon = close;
      ++close;
    }
    if (colon == 0) continue;  // Classic for loop.
    for (size_t k = colon + 1; k < close; ++k) {
      if (toks[k].kind == TokenKind::kIdentifier &&
          unordered_vars.count(toks[k].text)) {
        ctx.Report(toks[k].line, "unordered-iter",
                   "iterating unordered container '" + toks[k].text +
                       "' in a result-producing path; hash-table order is "
                       "not deterministic across platforms — use an ordered "
                       "container or a sorted snapshot");
        break;
      }
    }
  }
  // Explicit iterator walks: var.begin() / var.cbegin().
  for (size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        (toks[i].text != "begin" && toks[i].text != "cbegin")) {
      continue;
    }
    if (toks[i - 1].text != "." && toks[i - 1].text != "->") continue;
    if (toks[i + 1].text != "(") continue;
    const Token& recv = toks[i - 2];
    if (recv.kind == TokenKind::kIdentifier && unordered_vars.count(recv.text)) {
      ctx.Report(toks[i].line, "unordered-iter",
                 "iterator over unordered container '" + recv.text +
                     "' in a result-producing path; hash-table order is not "
                     "deterministic");
    }
  }
}

// ---------------------------------------------------------------------------
// per-sample-predict: calling a single-sample predict entry point from a
// loop in the bench or core-evaluation layers forfeits the batched spine —
// one model forward per batch collapses back into one forward per sample.
// Route the loop through PredictBatch/PredictLabelBatch/
// EvaluatePredictorBatched instead; genuinely per-sample protocols (e.g.
// retrieval that threads one rng stream across samples) carry an explicit
// allow(per-sample-predict) suppression comment with a reason.
// ---------------------------------------------------------------------------
void CheckPerSamplePredict(const FileCtx& ctx) {
  if (!StartsWith(ctx.path, "bench/") && !StartsWith(ctx.path, "src/core/")) {
    return;
  }
  static const std::set<std::string> kSingleCalls = {
      "Predict", "PredictLabel", "PredictProbStressed",
  };
  const auto& toks = ctx.lex.tokens;

  auto matching = [&](size_t open, const char* opener, const char* closer) {
    int depth = 1;
    size_t k = open + 1;
    while (k < toks.size() && depth > 0) {
      if (toks[k].text == opener) ++depth;
      else if (toks[k].text == closer) --depth;
      if (depth == 0) break;
      ++k;
    }
    return k;
  };

  // Loop extents: for/while statements (header + braced body) and the
  // per-index callables handed to ParallelFor/ParallelMap/
  // EvaluatePredictor (each is a per-sample loop in disguise).
  std::vector<std::pair<size_t, size_t>> extents;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const bool is_loop = toks[i].text == "for" || toks[i].text == "while";
    const bool is_call = toks[i].text == "ParallelFor" ||
                         toks[i].text == "ParallelMap" ||
                         toks[i].text == "EvaluatePredictor";
    if (!is_loop && !is_call) continue;
    size_t j = i + 1;
    // Skip optional template arguments: ParallelMap<T>(...).
    if (is_call && j < toks.size() && toks[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">") --depth;
        else if (toks[j].text == ">>") depth -= 2;
        ++j;
      }
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    size_t end = matching(j, "(", ")");
    if (is_loop && end + 1 < toks.size() && toks[end + 1].text == "{") {
      end = matching(end + 1, "{", "}");
    }
    extents.emplace_back(j, end);
  }
  if (extents.empty()) return;

  for (size_t k = 2; k + 1 < toks.size(); ++k) {
    if (toks[k].kind != TokenKind::kIdentifier ||
        kSingleCalls.find(toks[k].text) == kSingleCalls.end()) {
      continue;
    }
    const std::string& access = toks[k - 1].text;
    if (access != "." && access != "->") continue;
    if (toks[k + 1].text != "(") continue;
    bool in_loop = false;
    for (const auto& [begin, end] : extents) {
      if (k > begin && k < end) {
        in_loop = true;
        break;
      }
    }
    if (!in_loop) continue;
    ctx.Report(toks[k].line, "per-sample-predict",
               "'" + toks[k].text +
                   "()' called per sample inside a loop; use the batched "
                   "entry points (PredictBatch/PredictLabelBatch/"
                   "EvaluatePredictorBatched) so inference runs one forward "
                   "per batch, or suppress with a reason if the protocol is "
                   "inherently per-sample");
  }
}

// ---------------------------------------------------------------------------
// blocking-wait-no-deadline: the serving layer's liveness contract is that
// every accepted request resolves — which only holds if no code path can
// block forever. A bare one-argument condition_variable wait(lock) (no
// predicate) or a future get()/wait() parks the thread until someone else
// acts; under fault injection (stalled workers, dropped notifications) that
// someone may never come. Scoped to src/serve/: waits there must be bounded
// (wait_for/wait_until) or predicated (wait(lock, pred), which re-checks
// its condition on every wakeup so a lost notification costs one spurious
// pass, not a hang), and futures polled with wait_for before get().
// Intentional unbounded waits carry an explicit
// allow(blocking-wait-no-deadline) suppression comment with a reason.
// ---------------------------------------------------------------------------

/// Counts commas at paren depth 1 inside the call whose '(' is at
/// `open_paren` (i.e. between the call's own parentheses, not inside nested
/// calls/lambdas): a two-or-more-argument call has at least one.
int TopLevelCommas(const std::vector<Token>& toks, size_t open_paren) {
  int depth = 0;
  int commas = 0;
  for (size_t j = open_paren; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth <= 0) break;
    } else if (t == "," && depth == 1) {
      ++commas;
    }
  }
  return commas;
}

void CheckBlockingWait(const FileCtx& ctx) {
  if (!StartsWith(ctx.path, "src/serve/")) return;
  const auto& toks = ctx.lex.tokens;
  for (size_t k = 2; k + 1 < toks.size(); ++k) {
    if (toks[k].kind != TokenKind::kIdentifier) continue;
    const std::string& access = toks[k - 1].text;
    if (access != "." && access != "->") continue;
    if (toks[k + 1].text != "(") continue;
    if (toks[k].text == "wait") {
      // wait(lock, pred) is fine; only the predicate-less form can hang on
      // a lost notification.
      if (TopLevelCommas(toks, k + 1) >= 1) continue;
      ctx.Report(toks[k].line, "blocking-wait-no-deadline",
                 "predicate-less 'wait()' in the serving layer; pass a "
                 "predicate (wait(lock, pred)) or use wait_for/wait_until "
                 "so a lost notification or stalled producer cannot park "
                 "this thread forever");
    } else if (toks[k].text == "get") {
      // unique_ptr::get() and friends are everywhere; only a receiver that
      // names a future is a blocking retrieval.
      const Token& recv = toks[k - 2];
      if (recv.kind == TokenKind::kIdentifier &&
          recv.text.find("future") != std::string::npos) {
        ctx.Report(toks[k].line, "blocking-wait-no-deadline",
                   "'" + recv.text +
                       ".get()' blocks without a deadline; wait_for the "
                       "future first (or document why an unbounded block is "
                       "safe and suppress)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// wall-clock: a result that depends on when it was computed is not a result.
// Reading the wall clock (system_clock, ::time, localtime, ...) in a result
// path smuggles the current time into tables and explanations. steady_clock
// is deliberately not banned: it is monotonic, and bench timers / serve
// deadlines use it for durations that never enter result values.
// ---------------------------------------------------------------------------
void CheckWallClock(const FileCtx& ctx) {
  if (!InResultPath(ctx.path)) return;
  static const std::set<std::string> kBanned = {
      "system_clock", "high_resolution_clock", "time",
      "localtime",    "gmtime",                "ctime",
      "strftime",     "clock",                 "timespec_get",
      "gettimeofday", "clock_gettime",
  };
  const auto& toks = ctx.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        kBanned.find(toks[i].text) == kBanned.end()) {
      continue;
    }
    // Member access (cfg.time, obj->clock) is some other class's member.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    ctx.Report(toks[i].line, "wall-clock",
               "'" + toks[i].text +
                   "' reads the wall clock in a result path; results must "
                   "not depend on when they run — use steady_clock for "
                   "durations outside result values, or thread timestamps "
                   "in explicitly as data");
  }
}

// ---------------------------------------------------------------------------
// thread-id: which worker executes an index is a scheduling accident. Any
// result-path read of thread identity (this_thread::get_id, pthread_self)
// makes output depend on that accident. Results must be a pure function of
// the index; per-thread state belongs in per-index slots.
// ---------------------------------------------------------------------------
void CheckThreadId(const FileCtx& ctx) {
  if (!InResultPath(ctx.path)) return;
  static const std::set<std::string> kBanned = {
      "get_id", "pthread_self", "gettid",
  };
  const auto& toks = ctx.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        kBanned.find(toks[i].text) == kBanned.end()) {
      continue;
    }
    ctx.Report(toks[i].line, "thread-id",
               "'" + toks[i].text +
                   "' observes thread identity in a result path; which "
                   "thread runs an index is scheduling-dependent — key "
                   "per-worker state by the iteration index instead");
  }
}

// ---------------------------------------------------------------------------
// pointer-key: std::map/std::set ordered by a pointer key iterate in address
// order, which ASLR re-rolls every run. In result paths that ordering leaks
// straight into output. Key by a stable id or index; if identity-keyed
// lookup (never iterated) is really wanted, that is what unordered_map is
// for — and unordered-iter polices its iteration separately.
// ---------------------------------------------------------------------------
void CheckPointerKey(const FileCtx& ctx) {
  if (!InResultPath(ctx.path)) return;
  static const std::set<std::string> kOrdered = {
      "map", "set", "multimap", "multiset",
  };
  const auto& toks = ctx.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        kOrdered.find(toks[i].text) == kOrdered.end()) {
      continue;
    }
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;  // obj.set(...) is a setter, not a container.
    }
    if (toks[i + 1].text != "<") continue;
    // Scan the key type: everything up to the first top-level comma (the
    // Compare/Allocator/mapped-type args never order iteration) or the
    // closing '>'.
    int depth = 1;
    bool pointer_key = false;
    size_t j = i + 2;
    while (j < toks.size() && depth > 0) {
      const std::string& t = toks[j].text;
      if (t == "<") ++depth;
      else if (t == ">") --depth;
      else if (t == ">>") depth -= 2;
      else if (t == "," && depth == 1) break;
      else if (t == "*" && depth == 1) pointer_key = true;
      ++j;
    }
    if (pointer_key) {
      ctx.Report(toks[i].line, "pointer-key",
                 "ordered '" + toks[i].text +
                     "' keyed by a pointer; iteration follows addresses, "
                     "which ASLR re-rolls every run — key by a stable id or "
                     "index instead");
    }
  }
}

// ---------------------------------------------------------------------------
// kernel-bypass: every multiply-accumulate inner loop in the model layers
// must go through the registry-dispatched kernels (tensor/kernels.h) so it
// picks up the SIMD and int8 backends and stays inside the bit-identity
// contract. A raw `out[...] += a * b` loop in src/tensor/, src/nn/, or
// src/vlm/ outside the kernel TUs is a hand-rolled matmul/conv that the
// registry can neither vectorize nor quantize. Kernel implementations
// themselves (src/tensor/kernels*) are exempt — they are the one place
// such loops belong.
// ---------------------------------------------------------------------------
void CheckKernelBypass(const FileCtx& ctx) {
  const bool scoped = StartsWith(ctx.path, "src/tensor/") ||
                      StartsWith(ctx.path, "src/nn/") ||
                      StartsWith(ctx.path, "src/vlm/");
  if (!scoped || StartsWith(ctx.path, "src/tensor/kernels")) return;
  const auto& toks = ctx.lex.tokens;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct || toks[i].text != "+=") continue;
    if (toks[i - 1].text != "]") continue;  // Accumulate into a subscript.
    // The RHS (up to the statement end) must multiply two values — the
    // multiply-accumulate shape of a matmul/conv inner loop. `*` is a
    // multiply (not a deref) when it follows a value token.
    bool has_mul = false;
    for (size_t j = i + 2; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].kind != TokenKind::kPunct || toks[j].text != "*") continue;
      const Token& prev = toks[j - 1];
      if (prev.kind == TokenKind::kIdentifier ||
          prev.kind == TokenKind::kNumber || prev.text == ")" ||
          prev.text == "]") {
        has_mul = true;
        break;
      }
    }
    if (!has_mul) continue;
    ctx.Report(toks[i].line, "kernel-bypass",
               "raw multiply-accumulate loop outside the kernel layer; "
               "route matmul-shaped work through tensor/kernels.h so it "
               "dispatches via the registry (SIMD/int8 backends, "
               "bit-identity contract) instead of a hand-rolled float loop");
  }
}

}  // namespace

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      "raw-rand",       "rng-fork",      "float-eq",
      "header-guard",   "include-order", "unordered-iter",
      "per-sample-predict", "blocking-wait-no-deadline",
      "unguarded-capture",  "wall-clock", "thread-id",
      "pointer-key",    "layering",      "include-cycle",
      "lock-order",     "nondet-taint",  "hot-path-alloc",
      "kernel-bypass",  "guarded-by",    "unannotated-mutex",
      "ref-invalidation",
  };
  return kRules;
}

namespace {

/// A `// vsd-lint: allow(rule)` comment suppresses findings on its own line
/// and on the following line. Shared by the per-file and tree-level paths.
bool IsSuppressed(const Finding& f,
                  const std::map<int, std::set<std::string>>& suppressions) {
  for (int line : {f.line, f.line - 1}) {
    auto it = suppressions.find(line);
    if (it != suppressions.end() && it->second.count(f.rule)) return true;
  }
  return false;
}

/// All per-file checks over an already-lexed file, raw (no suppression
/// filtering, unsorted). The whole-program rules (layering, include-cycle,
/// lock-order, hot-path-alloc) need the full tree and live in
/// ProgramFindings / LintTree.
std::vector<Finding> CollectFileFindings(const std::string& path,
                                         const LexResult& lex) {
  std::vector<Finding> findings;
  FileCtx ctx{path, lex, &findings};
  CheckRawRand(ctx);
  CheckRngFork(ctx);
  CheckFloatEq(ctx);
  CheckHeaderGuard(ctx);
  CheckIncludeOrder(ctx);
  CheckUnorderedIter(ctx);
  CheckPerSamplePredict(ctx);
  CheckBlockingWait(ctx);
  CheckWallClock(ctx);
  CheckThreadId(ctx);
  CheckPointerKey(ctx);
  CheckKernelBypass(ctx);
  CheckUnguardedCaptures(path, lex, &findings);
  for (Finding& f : CheckNondetTaint(path, lex)) {
    findings.push_back(std::move(f));
  }
  return findings;
}

/// The whole-program dataflow rules, raw.
std::vector<Finding> ProgramFindings(const DataflowProgram& program) {
  std::vector<Finding> findings = CheckHotPathAlloc(program);
  for (Finding& f : CheckLockOrder(BuildLockGraph(program))) {
    findings.push_back(std::move(f));
  }
  const AnnotationIndex ann = BuildAnnotationIndex(program);
  for (Finding& f : CheckGuardedBy(program, ann)) {
    findings.push_back(std::move(f));
  }
  for (Finding& f : CheckUnannotatedMutex(ann)) {
    findings.push_back(std::move(f));
  }
  for (Finding& f : CheckRefInvalidation(program)) {
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content) {
  const LexResult lex = Lex(content);
  std::vector<Finding> findings = CollectFileFindings(path, lex);
  // One-file program, so the dataflow rules work on fixtures too.
  DataflowProgram program;
  program.AddFile(path, lex);
  for (Finding& f : ProgramFindings(program)) findings.push_back(std::move(f));

  std::vector<Finding> kept;
  for (Finding& f : findings) {
    if (!IsSuppressed(f, lex.suppressions)) kept.push_back(std::move(f));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return kept;
}

std::vector<std::string> ListSourceFiles(
    const std::string& root, const std::vector<std::string>& subdirs) {
  std::vector<std::string> files;
  for (const std::string& sub : subdirs) {
    fs::path dir = fs::path(root) / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() &&
          StartsWith(it->path().filename().string(), "build")) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      files.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool ReadFileToString(const std::string& root, const std::string& rel,
                      std::string* out) {
  std::ifstream in(fs::path(root) / rel, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

namespace {

/// Per-file lex + analysis result, computed in parallel by LintTree and
/// AuditFiles and merged serially in path order.
struct LintedFile {
  bool ok = false;
  LexResult lex;
  std::vector<Finding> raw;  ///< Unfiltered per-file findings.
};

LintedFile LintOneFile(const std::string& path, const std::string& content) {
  LintedFile out;
  out.ok = true;
  out.lex = Lex(content);
  out.raw = CollectFileFindings(path, out.lex);
  return out;
}

}  // namespace

std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs) {
  const std::vector<std::string> files = ListSourceFiles(root, subdirs);
  // Lex + per-file analysis in parallel; each index writes only its own
  // slot, so any VSD_THREADS count produces the same vector.
  const std::vector<LintedFile> per = ParallelMap<LintedFile>(
      static_cast<int64_t>(files.size()), [&](int64_t i) {
        std::string content;
        if (!ReadFileToString(root, files[i], &content)) return LintedFile{};
        return LintOneFile(files[i], content);
      });

  // Deterministic serial merge in sorted path order.
  std::vector<Finding> findings;
  IncludeGraphBuilder builder;
  DataflowProgram program;
  // Per-file suppression tables, kept so they also apply to the tree-level
  // findings (e.g. a reasoned allow(layering) on an #include line).
  std::map<std::string, std::map<int, std::set<std::string>>> suppressions;
  for (size_t i = 0; i < files.size(); ++i) {
    if (!per[i].ok) {
      findings.push_back(Finding{files[i], 0, "io-error", "cannot read file"});
      continue;
    }
    builder.AddFile(files[i], per[i].lex);
    program.AddFile(files[i], per[i].lex);
    suppressions[files[i]] = per[i].lex.suppressions;
    for (const Finding& f : per[i].raw) {
      if (!IsSuppressed(f, per[i].lex.suppressions)) findings.push_back(f);
    }
  }

  const IncludeGraph graph = builder.Build();
  for (auto* check : {&CheckLayering, &CheckCycles}) {
    for (Finding& f : (*check)(graph)) {
      if (!IsSuppressed(f, suppressions[f.file])) {
        findings.push_back(std::move(f));
      }
    }
  }
  for (Finding& f : ProgramFindings(program)) {
    if (!IsSuppressed(f, suppressions[f.file])) {
      findings.push_back(std::move(f));
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  return findings;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FindingsToJson(const std::vector<Finding>& findings) {
  const auto& escape = JsonEscape;
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"file\": \"" + escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           escape(f.rule) + "\", \"message\": \"" + escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  // Minimal SARIF 2.1.0: enough for GitHub code scanning to render each
  // finding as an inline annotation. Hand-built like FindingsToJson so the
  // bytes are deterministic.
  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"vsd_lint\",\n";
  out += "          \"rules\": [\n";
  const std::vector<std::string>& rules = AllRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + JsonEscape(rules[i]) + "\"}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  if (findings.empty()) {
    out += "      \"results\": []\n";
    out += "    }\n";
    out += "  ]\n";
    out += "}\n";
    return out;
  }
  out += "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    // SARIF requires startLine >= 1; tree-level findings (io-error) use 0.
    const int line = f.line > 0 ? f.line : 1;
    out += "        {\"ruleId\": \"" + JsonEscape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           JsonEscape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(f.file) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(line) +
           "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::vector<Finding> AuditFiles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  // Raw findings (no suppression filtering) for every file plus the
  // tree-level rules: a suppression is live iff some raw finding of its
  // rule lands on its line or the next one.
  IncludeGraphBuilder builder;
  DataflowProgram program;
  std::map<std::string, std::map<int, std::set<std::string>>> suppressions;
  std::map<std::string, std::map<int, std::set<std::string>>> live;
  auto note = [&](const Finding& f) { live[f.file][f.line].insert(f.rule); };

  for (const auto& [path, content] : files) {
    const LintedFile linted = LintOneFile(path, content);
    builder.AddFile(path, linted.lex);
    program.AddFile(path, linted.lex);
    suppressions[path] = linted.lex.suppressions;
    for (const Finding& f : linted.raw) note(f);
  }
  const IncludeGraph graph = builder.Build();
  for (const Finding& f : CheckLayering(graph)) note(f);
  for (const Finding& f : CheckCycles(graph)) note(f);
  for (const Finding& f : ProgramFindings(program)) note(f);

  const std::vector<std::string>& known = AllRules();
  std::vector<Finding> stale;
  for (const auto& [path, table] : suppressions) {
    for (const auto& [line, rules] : table) {
      for (const std::string& rule : rules) {
        // A suppression of a rule that does not exist never suppressed
        // anything (doc comments quoting the syntax parse this way), and a
        // typo'd rule name is already exposed by the lint run itself — the
        // unsuppressed finding still fires there.
        if (std::find(known.begin(), known.end(), rule) == known.end()) {
          continue;
        }
        bool matched = false;
        for (int l : {line, line + 1}) {
          auto fit = live[path].find(l);
          if (fit != live[path].end() && fit->second.count(rule)) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          stale.push_back(Finding{
              path, line, "stale-suppression",
              "'// vsd-lint: allow(" + rule + ")' matches no '" + rule +
                  "' finding on this line or the next; the rule stopped "
                  "firing here — delete the comment (or fix the rule name)"});
        }
      }
    }
  }
  std::stable_sort(stale.begin(), stale.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  return stale;
}

std::vector<Finding> AuditSuppressions(
    const std::string& root, const std::vector<std::string>& subdirs) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& rel : ListSourceFiles(root, subdirs)) {
    std::string content;
    if (!ReadFileToString(root, rel, &content)) continue;
    files.emplace_back(rel, std::move(content));
  }
  return AuditFiles(files);
}

AnnotationAudit AuditAnnotations(const std::string& root,
                                 const std::vector<std::string>& subdirs) {
  DataflowProgram program;
  std::map<std::string, std::map<int, std::set<std::string>>> suppressions;
  for (const std::string& rel : ListSourceFiles(root, subdirs)) {
    std::string content;
    if (!ReadFileToString(root, rel, &content)) continue;
    LexResult lex = Lex(content);
    suppressions[rel] = lex.suppressions;
    program.AddFile(rel, std::move(lex));
  }
  const AnnotationIndex index = BuildAnnotationIndex(program);

  AnnotationAudit audit;
  for (const auto& [cls, ca] : index.classes()) {
    (void)cls;
    if (!ca.guarded.empty()) ++audit.annotated_classes;
    audit.guarded_fields += static_cast<int64_t>(ca.guarded.size());
    audit.contracts += static_cast<int64_t>(ca.methods.size());
  }
  for (Finding& f : CheckUnannotatedMutex(index)) {
    if (!IsSuppressed(f, suppressions[f.file])) {
      audit.findings.push_back(std::move(f));
    }
  }
  std::stable_sort(audit.findings.begin(), audit.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  return audit;
}

}  // namespace vsd::lint
