#include "lint/captures.h"

#include <map>
#include <set>
#include <string>

namespace vsd::lint {
namespace {

/// Keywords that can precede or be an identifier without declaring one.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "return", "case",     "goto",   "co_return", "co_yield", "throw",
      "delete", "typename", "using",  "namespace", "else",     "do",
      "if",     "while",    "for",    "switch",    "break",    "continue",
      "new",    "sizeof",   "true",   "false",     "nullptr",  "this",
      "const",  "auto",     "static", "mutable",   "operator",
  };
  return kKeywords;
}

const std::set<std::string>& MutatingMethods() {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "insert", "emplace",
      "erase",     "clear",        "resize",   "assign", "append",
      "push",      "pop",
  };
  return kMutators;
}

/// Atomic member operations are synchronized by definition.
const std::set<std::string>& AtomicOps() {
  static const std::set<std::string> kAtomicOps = {
      "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor",
      "store",     "exchange",  "compare_exchange_weak",
      "compare_exchange_strong",
  };
  return kAtomicOps;
}

const std::set<std::string>& AssignOps() {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=", "*=",  "/=",  "%=",
      "&=", "|=", "^=", "<<=", ">>=",
  };
  return kOps;
}

/// Index just past the token matching the opener at `open`.
size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer) {
  int depth = 1;
  size_t k = open + 1;
  while (k < toks.size() && depth > 0) {
    if (toks[k].text == opener) ++depth;
    else if (toks[k].text == closer) --depth;
    if (depth == 0) break;
    ++k;
  }
  return k;
}

/// Identifiers declared as std::atomic<...> (or atomic_* aliases) anywhere
/// in the file. Writes to them are synchronized.
std::set<std::string> AtomicVars(const std::vector<Token>& toks) {
  std::set<std::string> vars;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    if (t != "atomic" && t.rfind("atomic_", 0) != 0) continue;
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">") --depth;
        else if (toks[j].text == ">>") depth -= 2;
        ++j;
      }
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      vars.insert(toks[j].text);
    }
  }
  return vars;
}

struct CaptureList {
  bool default_ref = false;
  bool captures_this = false;
  std::set<std::string> by_ref;
  std::set<std::string> by_val;
};

/// Parses the tokens of `[...]` (exclusive of the brackets).
CaptureList ParseCaptures(const std::vector<Token>& toks, size_t open,
                          size_t close) {
  CaptureList captures;
  size_t i = open + 1;
  while (i < close) {
    // One capture entry, up to a top-level comma.
    bool is_ref = false;
    if (toks[i].text == "&") {
      is_ref = true;
      ++i;
    } else if (toks[i].text == "=") {
      ++i;
    }
    if (i < close && toks[i].kind == TokenKind::kIdentifier) {
      if (toks[i].text == "this") {
        captures.captures_this = true;
      } else if (is_ref) {
        captures.by_ref.insert(toks[i].text);
      } else {
        captures.by_val.insert(toks[i].text);
      }
      ++i;
    } else if (is_ref) {
      captures.default_ref = true;  // Bare '&'.
    }
    // Skip any init-capture expression / pack expansion to the next comma.
    int depth = 0;
    while (i < close) {
      const std::string& t = toks[i].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == "," && depth == 0) {
        ++i;
        break;
      }
      ++i;
    }
  }
  return captures;
}

struct LambdaSite {
  size_t capture_open;   ///< '['
  size_t capture_close;  ///< ']'
  size_t body_open;      ///< '{'
  size_t body_close;     ///< '}'
  std::string callee;    ///< ParallelFor / ParallelMap / Submit.
};

/// Locals of the lambda at `site`: parameters, declarations, structured
/// bindings, loop variables. Permissive on purpose — an over-collected
/// local costs a missed race (TSan's job), an under-collected one costs a
/// false positive (everyone's time).
std::set<std::string> CollectLocals(const std::vector<Token>& toks,
                                    const LambdaSite& site) {
  std::set<std::string> locals;
  // Parameter list between ']' and '{', if present.
  if (toks[site.capture_close + 1].text == "(") {
    size_t params_end =
        MatchForward(toks, site.capture_close + 1, "(", ")");
    for (size_t i = site.capture_close + 2; i < params_end; ++i) {
      if (toks[i].kind == TokenKind::kIdentifier &&
          !Keywords().count(toks[i].text) &&
          (toks[i + 1].text == "," || toks[i + 1].text == ")")) {
        locals.insert(toks[i].text);
      }
    }
  }
  static const std::set<std::string> kDeclPrev = {">", ">>", "&", "*", "&&"};
  static const std::set<std::string> kDeclNext = {"=", ";", "{", "(", ")",
                                                  ",", ":", "["};
  for (size_t i = site.body_open + 1; i + 1 < site.body_close; ++i) {
    // Structured binding: auto [a, b] = ...
    if (toks[i].text == "auto" && toks[i + 1].text == "[") {
      size_t bind_end = MatchForward(toks, i + 1, "[", "]");
      for (size_t k = i + 2; k < bind_end; ++k) {
        if (toks[k].kind == TokenKind::kIdentifier) locals.insert(toks[k].text);
      }
      i = bind_end;
      continue;
    }
    if (toks[i].kind != TokenKind::kIdentifier ||
        Keywords().count(toks[i].text)) {
      continue;
    }
    const Token& prev = toks[i - 1];
    const bool decl_prev =
        kDeclPrev.count(prev.text) > 0 ||
        (prev.kind == TokenKind::kIdentifier && !Keywords().count(prev.text)) ||
        prev.text == "auto";
    if (decl_prev && kDeclNext.count(toks[i + 1].text)) {
      locals.insert(toks[i].text);
    }
  }
  return locals;
}

/// Reference declarations inside the body (`auto& slot = shared;`,
/// `T& h = this->hidden_;`) create a second name for an existing object:
/// a write through the alias is a write to the aliased object, so the
/// alias maps to the root identifier of its initializer chain. Aliases of
/// subscripted or call-result initializers are NOT recorded — they name a
/// per-index slot or a temporary and stay plain locals.
std::map<std::string, std::string> CollectRefAliases(
    const std::vector<Token>& toks, const LambdaSite& site) {
  std::map<std::string, std::string> aliases;
  for (size_t i = site.body_open + 1; i + 3 < site.body_close; ++i) {
    if (toks[i].text != "&" && toks[i].text != "&&") continue;
    const Token& prev = toks[i - 1];
    const bool type_prev =
        prev.text == "auto" || prev.text == ">" || prev.text == ">>" ||
        (prev.kind == TokenKind::kIdentifier && !Keywords().count(prev.text));
    if (!type_prev) continue;
    const Token& name = toks[i + 1];
    if (name.kind != TokenKind::kIdentifier || Keywords().count(name.text)) {
      continue;
    }
    if (toks[i + 2].text != "=") continue;
    // Initializer must be a pure identifier chain (a . b -> c :: d) ending
    // at ';' — anything else (subscript, call, arithmetic) is not an alias
    // of a captured object.
    size_t j = i + 3;
    const bool root_this = toks[j].text == "this";
    if (toks[j].kind != TokenKind::kIdentifier ||
        (!root_this && Keywords().count(toks[j].text))) {
      continue;
    }
    const std::string root = toks[j].text;
    ++j;
    bool simple = true;
    while (j < site.body_close && toks[j].text != ";") {
      const std::string& link = toks[j].text;
      if ((link == "." || link == "->" || link == "::") &&
          j + 1 < site.body_close &&
          toks[j + 1].kind == TokenKind::kIdentifier) {
        j += 2;
        continue;
      }
      simple = false;
      break;
    }
    if (simple) aliases[name.text] = root;
  }
  return aliases;
}

/// Walks the left-hand-side chain ending at token `last` (an identifier)
/// back to its root. Sets `subscripted` if any link of the chain is indexed
/// (a per-index slot) and `through_call` if the receiver is a call result
/// (a temporary — not a captured object).
struct ChainRoot {
  size_t root = 0;
  bool subscripted = false;
  bool through_call = false;
};
ChainRoot WalkChain(const std::vector<Token>& toks, size_t last) {
  ChainRoot chain;
  chain.root = last;
  size_t pos = last;
  while (pos >= 2) {
    const std::string& link = toks[pos - 1].text;
    if (link != "." && link != "->" && link != "::") break;
    size_t before = pos - 2;
    if (toks[before].text == "]") {
      chain.subscripted = true;
      // Walk back over the subscript to the object it indexes.
      int depth = 1;
      while (before > 0 && depth > 0) {
        --before;
        if (toks[before].text == "]") ++depth;
        else if (toks[before].text == "[") --depth;
      }
      if (before == 0) break;
      --before;
    }
    if (toks[before].text == ")") {
      chain.through_call = true;
      break;
    }
    if (toks[before].kind != TokenKind::kIdentifier) break;
    pos = before;
    chain.root = before;
  }
  return chain;
}

void AnalyzeLambda(const std::string& path, const std::vector<Token>& toks,
                   const LambdaSite& site,
                   const std::set<std::string>& atomics,
                   std::set<std::string>* seen,
                   std::vector<Finding>* findings) {
  const CaptureList captures =
      ParseCaptures(toks, site.capture_open, site.capture_close);
  if (!captures.default_ref && captures.by_ref.empty() &&
      !captures.captures_this) {
    return;  // Everything is copied; writes cannot race.
  }

  // Lock-to-write matching is beyond a lexer: a body that takes any lock is
  // the synchronized-update pattern and the checker stands down.
  static const std::set<std::string> kLockTokens = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "lock",       "try_lock",    "mutex",
  };
  for (size_t i = site.body_open + 1; i < site.body_close; ++i) {
    if (toks[i].kind == TokenKind::kIdentifier &&
        kLockTokens.count(toks[i].text)) {
      return;
    }
  }

  const std::set<std::string> locals = CollectLocals(toks, site);
  const std::map<std::string, std::string> ref_aliases =
      CollectRefAliases(toks, site);

  auto classify = [&](const ChainRoot& chain, int line) {
    if (chain.subscripted || chain.through_call) return;
    const Token& root = toks[chain.root];
    if (root.kind != TokenKind::kIdentifier) return;
    // Follow reference aliases back to the object they rename: writing
    // through `auto& slot = shared;` is writing `shared`. Bounded hops in
    // case of a (nonsensical) alias cycle.
    std::string name = root.text;
    std::string via;
    for (int hop = 0; hop < 8; ++hop) {
      const auto it = ref_aliases.find(name);
      if (it == ref_aliases.end() || it->second == name) break;
      if (via.empty()) via = name;
      name = it->second;
    }
    if (locals.count(name) || atomics.count(name)) return;
    if (captures.by_val.count(name)) return;  // Writes hit the copy.
    if (name == "this" && !captures.captures_this && !captures.default_ref) {
      return;
    }
    if (!seen->insert(std::to_string(line) + ":" + name).second) return;
    const std::string written =
        via.empty() ? "written"
                    : "written through the reference alias '" + via + "'";
    findings->push_back(Finding{
        path, line, "unguarded-capture",
        "'" + name + "' is captured by reference and " + written +
            " inside a " + site.callee +
            " body without a mutex/atomic/per-index subscript — a data race "
            "whose result depends on scheduling; write to a per-index slot "
            "(out[i]) or guard the update (docs/INTERNALS.md, determinism "
            "contract)"});
  };

  for (size_t i = site.body_open + 1; i < site.body_close; ++i) {
    const Token& t = toks[i];
    // Compound/simple assignment.
    if (t.kind == TokenKind::kPunct && AssignOps().count(t.text)) {
      const Token& prev = toks[i - 1];
      if (prev.text == "]") {
        continue;  // Subscripted slot: x[...] = v.
      }
      if (prev.kind == TokenKind::kIdentifier &&
          !Keywords().count(prev.text)) {
        classify(WalkChain(toks, i - 1), t.line);
      }
      continue;
    }
    // Increment / decrement (pre or post).
    if (t.text == "++" || t.text == "--") {
      const Token& prev = toks[i - 1];
      if (prev.text == "]") continue;
      if (prev.kind == TokenKind::kIdentifier && !Keywords().count(prev.text)) {
        classify(WalkChain(toks, i - 1), t.line);
        continue;
      }
      // Pre-increment: root is the start of the following chain; indexed
      // targets (++counts[i]) are per-index slots.
      size_t j = i + 1;
      if (j < site.body_close && toks[j].kind == TokenKind::kIdentifier) {
        size_t root = j;
        while (j + 2 < site.body_close &&
               (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
               toks[j + 2].kind == TokenKind::kIdentifier) {
          j += 2;
        }
        if (j + 1 < site.body_close && toks[j + 1].text == "[") continue;
        ChainRoot chain;
        chain.root = root;
        classify(chain, t.line);
      }
      continue;
    }
    // Mutating member calls: x.push_back(...), x->insert(...).
    if (t.kind == TokenKind::kIdentifier && i + 1 < site.body_close &&
        toks[i + 1].text == "(" &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      if (AtomicOps().count(t.text)) continue;  // Synchronized by definition.
      if (!MutatingMethods().count(t.text)) continue;
      if (toks[i - 2].text == "]") continue;  // Per-index receiver.
      if (toks[i - 2].kind != TokenKind::kIdentifier) continue;
      classify(WalkChain(toks, i - 2), t.line);
    }
  }
}

}  // namespace

void CheckUnguardedCaptures(const std::string& path, const LexResult& lex,
                            std::vector<Finding>* findings) {
  const auto& toks = lex.tokens;
  const std::set<std::string> atomics = AtomicVars(toks);
  std::set<std::string> seen;       // line:name, dedupes nested analyses.
  std::set<size_t> analyzed;        // body_open indices already handled.

  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const bool is_parallel =
        toks[i].text == "ParallelFor" || toks[i].text == "ParallelMap";
    const bool is_submit = toks[i].text == "Submit" &&
                           (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (!is_parallel && !is_submit) continue;
    size_t j = i + 1;
    // Skip optional template arguments: ParallelMap<T>(...).
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">") --depth;
        else if (toks[j].text == ">>") depth -= 2;
        ++j;
      }
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    const size_t call_close = MatchForward(toks, j, "(", ")");

    // Every lambda literal inside the argument list.
    for (size_t k = j + 1; k < call_close; ++k) {
      if (toks[k].text != "[") continue;
      const std::string& before = toks[k - 1].text;
      if (before != "(" && before != ",") continue;  // Subscript, not lambda.
      LambdaSite site;
      site.capture_open = k;
      site.capture_close = MatchForward(toks, k, "[", "]");
      size_t cursor = site.capture_close + 1;
      if (cursor < toks.size() && toks[cursor].text == "(") {
        cursor = MatchForward(toks, cursor, "(", ")") + 1;
      }
      // Skip specifiers (mutable, noexcept, -> ret) up to the body.
      while (cursor < toks.size() && toks[cursor].text != "{" &&
             toks[cursor].text != ")" && toks[cursor].text != ",") {
        ++cursor;
      }
      if (cursor >= toks.size() || toks[cursor].text != "{") continue;
      site.body_open = cursor;
      site.body_close = MatchForward(toks, cursor, "{", "}");
      site.callee = is_submit ? "Submit" : toks[i].text;
      if (analyzed.insert(site.body_open).second) {
        AnalyzeLambda(path, toks, site, atomics, &seen, findings);
      }
      k = site.body_close;
    }
    i = j;  // Nested calls re-scan inside the argument list.
  }
}

}  // namespace vsd::lint
