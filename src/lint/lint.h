#ifndef VSD_LINT_LINT_H_
#define VSD_LINT_LINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vsd::lint {

/// One diagnostic. `rule` is the stable rule name used both in output and
/// in `// vsd-lint: allow(<rule>)` suppression comments.
struct Finding {
  std::string file;  ///< Repo-relative path as given to the linter.
  int line = 0;
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" — the grep/IDE-clickable form.
  std::string ToString() const;
};

/// Rule names (see docs/INTERNALS.md "Static analysis & sanitizers"):
///  * raw-rand        — std:: random machinery outside src/common/rng.*
///  * rng-fork        — shared Rng drawn from inside a ParallelFor body
///  * float-eq        — ==/!= on floating-point in metrics/math_util paths
///  * header-guard    — header missing #pragma once / include guard
///  * include-order   — include group mixes <>/"" kinds or is unsorted
///  * unordered-iter  — iteration over unordered containers in result paths
///  * per-sample-predict — single-sample predict call looped in bench/core
///  * blocking-wait-no-deadline — predicate-less cv wait() / future get()
///    in src/serve/ (every serving-layer wait must be bounded or
///    predicated: wait_for/wait_until/wait(lock, pred))
///  * unguarded-capture — by-reference capture written in a ParallelFor/
///    Submit body without mutex/atomic/per-index subscript (captures.h)
///  * wall-clock     — wall-clock reads (system_clock, time, ...) in result
///    paths; results must not depend on when they were computed
///  * thread-id      — thread identity (get_id, pthread_self) in result
///    paths; results must not depend on which worker ran an index
///  * pointer-key    — ordered container keyed by a pointer in result
///    paths; iteration order would follow addresses (ASLR)
///  * layering       — upward #include across the architecture layers
///    (include_graph.h; tree-level, reported by LintTree)
///  * include-cycle  — cycle in the project include graph (tree-level)
///  * lock-order     — cycle in the whole-program lock-acquisition graph
///    (dataflow.h; an edge A -> B means B acquired while A held, including
///    through one level of direct calls — a cycle is a potential deadlock)
///  * nondet-taint   — value derived from a nondeterministic source (wall
///    clock, thread id, shared-Rng draw, pointer-to-int cast) flows through
///    assignments/container inserts into a result sink (dataflow.h)
///  * hot-path-alloc — heap allocation reachable from
///    GraphExecutor::Execute, inside src/tensor/kernels, or inside an
///    explainer ParallelFor body (dataflow.h; the static twin of the
///    runtime counting-operator-new contract)
///  * kernel-bypass  — raw `out[...] += a * b` multiply-accumulate loop in
///    src/tensor/, src/nn/, or src/vlm/ outside src/tensor/kernels*; such
///    loops must route through tensor/kernels.h so they dispatch via the
///    kernel registry (SIMD/int8 backends, bit-identity contract)
///  * guarded-by     — read/write of a VSD_GUARDED_BY(mu) field without
///    holding mu (guard declaration, manual lock window, or VSD_REQUIRES
///    on the enclosing function), or a resolvable call violating a
///    VSD_REQUIRES/VSD_EXCLUDES contract (annotations.h)
///  * unannotated-mutex — a mutex member in src/ whose class has zero
///    VSD_GUARDED_BY fields: the lock guards nothing the linter can check
///  * ref-invalidation — reference/pointer/iterator bound into vector or
///    Tensor storage used after a mutating call (push_back/resize/Append/
///    clear/...) on the same container, including through one same-class
///    call level — the static twin of the PR-7 Conv2d use-after-free
///
/// All rule names, for CLI validation and tests.
const std::vector<std::string>& AllRules();

/// Lints one file whose contents are already in memory. `path` should be
/// repo-relative with '/' separators: several rules are scoped by path
/// (e.g. float-eq only fires under src/core/metrics.* and
/// src/common/math_util.*; raw-rand is exempt in src/common/rng.*).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Repo-relative paths ('/'-separated) of every *.h / *.cc / *.cpp file
/// under `root`/`subdirs`, sorted. Directories named build* are skipped.
/// The shared walk behind LintTree, BuildIncludeGraphFromTree, and FixTree.
std::vector<std::string> ListSourceFiles(const std::string& root,
                                         const std::vector<std::string>& subdirs);

/// Reads `root`/`rel` into `*out`. Returns false on IO error.
bool ReadFileToString(const std::string& root, const std::string& rel,
                      std::string* out);

/// Walks `root` and lints every source file under the given subdirectories
/// (repo-relative, e.g. {"src", "bench", "tools", "tests"}), then runs the
/// whole-program checks (layering, include-cycle, lock-order,
/// hot-path-alloc) over the include graph and dataflow program of the same
/// walk. Per-file lexing and analysis run on the global thread pool
/// (VSD_THREADS), but findings are merged in sorted path order and come
/// back sorted by (file, line), so output is byte-identical at any thread
/// count. Unreadable files produce a finding with rule "io-error" rather
/// than aborting the walk. `// vsd-lint: allow(...)` suppressions apply to
/// tree-level findings too.
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs);

/// Findings as a JSON array of {"file", "line", "rule", "message"} objects
/// (for `vsd_lint --format=json` and CI artifacts). Deterministic: one
/// object per line, input order preserved, trailing newline.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// Findings as a SARIF 2.1.0 log (for `vsd_lint --format=sarif` and the CI
/// code-scanning artifact): one run, driver "vsd_lint" listing AllRules(),
/// one result per finding at level "error". Deterministic: input order
/// preserved, trailing newline.
std::string FindingsToSarif(const std::vector<Finding>& findings);

/// Stale-suppression audit over in-memory (path, content) pairs: every
/// `// vsd-lint: allow(<rule>)` comment must still match a raw (pre-
/// suppression) finding of that rule on its own line or the next one —
/// including the tree-level and dataflow rules. Dead comments come back as
/// rule "stale-suppression" findings (not part of AllRules: the rule
/// cannot be suppressed, only deleted).
std::vector<Finding> AuditFiles(
    const std::vector<std::pair<std::string, std::string>>& files);

/// AuditFiles over the standard tree walk (for --audit-suppressions).
std::vector<Finding> AuditSuppressions(const std::string& root,
                                       const std::vector<std::string>& subdirs);

/// Annotation-coverage audit over the standard tree walk (for
/// --audit-annotations): unannotated-mutex findings after suppressions,
/// plus coverage counters for the summary line.
struct AnnotationAudit {
  std::vector<Finding> findings;
  int64_t annotated_classes = 0;  ///< Classes with >= 1 guarded field.
  int64_t guarded_fields = 0;     ///< VSD_GUARDED_BY fields seen.
  int64_t contracts = 0;          ///< Methods with REQUIRES/ACQUIRES/EXCLUDES.
};
AnnotationAudit AuditAnnotations(const std::string& root,
                                 const std::vector<std::string>& subdirs);

}  // namespace vsd::lint

#endif  // VSD_LINT_LINT_H_
