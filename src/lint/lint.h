#ifndef VSD_LINT_LINT_H_
#define VSD_LINT_LINT_H_

#include <string>
#include <vector>

namespace vsd::lint {

/// One diagnostic. `rule` is the stable rule name used both in output and
/// in `// vsd-lint: allow(<rule>)` suppression comments.
struct Finding {
  std::string file;  ///< Repo-relative path as given to the linter.
  int line = 0;
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" — the grep/IDE-clickable form.
  std::string ToString() const;
};

/// Rule names (see docs/INTERNALS.md "Static analysis & sanitizers"):
///  * raw-rand        — std:: random machinery outside src/common/rng.*
///  * rng-fork        — shared Rng drawn from inside a ParallelFor body
///  * float-eq        — ==/!= on floating-point in metrics/math_util paths
///  * header-guard    — header missing #pragma once / include guard
///  * include-order   — include group mixes <>/"" kinds or is unsorted
///  * unordered-iter  — iteration over unordered containers in result paths
///  * per-sample-predict — single-sample predict call looped in bench/core
///  * blocking-wait-no-deadline — unbounded cv wait() / future get() in
///    src/serve/ (every serving-layer wait must be bounded)
///  * unguarded-capture — by-reference capture written in a ParallelFor/
///    Submit body without mutex/atomic/per-index subscript (captures.h)
///  * wall-clock     — wall-clock reads (system_clock, time, ...) in result
///    paths; results must not depend on when they were computed
///  * thread-id      — thread identity (get_id, pthread_self) in result
///    paths; results must not depend on which worker ran an index
///  * pointer-key    — ordered container keyed by a pointer in result
///    paths; iteration order would follow addresses (ASLR)
///  * layering       — upward #include across the architecture layers
///    (include_graph.h; tree-level, reported by LintTree)
///  * include-cycle  — cycle in the project include graph (tree-level)
///
/// All rule names, for CLI validation and tests.
const std::vector<std::string>& AllRules();

/// Lints one file whose contents are already in memory. `path` should be
/// repo-relative with '/' separators: several rules are scoped by path
/// (e.g. float-eq only fires under src/core/metrics.* and
/// src/common/math_util.*; raw-rand is exempt in src/common/rng.*).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Repo-relative paths ('/'-separated) of every *.h / *.cc / *.cpp file
/// under `root`/`subdirs`, sorted. Directories named build* are skipped.
/// The shared walk behind LintTree, BuildIncludeGraphFromTree, and FixTree.
std::vector<std::string> ListSourceFiles(const std::string& root,
                                         const std::vector<std::string>& subdirs);

/// Reads `root`/`rel` into `*out`. Returns false on IO error.
bool ReadFileToString(const std::string& root, const std::string& rel,
                      std::string* out);

/// Walks `root` and lints every source file under the given subdirectories
/// (repo-relative, e.g. {"src", "bench", "tools", "tests"}), then runs the
/// whole-program checks (layering, include-cycle) over the include graph of
/// the same walk. Files are visited in sorted order and findings come back
/// sorted by (file, line) so output is deterministic. Unreadable files
/// produce a finding with rule "io-error" rather than aborting the walk.
/// `// vsd-lint: allow(...)` suppressions apply to graph findings too.
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs);

}  // namespace vsd::lint

#endif  // VSD_LINT_LINT_H_
