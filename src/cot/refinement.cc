#include "cot/refinement.h"

#include <algorithm>

#include "common/logging.h"
#include "face/renderer.h"
#include "img/image.h"

namespace vsd::cot {

using face::AuMask;

SelfRefinement::SelfRefinement(const vlm::FoundationModel* model,
                               const ChainConfig& config,
                               const data::Dataset* pool)
    : model_(model), config_(config), pool_(pool) {
  VSD_CHECK(model_ != nullptr) << "null model";
  VSD_CHECK(pool_ != nullptr && pool_->size() > 0) << "empty pool";
}

double SelfRefinement::Helpfulness(const data::VideoSample& sample,
                                   const AuMask& description, int true_label,
                                   Rng* rng) const {
  int correct = 0;
  for (int k = 0; k < config_.k_repeats; ++k) {
    const auto result = model_->Assess(
        sample, description, config_.assess_sample_temperature, rng);
    correct += (result.label == true_label);
  }
  return static_cast<double>(correct) / config_.k_repeats;
}

std::vector<const data::VideoSample*> SelfRefinement::DrawNegatives(
    const data::VideoSample& sample, Rng* rng) const {
  std::vector<const data::VideoSample*> negatives;
  const int wanted = config_.num_verification_choices - 1;
  int guard = 0;
  while (static_cast<int>(negatives.size()) < wanted &&
         guard < 100 * wanted) {
    ++guard;
    const auto& candidate = pool_->samples[rng->UniformInt(pool_->size())];
    if (candidate.subject_id == sample.subject_id) continue;
    negatives.push_back(&candidate);
  }
  // Degenerate pools (single subject) fall back to any other sample.
  while (static_cast<int>(negatives.size()) < wanted) {
    const auto& candidate = pool_->samples[rng->UniformInt(pool_->size())];
    if (candidate.id == sample.id) continue;
    negatives.push_back(&candidate);
  }
  return negatives;
}

double SelfRefinement::Faithfulness(const data::VideoSample& sample,
                                    const AuMask& description,
                                    Rng* rng) const {
  int correct = 0;
  for (int k = 0; k < config_.k_repeats; ++k) {
    auto candidates = DrawNegatives(sample, rng);
    // Insert the true video at a random position (a fresh "dialogue", so
    // the model cannot rely on history).
    const int true_pos =
        rng->UniformInt(static_cast<int>(candidates.size()) + 1);
    candidates.insert(candidates.begin() + true_pos, &sample);
    const int picked = model_->SelectVideoForDescription(
        candidates, description, config_.verify_temperature, rng);
    correct += (picked == true_pos);
  }
  return static_cast<double>(correct) / config_.k_repeats;
}

SelfRefinement::RefineOutcome SelfRefinement::RefineDescription(
    const data::VideoSample& sample, const AuMask& initial, int true_label,
    Rng* rng) const {
  RefineOutcome outcome;
  outcome.original_mask = initial;
  outcome.final_mask = initial;

  const bool score_helpfulness = (true_label == 0 || true_label == 1);
  double h = score_helpfulness
                 ? Helpfulness(sample, initial, true_label, rng)
                 : 0.0;
  double f = Faithfulness(sample, initial, rng);

  for (int round = 0; round < config_.max_refine_rounds; ++round) {
    outcome.rounds = round + 1;
    AuMask candidate;
    if (config_.use_reflection) {
      candidate = model_
                      ->ReflectDescribe(sample, outcome.final_mask,
                                        true_label,
                                        config_.describe_temperature, rng)
                      .mask;
    } else {
      // "w/o Reflection": plain re-sampling from I1.
      candidate =
          model_->Describe(sample, config_.describe_temperature, rng).mask;
    }
    if (candidate == outcome.final_mask) break;

    const double h_new = score_helpfulness
                             ? Helpfulness(sample, candidate, true_label,
                                           rng)
                             : 0.0;
    const double f_new = Faithfulness(sample, candidate, rng);
    // Training time (Algorithm 1, line 6): accept when the candidate is
    // no worse on either axis (ties accepted; the uncertainty-gated
    // reflection keeps tied candidates anchored to the visual evidence).
    // Test time (Sec. IV-G): no helpfulness signal exists and the paper
    // replaces only when the new description is *more* faithful — a
    // strict gate, otherwise tie-acceptance degenerates to a random walk.
    const bool accept = score_helpfulness
                            ? (h_new >= h && f_new >= f)
                            : (f_new > f);
    if (accept) {
      outcome.final_mask = candidate;
      outcome.replaced = true;
      h = h_new;
      f = f_new;
    } else {
      break;  // do-while exit: candidate is worse on some axis
    }
  }
  return outcome;
}

int SelfRefinement::RationaleFlipScore(const data::VideoSample& sample,
                                       const AuMask& description,
                                       int assessment,
                                       const std::vector<int>& rationale)
    const {
  img::Image perturbed = sample.expressive_frame;
  int removed = 0;
  for (int au : rationale) {
    const auto mask = face::RegionMask(face::GetAu(au).region);
    img::MosaicMaskedRegion(&perturbed, mask, /*block=*/8);
    ++removed;
    const double p = model_->AssessProbStressedWithFrames(
        perturbed, sample.neutral_frame, description);
    const int decision = p >= 0.5 ? 1 : 0;
    if (decision != assessment) return removed;
  }
  return static_cast<int>(rationale.size()) + 1;
}

}  // namespace vsd::cot
