#include "cot/pipeline.h"

#include <cmath>

#include "common/faults.h"
#include "common/logging.h"
#include "cot/refinement.h"
#include "text/templates.h"
#include "vlm/vision.h"

namespace vsd::cot {

using face::AuMask;

std::string ChainOutput::Transcript() const {
  return describe.text + "\n" + assess.text + "\n" + highlight.text;
}

ChainPipeline::ChainPipeline(const vlm::FoundationModel* model,
                             const ChainConfig& config)
    : model_(model), config_(config) {
  VSD_CHECK(model_ != nullptr) << "null model";
}

AuMask ChainPipeline::GreedyDescription(
    const data::VideoSample& sample) const {
  const data::VideoSample* one[] = {&sample};
  return GreedyDescriptionBatch(one).front();
}

std::vector<AuMask> ChainPipeline::GreedyDescriptionBatch(
    vlm::FoundationModel::SampleSpan batch) const {
  std::vector<AuMask> masks(batch.size());
  if (!config_.use_chain) return masks;
  const auto probs = model_->DescribeProbsBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    for (int j = 0; j < face::kNumAus; ++j) masks[i][j] = probs[i][j] > 0.5;
  }
  return masks;
}

ChainOutput ChainPipeline::Run(const data::VideoSample& sample,
                               Rng* rng) const {
  const data::VideoSample* one[] = {&sample};
  Rng* rngs[] = {rng};
  return RunBatch(one, std::span<Rng* const>(rngs)).front();
}

std::vector<ChainOutput> ChainPipeline::RunBatch(
    vlm::FoundationModel::SampleSpan batch,
    std::span<Rng* const> rngs) const {
  VSD_CHECK(rngs.empty() || rngs.size() == batch.size())
      << "RunBatch rng mismatch";
  const std::vector<AuMask> descriptions = GreedyDescriptionBatch(batch);
  const std::vector<double> log_probs =
      model_->DescriptionLogProbBatch(batch, descriptions);
  const std::vector<vlm::AssessResult> assessments =
      model_->AssessBatch(batch, descriptions, /*temperature=*/0.0, {});
  std::vector<int> labels(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) labels[i] = assessments[i].label;
  // A null per-sample stream makes Highlight greedy (argmax) regardless of
  // temperature, so passing the sampling temperature alongside null
  // streams reproduces the single-sample `rng == nullptr ? 0.0 : ...`
  // selection exactly.
  const std::vector<vlm::HighlightResult> highlights = model_->HighlightBatch(
      batch, descriptions, labels, config_.rationale_length,
      rngs.empty() ? 0.0 : config_.highlight_temperature, rngs);
  std::vector<ChainOutput> outs(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    outs[i].describe.mask = descriptions[i];
    outs[i].describe.text = text::RenderDescription(descriptions[i]);
    outs[i].describe.log_prob = log_probs[i];
    outs[i].assess = assessments[i];
    outs[i].highlight = highlights[i];
  }
  return outs;
}

std::vector<ChainOutput> ChainPipeline::RunBatch(
    vlm::FoundationModel::SampleSpan batch, Rng* rng) const {
  if (rng == nullptr) return RunBatch(batch, std::span<Rng* const>());
  std::vector<Rng> streams;
  streams.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) streams.push_back(rng->Fork());
  std::vector<Rng*> stream_ptrs(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) stream_ptrs[i] = &streams[i];
  return RunBatch(batch, stream_ptrs);
}

int ChainPipeline::PredictLabel(const data::VideoSample& sample) const {
  const data::VideoSample* one[] = {&sample};
  return PredictLabelBatch(one).front();
}

double ChainPipeline::PredictProbStressed(
    const data::VideoSample& sample) const {
  const data::VideoSample* one[] = {&sample};
  return PredictBatch(one).front();
}

std::vector<double> ChainPipeline::PredictBatch(
    vlm::FoundationModel::SampleSpan batch) const {
  return model_->AssessProbStressedBatch(batch,
                                         GreedyDescriptionBatch(batch));
}

std::vector<vsd::Result<double>> ChainPipeline::TryPredictBatch(
    vlm::FoundationModel::SampleSpan batch) const {
  std::vector<vsd::Result<double>> out;
  out.reserve(batch.size());
  FaultInjector& injector = FaultInjector::Global();
  // Per-sample gate: validation, per-frame injected faults (keyed by frame
  // content), and a per-sample pipeline transient (keyed by sample id).
  std::vector<int> valid;
  valid.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const data::VideoSample* sample = batch[i];
    if (sample == nullptr) {
      out.push_back(Status::InvalidArgument("sample is null"));
      continue;
    }
    Status st = data::ValidateSample(*sample);
    if (st.ok()) st = vlm::VisionTower::ProbeFrameFaults(sample->expressive_frame);
    if (st.ok()) st = vlm::VisionTower::ProbeFrameFaults(sample->neutral_frame);
    if (st.ok() && injector.enabled() &&
        injector.ShouldInject(FaultKind::kTransient, "cot.pipeline",
                              static_cast<uint64_t>(sample->id))) {
      st = Status::Internal("injected transient fault at cot.pipeline");
    }
    if (!st.ok()) {
      out.push_back(std::move(st));
      continue;
    }
    out.push_back(0.0);  // Placeholder; filled from the forward below.
    valid.push_back(static_cast<int>(i));
  }
  if (valid.empty()) return out;
  // One forward over the valid subset. When every sample is valid this is
  // the untouched span, so the values are bit-identical to PredictBatch.
  std::vector<const data::VideoSample*> run;
  run.reserve(valid.size());
  for (int i : valid) run.push_back(batch[i]);
  const std::vector<double> probs = PredictBatch(run);
  for (size_t k = 0; k < valid.size(); ++k) {
    if (std::isfinite(probs[k])) {
      out[valid[k]] = probs[k];
    } else {
      out[valid[k]] =
          Status::Internal("non-finite stress probability for sample " +
                           std::to_string(batch[valid[k]]->id));
    }
  }
  return out;
}

vsd::Result<double> ChainPipeline::TryPredictProbStressed(
    const data::VideoSample& sample) const {
  const data::VideoSample* one[] = {&sample};
  return TryPredictBatch(one).front();
}

std::vector<int> ChainPipeline::PredictLabelBatch(
    vlm::FoundationModel::SampleSpan batch) const {
  const std::vector<vlm::AssessResult> assessments = model_->AssessBatch(
      batch, GreedyDescriptionBatch(batch), /*temperature=*/0.0, {});
  std::vector<int> labels(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) labels[i] = assessments[i].label;
  return labels;
}

ChainOutput ChainPipeline::RunWithExample(const data::VideoSample& sample,
                                          int example_label,
                                          double similarity,
                                          Rng* rng) const {
  ChainOutput out;
  const AuMask description = GreedyDescription(sample);
  out.describe.mask = description;
  out.describe.text = text::RenderDescription(description);
  out.assess = model_->AssessWithExample(sample, description, example_label,
                                         similarity, /*temperature=*/0.0,
                                         nullptr);
  out.highlight = model_->Highlight(sample, description, out.assess.label,
                                    config_.rationale_length,
                                    rng != nullptr
                                        ? config_.highlight_temperature
                                        : 0.0,
                                    rng);
  return out;
}

ChainOutput ChainPipeline::RunWithTestTimeRefinement(
    const data::VideoSample& sample, const data::Dataset& pool,
    Rng* rng) const {
  SelfRefinement refinement(model_, config_, &pool);
  AuMask description = GreedyDescription(sample);
  // No ground truth at test time: only the faithfulness gate applies.
  const auto outcome =
      refinement.RefineDescription(sample, description, /*true_label=*/-1,
                                   rng);
  description = outcome.final_mask;

  ChainOutput out;
  out.describe.mask = description;
  out.describe.text = text::RenderDescription(description);
  out.assess = model_->Assess(sample, description, 0.0, nullptr);
  out.highlight = model_->Highlight(sample, description, out.assess.label,
                                    config_.rationale_length,
                                    config_.highlight_temperature, rng);
  return out;
}

}  // namespace vsd::cot
