#include "cot/pipeline.h"

#include "common/logging.h"
#include "cot/refinement.h"
#include "text/templates.h"

namespace vsd::cot {

using face::AuMask;

std::string ChainOutput::Transcript() const {
  return describe.text + "\n" + assess.text + "\n" + highlight.text;
}

ChainPipeline::ChainPipeline(const vlm::FoundationModel* model,
                             const ChainConfig& config)
    : model_(model), config_(config) {
  VSD_CHECK(model_ != nullptr) << "null model";
}

AuMask ChainPipeline::GreedyDescription(
    const data::VideoSample& sample) const {
  AuMask mask{};
  if (!config_.use_chain) return mask;
  const auto probs = model_->DescribeProbs(sample);
  for (int j = 0; j < face::kNumAus; ++j) mask[j] = probs[j] > 0.5;
  return mask;
}

ChainOutput ChainPipeline::Run(const data::VideoSample& sample,
                               Rng* rng) const {
  ChainOutput out;
  const AuMask description = GreedyDescription(sample);
  out.describe.mask = description;
  out.describe.text = text::RenderDescription(description);
  out.describe.log_prob = model_->DescriptionLogProb(sample, description);
  out.assess = model_->Assess(sample, description, /*temperature=*/0.0,
                              nullptr);
  out.highlight = model_->Highlight(sample, description, out.assess.label,
                                    config_.rationale_length,
                                    rng != nullptr
                                        ? config_.highlight_temperature
                                        : 0.0,
                                    rng);
  return out;
}

int ChainPipeline::PredictLabel(const data::VideoSample& sample) const {
  const AuMask description = GreedyDescription(sample);
  return model_->Assess(sample, description, 0.0, nullptr).label;
}

double ChainPipeline::PredictProbStressed(
    const data::VideoSample& sample) const {
  const AuMask description = GreedyDescription(sample);
  return model_->AssessProbStressed(sample, description);
}

ChainOutput ChainPipeline::RunWithExample(const data::VideoSample& sample,
                                          int example_label,
                                          double similarity,
                                          Rng* rng) const {
  ChainOutput out;
  const AuMask description = GreedyDescription(sample);
  out.describe.mask = description;
  out.describe.text = text::RenderDescription(description);
  out.assess = model_->AssessWithExample(sample, description, example_label,
                                         similarity, /*temperature=*/0.0,
                                         nullptr);
  out.highlight = model_->Highlight(sample, description, out.assess.label,
                                    config_.rationale_length,
                                    rng != nullptr
                                        ? config_.highlight_temperature
                                        : 0.0,
                                    rng);
  return out;
}

ChainOutput ChainPipeline::RunWithTestTimeRefinement(
    const data::VideoSample& sample, const data::Dataset& pool,
    Rng* rng) const {
  SelfRefinement refinement(model_, config_, &pool);
  AuMask description = GreedyDescription(sample);
  // No ground truth at test time: only the faithfulness gate applies.
  const auto outcome =
      refinement.RefineDescription(sample, description, /*true_label=*/-1,
                                   rng);
  description = outcome.final_mask;

  ChainOutput out;
  out.describe.mask = description;
  out.describe.text = text::RenderDescription(description);
  out.assess = model_->Assess(sample, description, 0.0, nullptr);
  out.highlight = model_->Highlight(sample, description, out.assess.label,
                                    config_.rationale_length,
                                    config_.highlight_temperature, rng);
  return out;
}

}  // namespace vsd::cot
