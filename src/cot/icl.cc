#include "cot/icl.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"
#include "text/templates.h"

namespace vsd::cot {

const char* RetrievalMethodName(RetrievalMethod method) {
  switch (method) {
    case RetrievalMethod::kNone:
      return "w/o Example";
    case RetrievalMethod::kRandom:
      return "Random";
    case RetrievalMethod::kByVision:
      return "Retrieve-by-vision";
    case RetrievalMethod::kByDescription:
      return "Retrieve-by-description";
  }
  return "unknown";
}

ExampleStore::ExampleStore(const data::Dataset& train,
                           const vlm::VisionTower* generic_encoder,
                           const vlm::FoundationModel* model, Rng* rng)
    : generic_encoder_(generic_encoder), text_encoder_(64) {
  VSD_CHECK(generic_encoder_ != nullptr) << "null vision encoder";
  VSD_CHECK(model != nullptr) << "null model";
  const int n = train.size();
  labels_.reserve(n);
  for (int i = 0; i < n; ++i) {
    const auto& sample = train.samples[i];
    labels_.push_back(sample.stress_label);
    sample_ids_.push_back(sample.id);
    vision_embeddings_.push_back(EmbedVision(sample));
    // Greedy model description of the training example.
    const auto probs = model->DescribeProbs(sample);
    face::AuMask mask{};
    for (int j = 0; j < face::kNumAus; ++j) mask[j] = probs[j] > 0.5;
    description_embeddings_.push_back(
        text_encoder_.Encode(text::RenderDescription(mask)));
  }
  // Estimate mean pairwise similarities on a subsample (baseline for
  // normalization).
  const int probes = std::min(n, 200);
  double vision_sum = 0.0;
  double description_sum = 0.0;
  int count = 0;
  for (int p = 0; p < probes; ++p) {
    const int a = rng->UniformInt(n);
    const int b = rng->UniformInt(n);
    if (a == b) continue;
    vision_sum += vsd::CosineSimilarity(vision_embeddings_[a],
                                        vision_embeddings_[b]);
    description_sum += vsd::CosineSimilarity(description_embeddings_[a],
                                             description_embeddings_[b]);
    ++count;
  }
  if (count > 0) {
    vision_baseline_ = vision_sum / count;
    description_baseline_ = description_sum / count;
  }
}

std::vector<float> ExampleStore::EmbedVision(
    const data::VideoSample& sample) const {
  return generic_encoder_
      ->EmbedPair(sample.expressive_frame, sample.neutral_frame)
      .ToVector();
}

double ExampleStore::Normalize(double similarity, double baseline) const {
  if (baseline >= 1.0) return 0.0;
  return vsd::Clamp((similarity - baseline) / (1.0 - baseline), 0.0, 1.0);
}

double ExampleStore::VisionSimilarity(const data::VideoSample& query,
                                      int i) const {
  return vsd::CosineSimilarity(EmbedVision(query), vision_embeddings_[i]);
}

double ExampleStore::DescriptionSimilarity(
    const face::AuMask& query_description, int i) const {
  const auto query_embedding =
      text_encoder_.Encode(text::RenderDescription(query_description));
  return vsd::CosineSimilarity(query_embedding, description_embeddings_[i]);
}

ExampleStore::Retrieved ExampleStore::Retrieve(
    RetrievalMethod method, const data::VideoSample& query,
    const face::AuMask& query_description, Rng* rng) const {
  Retrieved out;
  const int n = size();
  if (n == 0 || method == RetrievalMethod::kNone) return out;

  if (method == RetrievalMethod::kRandom) {
    out.store_index = rng->UniformInt(n);
    out.label = labels_[out.store_index];
    out.raw_similarity =
        VisionSimilarity(query, out.store_index);
    out.normalized_similarity =
        Normalize(out.raw_similarity, vision_baseline_);
    return out;
  }

  double best = -2.0;
  int best_index = -1;
  if (method == RetrievalMethod::kByVision) {
    const auto query_embedding = EmbedVision(query);
    for (int i = 0; i < n; ++i) {
      const double sim =
          vsd::CosineSimilarity(query_embedding, vision_embeddings_[i]);
      if (sim > best) {
        best = sim;
        best_index = i;
      }
    }
    out.normalized_similarity = Normalize(best, vision_baseline_);
  } else {  // kByDescription
    const auto query_embedding =
        text_encoder_.Encode(text::RenderDescription(query_description));
    for (int i = 0; i < n; ++i) {
      const double sim = vsd::CosineSimilarity(query_embedding,
                                               description_embeddings_[i]);
      if (sim > best) {
        best = sim;
        best_index = i;
      }
    }
    out.normalized_similarity = Normalize(best, description_baseline_);
  }
  out.store_index = best_index;
  out.raw_similarity = best;
  out.label = best_index >= 0 ? labels_[best_index] : 0;
  return out;
}

void ExampleStore::SubsampleTo(double fraction, Rng* rng) {
  fraction = vsd::Clamp(fraction, 0.0, 1.0);
  const int keep = std::max(1, static_cast<int>(size() * fraction));
  const auto chosen = rng->SampleWithoutReplacement(size(), keep);
  std::vector<int> labels;
  std::vector<int> ids;
  std::vector<std::vector<float>> vision;
  std::vector<std::vector<float>> description;
  for (int i : chosen) {
    labels.push_back(labels_[i]);
    ids.push_back(sample_ids_[i]);
    vision.push_back(std::move(vision_embeddings_[i]));
    description.push_back(std::move(description_embeddings_[i]));
  }
  labels_ = std::move(labels);
  sample_ids_ = std::move(ids);
  vision_embeddings_ = std::move(vision);
  description_embeddings_ = std::move(description);
}

}  // namespace vsd::cot
