#ifndef VSD_COT_REFINEMENT_H_
#define VSD_COT_REFINEMENT_H_

#include <vector>

#include "cot/chain_config.h"
#include "data/sample.h"
#include "face/au.h"
#include "vlm/foundation_model.h"

namespace vsd::cot {

/// \brief Implements the self-refinement machinery of Sec. III-C/III-D:
/// helpfulness scoring, self-verification faithfulness scoring, the
/// description refinement loop, and the rationale flip score.
class SelfRefinement {
 public:
  /// `pool` supplies the negative videos for self-verification (3 random
  /// samples from *other subjects*, per the paper). Not owned.
  SelfRefinement(const vlm::FoundationModel* model, const ChainConfig& config,
                 const data::Dataset* pool);

  /// Helpfulness h of a description: fraction of K stochastic assessments
  /// (different seeds, per the paper) that recover the true label.
  double Helpfulness(const data::VideoSample& sample,
                     const face::AuMask& description, int true_label,
                     Rng* rng) const;

  /// Faithfulness f of a description via self-verification (Fig. 4):
  /// fraction of K four-way video-selection trials (fresh dialogue; no
  /// history) that pick the described video.
  double Faithfulness(const data::VideoSample& sample,
                      const face::AuMask& description, Rng* rng) const;

  /// Outcome of the description refinement do-while loop (Algorithm 1,
  /// lines 4-9).
  struct RefineOutcome {
    face::AuMask final_mask{};
    face::AuMask original_mask{};
    bool replaced = false;  ///< True when at least one E' was accepted.
    int rounds = 0;
  };

  /// Runs the refinement loop: propose E' (by reflection, or by plain
  /// re-sampling when `use_reflection` is off), accept when h' >= h and
  /// f' >= f, repeat until rejection or the round cap.
  /// `true_label` may be -1 (test time): helpfulness is then skipped and
  /// only the faithfulness gate applies, as in Sec. IV-G.
  RefineOutcome RefineDescription(const data::VideoSample& sample,
                                  const face::AuMask& initial,
                                  int true_label, Rng* rng) const;

  /// Rationale flip score (Sec. III-D): mosaics the facial region of each
  /// rationale cue in order until the model's decision flips; returns the
  /// number of removals needed (lower = more faithful), or
  /// `rationale.size() + 1` when the decision never flips.
  int RationaleFlipScore(const data::VideoSample& sample,
                         const face::AuMask& description, int assessment,
                         const std::vector<int>& rationale) const;

 private:
  /// 3 distractor videos from subjects other than the sample's.
  std::vector<const data::VideoSample*> DrawNegatives(
      const data::VideoSample& sample, Rng* rng) const;

  const vlm::FoundationModel* model_;
  ChainConfig config_;
  const data::Dataset* pool_;
};

}  // namespace vsd::cot

#endif  // VSD_COT_REFINEMENT_H_
