#ifndef VSD_COT_PIPELINE_H_
#define VSD_COT_PIPELINE_H_

#include <string>

#include "cot/chain_config.h"
#include "data/sample.h"
#include "vlm/foundation_model.h"

namespace vsd::cot {

/// Full output of one chain run (Eq. 1).
struct ChainOutput {
  vlm::DescribeResult describe;   ///< E
  vlm::AssessResult assess;       ///< A
  vlm::HighlightResult highlight; ///< R

  /// The three generations concatenated, as a transcript.
  std::string Transcript() const;
};

/// \brief Inference-time "Describe -> Assess -> Highlight" pipeline.
///
/// Runs the trained model through the reasoning chain of Sec. III-A. With
/// `use_chain` off it degenerates to the "w/o Chain" variant: a direct
/// assessment from the video, followed by a highlight over all AUs.
class ChainPipeline {
 public:
  ChainPipeline(const vlm::FoundationModel* model, const ChainConfig& config);

  /// Deterministic chain run (greedy describe/assess; rng only used for
  /// highlight tie-breaking and may be null for fully greedy output).
  ChainOutput Run(const data::VideoSample& sample, Rng* rng) const;

  /// Convenience: the assessed label only.
  int PredictLabel(const data::VideoSample& sample) const;
  double PredictProbStressed(const data::VideoSample& sample) const;

  /// Chain run with an in-context example (Sec. IV-F): the example's label
  /// and (normalized) similarity shift the assessment.
  ChainOutput RunWithExample(const data::VideoSample& sample,
                             int example_label, double similarity,
                             Rng* rng) const;

  /// Test-time self-refinement for frozen (off-the-shelf) models
  /// (Sec. IV-G): reflect on the description without ground truth, keep the
  /// new description only when self-verification finds it more faithful,
  /// then reassess. `pool` supplies verification negatives.
  ChainOutput RunWithTestTimeRefinement(const data::VideoSample& sample,
                                        const data::Dataset& pool,
                                        Rng* rng) const;

  const ChainConfig& config() const { return config_; }
  const vlm::FoundationModel& model() const { return *model_; }

 private:
  /// Greedy description: AUs with p > 0.5 (empty when chain is off).
  face::AuMask GreedyDescription(const data::VideoSample& sample) const;

  const vlm::FoundationModel* model_;
  ChainConfig config_;
};

}  // namespace vsd::cot

#endif  // VSD_COT_PIPELINE_H_
