#ifndef VSD_COT_PIPELINE_H_
#define VSD_COT_PIPELINE_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "cot/chain_config.h"
#include "data/sample.h"
#include "vlm/foundation_model.h"

namespace vsd::cot {

/// Full output of one chain run (Eq. 1).
struct ChainOutput {
  vlm::DescribeResult describe;   ///< E
  vlm::AssessResult assess;       ///< A
  vlm::HighlightResult highlight; ///< R

  /// The three generations concatenated, as a transcript.
  std::string Transcript() const;
};

/// \brief Inference-time "Describe -> Assess -> Highlight" pipeline.
///
/// Runs the trained model through the reasoning chain of Sec. III-A. With
/// `use_chain` off it degenerates to the "w/o Chain" variant: a direct
/// assessment from the video, followed by a highlight over all AUs.
class ChainPipeline {
 public:
  ChainPipeline(const vlm::FoundationModel* model, const ChainConfig& config);

  /// Deterministic chain run (greedy describe/assess; rng only used for
  /// highlight tie-breaking and may be null for fully greedy output).
  ChainOutput Run(const data::VideoSample& sample, Rng* rng) const;

  /// Convenience: the assessed label only.
  int PredictLabel(const data::VideoSample& sample) const;
  double PredictProbStressed(const data::VideoSample& sample) const;

  // ---- Batched inference ----
  //
  // Stage-wise chain execution: one Describe forward, one Assess forward,
  // one Highlight forward for the whole batch instead of three per sample.
  // Entry i of every batched result is bit-identical to the corresponding
  // single-sample call (the singles above are batch-of-1 delegations).

  /// Batched chain runs. `rngs` holds one highlight stream per sample
  /// (empty = fully greedy for every sample). Entry i is bit-identical to
  /// `Run(*batch[i], rngs[i])`.
  std::vector<ChainOutput> RunBatch(vlm::FoundationModel::SampleSpan batch,
                                    std::span<Rng* const> rngs) const;

  /// Convenience RunBatch that forks one child stream per sample from
  /// `rng` in index order (null = greedy for every sample).
  std::vector<ChainOutput> RunBatch(vlm::FoundationModel::SampleSpan batch,
                                    Rng* rng) const;

  /// Batched PredictProbStressed: p_F(stressed) per sample.
  std::vector<double> PredictBatch(
      vlm::FoundationModel::SampleSpan batch) const;

  /// Batched PredictLabel.
  std::vector<int> PredictLabelBatch(
      vlm::FoundationModel::SampleSpan batch) const;

  // ---- Validated / fault-aware inference surface ----
  //
  // The serving layer predicts through these. Each sample is validated
  // (data::ValidateSample) and checked against the global FaultInjector
  // before the forward; the forward itself runs once over the valid subset
  // only. Errors are PER SAMPLE: one bad sample never fails its
  // batch-mates, which matters under dynamic batching where batch
  // composition is timing-dependent — per-sample granularity is what keeps
  // request outcomes deterministic. Successful entries are bit-identical
  // to `PredictBatch` over the same samples (entry independence, PR 3).

  /// Batched fallible prediction: entry i holds p_F(stressed) for
  /// `batch[i]`, or the per-sample error. `InvalidArgument` = bad input or
  /// injected frame corruption (not retryable); `Internal` = injected
  /// transient / NaN activation or a genuine non-finite probability
  /// (retryable upstream).
  std::vector<vsd::Result<double>> TryPredictBatch(
      vlm::FoundationModel::SampleSpan batch) const;

  /// Single-sample convenience (batch-of-1 through TryPredictBatch).
  vsd::Result<double> TryPredictProbStressed(
      const data::VideoSample& sample) const;

  /// Chain run with an in-context example (Sec. IV-F): the example's label
  /// and (normalized) similarity shift the assessment.
  ChainOutput RunWithExample(const data::VideoSample& sample,
                             int example_label, double similarity,
                             Rng* rng) const;

  /// Test-time self-refinement for frozen (off-the-shelf) models
  /// (Sec. IV-G): reflect on the description without ground truth, keep the
  /// new description only when self-verification finds it more faithful,
  /// then reassess. `pool` supplies verification negatives.
  ChainOutput RunWithTestTimeRefinement(const data::VideoSample& sample,
                                        const data::Dataset& pool,
                                        Rng* rng) const;

  const ChainConfig& config() const { return config_; }
  const vlm::FoundationModel& model() const { return *model_; }

 private:
  /// Greedy description: AUs with p > 0.5 (empty when chain is off).
  face::AuMask GreedyDescription(const data::VideoSample& sample) const;
  /// Batched greedy descriptions (all empty when chain is off, in which
  /// case the describe head is not queried at all).
  std::vector<face::AuMask> GreedyDescriptionBatch(
      vlm::FoundationModel::SampleSpan batch) const;

  const vlm::FoundationModel* model_;
  ChainConfig config_;
};

}  // namespace vsd::cot

#endif  // VSD_COT_PIPELINE_H_
