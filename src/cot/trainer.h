#ifndef VSD_COT_TRAINER_H_
#define VSD_COT_TRAINER_H_

#include "common/rng.h"
#include "cot/chain_config.h"
#include "data/sample.h"
#include "vlm/foundation_model.h"

namespace vsd::cot {

/// What happened during training (for logging / tests).
struct TrainReport {
  int describe_dpo_pairs = 0;   ///< Accepted (E, E_o) preference pairs.
  int rationale_dpo_pairs = 0;  ///< Mined (R_b, R_w) preference pairs.
  int refined_descriptions = 0; ///< Samples whose E was replaced.
  double final_assess_loss = 0.0;
};

/// \brief Implements the learning process of Algorithm 1.
///
/// The paper's per-sample loop is staged here for efficiency (the math is
/// unchanged; batching commutes across samples):
///
///  1. Describe instruction tuning on the AU dataset D' (Eq. 2), vision
///     tower unfrozen. Skipped by "w/o learn des.".
///  2. Vision tower frozen; features precomputed.
///  3. Initial assess training on self-generated descriptions (Eq. 4).
///  4. Description self-refinement loop per training sample (reflection +
///     helpfulness/faithfulness gates), collecting DPO pairs; DPO update of
///     the describe policy against a frozen reference (Eq. 3).
///  5. Assess re-training on the refined descriptions (Eq. 4).
///  6. Highlight warmup (self-explanation targets from the assess head's
///     own AU sensitivities), then rationale self-refinement: n reflected
///     rationales per sample scored by the flip test, best/worst forming
///     DPO pairs (Eq. 5).
///
/// The model passed in should be generalist-pretrained (the stand-in for
/// the Qwen-VL initialization, see vlm/api_models.h).
class ChainTrainer {
 public:
  explicit ChainTrainer(const ChainConfig& config) : config_(config) {}

  /// Trains `model` on `stress_train` using the AU dataset `au_data` for
  /// the Describe step. Afterwards the model's feature cache covers
  /// `stress_train` only.
  TrainReport Train(vlm::FoundationModel* model,
                    const data::Dataset& au_data,
                    const data::Dataset& stress_train, Rng* rng) const;

  const ChainConfig& config() const { return config_; }

 private:
  void TuneDescribe(vlm::FoundationModel* model,
                    const data::Dataset& au_data, Rng* rng) const;
  double TrainAssess(vlm::FoundationModel* model,
                     const data::Dataset& train,
                     const std::vector<face::AuMask>& descriptions,
                     Rng* rng) const;
  void WarmupHighlight(vlm::FoundationModel* model,
                       const data::Dataset& train,
                       const std::vector<face::AuMask>& descriptions,
                       Rng* rng) const;

  ChainConfig config_;
};

}  // namespace vsd::cot

#endif  // VSD_COT_TRAINER_H_
