#include "cot/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "cot/refinement.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"

namespace vsd::cot {

namespace ag = ::vsd::autograd;
using face::AuMask;
using face::kNumAus;

namespace {

/// Iterates mini-batches of indices.
template <typename Fn>
void ForEachBatch(int n, int batch_size, Rng* rng, Fn&& fn) {
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(start + batch_size, n);
    fn(std::vector<int>(order.begin() + start, order.begin() + end));
  }
}

}  // namespace

void ChainTrainer::TuneDescribe(vlm::FoundationModel* model,
                                const data::Dataset& raw_au_data,
                                Rng* rng) const {
  // Sample additional annotated frames from each AU-dataset clip.
  const data::Dataset au_data =
      config_.describe_augment_copies > 0
          ? data::AugmentFrames(raw_au_data, config_.describe_augment_copies,
                                rng->Next())
          : raw_au_data;
  nn::Adam opt(model->Parameters(), config_.describe_lr);
  for (int epoch = 0; epoch < config_.describe_epochs; ++epoch) {
    ForEachBatch(au_data.size(), config_.batch_size, rng,
                 [&](const std::vector<int>& idx) {
                   std::vector<const data::VideoSample*> batch;
                   std::vector<AuMask> targets;
                   for (int i : idx) {
                     batch.push_back(&au_data.samples[i]);
                     targets.push_back(au_data.samples[i].au_label);
                   }
                   nn::Var loss = model->DescribeLoss(batch, targets,
                                                      /*train_vision=*/true);
                   opt.ZeroGrad();
                   ag::Backward(loss);
                   opt.Step();
                 });
  }
}

double ChainTrainer::TrainAssess(
    vlm::FoundationModel* model, const data::Dataset& train,
    const std::vector<AuMask>& descriptions, Rng* rng) const {
  nn::Adam opt(model->HeadParameters(), config_.assess_lr);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < config_.assess_epochs; ++epoch) {
    double epoch_loss = 0.0;
    int batches = 0;
    ForEachBatch(train.size(), config_.batch_size, rng,
                 [&](const std::vector<int>& idx) {
                   std::vector<const data::VideoSample*> batch;
                   std::vector<AuMask> masks;
                   std::vector<int> labels;
                   for (int i : idx) {
                     batch.push_back(&train.samples[i]);
                     masks.push_back(descriptions[i]);
                     labels.push_back(train.samples[i].stress_label);
                   }
                   nn::Var loss = model->AssessLoss(batch, masks, labels);
                   opt.ZeroGrad();
                   ag::Backward(loss);
                   opt.Step();
                   epoch_loss += loss.value().at(0);
                   ++batches;
                 });
    last_loss = batches > 0 ? epoch_loss / batches : 0.0;
  }
  return last_loss;
}

void ChainTrainer::WarmupHighlight(
    vlm::FoundationModel* model, const data::Dataset& train,
    const std::vector<AuMask>& descriptions, Rng* rng) const {
  // Self-explanation targets: the described AUs whose assess-head
  // sensitivity agrees with the sample's label direction.
  std::vector<AuMask> targets(train.size());
  std::vector<int> assessments(train.size());
  for (int i = 0; i < train.size(); ++i) {
    const auto& sample = train.samples[i];
    const AuMask& description = descriptions[i];
    assessments[i] = sample.stress_label;
    AuMask target{};
    for (int j = 0; j < kNumAus; ++j) {
      if (!description[j]) continue;
      AuMask on = description;
      AuMask off = description;
      on[j] = true;
      off[j] = false;
      const double margin_on = model->AssessProbStressed(sample, on);
      const double margin_off = model->AssessProbStressed(sample, off);
      const double sensitivity = margin_on - margin_off;
      if ((sample.stress_label == 1 && sensitivity > 0) ||
          (sample.stress_label == 0 && sensitivity < 0)) {
        target[j] = true;
      }
    }
    targets[i] = target;
  }
  nn::Adam opt(model->HeadParameters(), config_.highlight_lr);
  for (int epoch = 0; epoch < config_.highlight_warmup_epochs; ++epoch) {
    ForEachBatch(train.size(), config_.batch_size, rng,
                 [&](const std::vector<int>& idx) {
                   std::vector<const data::VideoSample*> batch;
                   std::vector<AuMask> masks;
                   std::vector<int> labels;
                   std::vector<AuMask> batch_targets;
                   for (int i : idx) {
                     batch.push_back(&train.samples[i]);
                     masks.push_back(descriptions[i]);
                     labels.push_back(assessments[i]);
                     batch_targets.push_back(targets[i]);
                   }
                   nn::Var loss = model->HighlightLoss(batch, masks, labels,
                                                       batch_targets);
                   opt.ZeroGrad();
                   ag::Backward(loss);
                   opt.Step();
                 });
  }
}

TrainReport ChainTrainer::Train(vlm::FoundationModel* model,
                                const data::Dataset& au_data,
                                const data::Dataset& stress_train,
                                Rng* rng) const {
  TrainReport report;
  const int n = stress_train.size();
  VSD_CHECK(n > 0) << "empty training set";

  // ---- Stage 1: Describe instruction tuning (Eq. 2). ----
  if (config_.use_chain && config_.learn_describe && au_data.size() > 0) {
    TuneDescribe(model, au_data, rng);
  }

  // ---- Stage 2: freeze vision, cache features. ----
  model->ClearFeatureCache();
  model->PrecomputeFeatures(stress_train);

  // ---- Stage 3: initial descriptions + initial assess training. ----
  std::vector<AuMask> descriptions(n);
  if (config_.use_chain) {
    for (int i = 0; i < n; ++i) {
      descriptions[i] =
          model
              ->Describe(stress_train.samples[i],
                         config_.describe_temperature, rng)
              .mask;
    }
  }
  TrainAssess(model, stress_train, descriptions, rng);

  // ---- Stage 4: description self-refinement + DPO (Eq. 3). ----
  if (config_.use_chain && config_.use_refinement) {
    SelfRefinement refinement(model, config_, &stress_train);
    std::vector<int> pair_index;
    std::vector<AuMask> winners;
    std::vector<AuMask> losers;
    for (int i = 0; i < n; ++i) {
      const auto& sample = stress_train.samples[i];
      const auto outcome = refinement.RefineDescription(
          sample, descriptions[i], sample.stress_label, rng);
      if (outcome.replaced) {
        ++report.refined_descriptions;
        pair_index.push_back(i);
        winners.push_back(outcome.final_mask);
        losers.push_back(outcome.original_mask);
        descriptions[i] = outcome.final_mask;
      }
    }
    report.describe_dpo_pairs = static_cast<int>(winners.size());

    if (!winners.empty()) {
      auto reference = model->Clone();
      nn::Adam opt(model->HeadParameters(), config_.dpo_lr);
      const int pairs = static_cast<int>(winners.size());
      for (int epoch = 0; epoch < config_.dpo_epochs; ++epoch) {
        ForEachBatch(pairs, config_.batch_size, rng,
                     [&](const std::vector<int>& idx) {
                       std::vector<const data::VideoSample*> batch;
                       std::vector<AuMask> w;
                       std::vector<AuMask> l;
                       for (int i : idx) {
                         batch.push_back(
                             &stress_train.samples[pair_index[i]]);
                         w.push_back(winners[i]);
                         l.push_back(losers[i]);
                       }
                       nn::Var loss = model->DpoDescribeLoss(
                           batch, w, l, *reference, config_.dpo_beta);
                       opt.ZeroGrad();
                       ag::Backward(loss);
                       opt.Step();
                     });
      }
    }
  }

  // ---- Stage 5: assess (re-)training on final descriptions (Eq. 4). ----
  report.final_assess_loss =
      TrainAssess(model, stress_train, descriptions, rng);

  // ---- Stage 6: highlight warmup + rationale DPO (Eq. 5). ----
  if (config_.use_chain) {
    WarmupHighlight(model, stress_train, descriptions, rng);
  }
  if (config_.use_chain && config_.use_refinement) {
    SelfRefinement refinement(model, config_, &stress_train);
    const int budget = std::min(n, config_.rationale_dpo_samples);
    const std::vector<int> chosen =
        rng->SampleWithoutReplacement(n, budget);
    std::vector<int> pair_index;
    std::vector<AuMask> winners;
    std::vector<AuMask> losers;
    for (int i : chosen) {
      const auto& sample = stress_train.samples[i];
      const int assessment =
          model->Assess(sample, descriptions[i], 0.0, nullptr).label;
      // Base rationale + n reflected candidates.
      std::vector<std::vector<int>> candidates;
      candidates.push_back(model
                               ->Highlight(sample, descriptions[i],
                                           assessment,
                                           config_.rationale_length,
                                           config_.highlight_temperature,
                                           rng)
                               .ranked_aus);
      for (int c = 0; c < config_.n_rationales; ++c) {
        // Reflection explores alternative rankings (hotter sampling);
        // without reflection this is the same temperature (re-sampling).
        const double temperature =
            config_.use_reflection ? config_.highlight_temperature * 2.0
                                   : config_.highlight_temperature;
        candidates.push_back(model
                                 ->Highlight(sample, descriptions[i],
                                             assessment,
                                             config_.rationale_length,
                                             temperature, rng)
                                 .ranked_aus);
      }
      int best = 0;
      int worst = 0;
      int best_score = 1 << 20;
      int worst_score = -1;
      for (size_t c = 0; c < candidates.size(); ++c) {
        const int score = refinement.RationaleFlipScore(
            sample, descriptions[i], assessment, candidates[c]);
        if (score < best_score) {
          best_score = score;
          best = static_cast<int>(c);
        }
        if (score > worst_score) {
          worst_score = score;
          worst = static_cast<int>(c);
        }
      }
      if (best_score < worst_score) {
        pair_index.push_back(i);
        winners.push_back(face::AuMaskFromIndices(candidates[best]));
        losers.push_back(face::AuMaskFromIndices(candidates[worst]));
      }
    }
    report.rationale_dpo_pairs = static_cast<int>(winners.size());

    if (!winners.empty()) {
      auto reference = model->Clone();
      nn::Adam opt(model->HeadParameters(), config_.dpo_lr);
      const int pairs = static_cast<int>(winners.size());
      std::vector<AuMask> pair_descriptions(pairs);
      std::vector<int> pair_assessments(pairs);
      for (int p = 0; p < pairs; ++p) {
        pair_descriptions[p] = descriptions[pair_index[p]];
        pair_assessments[p] =
            model
                ->Assess(stress_train.samples[pair_index[p]],
                         pair_descriptions[p], 0.0, nullptr)
                .label;
      }
      for (int epoch = 0; epoch < config_.dpo_epochs; ++epoch) {
        ForEachBatch(pairs, config_.batch_size, rng,
                     [&](const std::vector<int>& idx) {
                       std::vector<const data::VideoSample*> batch;
                       std::vector<AuMask> desc;
                       std::vector<int> assess;
                       std::vector<AuMask> w;
                       std::vector<AuMask> l;
                       for (int i : idx) {
                         batch.push_back(
                             &stress_train.samples[pair_index[i]]);
                         desc.push_back(pair_descriptions[i]);
                         assess.push_back(pair_assessments[i]);
                         w.push_back(winners[i]);
                         l.push_back(losers[i]);
                       }
                       nn::Var loss = model->DpoRationaleLoss(
                           batch, desc, assess, w, l, *reference,
                           config_.dpo_beta);
                       opt.ZeroGrad();
                       ag::Backward(loss);
                       opt.Step();
                     });
      }
    }
  }
  return report;
}

}  // namespace vsd::cot
