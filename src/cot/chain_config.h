#ifndef VSD_COT_CHAIN_CONFIG_H_
#define VSD_COT_CHAIN_CONFIG_H_

#include <cstdint>

namespace vsd::cot {

/// \brief Hyper-parameters and ablation switches of the chain-reasoning
/// stress detector (Sec. III, Algorithm 1).
///
/// The three ablation flags map to the paper's variants:
///  * `use_chain = false`      -> "w/o Chain"      (Table III/IV)
///  * `learn_describe = false` -> "w/o learn des." (Table III/IV)
///  * `use_refinement = false` -> "w/o Refine"     (Table V/VI)
///  * `use_reflection = false` -> "w/o Reflection" (plain re-sampling)
struct ChainConfig {
  // ---- Ablations ----
  bool use_chain = true;
  bool learn_describe = true;
  bool use_refinement = true;
  bool use_reflection = true;

  // ---- Self-refinement (Sec. III-C/III-D) ----
  int k_repeats = 3;            ///< K repeated scorings for h and f.
  int n_rationales = 3;         ///< n reflected rationale candidates.
  int max_refine_rounds = 2;    ///< Cap on the description do-while loop.
  int num_verification_choices = 4;  ///< 1 true + 3 negatives (Fig. 4).

  // ---- Generation temperatures ----
  double describe_temperature = 0.35;
  double assess_sample_temperature = 1.0;
  double verify_temperature = 0.5;
  double highlight_temperature = 0.7;

  // ---- Optimization (Sec. IV-H: lr 1e-4..., epochs 10, beta 0.1 in the
  // paper; scaled to this model's size) ----
  int describe_epochs = 12;
  float describe_lr = 1.5e-3f;
  /// Extra re-rendered frames per AU-dataset video during describe tuning
  /// (real AU datasets provide many annotated frames per clip).
  int describe_augment_copies = 3;
  int assess_epochs = 25;
  float assess_lr = 2e-3f;
  int highlight_warmup_epochs = 3;
  float highlight_lr = 2e-3f;
  int dpo_epochs = 2;
  float dpo_lr = 5e-4f;
  float dpo_beta = 0.1f;  ///< The paper's beta.
  int batch_size = 32;

  // ---- Cost caps ----
  /// Max training samples mined for rationale DPO pairs (Eq. 5).
  int rationale_dpo_samples = 300;
  /// Max rationale length (top-m highlighted cues).
  int rationale_length = 3;

  uint64_t seed = 2025;
};

}  // namespace vsd::cot

#endif  // VSD_COT_CHAIN_CONFIG_H_
