#ifndef VSD_COT_ICL_H_
#define VSD_COT_ICL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/sample.h"
#include "face/au.h"
#include "text/encoder.h"
#include "vlm/foundation_model.h"
#include "vlm/vision.h"

namespace vsd::cot {

/// Retrieval strategies for in-context examples (Sec. IV-F).
enum class RetrievalMethod { kNone, kRandom, kByVision, kByDescription };

const char* RetrievalMethodName(RetrievalMethod method);

/// \brief Store of training examples supporting similarity retrieval.
///
/// "Retrieve-by-vision" embeds frame pairs with a *generic* vision encoder
/// (the Videoformer stand-in); "Retrieve-by-description" embeds the
/// model's own facial-action descriptions with the hashing text encoder
/// (the BERT stand-in). Similarities returned by `Retrieve` are normalized
/// against the store's mean pairwise similarity so that a *random*
/// example carries ~zero influence while a genuinely close one carries a
/// strong gate (see FoundationModel::AssessWithExample).
class ExampleStore {
 public:
  /// Builds the store over `train`. `generic_encoder` supplies vision
  /// embeddings; `model` generates the descriptions embedded for
  /// retrieve-by-description.
  ExampleStore(const data::Dataset& train,
               const vlm::VisionTower* generic_encoder,
               const vlm::FoundationModel* model, Rng* rng);

  struct Retrieved {
    int store_index = -1;
    int label = 0;
    double raw_similarity = 0.0;
    double normalized_similarity = 0.0;  ///< In [0,1]; gate for ICL.
  };

  /// Retrieves one example for the query. For kByDescription the caller
  /// passes the query's own generated description mask.
  Retrieved Retrieve(RetrievalMethod method,
                     const data::VideoSample& query,
                     const face::AuMask& query_description, Rng* rng) const;

  /// Restricts the store to a random fraction of its examples (Fig. 8).
  void SubsampleTo(double fraction, Rng* rng);

  int size() const { return static_cast<int>(labels_.size()); }
  int label(int i) const { return labels_[i]; }
  int sample_id(int i) const { return sample_ids_[i]; }

  /// Raw similarity of a query to stored example `i` under each embedding
  /// (exposed for the Fig. 7 similarity-separation analysis).
  double VisionSimilarity(const data::VideoSample& query, int i) const;
  double DescriptionSimilarity(const face::AuMask& query_description,
                               int i) const;

 private:
  std::vector<float> EmbedVision(const data::VideoSample& sample) const;
  double Normalize(double similarity, double baseline) const;

  const vlm::VisionTower* generic_encoder_;
  text::TextEncoder text_encoder_;
  std::vector<int> labels_;
  std::vector<int> sample_ids_;
  std::vector<std::vector<float>> vision_embeddings_;
  std::vector<std::vector<float>> description_embeddings_;
  double vision_baseline_ = 0.0;  ///< Mean pairwise vision similarity.
  double description_baseline_ = 0.0;
};

}  // namespace vsd::cot

#endif  // VSD_COT_ICL_H_
