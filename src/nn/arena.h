#ifndef VSD_NN_ARENA_H_
#define VSD_NN_ARENA_H_

#include <cstddef>
#include <span>
#include <vector>

namespace vsd::nn {

/// Offsets are aligned to this many bytes (one cache line), so every
/// planned buffer starts on a cache-line boundary regardless of its dtype.
inline constexpr size_t kArenaAlignBytes = 64;

/// One intermediate buffer of a compiled forward pass, as the planner sees
/// it: a size in bytes and a live interval over the topological op order.
/// Sizes are bytes (not elements) so mixed-dtype graphs plan byte-accurate
/// buffers — the caller multiplies element counts by `DTypeSize`. The
/// buffer is written at step `first_use` and last read at `last_use`
/// (inclusive); `first_use = -1` marks buffers written before execution
/// starts (graph inputs). Zero-sized requests are legal and get offset 0.
struct BufferRequest {
  size_t size = 0;    ///< Byte count.
  int first_use = 0;  ///< Topological step of the producing op.
  int last_use = 0;   ///< Topological step of the last consuming op.
};

/// Result of lifetime planning: one byte offset per request into a single
/// arena of `arena_size` bytes.
struct ArenaPlan {
  size_t arena_size = 0;
  std::vector<size_t> offsets;
};

/// Plans all buffers of a forward pass into one arena, ggml-alloc style:
/// requests are placed in order of first use; a buffer whose live interval
/// has ended returns its bytes to a best-fit free list (coalescing
/// adjacent blocks), so later ops reuse earlier ops' memory. Guarantees:
///
///  * no two requests whose live intervals overlap share any bytes;
///  * every offset is `align`-aligned;
///  * `arena_size` never exceeds the sum of the (aligned) request sizes —
///    reuse can only shrink the arena, and typically shrinks it well below
///    the peak-naive layout;
///  * the plan is a pure function of `requests` (deterministic across
///    runs, threads, and platforms).
///
/// `tests/arena_test.cc` fuzzes these invariants over random DAG
/// lifetimes.
ArenaPlan PlanBufferLifetimes(std::span<const BufferRequest> requests,
                              size_t align = kArenaAlignBytes);

}  // namespace vsd::nn

#endif  // VSD_NN_ARENA_H_
