#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace vsd::nn {

namespace {

constexpr char kMagic[4] = {'V', 'S', 'D', 'M'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::vector<float> state = module.StateVector();
  const uint64_t count = state.size();
  file.write(kMagic, sizeof(kMagic));
  file.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  file.write(reinterpret_cast<const char*>(state.data()),
             static_cast<std::streamsize>(count * sizeof(float)));
  if (!file.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadModule(Module* module, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  file.read(magic, sizeof(magic));
  file.read(reinterpret_cast<char*>(&version), sizeof(version));
  file.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!file.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a VSDM checkpoint");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  if (count != static_cast<uint64_t>(module->NumParameters())) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " + std::to_string(count) +
        ", module has " + std::to_string(module->NumParameters()));
  }
  std::vector<float> state(count);
  file.read(reinterpret_cast<char*>(state.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  if (!file.good()) {
    return Status::IoError("truncated checkpoint " + path);
  }
  if (!module->LoadStateVector(state)) {
    return Status::Internal("LoadStateVector rejected checkpoint state");
  }
  return Status::OK();
}

}  // namespace vsd::nn
