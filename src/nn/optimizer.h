#ifndef VSD_NN_OPTIMIZER_H_
#define VSD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace vsd::nn {

/// Interface for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Adjusts the learning rate (e.g. for decay schedules).
  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  std::vector<Var> params_;
  float lr_ = 1e-3f;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace vsd::nn

#endif  // VSD_NN_OPTIMIZER_H_
