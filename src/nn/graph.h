#ifndef VSD_NN_GRAPH_H_
#define VSD_NN_GRAPH_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "nn/arena.h"
#include "tensor/autograd.h"
#include "tensor/dtype.h"

namespace vsd::nn::graph {

// ---- Build-once / execute-many forward graphs ----
//
// The eager forward pass re-walks the autograd graph on every call,
// allocating a fresh Tensor per op node. For inference loops that repeat
// the same graph shape thousands of times (the chain pipeline, the
// explainers' perturbation batches), this module captures the forward once
// as a static, topologically ordered op list, plans every intermediate
// buffer into a single arena up front (first-use/last-use interval
// allocation with reuse — see nn/arena.h), and then executes with zero
// heap allocations per call.
//
// The compiled path runs the exact kernels the eager ops run
// (tensor/kernels.h), so its outputs are bit-identical to eager; eager
// stays the reference implementation behind `VSD_GRAPH_EXEC=0`.
// `tests/graph_exec_test.cc` pins both the equivalence and the
// zero-allocation contract.

/// Whether wired call sites should use compiled execution. Defaults to the
/// `VSD_GRAPH_EXEC` environment variable (unset or nonzero = on, "0" =
/// off); `SetGraphExecEnabled` overrides it at runtime.
bool GraphExecEnabled();
void SetGraphExecEnabled(bool enabled);

/// Op vocabulary of the compiled forward. Exactly the inference-path ops
/// of the model: conv towers (im2col + matmul + bias), MLP heads, the
/// residual trunk's GELU/concat, and the assess head's sigmoid posterior.
enum class OpKind {
  kInput,    ///< Written by the caller before Execute.
  kWeight,   ///< Live parameter handle; resolved to fresh data at Execute.
  kMatMul,   ///< [M,K]x[K,N] -> [M,N].
  kAddRows,  ///< Row-broadcast bias add: [N,D] + [D].
  kRelu,
  kGelu,
  kTanh,
  kSigmoid,
  kConcat,   ///< [N,D1] ++ [N,D2] -> [N,D1+D2] along axis 1.
  kIm2Col,   ///< NHWC [N,H,W,C] -> [N*OH*OW, kh*kw*C] patches.
  kReshape,  ///< View: shares the operand's buffer, no compute.
};

/// One node of the captured graph. Nodes are created in topological order
/// (operands must already exist), so node id order is execution order.
struct OpNode {
  OpKind kind = OpKind::kInput;
  std::vector<int> shape;  ///< Row-major output dims.
  int size = 0;            ///< Output element count.
  /// Storage dtype of the node's value. Non-weight nodes are always fp32
  /// (compute stays float); kWeight mirrors the parameter tensor's dtype,
  /// which is kI8 for quantized frozen weights (MatMul rhs only).
  tensor::DType dtype = tensor::DType::kF32;
  int a = -1;              ///< First operand node id (-1 if none).
  int b = -1;              ///< Second operand node id (-1 if none).
  int kh = 0, kw = 0, stride = 0, pad = 0;  ///< kIm2Col parameters.
  /// kWeight only: handle to the parameter node. The executor reads
  /// `weight.value().data()` on every Execute, so in-place optimizer
  /// updates are visible without recompiling.
  autograd::Var weight;
};

/// Records a forward pass as a static op list. Returned node ids are
/// indices into the growing graph; pass the final one to CompiledGraph.
class GraphBuilder {
 public:
  /// Declares a caller-written input of the given shape. Inputs are
  /// addressed by declaration order in GraphExecutor::InputData.
  int Input(std::vector<int> shape);
  /// Declares a constant parameter (not arena-planned, never copied).
  int Weight(const autograd::Var& param);

  int MatMul(int a, int b);
  /// `bias` must be 1-D [D] against a 2-D `a` [N,D].
  int AddRows(int a, int bias);
  int Relu(int a);
  int Gelu(int a);
  int Tanh(int a);
  int Sigmoid(int a);
  int Concat(int a, int b);
  int Im2Col(int x, int kh, int kw, int stride, int pad);
  /// Aliasing view: no buffer of its own, extends the operand's lifetime.
  int Reshape(int a, std::vector<int> shape);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const OpNode& node(int id) const;

 private:
  friend class CompiledGraph;

  int Append(OpNode node);
  const OpNode& Operand(int id) const;
  /// Operand that must hold fp32 data (everything except a MatMul rhs).
  const OpNode& F32Operand(int id) const;

  std::vector<OpNode> nodes_;
  std::vector<int> inputs_;  ///< Node ids of kInput, in declaration order.
};

/// Immutable compiled form of a captured graph: the op list plus the arena
/// plan (one offset per node). Shared by any number of executors — the
/// plan is read-only at Execute time, so executors on different threads
/// can share one CompiledGraph.
class CompiledGraph {
 public:
  /// Plans buffer lifetimes for `builder`'s graph with `output` as the
  /// root. Input buffers are live from before step 0; the output buffer
  /// stays live past the last step (the caller reads it after Execute).
  CompiledGraph(GraphBuilder builder, int output);

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  const std::vector<int>& input_shape(int input_index) const;
  const std::vector<int>& output_shape() const { return nodes_[output_].shape; }
  int output_size() const { return nodes_[output_].size; }
  /// Total arena bytes an executor allocates once at construction. Byte
  /// sizing is per-dtype accurate (`DTypeSize`), not element-count based.
  size_t arena_bytes() const { return arena_bytes_; }

 private:
  friend class GraphExecutor;

  std::vector<OpNode> nodes_;
  std::vector<int> inputs_;
  int output_;
  std::vector<size_t> node_offset_;  ///< Arena offset (bytes) per node.
  size_t arena_bytes_ = 0;
};

/// Runs a CompiledGraph. Owns the arena (allocated once, in the
/// constructor); `Execute()` performs no heap allocations — the contract
/// `tests/graph_exec_test.cc` enforces with a counting allocator. Not
/// thread-safe: Execute writes the arena, so use one executor per thread
/// (CompiledForward pools them).
class GraphExecutor {
 public:
  explicit GraphExecutor(std::shared_ptr<const CompiledGraph> graph);

  const CompiledGraph& graph() const { return *graph_; }

  /// Arena pointer for input `input_index` (declaration order); write the
  /// packed input there before Execute.
  float* InputData(int input_index);

  /// Runs every op in topological order. Allocation-free.
  void Execute();

  /// Arena pointer to the output values (valid until the next Execute).
  const float* OutputData() const;

 private:
  const float* NodeData(int id) const;
  /// Byte offset -> arena pointer (offsets are 64-byte aligned, so the
  /// conversion to a float index is exact).
  float* ArenaAt(size_t byte_offset);
  const float* ArenaAt(size_t byte_offset) const;

  std::shared_ptr<const CompiledGraph> graph_;
  std::vector<float> arena_;
};

/// \brief The user-facing handle wired into model call sites.
///
/// Lazily compiles one graph per batch size (the only shape that varies at
/// a call site) and pools executors so concurrent callers — e.g. explainer
/// perturbation loops on a ThreadPool — each run on their own arena.
/// Acquire/release costs one mutex hop; Execute itself is lock-free.
class CompiledForward {
 public:
  /// Builds the graph for batch size `n` into the builder and returns the
  /// output node id.
  using BuildFn = std::function<int(GraphBuilder* builder, int n)>;

  CompiledForward() = default;
  explicit CompiledForward(BuildFn build) : build_(std::move(build)) {}

  CompiledForward(const CompiledForward&) = delete;
  CompiledForward& operator=(const CompiledForward&) = delete;

  /// RAII lease of a pooled executor; returns it on destruction.
  class Lease {
   public:
    Lease(CompiledForward* owner, int batch,
          std::unique_ptr<GraphExecutor> exec)
        : owner_(owner), batch_(batch), exec_(std::move(exec)) {}
    ~Lease();
    Lease(Lease&& other) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    GraphExecutor* operator->() const { return exec_.get(); }
    GraphExecutor& operator*() const { return *exec_; }

   private:
    CompiledForward* owner_;
    int batch_;
    std::unique_ptr<GraphExecutor> exec_;
  };

  /// Compiles the graph for `batch` on first use, then hands out a pooled
  /// (or freshly constructed) executor for it.
  Lease Acquire(int batch);

  /// Drops every compiled graph and pooled executor, forcing the next
  /// Acquire to rebuild. Call after anything the build function captures
  /// changes shape or dtype — e.g. quantizing a model's weights in place.
  /// Outstanding leases stay valid; their executors are discarded (not
  /// pooled) on release because they reference the dropped graphs.
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const CompiledGraph> compiled;
    std::vector<std::unique_ptr<GraphExecutor>> idle;
  };

  void Release(int batch, std::unique_ptr<GraphExecutor> exec);

  BuildFn build_;
  std::mutex mu_;
  std::unordered_map<int, Entry> entries_ VSD_GUARDED_BY(mu_);  // by batch
};

}  // namespace vsd::nn::graph

#endif  // VSD_NN_GRAPH_H_
