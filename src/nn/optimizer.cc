#include "nn/optimizer.h"

#include <cmath>

namespace vsd::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].value().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i].mutable_value();
    const auto& grad = params_[i].grad();
    if (grad.size() != value.size()) continue;  // never touched by backward
    for (int j = 0; j < value.size(); ++j) {
      float g = grad.at(j);
      if (weight_decay_ > 0.0f) g += weight_decay_ * value.at(j);
      if (momentum_ > 0.0f) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + g;
        g = velocity_[i][j];
      }
      value.at(j) -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].value().size(), 0.0f);
    v_[i].assign(params_[i].value().size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i].mutable_value();
    const auto& grad = params_[i].grad();
    if (grad.size() != value.size()) continue;
    for (int j = 0; j < value.size(); ++j) {
      const float g = grad.at(j);
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f) update += weight_decay_ * value.at(j);
      value.at(j) -= lr_ * update;
    }
  }
}

}  // namespace vsd::nn
