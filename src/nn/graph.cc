#include "nn/graph.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace vsd::nn::graph {

namespace k = ::vsd::tensor::kernels;

namespace {

int EnvGraphExec() {
  const char* env = std::getenv("VSD_GRAPH_EXEC");
  if (env == nullptr) return 1;
  return std::atoi(env) != 0 || env[0] == '\0' ? 1 : 0;
}

/// -1 = unset (fall back to the environment); set by SetGraphExecEnabled.
std::atomic<int>& OverrideSlot() {
  static std::atomic<int> override_flag{-1};
  return override_flag;
}

int ShapeSize(const std::vector<int>& shape) {
  int n = 1;
  for (int d : shape) {
    VSD_CHECK(d >= 0) << "negative graph dim " << d;
    n *= d;
  }
  return n;
}

}  // namespace

bool GraphExecEnabled() {
  const int override_flag = OverrideSlot().load(std::memory_order_relaxed);
  if (override_flag >= 0) return override_flag != 0;
  static const int env_flag = EnvGraphExec();
  return env_flag != 0;
}

void SetGraphExecEnabled(bool enabled) {
  OverrideSlot().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ---- GraphBuilder ----

int GraphBuilder::Append(OpNode node) {
  node.size = ShapeSize(node.shape);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

const OpNode& GraphBuilder::node(int id) const { return Operand(id); }

const OpNode& GraphBuilder::Operand(int id) const {
  VSD_CHECK(id >= 0 && id < num_nodes()) << "graph node id " << id;
  return nodes_[id];
}

const OpNode& GraphBuilder::F32Operand(int id) const {
  const OpNode& node = Operand(id);
  // Compute stays fp32 everywhere; int8 weights are legal only as the
  // rhs of MatMul, where the fused kernel dequantizes inline.
  VSD_CHECK(node.dtype == tensor::DType::kF32)
      << "graph operand " << id << " must be f32, got "
      << tensor::DTypeName(node.dtype);
  return node;
}

int GraphBuilder::Input(std::vector<int> shape) {
  OpNode node;
  node.kind = OpKind::kInput;
  node.shape = std::move(shape);
  const int id = Append(std::move(node));
  inputs_.push_back(id);
  return id;
}

int GraphBuilder::Weight(const autograd::Var& param) {
  VSD_CHECK(param.defined()) << "graph weight is undefined";
  OpNode node;
  node.kind = OpKind::kWeight;
  node.shape = param.value().shape();
  node.dtype = param.value().dtype();
  node.weight = param;
  return Append(std::move(node));
}

int GraphBuilder::MatMul(int a, int b) {
  const OpNode& av = F32Operand(a);
  const OpNode& bv = Operand(b);  // rhs may be an int8 weight
  VSD_CHECK(av.shape.size() == 2 && bv.shape.size() == 2)
      << "graph MatMul requires 2-D";
  VSD_CHECK(av.shape[1] == bv.shape[0]) << "graph MatMul inner dim";
  OpNode node;
  node.kind = OpKind::kMatMul;
  node.shape = {av.shape[0], bv.shape[1]};
  node.a = a;
  node.b = b;
  return Append(std::move(node));
}

int GraphBuilder::AddRows(int a, int bias) {
  const OpNode& av = F32Operand(a);
  const OpNode& bv = F32Operand(bias);
  VSD_CHECK(av.shape.size() == 2) << "graph AddRows requires 2-D lhs";
  VSD_CHECK(bv.size == av.shape[1]) << "graph AddRows bias width";
  OpNode node;
  node.kind = OpKind::kAddRows;
  node.shape = av.shape;
  node.a = a;
  node.b = bias;
  return Append(std::move(node));
}

namespace {

OpNode Elementwise(OpKind kind, const OpNode& operand, int a) {
  OpNode node;
  node.kind = kind;
  node.shape = operand.shape;
  node.a = a;
  return node;
}

}  // namespace

int GraphBuilder::Relu(int a) {
  return Append(Elementwise(OpKind::kRelu, F32Operand(a), a));
}

int GraphBuilder::Gelu(int a) {
  return Append(Elementwise(OpKind::kGelu, F32Operand(a), a));
}

int GraphBuilder::Tanh(int a) {
  return Append(Elementwise(OpKind::kTanh, F32Operand(a), a));
}

int GraphBuilder::Sigmoid(int a) {
  return Append(Elementwise(OpKind::kSigmoid, F32Operand(a), a));
}

int GraphBuilder::Concat(int a, int b) {
  const OpNode& av = F32Operand(a);
  const OpNode& bv = F32Operand(b);
  VSD_CHECK(av.shape.size() == 2 && bv.shape.size() == 2)
      << "graph Concat requires 2-D";
  VSD_CHECK(av.shape[0] == bv.shape[0]) << "graph Concat row mismatch";
  OpNode node;
  node.kind = OpKind::kConcat;
  node.shape = {av.shape[0], av.shape[1] + bv.shape[1]};
  node.a = a;
  node.b = b;
  return Append(std::move(node));
}

int GraphBuilder::Im2Col(int x, int kh, int kw, int stride, int pad) {
  const OpNode& xv = F32Operand(x);
  VSD_CHECK(xv.shape.size() == 4) << "graph Im2Col requires [N,H,W,C]";
  const int oh = autograd::ConvOutDim(xv.shape[1], kh, stride, pad);
  const int ow = autograd::ConvOutDim(xv.shape[2], kw, stride, pad);
  VSD_CHECK(oh > 0 && ow > 0) << "graph Im2Col degenerate output";
  OpNode node;
  node.kind = OpKind::kIm2Col;
  node.shape = {xv.shape[0] * oh * ow, kh * kw * xv.shape[3]};
  node.a = x;
  node.kh = kh;
  node.kw = kw;
  node.stride = stride;
  node.pad = pad;
  return Append(std::move(node));
}

int GraphBuilder::Reshape(int a, std::vector<int> shape) {
  const OpNode& av = F32Operand(a);
  VSD_CHECK(av.kind != OpKind::kWeight) << "graph Reshape of a weight";
  OpNode node;
  node.kind = OpKind::kReshape;
  node.shape = std::move(shape);
  node.a = a;
  VSD_CHECK(ShapeSize(node.shape) == av.size) << "graph Reshape size";
  return Append(std::move(node));
}

// ---- CompiledGraph ----

CompiledGraph::CompiledGraph(GraphBuilder builder, int output)
    : nodes_(std::move(builder.nodes_)),
      inputs_(std::move(builder.inputs_)),
      output_(output) {
  const int n = static_cast<int>(nodes_.size());
  VSD_CHECK(output_ >= 0 && output_ < n) << "graph output id";

  // One BufferRequest per materialized node; views alias their operand's
  // request, weights have none.
  std::vector<int> node_buffer(n, -1);
  std::vector<BufferRequest> requests;
  for (int id = 0; id < n; ++id) {
    const OpNode& node = nodes_[id];
    if (node.kind == OpKind::kWeight) continue;
    if (node.kind == OpKind::kReshape) {
      VSD_CHECK(node.a >= 0 && node_buffer[node.a] >= 0)
          << "graph Reshape operand has no buffer";
      node_buffer[id] = node_buffer[node.a];
      continue;
    }
    node_buffer[id] = static_cast<int>(requests.size());
    BufferRequest req;
    // Byte-accurate per dtype. Today every planned buffer is f32 (int8
    // lives only in weight tensors, which are not arena-planned), but the
    // sizing stays correct if a narrow-dtype intermediate ever lands here.
    req.size =
        static_cast<size_t>(node.size) * tensor::DTypeSize(node.dtype);
    // Inputs are written before execution starts, so their buffers must
    // not be handed to any op, ever earlier than their last consumer.
    req.first_use = node.kind == OpKind::kInput ? -1 : id;
    req.last_use = id;
    requests.push_back(req);
  }
  for (int id = 0; id < n; ++id) {
    for (const int operand : {nodes_[id].a, nodes_[id].b}) {
      if (operand < 0) continue;
      const int buf = node_buffer[operand];
      if (buf >= 0) {
        requests[buf].last_use = std::max(requests[buf].last_use, id);
      }
    }
  }
  const int out_buf = node_buffer[output_];
  VSD_CHECK(out_buf >= 0) << "graph output has no buffer";
  // The caller reads the output after Execute returns.
  requests[out_buf].last_use = n;

  const ArenaPlan plan = PlanBufferLifetimes(requests);
  arena_bytes_ = plan.arena_size;
  node_offset_.assign(n, 0);
  for (int id = 0; id < n; ++id) {
    if (node_buffer[id] >= 0) {
      node_offset_[id] = plan.offsets[node_buffer[id]];
    }
  }
}

const std::vector<int>& CompiledGraph::input_shape(int input_index) const {
  VSD_CHECK(input_index >= 0 && input_index < num_inputs())
      << "graph input index " << input_index;
  return nodes_[inputs_[input_index]].shape;
}

// ---- GraphExecutor ----

GraphExecutor::GraphExecutor(std::shared_ptr<const CompiledGraph> graph)
    : graph_(std::move(graph)),
      // Offsets are in bytes but the arena stays a float vector (every
      // planned buffer is f32); offsets are 64-byte aligned, so the
      // byte-to-float index conversion in ArenaAt is always exact.
      arena_((graph_->arena_bytes() + sizeof(float) - 1) / sizeof(float),
             0.0f) {}

float* GraphExecutor::ArenaAt(size_t byte_offset) {
  return arena_.data() + byte_offset / sizeof(float);
}

const float* GraphExecutor::ArenaAt(size_t byte_offset) const {
  return arena_.data() + byte_offset / sizeof(float);
}

float* GraphExecutor::InputData(int input_index) {
  VSD_CHECK(input_index >= 0 && input_index < graph_->num_inputs())
      << "graph input index " << input_index;
  return ArenaAt(graph_->node_offset_[graph_->inputs_[input_index]]);
}

const float* GraphExecutor::OutputData() const {
  return NodeData(graph_->output_);
}

const float* GraphExecutor::NodeData(int id) const {
  const OpNode& node = graph_->nodes_[id];
  if (node.kind == OpKind::kWeight) return node.weight.value().data();
  return ArenaAt(graph_->node_offset_[id]);
}

void GraphExecutor::Execute() {
  const std::vector<OpNode>& nodes = graph_->nodes_;
  for (int id = 0; id < static_cast<int>(nodes.size()); ++id) {
    const OpNode& node = nodes[id];
    if (node.kind == OpKind::kInput || node.kind == OpKind::kWeight ||
        node.kind == OpKind::kReshape) {
      continue;
    }
    float* out = ArenaAt(graph_->node_offset_[id]);
    switch (node.kind) {
      case OpKind::kMatMul: {
        const OpNode& a = nodes[node.a];
        const OpNode& b = nodes[node.b];
        if (b.dtype == tensor::DType::kI8) {
          const tensor::Tensor& w = b.weight.value();
          k::MatMulI8Into(NodeData(node.a), w.qdata(), w.qscale(),
                          w.qzero(), out, a.shape[0], a.shape[1],
                          node.shape[1]);
        } else {
          k::MatMulInto(NodeData(node.a), NodeData(node.b), out, a.shape[0],
                        a.shape[1], node.shape[1]);
        }
        break;
      }
      case OpKind::kAddRows:
        k::AddRowsInto(NodeData(node.a), NodeData(node.b), out,
                       node.shape[0], node.shape[1]);
        break;
      case OpKind::kRelu:
        k::ReluInto(NodeData(node.a), out, node.size);
        break;
      case OpKind::kGelu:
        k::GeluInto(NodeData(node.a), out, node.size);
        break;
      case OpKind::kTanh:
        k::TanhInto(NodeData(node.a), out, node.size);
        break;
      case OpKind::kSigmoid:
        k::SigmoidInto(NodeData(node.a), out, node.size);
        break;
      case OpKind::kConcat:
        k::ConcatRowsInto(NodeData(node.a), NodeData(node.b), out,
                          node.shape[0], nodes[node.a].shape[1],
                          nodes[node.b].shape[1]);
        break;
      case OpKind::kIm2Col: {
        const OpNode& x = nodes[node.a];
        k::Im2ColInto(NodeData(node.a), out, x.shape[0], x.shape[1],
                      x.shape[2], x.shape[3], node.kh, node.kw, node.stride,
                      node.pad);
        break;
      }
      case OpKind::kInput:
      case OpKind::kWeight:
      case OpKind::kReshape:
        break;
    }
  }
}

// ---- CompiledForward ----

CompiledForward::Lease::~Lease() {
  if (owner_ != nullptr && exec_ != nullptr) {
    owner_->Release(batch_, std::move(exec_));
  }
}

CompiledForward::Lease CompiledForward::Acquire(int batch) {
  VSD_CHECK(build_ != nullptr) << "CompiledForward has no build function";
  VSD_CHECK(batch >= 1) << "CompiledForward batch " << batch;
  std::shared_ptr<const CompiledGraph> compiled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[batch];
    if (entry.compiled == nullptr) {
      GraphBuilder builder;
      const int output = build_(&builder, batch);
      entry.compiled =
          std::make_shared<const CompiledGraph>(std::move(builder), output);
    }
    if (!entry.idle.empty()) {
      std::unique_ptr<GraphExecutor> exec = std::move(entry.idle.back());
      entry.idle.pop_back();
      return Lease(this, batch, std::move(exec));
    }
    compiled = entry.compiled;
  }
  // Arena allocation happens outside the lock.
  return Lease(this, batch, std::make_unique<GraphExecutor>(compiled));
}

void CompiledForward::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void CompiledForward::Release(int batch,
                              std::unique_ptr<GraphExecutor> exec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(batch);
  // Discard executors whose graph is no longer the pooled one (Clear ran
  // while the lease was out) — pooling them would resurrect a graph that
  // was compiled against stale weight shapes/dtypes.
  if (it == entries_.end() || it->second.compiled.get() != &exec->graph()) {
    return;
  }
  it->second.idle.push_back(std::move(exec));
}

}  // namespace vsd::nn::graph
