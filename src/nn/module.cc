#include "nn/module.h"

namespace vsd::nn {

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

int Module::NumParameters() const {
  int n = 0;
  for (const auto& p : Parameters()) n += p.value().size();
  return n;
}

std::vector<float> Module::StateVector() const {
  std::vector<float> state;
  state.reserve(NumParameters());
  for (const auto& p : Parameters()) {
    const auto& v = p.value();
    for (int i = 0; i < v.size(); ++i) state.push_back(v.at(i));
  }
  return state;
}

bool Module::LoadStateVector(const std::vector<float>& state) {
  if (static_cast<int>(state.size()) != NumParameters()) return false;
  size_t offset = 0;
  for (auto& p : Parameters()) {
    auto& v = p.mutable_value();
    for (int i = 0; i < v.size(); ++i) v.at(i) = state[offset++];
  }
  return true;
}

}  // namespace vsd::nn
