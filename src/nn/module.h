#ifndef VSD_NN_MODULE_H_
#define VSD_NN_MODULE_H_

#include <vector>

#include "tensor/autograd.h"

namespace vsd::nn {

using ::vsd::autograd::Var;

/// \brief Base class for trainable components.
///
/// A module owns parameter `Var`s (leaf nodes with `requires_grad`). The
/// optimizer mutates `param.mutable_value()` in place; because `Var` shares
/// its node, forward passes built after a step see the updated weights.
class Module {
 public:
  virtual ~Module() = default;

  /// Handles to every trainable parameter (shared nodes, cheap copies).
  virtual std::vector<Var> Parameters() const = 0;

  /// Zeroes the gradient of every parameter.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int NumParameters() const;

  /// Flattens all parameter values into one vector (optimizer-state free).
  std::vector<float> StateVector() const;

  /// Restores parameter values from `state` (must match NumParameters()).
  /// Returns false on size mismatch.
  bool LoadStateVector(const std::vector<float>& state);
};

}  // namespace vsd::nn

#endif  // VSD_NN_MODULE_H_
