#include "nn/arena.h"

#include <algorithm>

#include "common/logging.h"

namespace vsd::nn {

namespace {

struct FreeBlock {
  size_t offset = 0;
  size_t size = 0;
};

size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

/// Inserts a block into the offset-sorted free list, coalescing with both
/// neighbors. The resulting list is a pure function of the set of free
/// byte ranges, so release order cannot influence later placements.
void ReleaseBlock(std::vector<FreeBlock>* free_list, size_t offset,
                  size_t size) {
  if (size == 0) return;
  auto it = std::lower_bound(
      free_list->begin(), free_list->end(), offset,
      [](const FreeBlock& b, size_t off) { return b.offset < off; });
  it = free_list->insert(it, FreeBlock{offset, size});
  if (it + 1 != free_list->end() && it->offset + it->size == (it + 1)->offset) {
    it->size += (it + 1)->size;
    free_list->erase(it + 1);
  }
  if (it != free_list->begin() &&
      (it - 1)->offset + (it - 1)->size == it->offset) {
    (it - 1)->size += it->size;
    free_list->erase(it);
  }
}

}  // namespace

ArenaPlan PlanBufferLifetimes(std::span<const BufferRequest> requests,
                              size_t align) {
  VSD_CHECK(align > 0) << "arena alignment must be positive";
  const int n = static_cast<int>(requests.size());
  ArenaPlan plan;
  plan.offsets.assign(requests.size(), 0);

  // Place in order of first use (ties broken by request index, so the plan
  // depends only on the request list).
  std::vector<int> order(requests.size());
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&requests](int a, int b) {
    return requests[a].first_use < requests[b].first_use;
  });

  // Pending releases, ordered by expiry so freed blocks return to the list
  // as the placement cursor passes their last use.
  std::vector<int> expiry(order);
  std::stable_sort(expiry.begin(), expiry.end(), [&requests](int a, int b) {
    return requests[a].last_use < requests[b].last_use;
  });

  std::vector<FreeBlock> free_list;
  size_t top = 0;        // Current end of the allocated region.
  size_t high_water = 0; // Largest `top` ever needed.
  size_t next_expiry = 0;

  for (int id : order) {
    const BufferRequest& req = requests[id];
    VSD_CHECK(req.last_use >= req.first_use)
        << "buffer " << id << " dies before it is born";
    // Release every buffer whose live interval ended strictly before this
    // request's first use.
    while (next_expiry < expiry.size() &&
           requests[expiry[next_expiry]].last_use < req.first_use) {
      const int dead = expiry[next_expiry++];
      ReleaseBlock(&free_list, plan.offsets[dead],
                   AlignUp(requests[dead].size, align));
    }
    const size_t size = AlignUp(req.size, align);
    if (size == 0) continue;  // offset 0, overlaps nothing (zero bytes).
    // Best fit: smallest free block that holds `size`; ties resolve to the
    // lowest offset because the list is offset-sorted.
    int best = -1;
    for (size_t i = 0; i < free_list.size(); ++i) {
      if (free_list[i].size >= size &&
          (best < 0 || free_list[i].size < free_list[best].size)) {
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      plan.offsets[id] = free_list[best].offset;
      free_list[best].offset += size;
      free_list[best].size -= size;
      if (free_list[best].size == 0) {
        free_list.erase(free_list.begin() + best);
      }
    } else if (!free_list.empty() &&
               free_list.back().offset + free_list.back().size == top) {
      // No block is large enough, but the topmost free block touches the
      // end of the arena: grow from it instead of on top of it.
      plan.offsets[id] = free_list.back().offset;
      top = free_list.back().offset + size;
      free_list.pop_back();
    } else {
      plan.offsets[id] = top;
      top += size;
    }
    high_water = std::max(high_water, top);
  }
  plan.arena_size = high_water;
  return plan;
}

}  // namespace vsd::nn
