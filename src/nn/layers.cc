#include "nn/layers.h"

#include <cmath>

#include "common/logging.h"

namespace vsd::nn {

namespace ag = ::vsd::autograd;
namespace t = ::vsd::tensor;

Linear::Linear(int in_features, int out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Var(t::Tensor::Randn({in_features, out_features}, rng, stddev),
                /*requires_grad=*/true);
  bias_ = Var(t::Tensor::Zeros({out_features}), /*requires_grad=*/true);
}

Var Linear::Forward(const Var& x) const {
  return ag::Add(ag::MatMul(x, weight_), bias_);
}

int Linear::BuildGraph(graph::GraphBuilder* builder, int x) const {
  return builder->AddRows(builder->MatMul(x, builder->Weight(weight_)),
                          builder->Weight(bias_));
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  const int fan_in = kernel * kernel * in_channels;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_ = Var(t::Tensor::Randn({fan_in, out_channels}, rng, stddev),
                /*requires_grad=*/true);
  bias_ = Var(t::Tensor::Zeros({out_channels}), /*requires_grad=*/true);
}

Var Conv2d::Forward(const Var& x) const {
  VSD_CHECK(x.value().ndim() == 4) << "Conv2d input must be [N,H,W,C]";
  VSD_CHECK(x.value().dim(3) == in_channels_) << "Conv2d channel mismatch";
  const int n = x.value().dim(0);
  const int oh = ag::ConvOutDim(x.value().dim(1), kernel_, stride_, pad_);
  const int ow = ag::ConvOutDim(x.value().dim(2), kernel_, stride_, pad_);
  Var cols = ag::Im2Col(x, kernel_, kernel_, stride_, pad_);
  Var out = ag::Add(ag::MatMul(cols, weight_), bias_);
  return ag::Reshape(out, {n, oh, ow, out_channels_});
}

int Conv2d::BuildGraph(graph::GraphBuilder* builder, int x) const {
  // Copy, not reference: appending nodes below may reallocate the
  // builder's node storage.
  const std::vector<int> shape = builder->node(x).shape;
  VSD_CHECK(shape.size() == 4) << "Conv2d graph input must be [N,H,W,C]";
  VSD_CHECK(shape[3] == in_channels_) << "Conv2d graph channel mismatch";
  const int oh = ag::ConvOutDim(shape[1], kernel_, stride_, pad_);
  const int ow = ag::ConvOutDim(shape[2], kernel_, stride_, pad_);
  const int cols =
      builder->Im2Col(x, kernel_, kernel_, stride_, pad_);
  const int out = builder->AddRows(
      builder->MatMul(cols, builder->Weight(weight_)),
      builder->Weight(bias_));
  return builder->Reshape(out, {shape[0], oh, ow, out_channels_});
}

LayerNorm::LayerNorm(int dim)
    : gamma_(Var(t::Tensor::Full({dim}, 1.0f), /*requires_grad=*/true)),
      beta_(Var(t::Tensor::Zeros({dim}), /*requires_grad=*/true)) {}

Var LayerNorm::Forward(const Var& x) const {
  return ag::LayerNormRows(x, gamma_, beta_);
}

Var Dropout::Forward(const Var& x, bool train, Rng* rng) const {
  if (!train || rate_ <= 0.0f) return x;
  VSD_CHECK(rng != nullptr) << "Dropout in train mode needs an Rng";
  t::Tensor mask(x.value().shape());
  const float keep = 1.0f - rate_;
  for (int i = 0; i < mask.size(); ++i) {
    mask.at(i) = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return ag::Mul(x, Var(mask));
}

Mlp::Mlp(const std::vector<int>& dims, Activation act, Rng* rng)
    : act_(act) {
  VSD_CHECK(dims.size() >= 2) << "Mlp needs at least in/out dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_shared<Linear>(dims[i], dims[i + 1], rng));
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Activate(h, act_);
  }
  return h;
}

int Mlp::BuildGraph(graph::GraphBuilder* builder, int x) const {
  int h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->BuildGraph(builder, h);
    if (i + 1 < layers_.size()) {
      switch (act_) {
        case Activation::kRelu:
          h = builder->Relu(h);
          break;
        case Activation::kGelu:
          h = builder->Gelu(h);
          break;
        case Activation::kTanh:
          h = builder->Tanh(h);
          break;
      }
    }
  }
  return h;
}

std::vector<Var> Mlp::Parameters() const {
  std::vector<Var> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

Var Activate(const Var& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kGelu:
      return ag::Gelu(x);
    case Activation::kTanh:
      return ag::TanhV(x);
  }
  return x;
}

}  // namespace vsd::nn
