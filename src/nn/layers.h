#ifndef VSD_NN_LAYERS_H_
#define VSD_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/graph.h"
#include "nn/module.h"

namespace vsd::nn {

/// Fully connected layer: y = x W + b, with x [N,in] -> y [N,out].
/// Weights use He initialization.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng);

  Var Forward(const Var& x) const;

  /// Lowers `Forward` onto a compiled graph (same ops, same order);
  /// returns the output node id.
  int BuildGraph(graph::GraphBuilder* builder, int x) const;

  std::vector<Var> Parameters() const override { return {weight_, bias_}; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Var weight_;  // [in, out]
  Var bias_;    // [out]
};

/// 2-D convolution over NHWC input ([N,H,W,C] -> [N,OH,OW,F]) implemented
/// as im2col + matmul.
class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         Rng* rng);

  Var Forward(const Var& x) const;

  /// Lowers `Forward` (im2col + matmul + bias + reshape) onto a compiled
  /// graph; `x` must be a 4-D [N,H,W,C] node.
  int BuildGraph(graph::GraphBuilder* builder, int x) const;

  std::vector<Var> Parameters() const override { return {weight_, bias_}; }

  int out_channels() const { return out_channels_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  Var weight_;  // [k*k*in, out]
  Var bias_;    // [out]
};

/// Layer normalization over the last axis of [N,D].
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const override { return {gamma_, beta_}; }

 private:
  Var gamma_;
  Var beta_;
};

/// Inverted dropout. Identity when `train` is false or rate == 0.
class Dropout {
 public:
  explicit Dropout(float rate) : rate_(rate) {}

  Var Forward(const Var& x, bool train, Rng* rng) const;

 private:
  float rate_;
};

/// Activation selector for Mlp.
enum class Activation { kRelu, kGelu, kTanh };

/// A stack of Linear layers with a fixed activation between them (none
/// after the last layer).
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; requires at least 2 entries.
  Mlp(const std::vector<int>& dims, Activation act, Rng* rng);

  Var Forward(const Var& x) const;

  /// Lowers the Linear/activation stack onto a compiled graph.
  int BuildGraph(graph::GraphBuilder* builder, int x) const;

  std::vector<Var> Parameters() const override;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::shared_ptr<Linear>> layers_;
  Activation act_;
};

/// Applies the chosen activation.
Var Activate(const Var& x, Activation act);

}  // namespace vsd::nn

#endif  // VSD_NN_LAYERS_H_
