#ifndef VSD_NN_SERIALIZE_H_
#define VSD_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace vsd::nn {

/// \brief Binary checkpoint format for module parameters.
///
/// Layout: magic "VSDM", format version (u32), parameter count (u64),
/// raw little-endian float32 payload. The checkpoint stores values only
/// (no optimizer state, no architecture) — loading requires a module with
/// the identical parameter layout, which is checked by count.
Status SaveModule(const Module& module, const std::string& path);

/// Restores parameters saved by SaveModule. Fails (without modifying the
/// module) on bad magic, version mismatch, truncated payload, or a
/// parameter-count mismatch.
Status LoadModule(Module* module, const std::string& path);

}  // namespace vsd::nn

#endif  // VSD_NN_SERIALIZE_H_
