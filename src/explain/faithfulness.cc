#include "explain/faithfulness.h"

#include "common/logging.h"

namespace vsd::explain {

namespace {

int Classify(const ClassifierFn& classifier, const img::Image& image) {
  return classifier(image) >= 0.5 ? 1 : 0;
}

}  // namespace

double CleanAccuracy(const std::vector<ExplainedSample>& samples) {
  if (samples.empty()) return 0.0;
  int correct = 0;
  for (const auto& sample : samples) {
    correct += (Classify(sample.classifier, *sample.image) ==
                sample.true_label);
  }
  return static_cast<double>(correct) / samples.size();
}

std::vector<double> TopKAccuracyDrop(
    const std::vector<ExplainedSample>& samples, const std::vector<int>& ks,
    float noise_stddev, Rng* rng) {
  VSD_CHECK(!samples.empty()) << "no samples to evaluate";
  const double clean = CleanAccuracy(samples);
  std::vector<double> drops;
  drops.reserve(ks.size());
  for (int k : ks) {
    int correct = 0;
    for (const auto& sample : samples) {
      img::Image perturbed = *sample.image;
      const int take =
          std::min<int>(k, static_cast<int>(sample.ranked_segments.size()));
      for (int i = 0; i < take; ++i) {
        const auto mask =
            sample.segmentation->SegmentMask(sample.ranked_segments[i]);
        img::RandomizeMaskedRegion(&perturbed, mask, noise_stddev, rng);
      }
      correct += (Classify(sample.classifier, perturbed) ==
                  sample.true_label);
    }
    drops.push_back(clean - static_cast<double>(correct) / samples.size());
  }
  return drops;
}

}  // namespace vsd::explain
