#include "explain/occlusion.h"

#include <cmath>

namespace vsd::explain {

Attribution OcclusionExplainer::Explain(
    const ClassifierFn& classifier, const img::Image& image,
    const img::Segmentation& segmentation, Rng* rng) const {
  const int d = segmentation.num_segments;
  Attribution result;
  result.segment_scores.assign(d, 0.0);
  const double f_full = classifier(image);
  ++result.model_evaluations;
  for (int j = 0; j < d; ++j) {
    std::vector<float> keep(d, 1.0f);
    keep[j] = 0.0f;
    const double f = classifier(ApplySegmentMask(image, segmentation, keep));
    ++result.model_evaluations;
    result.segment_scores[j] = std::abs(f_full - f);
  }
  return result;
}

}  // namespace vsd::explain
