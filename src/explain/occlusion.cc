#include "explain/occlusion.h"

#include <cmath>

#include "common/batching.h"

namespace vsd::explain {

Attribution OcclusionExplainer::Explain(
    const BatchClassifierFn& classifier, const img::Image& image,
    const img::Segmentation& segmentation, Rng* rng) const {
  const int d = segmentation.num_segments;
  Attribution result;
  result.segment_scores.assign(d, 0.0);
  const double f_full =
      classifier(std::vector<img::Image>{image}).front();
  ++result.model_evaluations;
  const int batch_size = DefaultBatchSize();
  for (int64_t b = 0; b < NumBatches(d, batch_size); ++b) {
    const auto [begin, end] = BatchBounds(d, batch_size, b);
    std::vector<img::Image> perturbed;
    perturbed.reserve(end - begin);
    for (int64_t j = begin; j < end; ++j) {
      std::vector<float> keep(d, 1.0f);
      keep[j] = 0.0f;
      perturbed.push_back(ApplySegmentMask(image, segmentation, keep));
    }
    const std::vector<double> f = classifier(perturbed);
    for (int64_t j = begin; j < end; ++j) {
      result.segment_scores[j] = std::abs(f_full - f[j - begin]);
    }
    result.model_evaluations += end - begin;
  }
  return result;
}

}  // namespace vsd::explain
