#include "explain/lime.h"

#include <cmath>

#include "common/batching.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace vsd::explain {

Attribution LimeExplainer::Explain(const BatchClassifierFn& classifier,
                                   const img::Image& image,
                                   const img::Segmentation& segmentation,
                                   Rng* rng) const {
  const int d = segmentation.num_segments;
  Attribution result;
  result.segment_scores.assign(d, 0.0);

  // One child stream per perturbation, forked in index order from the
  // caller's stream. The fork order is the determinism contract (pinned in
  // tests/explain_test.cc): per-index streams make the evaluation batch
  // parallelizable while every draw stays identical to the serial run.
  std::vector<Rng> streams;
  streams.reserve(num_samples_);
  for (int s = 0; s < num_samples_; ++s) streams.push_back(rng->Fork());

  std::vector<std::vector<float>> masks(num_samples_);
  std::vector<double> responses(num_samples_, 0.0);
  std::vector<double> weights(num_samples_, 0.0);

  // Batches parallelize across the pool; within a batch the perturbed
  // images are generated from their per-index streams and evaluated in a
  // single classifier call.
  const int batch_size = DefaultBatchSize();
  ParallelFor(NumBatches(num_samples_, batch_size), [&](int64_t b) {
    const auto [begin, end] = BatchBounds(num_samples_, batch_size, b);
    std::vector<img::Image> perturbed;
    // Per-batch staging buffer: sized once per chunk, not per sample.
    // vsd-lint: allow(hot-path-alloc)
    perturbed.reserve(end - begin);
    for (int64_t s = begin; s < end; ++s) {
      Rng& stream = streams[s];
      std::vector<float> keep(d);
      int kept = 0;
      for (int j = 0; j < d; ++j) {
        keep[j] = stream.Bernoulli(0.5) ? 1.0f : 0.0f;
        kept += keep[j] > 0.0f;
      }
      // Appends into the pre-reserved batch buffer; capacity never grows.
      // vsd-lint: allow(hot-path-alloc)
      perturbed.push_back(ApplySegmentMask(image, segmentation, keep));
      // Exponential kernel on cosine distance to the all-ones mask:
      // cos(z, 1) = |z| / sqrt(|z| * d) = sqrt(|z| / d).
      const double cos_sim =
          kept > 0 ? std::sqrt(static_cast<double>(kept) / d) : 0.0;
      const double dist = 1.0 - cos_sim;
      weights[s] = std::exp(-(dist * dist) / (kernel_width_ * kernel_width_));
      masks[s] = std::move(keep);
    }
    const std::vector<double> batch_responses = classifier(perturbed);
    for (int64_t s = begin; s < end; ++s) {
      responses[s] = batch_responses[s - begin];
    }
  });
  result.model_evaluations += num_samples_;

  // Weighted ridge with intercept: features are [1, z_1..z_d]. Accumulated
  // serially in index order so the fit is bit-identical for every thread
  // count.
  const int p = d + 1;
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (size_t s = 0; s < masks.size(); ++s) {
    const double w = weights[s];
    const auto& z = masks[s];
    // Row vector x = (1, z); accumulate w * x^T x and w * x^T y.
    xtx[0][0] += w;
    xty[0] += w * responses[s];
    for (int j = 0; j < d; ++j) {
      if (z[j] == 0.0f) continue;
      xtx[0][j + 1] += w;
      xtx[j + 1][0] += w;
      xty[j + 1] += w * responses[s];
      for (int k = j; k < d; ++k) {
        if (z[k] == 0.0f) continue;
        xtx[j + 1][k + 1] += w;
        if (k != j) xtx[k + 1][j + 1] += w;
      }
    }
  }
  for (int j = 1; j < p; ++j) xtx[j][j] += ridge_lambda_;
  std::vector<double> beta = xty;
  if (SolveLinearSystem(&xtx, &beta)) {
    for (int j = 0; j < d; ++j) result.segment_scores[j] = beta[j + 1];
  }
  return result;
}

}  // namespace vsd::explain
