#ifndef VSD_EXPLAIN_KERNEL_SHAP_H_
#define VSD_EXPLAIN_KERNEL_SHAP_H_

#include <string>

#include "explain/explainer.h"

namespace vsd::explain {

/// \brief KernelSHAP (Lundberg & Lee 2017) over SLIC segments.
///
/// Samples coalitions with coalition sizes drawn according to the Shapley
/// kernel, queries the black box, and solves the kernel-weighted least
/// squares for the Shapley values (with the empty and full coalitions
/// anchoring the intercept and the efficiency constraint softly).
class KernelShapExplainer : public Explainer {
 public:
  explicit KernelShapExplainer(int num_samples = 1000,
                               double ridge_lambda = 1e-3)
      : num_samples_(num_samples), ridge_lambda_(ridge_lambda) {}

  std::string name() const override { return "SHAP"; }

  using Explainer::Explain;
  Attribution Explain(const BatchClassifierFn& classifier,
                      const img::Image& image,
                      const img::Segmentation& segmentation,
                      Rng* rng) const override;

 private:
  int num_samples_;
  double ridge_lambda_;
};

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_KERNEL_SHAP_H_
