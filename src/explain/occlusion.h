#ifndef VSD_EXPLAIN_OCCLUSION_H_
#define VSD_EXPLAIN_OCCLUSION_H_

#include <string>

#include "explain/explainer.h"

namespace vsd::explain {

/// \brief Single-segment occlusion attribution (a cheap sanity baseline,
/// d+1 evaluations): score_j = f(x) - f(x with segment j removed).
class OcclusionExplainer : public Explainer {
 public:
  std::string name() const override { return "Occlusion"; }

  using Explainer::Explain;
  Attribution Explain(const BatchClassifierFn& classifier,
                      const img::Image& image,
                      const img::Segmentation& segmentation,
                      Rng* rng) const override;
};

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_OCCLUSION_H_
