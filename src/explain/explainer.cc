#include "explain/explainer.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace vsd::explain {

BatchClassifierFn ToBatchClassifier(ClassifierFn classifier) {
  return [classifier =
              std::move(classifier)](std::span<const img::Image> images) {
    std::vector<double> probs;
    probs.reserve(images.size());
    for (const img::Image& image : images) probs.push_back(classifier(image));
    return probs;
  };
}

std::vector<int> Attribution::RankedSegments() const {
  std::vector<int> order(segment_scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return segment_scores[a] > segment_scores[b];
  });
  return order;
}

img::Image ApplySegmentMask(const img::Image& image,
                            const img::Segmentation& segmentation,
                            const std::vector<float>& keep) {
  VSD_CHECK(static_cast<int>(keep.size()) == segmentation.num_segments)
      << "keep vector size";
  img::Image out = image;
  const float mean = image.MeanValue();
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const int segment = segmentation.LabelAt(y, x);
      const float k = keep[segment];
      if (k < 1.0f) {
        out.at(y, x) = k * image.at(y, x) + (1.0f - k) * mean;
      }
    }
  }
  return out;
}

}  // namespace vsd::explain
