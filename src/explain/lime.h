#ifndef VSD_EXPLAIN_LIME_H_
#define VSD_EXPLAIN_LIME_H_

#include <string>

#include "explain/explainer.h"

namespace vsd::explain {

/// \brief LIME (Ribeiro et al. 2016) over SLIC segments.
///
/// Samples binary keep/remove masks, queries the black box on each
/// perturbed image, and fits a kernel-weighted ridge regression; the linear
/// coefficients are the segment attributions. The paper evaluates 1000
/// perturbations per sample.
class LimeExplainer : public Explainer {
 public:
  explicit LimeExplainer(int num_samples = 1000, double kernel_width = 0.25,
                         double ridge_lambda = 1.0)
      : num_samples_(num_samples),
        kernel_width_(kernel_width),
        ridge_lambda_(ridge_lambda) {}

  std::string name() const override { return "LIME"; }

  using Explainer::Explain;
  Attribution Explain(const BatchClassifierFn& classifier,
                      const img::Image& image,
                      const img::Segmentation& segmentation,
                      Rng* rng) const override;

 private:
  int num_samples_;
  double kernel_width_;
  double ridge_lambda_;
};

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_LIME_H_
