#include "explain/kernel_shap.h"

#include <algorithm>
#include <cmath>

#include "common/batching.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace vsd::explain {

Attribution KernelShapExplainer::Explain(
    const BatchClassifierFn& classifier, const img::Image& image,
    const img::Segmentation& segmentation, Rng* rng) const {
  const int d = segmentation.num_segments;
  Attribution result;
  result.segment_scores.assign(d, 0.0);
  if (d < 2) return result;

  // Base values: empty and full coalitions, one two-image batch.
  std::vector<img::Image> anchors;
  anchors.push_back(
      ApplySegmentMask(image, segmentation, std::vector<float>(d, 0.0f)));
  anchors.push_back(image);
  const std::vector<double> anchor_probs = classifier(anchors);
  const double f_empty = anchor_probs[0];
  const double f_full = anchor_probs[1];
  result.model_evaluations += 2;

  // Shapley-kernel weights by coalition size s in [1, d-1]:
  // w(s) = (d-1) / (C(d,s) * s * (d-s)); sampling sizes proportional to
  // s*(d-s) inverse is equivalent to weighting; we sample sizes from the
  // normalized kernel over sizes (the C(d,s) cancels when sampling
  // uniformly within a size class).
  std::vector<double> size_weights(d - 1);
  for (int s = 1; s <= d - 1; ++s) {
    size_weights[s - 1] = static_cast<double>(d - 1) /
                          (static_cast<double>(s) * (d - s));
  }

  // One child stream per sampled coalition, forked in index order from the
  // caller's stream (the fork order is the determinism contract, pinned in
  // tests/explain_test.cc); the coalition draw and the model query then
  // parallelize without changing any draw.
  const int num_coalitions = std::max(0, num_samples_ - 2);
  std::vector<Rng> streams;
  streams.reserve(num_coalitions);
  for (int i = 0; i < num_coalitions; ++i) streams.push_back(rng->Fork());

  std::vector<std::vector<float>> masks(num_coalitions);
  std::vector<double> responses(num_coalitions, 0.0);
  const int batch_size = DefaultBatchSize();
  ParallelFor(NumBatches(num_coalitions, batch_size), [&](int64_t b) {
    const auto [begin, end] = BatchBounds(num_coalitions, batch_size, b);
    std::vector<img::Image> perturbed;
    // Per-batch staging buffer: sized once per chunk, not per sample.
    // vsd-lint: allow(hot-path-alloc)
    perturbed.reserve(end - begin);
    for (int64_t i = begin; i < end; ++i) {
      Rng& stream = streams[i];
      const int size = 1 + stream.SampleIndex(size_weights);
      const std::vector<int> chosen =
          stream.SampleWithoutReplacement(d, size);
      std::vector<float> keep(d, 0.0f);
      for (int j : chosen) keep[j] = 1.0f;
      // Appends into the pre-reserved batch buffer; capacity never grows.
      // vsd-lint: allow(hot-path-alloc)
      perturbed.push_back(ApplySegmentMask(image, segmentation, keep));
      masks[i] = std::move(keep);
    }
    const std::vector<double> batch_responses = classifier(perturbed);
    for (int64_t i = begin; i < end; ++i) {
      responses[i] = batch_responses[i - begin];
    }
  });
  result.model_evaluations += num_coalitions;

  // Weighted least squares for phi with intercept phi0 tied to f_empty:
  // model y - f_empty = sum_j z_j * phi_j. Sampling already followed the
  // kernel over sizes, so each sampled row gets unit weight.
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (size_t s = 0; s < masks.size(); ++s) {
    const auto& z = masks[s];
    const double y = responses[s] - f_empty;
    for (int j = 0; j < d; ++j) {
      if (z[j] == 0.0f) continue;
      xty[j] += y;
      for (int k = j; k < d; ++k) {
        if (z[k] == 0.0f) continue;
        xtx[j][k] += 1.0;
        if (k != j) xtx[k][j] += 1.0;
      }
    }
  }
  // Soft efficiency constraint: sum(phi) ~= f_full - f_empty with a large
  // weight, implemented as an extra all-ones row.
  const double kConstraintWeight = 64.0;
  const double y_full = f_full - f_empty;
  for (int j = 0; j < d; ++j) {
    xty[j] += kConstraintWeight * y_full;
    for (int k = 0; k < d; ++k) xtx[j][k] += kConstraintWeight;
  }
  for (int j = 0; j < d; ++j) xtx[j][j] += ridge_lambda_;
  std::vector<double> phi = xty;
  if (SolveLinearSystem(&xtx, &phi)) {
    result.segment_scores = phi;
  }
  return result;
}

}  // namespace vsd::explain
