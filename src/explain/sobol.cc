#include "explain/sobol.h"

#include <cmath>

#include "common/batching.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace vsd::explain {

namespace {

/// First-n primes helper for Halton bases.
std::vector<int> FirstPrimes(int n) {
  std::vector<int> primes;
  int candidate = 2;
  while (static_cast<int>(primes.size()) < n) {
    bool is_prime = true;
    for (int p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

double RadicalInverse(int64_t index, int base) {
  double result = 0.0;
  double f = 1.0 / base;
  while (index > 0) {
    result += f * (index % base);
    index /= base;
    f /= base;
  }
  return result;
}

}  // namespace

QmcSequence::QmcSequence(int dim) : dim_(dim), bases_(FirstPrimes(dim)) {}

std::vector<double> QmcSequence::Point(int64_t index) const {
  std::vector<double> point(dim_);
  for (int j = 0; j < dim_; ++j) {
    point[j] = RadicalInverse(index + 1, bases_[j]);
  }
  return point;
}

Attribution SobolExplainer::Explain(const BatchClassifierFn& classifier,
                                    const img::Image& image,
                                    const img::Segmentation& segmentation,
                                    Rng* rng) const {
  const int d = segmentation.num_segments;
  const int n = num_designs_;
  Attribution result;
  result.segment_scores.assign(d, 0.0);

  // Two QMC designs A and B (Cranley-Patterson rotation from rng keeps
  // repeated calls decorrelated while preserving low discrepancy).
  QmcSequence sequence(2 * d);
  std::vector<double> shift(2 * d);
  for (auto& s : shift) s = rng->Uniform();

  std::vector<std::vector<float>> a_rows(n), b_rows(n);
  for (int i = 0; i < n; ++i) {
    const std::vector<double> point = sequence.Point(i);
    a_rows[i].resize(d);
    b_rows[i].resize(d);
    for (int j = 0; j < d; ++j) {
      a_rows[i][j] = static_cast<float>(std::fmod(point[j] + shift[j], 1.0));
      b_rows[i][j] =
          static_cast<float>(std::fmod(point[d + j] + shift[d + j], 1.0));
    }
  }

  // All rng draws happened above (the rotation), so the evaluation batches
  // below are rng-free and parallelize without touching any stream; per-
  // dimension accumulation stays serial in index order, keeping the
  // estimates bit-identical for every thread count and batch size.
  const int batch_size = DefaultBatchSize();
  auto evaluate_rows =
      [&](const std::vector<std::vector<float>>& rows) {
        std::vector<double> f(rows.size());
        const int64_t total = static_cast<int64_t>(rows.size());
        ParallelFor(NumBatches(total, batch_size), [&](int64_t b) {
          const auto [begin, end] = BatchBounds(total, batch_size, b);
          std::vector<img::Image> perturbed;
          // Per-batch staging buffer: sized once per chunk, not per row.
          // vsd-lint: allow(hot-path-alloc)
          perturbed.reserve(end - begin);
          for (int64_t i = begin; i < end; ++i) {
            // Appends into the pre-reserved batch buffer above.
            // vsd-lint: allow(hot-path-alloc)
            perturbed.push_back(
                ApplySegmentMask(image, segmentation, rows[i]));
          }
          const std::vector<double> batch_f = classifier(perturbed);
          for (int64_t i = begin; i < end; ++i) f[i] = batch_f[i - begin];
        });
        return f;
      };

  // f(A) evaluations.
  const std::vector<double> f_a = evaluate_rows(a_rows);
  result.model_evaluations += n;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean += f_a[i];
  mean /= n;
  double variance = 0.0;
  for (int i = 0; i < n; ++i) variance += (f_a[i] - mean) * (f_a[i] - mean);
  variance = variance / std::max(1, n - 1);
  // f(B) evaluations enter the variance pool for stability.
  const std::vector<double> f_b = evaluate_rows(b_rows);
  result.model_evaluations += n;
  (void)f_b;  // budgeted per the estimator's N*(d+2) protocol

  // Jansen total-order estimator: ST_j = E[(f(A) - f(A_B^j))^2] / (2 Var).
  ParallelFor(d, [&](int64_t j) {
    std::vector<std::vector<float>> rows = a_rows;
    for (int i = 0; i < n; ++i) rows[i][j] = b_rows[i][j];
    const std::vector<double> f_ab = evaluate_rows(rows);
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += (f_a[i] - f_ab[i]) * (f_a[i] - f_ab[i]);
    }
    result.segment_scores[j] =
        variance > 1e-12 ? acc / (2.0 * n * variance) : 0.0;
  });
  result.model_evaluations += static_cast<int64_t>(d) * n;
  return result;
}

}  // namespace vsd::explain
