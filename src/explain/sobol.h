#ifndef VSD_EXPLAIN_SOBOL_H_
#define VSD_EXPLAIN_SOBOL_H_

#include <string>
#include <vector>

#include "explain/explainer.h"

namespace vsd::explain {

/// \brief Low-discrepancy (quasi-Monte Carlo) sequence generator.
///
/// Implements the Halton sequence with per-dimension prime bases (the
/// first `dim` primes). Interchangeable with an LP-tau/Sobol generator for
/// the variance-based estimator below; exposed for tests.
class QmcSequence {
 public:
  explicit QmcSequence(int dim);

  /// The `index`-th point of the sequence (index >= 0), in [0,1)^dim.
  std::vector<double> Point(int64_t index) const;

  int dim() const { return dim_; }

 private:
  int dim_;
  std::vector<int> bases_;
};

/// \brief SOBOL attribution (Fel et al., NeurIPS 2021): total-order Sobol
/// sensitivity indices of the model output w.r.t. real-valued segment
/// masks, estimated with the Jansen estimator over QMC designs.
///
/// Uses N*(d+2) model evaluations for N design rows and d segments
/// (~1000+ evaluations at the paper's settings), which is what makes it —
/// like LIME and SHAP — orders of magnitude slower than self-explanation.
class SobolExplainer : public Explainer {
 public:
  explicit SobolExplainer(int num_designs = 16)
      : num_designs_(num_designs) {}

  std::string name() const override { return "SOBOL"; }

  using Explainer::Explain;
  Attribution Explain(const BatchClassifierFn& classifier,
                      const img::Image& image,
                      const img::Segmentation& segmentation,
                      Rng* rng) const override;

 private:
  int num_designs_;
};

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_SOBOL_H_
