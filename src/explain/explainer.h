#ifndef VSD_EXPLAIN_EXPLAINER_H_
#define VSD_EXPLAIN_EXPLAINER_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "img/image.h"
#include "img/slic.h"

namespace vsd::explain {

/// A black-box image classifier: returns p(stressed) for a (possibly
/// perturbed) expressive frame. The non-perturbed inputs (neutral frame,
/// description, ...) are closed over by the caller.
using ClassifierFn = std::function<double(const img::Image&)>;

/// Batched black-box classifier: p(stressed) per image, entry i
/// bit-identical to the single-image call on `images[i]`. This is the
/// explainers' native query surface — perturbation sets are evaluated one
/// batch forward at a time instead of one image at a time.
using BatchClassifierFn =
    std::function<std::vector<double>(std::span<const img::Image>)>;

/// Wraps a single-image classifier as a (looping) batch classifier; the
/// back-compat adapter behind `Explainer::Explain(ClassifierFn, ...)`.
BatchClassifierFn ToBatchClassifier(ClassifierFn classifier);

/// Attribution over superpixel segments, higher = more important.
struct Attribution {
  std::vector<double> segment_scores;  ///< One score per segment.
  int64_t model_evaluations = 0;       ///< Black-box calls consumed.

  /// Segments sorted by descending score.
  std::vector<int> RankedSegments() const;
};

/// \brief Interface of a post-hoc segment-attribution explainer.
///
/// All three baselines (LIME, KernelSHAP, SOBOL) perturb the image over a
/// SLIC segmentation and fit attribution scores from the classifier's
/// responses; they differ in the sampling scheme and estimator.
class Explainer {
 public:
  virtual ~Explainer() = default;

  virtual std::string name() const = 0;

  /// Explains `classifier` at `image` over the given segmentation.
  /// Perturbations are generated per-index (one forked stream each) and
  /// evaluated in batches of `DefaultBatchSize()`, so attributions are
  /// bit-identical at every batch size and thread count.
  virtual Attribution Explain(const BatchClassifierFn& classifier,
                              const img::Image& image,
                              const img::Segmentation& segmentation,
                              Rng* rng) const = 0;

  /// Back-compat single-image entry point: adapts `classifier` with
  /// `ToBatchClassifier` and runs the batched overload. Derived classes
  /// re-expose it with `using Explainer::Explain;`.
  Attribution Explain(const ClassifierFn& classifier,
                      const img::Image& image,
                      const img::Segmentation& segmentation,
                      Rng* rng) const {
    return Explain(ToBatchClassifier(classifier), image, segmentation, rng);
  }
};

/// Replaces every masked-out segment (mask bit 0) by the image mean; the
/// shared perturbation operator of LIME/SHAP/SOBOL.
img::Image ApplySegmentMask(const img::Image& image,
                            const img::Segmentation& segmentation,
                            const std::vector<float>& keep);

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_EXPLAINER_H_
