#ifndef VSD_EXPLAIN_EXPLAINER_H_
#define VSD_EXPLAIN_EXPLAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "img/image.h"
#include "img/slic.h"

namespace vsd::explain {

/// A black-box image classifier: returns p(stressed) for a (possibly
/// perturbed) expressive frame. The non-perturbed inputs (neutral frame,
/// description, ...) are closed over by the caller.
using ClassifierFn = std::function<double(const img::Image&)>;

/// Attribution over superpixel segments, higher = more important.
struct Attribution {
  std::vector<double> segment_scores;  ///< One score per segment.
  int64_t model_evaluations = 0;       ///< Black-box calls consumed.

  /// Segments sorted by descending score.
  std::vector<int> RankedSegments() const;
};

/// \brief Interface of a post-hoc segment-attribution explainer.
///
/// All three baselines (LIME, KernelSHAP, SOBOL) perturb the image over a
/// SLIC segmentation and fit attribution scores from the classifier's
/// responses; they differ in the sampling scheme and estimator.
class Explainer {
 public:
  virtual ~Explainer() = default;

  virtual std::string name() const = 0;

  /// Explains `classifier` at `image` over the given segmentation.
  virtual Attribution Explain(const ClassifierFn& classifier,
                              const img::Image& image,
                              const img::Segmentation& segmentation,
                              Rng* rng) const = 0;
};

/// Replaces every masked-out segment (mask bit 0) by the image mean; the
/// shared perturbation operator of LIME/SHAP/SOBOL.
img::Image ApplySegmentMask(const img::Image& image,
                            const img::Segmentation& segmentation,
                            const std::vector<float>& keep);

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_EXPLAINER_H_
