#ifndef VSD_EXPLAIN_FAITHFULNESS_H_
#define VSD_EXPLAIN_FAITHFULNESS_H_

#include <vector>

#include "explain/explainer.h"

namespace vsd::explain {

/// Everything needed to score one explained test sample.
struct ExplainedSample {
  const img::Image* image = nullptr;       ///< Clean expressive frame.
  const img::Segmentation* segmentation = nullptr;
  std::vector<int> ranked_segments;        ///< Explainer's ranking.
  ClassifierFn classifier;                 ///< p(stressed | frame).
  int true_label = 0;
};

/// Accuracy-drop curve (Tsigos et al. 2024, the paper's Sec. IV-C metric):
/// for each k in `ks`, destroy the top-k ranked segments of every sample
/// with mid-gray Gaussian noise (signal replacement), re-classify, and
/// report `clean_accuracy - perturbed_accuracy`. Returns one drop
/// (fraction, e.g. 0.1196 for 11.96%) per k.
std::vector<double> TopKAccuracyDrop(
    const std::vector<ExplainedSample>& samples, const std::vector<int>& ks,
    float noise_stddev, Rng* rng);

/// Clean accuracy of the classifiers over the samples (threshold 0.5).
double CleanAccuracy(const std::vector<ExplainedSample>& samples);

}  // namespace vsd::explain

#endif  // VSD_EXPLAIN_FAITHFULNESS_H_
