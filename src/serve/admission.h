#ifndef VSD_SERVE_ADMISSION_H_
#define VSD_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "common/annotations.h"
#include "common/status.h"

namespace vsd::serve {

/// Quality-of-service class of a request. Interactive requests are cut
/// into batches ahead of batch-class ones and keep admission headroom
/// reserved for them under quota pressure; batch-class requests are the
/// first to be shed.
enum class QosClass {
  kInteractive = 0,
  kBatch = 1,
};

const char* QosClassName(QosClass qos);

/// Token-bucket quota for one tenant: sustained `tokens_per_sec` with
/// bursts up to `burst` requests.
struct TenantQuota {
  double tokens_per_sec = 100.0;
  double burst = 20.0;
};

struct AdmissionConfig {
  bool enabled = false;
  TenantQuota default_quota;
  /// Per-tenant overrides of the default quota.
  std::map<uint64_t, TenantQuota> tenant_quotas;
  /// Fraction of a tenant's burst capacity reserved for interactive
  /// traffic: a batch-class request is admitted only while
  /// `tokens - 1 >= burst * batch_headroom`, so under quota pressure the
  /// batch class sheds first and interactive requests keep landing.
  double batch_headroom = 0.25;
};

/// \brief Per-tenant token-bucket admission control.
///
/// `Admit` refills the tenant's bucket from elapsed time (taken from the
/// injectable serve clock, passed in as `now_micros`), then spends one
/// token or sheds the request with `Unavailable` — *before* it touches any
/// replica queue, so an over-quota tenant cannot occupy queue slots or
/// batch positions that belong to others. Decisions are pure functions of
/// the (tenant, qos, now) call sequence: under a manual clock the shed
/// schedule is bit-reproducible.
///
/// Thread-safe; the mutex spans one map lookup and a few arithmetic ops
/// per request.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// OK = admitted (one token consumed); `Unavailable` = shed.
  /// Disabled controllers admit everything.
  Status Admit(uint64_t tenant, QosClass qos, int64_t now_micros);

  /// Tokens currently available to `tenant` at `now_micros` (refill
  /// applied, nothing consumed). For tests and introspection.
  double TokensForTest(uint64_t tenant, int64_t now_micros);

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    int64_t last_refill_micros = 0;
    bool initialized = false;
  };

  const TenantQuota& QuotaFor(uint64_t tenant) const;

  Bucket& RefillLocked(uint64_t tenant, int64_t now_micros)
      VSD_REQUIRES(mu_);

  AdmissionConfig config_;
  std::mutex mu_;
  std::map<uint64_t, Bucket> buckets_ VSD_GUARDED_BY(mu_);
};

}  // namespace vsd::serve

#endif  // VSD_SERVE_ADMISSION_H_
