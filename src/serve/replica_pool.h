#ifndef VSD_SERVE_REPLICA_POOL_H_
#define VSD_SERVE_REPLICA_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/baseline.h"
#include "common/annotations.h"
#include "common/result.h"
#include "cot/pipeline.h"
#include "data/sample.h"
#include "serve/admission.h"
#include "serve/clock.h"
#include "serve/policy.h"
#include "serve/stats.h"

namespace vsd::serve {

class ReplicaPool;

/// Per-replica serving knobs. The defaults suit tests; benches size them
/// explicitly. (`StressServer` reuses this config for its single replica,
/// so the PR-4 field names are unchanged.)
struct ServeConfig {
  /// Bounded open-request queue: submissions beyond this are rejected with
  /// `Unavailable` (backpressure) instead of growing memory without bound.
  int max_queue = 64;

  /// Dynamic batching: a batch is cut when `max_batch` requests are ready,
  /// or when the oldest ready request has waited `max_batch_delay_micros`
  /// since submission, whichever comes first. Interactive-QoS requests are
  /// placed ahead of batch-QoS ones when a cut is oversubscribed.
  int max_batch = 8;
  int64_t max_batch_delay_micros = 2000;

  /// Worker threads cutting and processing batches. 0 means no workers:
  /// requests queue up until `Shutdown` (which resolves them as dropped)
  /// or until the owner drives the replica synchronously via `Pump()`
  /// (stepped mode — required when a `ManualClock` is injected).
  int num_workers = 1;

  RetryPolicy retry;

  /// Circuit breaker (per replica): after this many consecutive retryable
  /// pipeline failures the replica routes whole batches straight to the
  /// degraded answer until a half-open probe succeeds. 0 disables the
  /// breaker. Under an injected `ManualClock` the breaker walk is
  /// bit-reproducible, so virtual-time benches run with it enabled;
  /// under the real clock with multiple workers its state remains
  /// timing-dependent (see bench_robustness, which keeps it off).
  int breaker_threshold = 0;

  /// How long an open breaker stays open before the next batch probes the
  /// pipeline again (half-open), on the injected clock.
  int64_t breaker_reset_micros = 100000;

  /// p(stressed) served at the `kPrior` rung (no fallback model available).
  /// 0.5 is the maximum-entropy prior; calibrate to the deployment base
  /// rate when known.
  double prior_prob = 0.5;

  /// Deadline applied to requests submitted without one. 0 = no deadline.
  int64_t default_deadline_micros = 0;

  /// Time source. Null = the process-wide monotonic `RealClock()` (the
  /// default for examples/ and live serving). Tests and the virtual-time
  /// load bench inject a `ManualClock`, which requires num_workers == 0
  /// (workers cannot sleep against a clock that only moves when told to).
  const Clock* clock = nullptr;

  /// Virtual-time service model (stepped mode only): when
  /// `service_base_micros` > 0, a cut batch of k requests occupies the
  /// replica for `service_base_micros + k * service_per_sample_micros` of
  /// clock time (times the injected slow factor when the replica is
  /// marked slow); requests complete — and measure their latency — at
  /// that virtual instant, and no new batch is cut while the replica is
  /// busy. This is what turns the load bench into a deterministic
  /// discrete-event simulation with real queueing behavior. 0 disables
  /// the model (batches complete at their cut time).
  int64_t service_base_micros = 0;
  int64_t service_per_sample_micros = 0;
};

/// A served answer, tagged with how it was produced and where.
struct ServeResult {
  double prob_stressed = 0.0;
  int label = 0;  ///< prob_stressed >= 0.5.
  DegradationLevel degradation = DegradationLevel::kFull;
  int attempts = 1;  ///< Pipeline attempts consumed (1 = first try).
  int replica = 0;   ///< Replica that resolved the request.
  int failovers = 0;  ///< Times the request was re-routed between replicas.
  /// End-to-end latency on the serving clock: resolution time minus first
  /// submission time (virtual micros under a ManualClock service model,
  /// real micros otherwise).
  int64_t latency_micros = 0;
};

/// Routing/QoS envelope for a submission. `session` is the consistent-hash
/// routing key (requests of one session stick to one replica while it is
/// healthy); `tenant` keys admission control.
struct RequestOptions {
  uint64_t session = 0;
  uint64_t tenant = 0;
  QosClass qos = QosClass::kInteractive;
  /// Bounds this request's total latency (0 = the config default).
  int64_t deadline_micros = 0;
};

/// One in-flight request. Owned by exactly one replica queue (or a worker
/// processing it) at a time; moves between replicas only through the
/// pool's failover hook.
struct Request {
  int64_t id = 0;
  uint64_t session = 0;
  uint64_t tenant = 0;
  QosClass qos = QosClass::kInteractive;
  data::VideoSample sample;
  std::promise<vsd::Result<ServeResult>> promise;
  int64_t arrival_micros = 0;   ///< First submission; latency base.
  int64_t enqueued_micros = 0;  ///< Current queue entry; batching-age base.
  int64_t ready_micros = 0;     ///< Backoff gate; = enqueued initially.
  int64_t deadline_micros = 0;  ///< Absolute, on the serving clock.
  bool has_deadline = false;
  int attempt = 0;     ///< Completed pipeline attempts so far (all replicas).
  int failovers = 0;   ///< Completed replica-to-replica re-routes.
  uint64_t tried_mask = 0;  ///< Replicas that already handled this request.
};

/// Health of one replica as seen by the pool's deterministic heartbeat.
enum class ReplicaHealth {
  kHealthy = 0,      ///< Routable.
  kQuarantined = 1,  ///< Routed around; heartbeat probes drive re-admission.
};

const char* ReplicaHealthName(ReplicaHealth health);

/// \brief One serving replica: its own pipeline handle, bounded queue,
/// per-replica circuit breaker, and (optionally) worker threads.
///
/// This is the serving engine extracted from PR 4's `StressServer` (which
/// is now a façade over a single Replica): deadline-aware dynamic batching
/// with QoS-priority cuts, retry with deterministic backoff, a degradation
/// ladder down to the calibrated prior, and deterministic fault injection
/// keyed by (replica, request id, attempt). All time flows through the
/// injected `Clock`.
///
/// Two drive modes share every line of the batching logic:
///  * threaded (num_workers > 0): workers cut and process batches against
///    a real clock — the live-serving mode.
///  * stepped (num_workers == 0): the owner advances a clock and calls
///    `Pump()`, which processes everything due synchronously on the caller
///    thread — the bit-reproducible simulation mode used by tests and
///    `bench_serve_load`.
class Replica {
 public:
  /// `pipeline` (and `fallback`, when given) must outlive the replica.
  /// `pool` may be null (standalone replica, e.g. under `StressServer`):
  /// then health reporting and failover are disabled and final failures
  /// walk the local degradation ladder.
  Replica(int id, const cot::ChainPipeline* pipeline,
          const ServeConfig& config,
          const baselines::StressClassifier* fallback, ReplicaPool* pool);

  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Enqueues one sample (copied); the returned future is always
  /// eventually resolved. Backpressure and post-shutdown submissions
  /// return an already-resolved `Unavailable` future.
  std::future<vsd::Result<ServeResult>> Submit(
      const data::VideoSample& sample, const RequestOptions& options);

  /// Routed submission (router / failover path): takes ownership on
  /// success (true); leaves `req` intact and returns false when the queue
  /// is full or the replica is shut down, so the caller can try the next
  /// replica on the ring.
  bool SubmitRouted(std::unique_ptr<Request>& req);

  /// Stops intake, drains the queue, joins workers, and resolves leftover
  /// requests (workerless replicas) as `Unavailable`. Idempotent.
  void Shutdown();

  /// Stepped mode: processes every batch due at the current clock time on
  /// the calling thread (expired deadlines resolved first). Returns the
  /// number of requests processed. No-op on a replica with workers.
  int Pump();

  /// Earliest clock time at which `Pump()` could make progress (a cut
  /// becoming due, a backoff gate or deadline expiring, the service model
  /// freeing the replica), or `kNoEvent` when the queue is idle.
  static constexpr int64_t kNoEvent = INT64_MAX;
  int64_t NextEventMicros() const;

  ServeStatsSnapshot Stats() const { return stats_.Snapshot(); }

  int id() const { return id_; }
  const ServeConfig& config() const { return config_; }

  /// Whole-replica fault state, set by the pool's heartbeat. A down
  /// replica fails every queued request fast (no pipeline attempt, no
  /// local retry) so they fail over or degrade; a slow replica serves at
  /// `slow_factor` times the modeled service cost (stepped mode) or with
  /// an injected stall (threaded mode).
  void SetDown(bool down) { down_.store(down, std::memory_order_relaxed); }
  void SetSlow(bool slow, int factor) {
    slow_factor_.store(slow ? factor : 1, std::memory_order_relaxed);
  }
  bool down() const { return down_.load(std::memory_order_relaxed); }

  /// Re-admission after quarantine starts from a closed breaker.
  void ResetBreaker();

  CircuitBreaker::State BreakerState() const;

 private:
  void WorkerLoop();

  /// Resolves expired requests in place.
  void ResolveExpiredLocked(int64_t now) VSD_REQUIRES(mu_);

  /// Pops up to max_batch ready requests (interactive QoS first) when a
  /// cut is due (size, age, or drain) and the replica is not busy under
  /// the service model, else returns empty. When the service model is
  /// active, advances busy_until_micros_ and writes the batch's virtual
  /// completion time to `*completion_micros` (0 otherwise).
  std::vector<std::unique_ptr<Request>> CutBatchLocked(
      int64_t now, int64_t* completion_micros) VSD_REQUIRES(mu_);

  /// How long (micros) a worker may sleep before the next deadline /
  /// backoff expiry / age-based cut could need attention.
  int64_t NextWakeDelayLocked(int64_t now) const VSD_REQUIRES(mu_);

  /// Earliest event time strictly after `now` over the pending queue
  /// (ready gates, age cuts, deadlines, the service-model busy horizon),
  /// or kNoEvent.
  int64_t NextEventLocked(int64_t now) const VSD_REQUIRES(mu_);

  /// Runs one cut batch through the pipeline and resolves, retries,
  /// fails over, or degrades each request. `completion_micros` is the
  /// service model's virtual completion time (0 = none; resolution time
  /// is read from the clock).
  void ProcessBatch(std::vector<std::unique_ptr<Request>> batch,
                    int64_t completion_micros) VSD_EXCLUDES(mu_);

  /// Answers requests from the degradation ladder's lower rungs.
  /// `completion_micros` stamps latency (pass the current clock time when
  /// no service model is active).
  void Degrade(std::vector<std::unique_ptr<Request>> requests,
               int64_t completion_micros);

  /// Fills the envelope fields (label, replica, failovers, latency at
  /// `resolved_micros`) and fulfills the promise.
  void Resolve(std::unique_ptr<Request> req, ServeResult result,
               int64_t resolved_micros);

  /// Fault-injection key for this replica's worker site. Replica 0 keeps
  /// the PR-4 key shape (FaultHash(id, attempt)) so single-replica fault
  /// schedules are unchanged; other replicas fold their id in for
  /// independent streams.
  uint64_t WorkerFaultKey(int64_t request_id, int attempt) const;

  const int id_;
  const cot::ChainPipeline* pipeline_;
  const baselines::StressClassifier* fallback_;  ///< May be null.
  ServeConfig config_;
  const Clock* clock_;
  ReplicaPool* pool_;  ///< May be null (standalone).

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Request>> pending_ VSD_GUARDED_BY(mu_);
  bool stop_ VSD_GUARDED_BY(mu_) = false;
  int64_t next_id_ VSD_GUARDED_BY(mu_) = 0;
  CircuitBreaker breaker_ VSD_GUARDED_BY(mu_);
  /// Service-model gate: the replica is busy until this clock time.
  int64_t busy_until_micros_ VSD_GUARDED_BY(mu_) = 0;

  std::atomic<bool> down_{false};
  std::atomic<int> slow_factor_{1};

  std::vector<std::thread> workers_;
  ServeStats stats_;
};

/// Pool-level health and fault-injection summary.
struct PoolHealthSnapshot {
  int64_t epoch = 0;           ///< Heartbeats performed.
  int64_t quarantines = 0;     ///< Healthy -> quarantined transitions.
  int64_t readmissions = 0;    ///< Quarantined -> healthy transitions.
  int64_t down_heartbeats = 0;  ///< (replica, epoch) pairs observed down.
  std::vector<ReplicaHealth> health;  ///< Per replica.
};

/// \brief A pool of N independent replicas with deterministic
/// heartbeat-driven health tracking.
///
/// The pool owns the replicas and their health state machine; routing
/// lives in `Router` (serve/router.h), which registers itself as the
/// pool's failover handler. Health is driven by *probe counts, not wall
/// clock*: each `Heartbeat()` call advances an epoch counter, asks the
/// deterministic fault injector whether each replica is down or slow for
/// (replica id, epoch), and walks the per-replica state machine —
/// quarantine on a down probe or on `health_fail_threshold` consecutive
/// serve failures, re-admission (with a reset breaker) after
/// `health_reentry_heartbeats` consecutive up probes. Given the same
/// fault seed and heartbeat cadence, the whole health history is
/// bit-reproducible.
class ReplicaPool {
 public:
  struct Config {
    ServeConfig replica;  ///< Shared by every replica (incl. the clock).
    /// Consecutive final-outcome failures before a replica is quarantined
    /// even without a down heartbeat (e.g. a fault-ridden instance).
    int health_fail_threshold = 3;
    /// Consecutive up heartbeats a quarantined replica needs to rejoin.
    int health_reentry_heartbeats = 2;
  };

  /// One replica per pipeline handle; `pipelines` must be non-empty and
  /// outlive the pool (as must `fallback` when given, shared by all
  /// replicas).
  ReplicaPool(const std::vector<const cot::ChainPipeline*>& pipelines,
              const Config& config,
              const baselines::StressClassifier* fallback = nullptr);

  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  Replica& replica(int r) { return *replicas_[static_cast<size_t>(r)]; }
  const Replica& replica(int r) const {
    return *replicas_[static_cast<size_t>(r)];
  }

  /// One deterministic heartbeat: advances the epoch, probes
  /// kReplicaDown/kReplicaSlow for every replica at (id, epoch), and walks
  /// the health state machine. Call on a fixed cadence (virtual or real).
  void Heartbeat();

  bool IsRoutable(int r) const;
  ReplicaHealth health(int r) const;
  PoolHealthSnapshot HealthSnapshot() const;

  /// Sum of per-replica stats snapshots (each internally consistent).
  ServeStatsSnapshot AggregateStats() const;

  /// Stepped mode: pumps replicas in index order until no replica makes
  /// progress (failover may move work between them mid-pump). Returns the
  /// total number of requests processed.
  int Pump();

  /// Earliest event time across replicas, or `Replica::kNoEvent`.
  int64_t NextEventMicros() const;

  void Shutdown();

  /// Failover handler, installed by the Router. Takes ownership on
  /// success; leaves `req` intact and returns false when no alternative
  /// replica can take the request (the calling replica then degrades it
  /// locally). Null clears the handler.
  using FailoverHandler = std::function<bool(std::unique_ptr<Request>&)>;
  void SetFailoverHandler(FailoverHandler handler);

  /// Called by a replica that cannot serve a request (down, or retryable
  /// failure with retries exhausted). Forwards to the installed handler.
  bool Failover(std::unique_ptr<Request>& req);

  /// Called by replicas with each request's final local outcome; feeds the
  /// consecutive-failure quarantine trigger.
  void RecordOutcome(int r, bool ok);

  /// Test hook: force a replica's health state (e.g. to pin failover
  /// routing without depending on fault-hash draws).
  void SetHealthForTest(int r, ReplicaHealth health);

 private:
  struct HealthState {
    ReplicaHealth state = ReplicaHealth::kHealthy;
    int fail_streak = 0;
    int up_streak = 0;
  };

  Config config_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex health_mu_;
  std::vector<HealthState> health_ VSD_GUARDED_BY(health_mu_);
  int64_t epoch_ VSD_GUARDED_BY(health_mu_) = 0;
  int64_t quarantines_ VSD_GUARDED_BY(health_mu_) = 0;
  int64_t readmissions_ VSD_GUARDED_BY(health_mu_) = 0;
  int64_t down_heartbeats_ VSD_GUARDED_BY(health_mu_) = 0;

  mutable std::mutex handler_mu_;
  FailoverHandler failover_ VSD_GUARDED_BY(handler_mu_);
};

}  // namespace vsd::serve

#endif  // VSD_SERVE_REPLICA_POOL_H_
